"""Store round-trip gate: a warm store must serve (almost) every cell.

Runs a small experiment matrix twice against a fresh temporary store.
The first pass computes and persists every cell; the in-memory cell
cache is then dropped — simulating a new process — so the second pass
can only be satisfied from disk. The gate fails unless at least 90% of
the second pass's cells are persistent-store hits (it should be 100%;
the slack keeps the gate about the mechanism, not the exact layout) and
the two result sets are bit-identical.

Usage: ``PYTHONPATH=src python benchmarks/bench_store_roundtrip.py
--out BENCH_store.json`` (CI runs exactly this).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.eval.profiles import EvalProfile
from repro.eval.runner import clear_cell_cache, last_matrix_stats, run_matrix
from repro.rtm.geometry import iso_capacity_sweep
from repro.store import ExperimentStore

PROFILE = EvalProfile(
    name="store-roundtrip",
    suite_scale=0.12,
    ga_options={"mu": 8, "lam": 8, "generations": 4},
    rw_iterations=30,
    benchmarks=("adpcm", "bison", "jpeg"),
)

POLICIES = ("AFD-OFU", "DMA-SR", "GA")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-hit-rate", type=float, default=0.9,
                        help="fail below this persistent-hit share on the "
                             "second pass (0 disables)")
    parser.add_argument("--out", default="BENCH_store.json")
    args = parser.parse_args(argv)

    configs = iso_capacity_sweep(dbc_counts=(2, 4))
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "roundtrip.db"

        clear_cell_cache()
        t0 = time.perf_counter()
        first = run_matrix(POLICIES, PROFILE, configs=configs,
                           store=store_path)
        cold_s = time.perf_counter() - t0
        cold = last_matrix_stats()

        clear_cell_cache()  # a new process would start cold in memory
        t0 = time.perf_counter()
        second = run_matrix(POLICIES, PROFILE, configs=configs,
                            store=store_path)
        warm_s = time.perf_counter() - t0
        warm = last_matrix_stats()

        identical = first == second
        with ExperimentStore(store_path) as store:
            stored_cells = len(store)
            runs = [r["status"] for r in store.runs()]

    hit_rate = warm.hits_store / warm.cells_total if warm.cells_total else 0.0
    payload = {
        "benchmark": "store_roundtrip",
        "policies": list(POLICIES),
        "cells": cold.cells_total,
        "first_pass": {"computed": cold.computed,
                       "hits_store": cold.hits_store, "seconds": cold_s},
        "second_pass": {"computed": warm.computed,
                        "hits_store": warm.hits_store, "seconds": warm_s,
                        "hit_rate": hit_rate},
        "stored_cells": stored_cells,
        "run_statuses": runs,
        "bit_identical": identical,
        "speedup": cold_s / warm_s if warm_s else float("inf"),
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"pass 1: {cold.describe()} in {cold_s:.2f}s")
    print(f"pass 2: {warm.describe()} in {warm_s:.2f}s "
          f"({100 * hit_rate:.0f}% persistent hits)")
    print(f"wrote {out}")

    if not identical:
        print("FAIL: warm-store results differ from cold run", file=sys.stderr)
        return 1
    if args.min_hit_rate and hit_rate < args.min_hit_rate:
        print(f"FAIL: persistent hit rate {hit_rate:.2%} < required "
              f"{args.min_hit_rate:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
