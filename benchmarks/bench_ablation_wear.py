"""A-8 — ablation: wear (shift-distribution) impact of placement policies.

Placement decides not only how many shifts happen but which DBCs absorb
them. DMA deliberately concentrates the disjoint chain's (few) shifts in
dedicated DBCs; this bench checks the resulting wear picture: DMA cuts
the *peak* per-DBC shift count (the lifetime limiter) vs AFD even when
its distribution is less even, and role rotation levels wear across
repeated runs for free (the cost model is DBC-permutation invariant).
"""

import pytest

from repro.core.policies import get_policy
from repro.rtm.geometry import iso_capacity_sweep
from repro.rtm.sim import simulate
from repro.rtm.wear import rotate_placement, wear_report
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table

from _bench_utils import PROFILE, publish_text


@pytest.fixture(scope="module")
def workload():
    bench = load_benchmark("klt", scale=PROFILE.suite_scale, seed=PROFILE.seed)
    config = [c for c in iso_capacity_sweep() if c.dbcs == 8][0]
    return bench, config


def test_wear_profile_per_policy(benchmark, workload):
    bench, config = workload
    cap = config.locations_per_dbc

    def run():
        rows = []
        for name in ("AFD-OFU", "DMA-OFU", "DMA-SR"):
            policy = get_policy(name)
            total = None
            for trace in bench.traces:
                placement = policy.place(trace.sequence, config.dbcs, cap)
                report = simulate(trace, placement, config)
                total = report if total is None else total + report
            w = wear_report(total)
            rows.append([
                name, w.total_shifts, w.max_shifts,
                round(w.imbalance, 2), round(w.gini, 3),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_text(
        "A-8 wear profile per policy (8 DBCs)",
        format_table(
            ["policy", "total shifts", "peak DBC shifts", "imbalance", "gini"],
            rows,
        ),
    )
    by = {r[0]: r for r in rows}
    # The lifetime limiter is the peak: DMA-SR must not age faster than AFD.
    assert by["DMA-SR"][2] <= by["AFD-OFU"][2]


def test_rotation_levels_wear(benchmark, workload):
    bench, config = workload
    cap = config.locations_per_dbc
    policy = get_policy("DMA-SR")

    def run():
        static = rotated = None
        for i, trace in enumerate(bench.traces):
            placement = policy.place(trace.sequence, config.dbcs, cap)
            r_static = simulate(trace, placement, config)
            r_rotated = simulate(
                trace, rotate_placement(placement, i % config.dbcs), config
            )
            static = r_static if static is None else static + r_static
            rotated = r_rotated if rotated is None else rotated + r_rotated
        return wear_report(static), wear_report(rotated)

    w_static, w_rotated = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_text(
        "A-8 wear-levelling rotation (DMA-SR, 8 DBCs)",
        format_table(
            ["scheme", "total shifts", "peak DBC shifts", "imbalance"],
            [
                ["static roles", w_static.total_shifts,
                 w_static.max_shifts, round(w_static.imbalance, 2)],
                ["rotated roles", w_rotated.total_shifts,
                 w_rotated.max_shifts, round(w_rotated.imbalance, 2)],
            ],
        ),
    )
    # Rotation costs zero shifts and cannot worsen the peak materially.
    assert w_rotated.total_shifts == w_static.total_shifts
    assert w_rotated.max_shifts <= w_static.max_shifts * 1.05