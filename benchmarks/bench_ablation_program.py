"""A-7 — ablation: whole-program placement vs per-sequence placement.

The paper (like the offset-assignment literature) evaluates each access
sequence with a private layout of the whole device. A compiler must emit
*one* layout per program. This bench measures the price of that
constraint and shows the fused-program flow keeps DMA's advantage.
"""

from repro.core.program import (
    best_program_placement,
    per_sequence_reference,
    place_program,
)
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table

from _bench_utils import PROFILE, publish_text

NAMES = ("dspstone", "fuzzy", "gif2asc")


def test_program_vs_per_sequence(benchmark):
    def run():
        rows = []
        for name in NAMES:
            bench = load_benchmark(
                name, scale=PROFILE.suite_scale, seed=PROFILE.seed
            )
            seqs = [t.sequence for t in bench.traces]
            union_vars = len({v for s in seqs for v in s.variables})
            if union_vars > 8 * 128:
                continue
            shared_afd = place_program(seqs, 8, 128, policy="AFD-OFU")
            shared_dma = place_program(seqs, 8, 128, policy="DMA-SR")
            private_dma = per_sequence_reference(seqs, 8, 128, policy="DMA-SR")
            rows.append([
                name, union_vars, shared_afd.total_cost,
                shared_dma.total_cost, private_dma,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows, "no program fits the device"
    publish_text(
        "A-7 whole-program placement (8 DBCs; private = per-seq reference)",
        format_table(
            ["program", "union vars", "shared AFD-OFU", "shared DMA-SR",
             "private DMA-SR"],
            rows,
        ),
    )
    for row in rows:
        # DMA keeps its advantage under the single-layout constraint.
        assert row[3] <= row[2], row
    total_shared = sum(r[3] for r in rows)
    total_private = sum(r[4] for r in rows)
    # The single-layout constraint costs something, but not orders of
    # magnitude (the fused phases stay disjoint, so DMA absorbs most of it).
    assert total_shared <= max(4 * total_private, total_private + 40)


def test_policy_autoselection(benchmark):
    bench = load_benchmark("fuzzy", scale=PROFILE.suite_scale, seed=PROFILE.seed)
    seqs = [t.sequence for t in bench.traces]

    def run():
        return best_program_placement(
            seqs, 8, 128, policies=("AFD-OFU", "DMA-OFU", "DMA-SR")
        )

    name, best = benchmark.pedantic(run, rounds=1, iterations=1)
    direct = place_program(seqs, 8, 128, policy="DMA-SR")
    assert best.total_cost <= direct.total_cost
    assert name in ("AFD-OFU", "DMA-OFU", "DMA-SR")
