"""A-2 — ablation: access-port count per track.

Chen's multi-DBC heuristic assumes a fixed multi-port architecture; the
paper's central 'generalized' claim is that DMA works for any port count
(Sec. II-B / III). This ablation measures every policy's shift cost at
1, 2 and 4 ports per track and checks that DMA's advantage persists.
"""

import pytest

from repro.core.cost import shift_cost
from repro.core.policies import get_policy
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table

from _bench_utils import PROFILE, publish_text

POLICIES = ("AFD-OFU", "DMA-OFU", "DMA-SR")
PORTS = (1, 2, 4)


@pytest.fixture(scope="module")
def sequences():
    out = []
    for name in ("cc65", "jpeg", "gsm"):
        bench = load_benchmark(name, scale=PROFILE.suite_scale, seed=PROFILE.seed)
        out.append(max((t.sequence for t in bench.traces), key=len))
    return out


def test_port_count_ablation(benchmark, sequences):
    domains = 256

    def sweep():
        totals = {(p, ports): 0 for p in POLICIES for ports in PORTS}
        for seq in sequences:
            placements = {
                p: get_policy(p).place(seq, 4, domains) for p in POLICIES
            }
            for p, placement in placements.items():
                for ports in PORTS:
                    totals[(p, ports)] += shift_cost(
                        seq, placement, ports=ports, domains=domains
                    )
        return totals

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for ports in PORTS:
        row = [f"{ports} port(s)"]
        for p in POLICIES:
            row.append(totals[(p, ports)])
        rows.append(row)
    publish_text(
        "A-2 port-count ablation (total shifts, 4 DBCs)",
        format_table(["config", *POLICIES], rows),
    )

    for p in POLICIES:
        # More ports never cost more shifts for the same placement.
        per_port = [totals[(p, ports)] for ports in PORTS]
        assert all(a >= b for a, b in zip(per_port, per_port[1:])), (p, per_port)
    for ports in PORTS:
        # DMA-SR's advantage over AFD-OFU is port-count independent.
        assert totals[("DMA-SR", ports)] <= totals[("AFD-OFU", ports)], ports


def test_port_aware_intra_layouts(benchmark, sequences):
    """The adaptive port-aware layout never loses to dense SR, and wins
    on cluster-alternating traffic (see test_sparse_port_aware.py)."""
    from repro.core.intra import port_aware_layout, shifts_reduce_order
    from repro.core.placement import Placement
    domains = 256

    def sweep():
        dense_total = aware_total = 0
        for seq in sequences:
            vs = list(seq.variables)
            dense = Placement([shifts_reduce_order(seq, vs)])
            aware = Placement([port_aware_layout(seq, vs, domains, 4)])
            dense_total += shift_cost(seq, dense, ports=4, domains=domains)
            aware_total += shift_cost(seq, aware, ports=4, domains=domains)
        return dense_total, aware_total

    dense_total, aware_total = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish_text(
        "A-2 port-aware intra layout (single DBC, 4 ports, 256 domains)",
        f"dense SR: {dense_total} shifts\nport-aware: {aware_total} shifts",
    )
    assert aware_total <= dense_total
