"""E-F6 — Fig. 6: the DBC-count trade-off for DMA-SR.

Shape targets (paper): the area column rises monotonically with the DBC
count (ports dominate area); the shift/latency improvement factors over
AFD-OFU shrink as DBCs increase; on absolute energy the middle
configurations (4/8 DBCs) win — 2 DBCs drowns in shift energy, 16 DBCs
in leakage.
"""

import pytest

from repro.eval.experiments import experiment_fig6

from _bench_utils import PROFILE, publish


def test_fig6_tradeoff(benchmark, paper_matrix):
    result = benchmark.pedantic(
        lambda: experiment_fig6(PROFILE, matrix=paper_matrix),
        rounds=1, iterations=1,
    )
    publish(result, max_rows=None)

    from repro.eval.charts import render_series_chart
    from _bench_utils import publish_text
    dbc_counts = [str(row[0]) for row in result.rows]
    publish_text(
        "Fig. 6 as a chart (DMA-SR improvement factors; area vs 2 DBCs)",
        render_series_chart(
            ["shifts x", "latency x", "energy x", "area x"],
            {q: [row[i + 1] for i in range(4)]
             for q, row in zip(dbc_counts, result.rows)},
            width=36,
        ),
    )

    # Area ratios come straight from Table I and must match exactly.
    assert result.summary["area_x@2"] == pytest.approx(1.0)
    assert result.summary["area_x@4"] == pytest.approx(0.0186 / 0.0159)
    assert result.summary["area_x@8"] == pytest.approx(0.0226 / 0.0159)
    assert result.summary["area_x@16"] == pytest.approx(0.0279 / 0.0159)
    areas = [result.summary[f"area_x@{q}"] for q in (2, 4, 8, 16)]
    assert areas == sorted(areas)

    # DMA-SR improves shifts at every configuration, and the mid-range
    # configurations carry at least as much improvement as the extremes
    # (the shift problem gets less severe as variables spread out; on our
    # substituted suite the 2-DBC extreme is also structurally weak, see
    # EXPERIMENTS.md).
    shifts_x = [result.summary[f"shifts_x@{q}"] for q in (2, 4, 8, 16)]
    assert all(x >= 1.0 for x in shifts_x), shifts_x
    assert max(shifts_x[1], shifts_x[2]) >= shifts_x[0], shifts_x
    assert max(shifts_x[1], shifts_x[2]) >= shifts_x[3] * 0.95, shifts_x

    # The energy sweet spot is an interior configuration.
    assert result.summary["best_energy_dbcs"] in (4.0, 8.0)
