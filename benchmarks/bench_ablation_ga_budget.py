"""A-1 — ablation: GA budget sweep (convergence behaviour).

DESIGN.md calls out the GA's budget (mu = lambda = 100, 200 generations,
tournament of 4) as a design choice made 'to get best-effort results in
reasonable time'. This sweep shows the cost/quality trade-off and that
the heuristic seeding makes even tiny budgets competitive.
"""

import pytest

from repro.core.cost import shift_cost
from repro.core.ga import GAConfig, GeneticPlacer
from repro.core.policies import get_policy
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table

from _bench_utils import PROFILE, publish_text

BUDGETS = [
    ("seeds only", GAConfig(mu=16, lam=16, generations=0)),
    ("tiny", GAConfig(mu=16, lam=16, generations=5)),
    ("small", GAConfig(mu=16, lam=16, generations=20)),
    ("medium", GAConfig(mu=32, lam=32, generations=40)),
]


@pytest.fixture(scope="module")
def sequence():
    bench = load_benchmark("h263", scale=PROFILE.suite_scale, seed=PROFILE.seed)
    return max((t.sequence for t in bench.traces), key=len)


def test_ga_budget_sweep(benchmark, sequence):
    def sweep():
        rows = []
        for label, cfg in BUDGETS:
            result = GeneticPlacer(sequence, 4, 256, cfg, rng=11).run()
            rows.append(
                [label, cfg.generations, result.evaluations, result.cost]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    costs = [r[3] for r in rows]
    # More budget never hurts (mu+lambda keeps the best individual).
    assert all(a >= b for a, b in zip(costs, costs[1:])), costs
    # Even 'seeds only' is bounded by the best heuristic.
    sr = shift_cost(sequence, get_policy("DMA-SR").place(sequence, 4, 256))
    assert costs[0] <= sr
    publish_text(
        "A-1 GA budget sweep",
        format_table(
            ["budget", "generations", "evaluations", "shift cost"], rows
        ),
    )


def test_ga_convergence_history_monotone(benchmark, sequence):
    cfg = GAConfig(mu=16, lam=16, generations=25)

    def run():
        return GeneticPlacer(sequence, 4, 256, cfg, rng=3).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(a >= b for a, b in zip(result.history, result.history[1:]))
