"""A-1 — ablation: GA budget sweep (convergence behaviour).

DESIGN.md calls out the GA's budget (mu = lambda = 100, 200 generations,
tournament of 4) as a design choice made 'to get best-effort results in
reasonable time'. This sweep shows the cost/quality trade-off and that
the heuristic seeding makes even tiny budgets competitive.

Run as a script, the module additionally records the ``search_scale``
quality-per-wall-time sweep the ROADMAP asked for — how much extra
placement quality the scaled GA populations and RW iteration budgets
buy per unit wall time now that generation scoring is one batched
engine pass: ``PYTHONPATH=src python benchmarks/bench_ablation_ga_budget.py
--out BENCH_ga_budget.json``.
"""

import pytest

from repro.core.cost import shift_cost
from repro.core.ga import GAConfig, GeneticPlacer
from repro.core.policies import get_policy
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table

from _bench_utils import PROFILE, publish_text

BUDGETS = [
    ("seeds only", GAConfig(mu=16, lam=16, generations=0)),
    ("tiny", GAConfig(mu=16, lam=16, generations=5)),
    ("small", GAConfig(mu=16, lam=16, generations=20)),
    ("medium", GAConfig(mu=32, lam=32, generations=40)),
]


@pytest.fixture(scope="module")
def sequence():
    bench = load_benchmark("h263", scale=PROFILE.suite_scale, seed=PROFILE.seed)
    return max((t.sequence for t in bench.traces), key=len)


def test_ga_budget_sweep(benchmark, sequence):
    def sweep():
        rows = []
        for label, cfg in BUDGETS:
            result = GeneticPlacer(sequence, 4, 256, cfg, rng=11).run()
            rows.append(
                [label, cfg.generations, result.evaluations, result.cost]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    costs = [r[3] for r in rows]
    # More budget never hurts (mu+lambda keeps the best individual).
    assert all(a >= b for a, b in zip(costs, costs[1:])), costs
    # Even 'seeds only' is bounded by the best heuristic.
    sr = shift_cost(sequence, get_policy("DMA-SR").place(sequence, 4, 256))
    assert costs[0] <= sr
    publish_text(
        "A-1 GA budget sweep",
        format_table(
            ["budget", "generations", "evaluations", "shift cost"], rows
        ),
    )


def test_ga_convergence_history_monotone(benchmark, sequence):
    cfg = GAConfig(mu=16, lam=16, generations=25)

    def run():
        return GeneticPlacer(sequence, 4, 256, cfg, rng=3).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(a >= b for a, b in zip(result.history, result.history[1:]))


# ---------------------------------------------------------------------------
# search_scale quality-per-wall-time sweep (script mode, BENCH_ga_budget.json)
# ---------------------------------------------------------------------------

def _sweep_search_scale(scales, seeds, num_dbcs=4, capacity=256):
    """Cost and wall time of GA/RW at each ``search_scale`` multiplier.

    Budgets come from :func:`repro.eval.runner.policy_specs` on the
    active profile — the exact code path ``--search-scale`` exercises —
    and each scale runs every seed so the medians are not one lucky RNG
    stream.
    """
    import statistics
    import time
    from dataclasses import replace

    from repro.core.random_walk import random_walk_search
    from repro.eval.runner import policy_specs

    bench = load_benchmark("h263", scale=PROFILE.suite_scale, seed=PROFILE.seed)
    seq = max((t.sequence for t in bench.traces), key=len)
    rows = []
    for scale in scales:
        specs = dict(policy_specs(("GA", "RW"),
                                  replace(PROFILE, search_scale=scale)))
        ga_costs, ga_times, evaluations = [], [], []
        rw_costs, rw_times = [], []
        for seed in seeds:
            t0 = time.perf_counter()
            ga = GeneticPlacer(seq, num_dbcs, capacity,
                               GAConfig(**specs["GA"]), rng=seed).run()
            ga_times.append(time.perf_counter() - t0)
            ga_costs.append(ga.cost)
            evaluations.append(ga.evaluations)
            t0 = time.perf_counter()
            rw = random_walk_search(seq, num_dbcs, capacity,
                                    iterations=specs["RW"]["iterations"],
                                    rng=seed)
            rw_times.append(time.perf_counter() - t0)
            rw_costs.append(rw.cost)
        rows.append({
            "search_scale": scale,
            "ga": {
                "mu": specs["GA"].get("mu"),
                "lam": specs["GA"].get("lam"),
                "median_cost": statistics.median(ga_costs),
                "median_seconds": statistics.median(ga_times),
                "median_evaluations": statistics.median(evaluations),
            },
            "rw": {
                "iterations": specs["RW"]["iterations"],
                "median_cost": statistics.median(rw_costs),
                "median_seconds": statistics.median(rw_times),
            },
        })
    return seq, rows


def main(argv=None) -> int:
    import argparse
    import json
    import sys
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scales", type=float, nargs="+",
                        default=[0.5, 1.0, 2.0, 4.0, 8.0])
    parser.add_argument("--seeds", type=int, nargs="+", default=[7, 11, 23])
    parser.add_argument("--out", default="BENCH_ga_budget.json")
    args = parser.parse_args(argv)

    seq, rows = _sweep_search_scale(args.scales, args.seeds)
    # Improvements are quoted against scale 1.0 when swept, else the
    # smallest scale (rows arrive in --scales order, min is well-defined).
    base = next((r for r in rows if r["search_scale"] == 1.0),
                min(rows, key=lambda r: r["search_scale"]))
    for row in rows:
        # quality-per-wall-time: % cost improvement over scale 1.0 per
        # extra second of GA search (the ROADMAP's open question).
        d_cost = base["ga"]["median_cost"] - row["ga"]["median_cost"]
        d_time = row["ga"]["median_seconds"] - base["ga"]["median_seconds"]
        row["ga"]["improvement_vs_scale1_pct"] = (
            100.0 * d_cost / base["ga"]["median_cost"]
            if base["ga"]["median_cost"] else 0.0
        )
        row["ga"]["extra_seconds_vs_scale1"] = d_time
        print(f"scale {row['search_scale']:>4}: "
              f"GA mu={row['ga']['mu']:>4} cost={row['ga']['median_cost']:>6} "
              f"in {row['ga']['median_seconds']:.2f}s "
              f"({row['ga']['improvement_vs_scale1_pct']:+.2f}% vs x1) | "
              f"RW {row['rw']['iterations']:>6} iters "
              f"cost={row['rw']['median_cost']:>6} "
              f"in {row['rw']['median_seconds']:.2f}s")

    payload = {
        "benchmark": "ga_budget_search_scale",
        "profile": PROFILE.name,
        "sequence": {"name": seq.name, "accesses": len(seq),
                     "variables": seq.num_variables},
        "seeds": args.seeds,
        "results": rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
