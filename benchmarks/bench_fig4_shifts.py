"""E-F4 — Fig. 4: shift cost of all six policies, normalized to GA.

The expensive part (the full benchmark x configuration x policy matrix)
is computed once per session in the ``paper_matrix`` fixture; the timed
kernels here are (a) the Fig. 4 aggregation and (b) one representative
placement each for the heuristic and search policies.

Shape targets (paper): DMA-OFU multi-x better than AFD-OFU, DMA-Chen and
DMA-SR further ahead, GA best, RW far behind GA, gains shrinking as the
DBC count grows.
"""

import pytest

from repro.core.policies import get_policy
from repro.eval.experiments import experiment_fig4
from repro.trace.generators.offsetstone import load_benchmark

from _bench_utils import PROFILE, publish


def test_fig4_aggregation(benchmark, paper_matrix):
    result = benchmark.pedantic(
        lambda: experiment_fig4(PROFILE, matrix=paper_matrix),
        rounds=1, iterations=1,
    )
    publish(result, max_rows=16)

    dbc_counts = sorted({k[2] for k in paper_matrix})
    # GA is the normalization reference.
    for q in dbc_counts:
        assert result.summary[f"norm_GA@{q}"] == pytest.approx(1.0)
    # The headline ordering of Fig. 4 (suite-level geomeans).
    for q in dbc_counts:
        afd = result.summary[f"norm_AFD-OFU@{q}"]
        dma = result.summary[f"norm_DMA-OFU@{q}"]
        sr = result.summary[f"norm_DMA-SR@{q}"]
        rw = result.summary[f"norm_RW@{q}"]
        assert sr <= dma * 1.02, f"DMA-SR should lead DMA-OFU at {q} DBCs"
        assert sr <= afd, f"DMA-SR should beat AFD-OFU at {q} DBCs"
        assert rw > 1.0, f"RW should trail GA at {q} DBCs"
    # DMA's advantage over AFD must be visible on mid-size configurations.
    assert max(
        result.summary[f"dma_vs_afd_x@{q}"] for q in dbc_counts
    ) > 1.1


def test_fig4_rw_never_beats_ga(paper_matrix, benchmark):
    def check():
        violations = 0
        for (bench, policy, q), cell in paper_matrix.items():
            if policy == "RW":
                ga = paper_matrix[(bench, "GA", q)].shifts
                if cell.shifts < ga:
                    violations += 1
        return violations

    violations = benchmark.pedantic(check, rounds=1, iterations=1)
    # GA is seeded with the heuristics, so RW (uniform random) should
    # essentially never win; tolerate noise on degenerate tiny cells.
    assert violations <= len(paper_matrix) * 0.02


@pytest.mark.parametrize("policy_name", ["AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR"])
def test_heuristic_placement_kernel(benchmark, policy_name):
    """Wall-time of one placement on a mid-size program sequence."""
    bench = load_benchmark("jpeg", scale=PROFILE.suite_scale, seed=PROFILE.seed)
    seq = max((t.sequence for t in bench.traces), key=len)
    policy = get_policy(policy_name)
    placement = benchmark(lambda: policy.place(seq, 4, 256))
    placement.validate_for(seq, num_dbcs=4, capacity=256)


def test_search_placement_kernel(benchmark):
    """Wall-time of the GA at the profile's budget on one sequence."""
    bench = load_benchmark("dct", scale=PROFILE.suite_scale, seed=PROFILE.seed)
    seq = max((t.sequence for t in bench.traces), key=len)
    ga = get_policy("GA", **PROFILE.ga_options)
    placement = benchmark.pedantic(
        lambda: ga.place(seq, 4, 256, rng=1), rounds=1, iterations=1
    )
    placement.validate_for(seq, num_dbcs=4, capacity=256)
