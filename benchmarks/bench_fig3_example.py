"""E-F3 — the worked example of Fig. 3, end to end.

Timed kernel: the full AFD + Algorithm 1 walk-through on the paper's
9-variable sequence. The assertions lock the published numbers: AFD
costs 39 = 24 + 15 with the exact {a,g,b,d,h} / {e,i,c,f} assignment and
Algorithm 1 extracts Vdj = {b,c,d,e,h} with frequency sum 11.
"""

from repro.eval.experiments import experiment_fig3

from _bench_utils import publish


def test_fig3_worked_example(benchmark):
    result = benchmark(experiment_fig3)
    assert result.summary["afd_total"] == 39
    assert result.summary["afd_s0"] == 24
    assert result.summary["afd_s1"] == 15
    assert result.summary["vdj_freq_sum"] == 11
    # Algorithm 1 verbatim beats the figure's hand ordering by one shift.
    assert result.summary["dma_total"] == 10
    assert result.summary["improvement_x"] >= 3.54
    publish(result)
