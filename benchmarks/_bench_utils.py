"""Helpers shared by the benchmark harness files.

Rendered artifacts are written to ``results/`` and queued so the
``pytest_terminal_summary`` hook (in ``conftest.py``) can echo them into
the benchmark log. :class:`RssSampler` adds ``psutil``-free peak-memory
observation (parent + descendant workers) for the parallel benches.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.eval.profiles import profile_from_env
from repro.eval.reporting import render_experiment, save_experiment

RESULTS_DIR = Path(
    os.environ.get(
        "REPRO_RESULTS_DIR",
        str(Path(__file__).resolve().parent.parent / "results"),
    )
)

#: Reports queued for the terminal summary.
REPORTS: list[str] = []

#: The profile every benchmark runs under (REPRO_PROFILE, default quick).
PROFILE = profile_from_env()


def publish(result, max_rows: int | None = 12) -> None:
    """Archive an experiment result and queue it for the terminal summary."""
    save_experiment(result, results_dir=RESULTS_DIR)
    REPORTS.append(render_experiment(result, max_rows=max_rows))


def publish_text(title: str, text: str) -> None:
    """Archive free-form text (ablation summaries) and queue it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-").replace(":", "")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n", encoding="utf-8")
    REPORTS.append(f"{title}\n{text}")


# -- psutil-free RSS sampling -------------------------------------------------


def _read_rss_kib(pid: int) -> int:
    """Current resident memory of ``pid`` in KiB via ``/proc``.

    Prefers PSS (proportional set size, from ``smaps_rollup``): shared
    pages — a forked worker's copy-on-write image, shared-memory arena
    mappings — are divided among the processes mapping them, so summing
    over a process tree counts each physical page once. Plain ``VmRSS``
    counts the same shared page in *every* worker, which made the
    shared-arena configuration look ~20% heavier than pickled workers
    when it actually maps strictly less physical memory. Falls back to
    VmRSS where ``smaps_rollup`` is unavailable (old kernels, no
    ``/proc``), and to 0 when the process is gone.
    """
    try:
        with open(f"/proc/{pid}/smaps_rollup", "rb") as fh:
            for line in fh:
                if line.startswith(b"Pss:"):
                    return int(line.split()[1])
    except OSError:
        pass
    try:
        with open(f"/proc/{pid}/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _descendant_pids(pid: int) -> list[int]:
    """All live descendants of ``pid`` through ``/proc/*/task/*/children``."""
    out: list[int] = []
    frontier = [pid]
    while frontier:
        parent = frontier.pop()
        try:
            with open(
                f"/proc/{parent}/task/{parent}/children", "rb"
            ) as fh:
                kids = [int(tok) for tok in fh.read().split()]
        except OSError:
            continue
        out.extend(kids)
        frontier.extend(kids)
    return out


class RssSampler:
    """Peak resident memory of this process tree, sampled from ``/proc``.

    ``psutil``-free: a daemon thread sums PSS (VmRSS where unavailable,
    see :func:`_read_rss_kib`) over the parent and every live
    descendant (pool workers included) a few times per second.
    ``peak_mib`` is the largest sum observed — an *observed* peak, not
    an exact high-water mark, which is plenty to make the zero-copy
    claim measurable: pickled-suite workers each carry their own copy
    of the arrays, shared-arena workers map one, and PSS attributes
    every physical page exactly once across the tree. On platforms
    without ``/proc`` the sampler degrades to reporting 0 rather than
    failing the bench.

    Use as a context manager around the timed region::

        with RssSampler() as mem:
            run_matrix(...)
        print(mem.peak_mib)
    """

    def __init__(self, interval_s: float = 0.05):
        self._interval = interval_s
        self._pid = os.getpid()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.peak_kib = 0

    def _sample_once(self) -> int:
        total = _read_rss_kib(self._pid)
        for pid in _descendant_pids(self._pid):
            total += _read_rss_kib(pid)
        return total

    def _run(self) -> None:
        while not self._stop.is_set():
            self.peak_kib = max(self.peak_kib, self._sample_once())
            time.sleep(self._interval)
        self.peak_kib = max(self.peak_kib, self._sample_once())

    def __enter__(self) -> "RssSampler":
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def peak_mib(self) -> float:
        return self.peak_kib / 1024.0
