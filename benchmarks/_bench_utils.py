"""Helpers shared by the benchmark harness files.

Rendered artifacts are written to ``results/`` and queued so the
``pytest_terminal_summary`` hook (in ``conftest.py``) can echo them into
the benchmark log.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.eval.profiles import profile_from_env
from repro.eval.reporting import render_experiment, save_experiment

RESULTS_DIR = Path(
    os.environ.get(
        "REPRO_RESULTS_DIR",
        str(Path(__file__).resolve().parent.parent / "results"),
    )
)

#: Reports queued for the terminal summary.
REPORTS: list[str] = []

#: The profile every benchmark runs under (REPRO_PROFILE, default quick).
PROFILE = profile_from_env()


def publish(result, max_rows: int | None = 12) -> None:
    """Archive an experiment result and queue it for the terminal summary."""
    save_experiment(result, results_dir=RESULTS_DIR)
    REPORTS.append(render_experiment(result, max_rows=max_rows))


def publish_text(title: str, text: str) -> None:
    """Archive free-form text (ablation summaries) and queue it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-").replace(":", "")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n", encoding="utf-8")
    REPORTS.append(f"{title}\n{text}")
