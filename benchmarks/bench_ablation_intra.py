"""A-3 — ablation: intra-DBC heuristic interplay on a fixed inter split.

Sec. IV-B argues the DMA distribution 'provides a promising base for the
Chen and ShiftsReduce heuristics'. Here the inter-DBC split is held
fixed (DMA) while the intra-DBC optimizer varies over OFU / Chen / SR /
TSP, plus the exact DP on instances small enough to certify.
"""

from repro.core.cost import shift_cost
from repro.core.intra import (
    chen_order,
    ofu_order,
    optimal_order,
    pyramid_order,
    shifts_reduce_order,
    tsp_order,
)
from repro.core.inter.dma import dma_placement
from repro.core.placement import Placement
from repro.trace.generators.offsetstone import load_benchmark
from repro.trace.generators.synthetic import zipf_sequence
from repro.util.tables import format_table

from _bench_utils import PROFILE, publish_text

INTRA = [
    ("Pyramid", pyramid_order),  # adjacency-blind frequency reference
    ("OFU", ofu_order),
    ("Chen", chen_order),
    ("SR", shifts_reduce_order),
    ("TSP", tsp_order),
]


def test_intra_interplay_on_dma_base(benchmark):
    names = ("bison", "h263", "gzip", "dspstone")

    def sweep():
        totals = {label: 0 for label, _ in INTRA}
        for name in names:
            bench = load_benchmark(
                name, scale=PROFILE.suite_scale, seed=PROFILE.seed
            )
            for trace in bench.traces:
                seq = trace.sequence
                for label, intra in INTRA:
                    placement = dma_placement(seq, 4, 256, intra=intra)
                    totals[label] += shift_cost(seq, placement)
        return totals

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish_text(
        "A-3 intra-DBC interplay on the DMA split (total shifts, 4 DBCs)",
        format_table(
            ["intra heuristic", "total shifts"],
            [[label, totals[label]] for label, _ in INTRA],
        ),
    )
    # The paper's ordering: optimized intra never loses to plain OFU.
    assert totals["SR"] <= totals["OFU"]
    assert totals["Chen"] <= totals["OFU"] * 1.05


def test_heuristics_vs_exact_dp_on_small_dbcs(benchmark):
    """Certify intra heuristics against the exact DP (<= 12 variables)."""
    seqs = [zipf_sequence(10, 80, alpha=1.2, locality=0.2, rng=s)
            for s in range(6)]

    def measure():
        gaps = []
        for seq in seqs:
            variables = list(seq.variables)
            best = shift_cost(
                seq, Placement([optimal_order(seq, variables)])
            )
            sr = shift_cost(
                seq, Placement([shifts_reduce_order(seq, variables)])
            )
            gaps.append((sr + 1) / (best + 1))
        return gaps

    gaps = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert all(g >= 1.0 for g in gaps)
    assert sum(gaps) / len(gaps) < 2.0  # SR stays near-optimal on average
