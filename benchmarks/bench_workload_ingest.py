"""Workload-layer throughput gate: ingestion and registry resolution.

Three measurements, each gated as a conservative non-regression floor:

* **ingest** — parse a 200k-line raw address trace and map it to a
  placement trace through the geometry (word grouping, hot/cold
  filtering, working-set capping). Gate: >= 50k accesses/s (measured
  ~10x that; the floor flags an accidental per-line quadratic, not
  machine noise).
* **roundtrip** — render the ingested trace to the native format and
  parse it back, asserting identity. Gate: >= 50k accesses/s.
* **resolve** — resolve the smoke suite through the workload registry
  and compare against the direct suite loader. Gates: bit-identical
  fingerprints, and registry overhead <= 25% (it should be ~0: the
  registry adds one parse + RNG spawn per spec).

Usage: ``PYTHONPATH=src python benchmarks/bench_workload_ingest.py
--out BENCH_workloads.json`` (CI runs exactly this).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.eval.profiles import SMOKE_PROFILE
from repro.trace.generators.offsetstone import load_benchmark
from repro.trace.io import parse_traces, read_address_trace, render_traces
from repro.workloads import (
    WorkloadContext,
    resolve_workloads,
    workload_fingerprint,
)

ACCESSES = 200_000
WORDS = 1_024


def _write_address_trace(path: Path, accesses: int) -> None:
    rng = np.random.default_rng(42)
    # Zipf-flavoured hot set over WORDS words at byte granularity.
    ranks = rng.zipf(1.3, size=accesses) % WORDS
    addrs = 0x10_000 + ranks * 4
    ops = np.where(rng.random(accesses) < 0.3, "W", "R")
    with open(path, "w", encoding="utf-8") as f:
        f.write("# synthetic gem5-style trace\n")
        for i in range(accesses):
            f.write(f"{1000 + i}: {ops[i]} 0x{addrs[i]:x} 4\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=ACCESSES)
    parser.add_argument("--min-ingest-rate", type=float, default=50_000,
                        help="fail below this many ingested accesses/s "
                             "(0 disables)")
    parser.add_argument("--min-roundtrip-rate", type=float, default=50_000,
                        help="fail below this many round-tripped accesses/s "
                             "(0 disables)")
    parser.add_argument("--max-resolve-overhead", type=float, default=1.25,
                        help="fail when registry resolution exceeds this "
                             "multiple of the direct loader (0 disables)")
    parser.add_argument("--out", default="BENCH_workloads.json")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "app.atrc"
        _write_address_trace(trace_path, args.accesses)

        t0 = time.perf_counter()
        trace = read_address_trace(trace_path, max_vars=512, min_count=2)
        ingest_s = time.perf_counter() - t0
        ingest_rate = args.accesses / ingest_s

        t0 = time.perf_counter()
        text = render_traces([trace])
        (back,) = parse_traces(text)
        roundtrip_s = time.perf_counter() - t0
        roundtrip_rate = len(trace) / roundtrip_s
        if back != trace:
            print("FAIL: render/parse round-trip not identical",
                  file=sys.stderr)
            return 1

    ctx = WorkloadContext.from_profile(SMOKE_PROFILE)
    names = SMOKE_PROFILE.benchmarks
    direct_s = resolve_s = float("inf")
    for _ in range(3):  # best-of-3: the baselines are milliseconds
        t0 = time.perf_counter()
        direct = [
            load_benchmark(n, scale=ctx.scale, seed=ctx.seed,
                           write_ratio=ctx.write_ratio)
            for n in names
        ]
        direct_s = min(direct_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        resolved = resolve_workloads(names, ctx)
        resolve_s = min(resolve_s, time.perf_counter() - t0)
    identical = (
        [workload_fingerprint(p) for p in direct]
        == [workload_fingerprint(p) for p in resolved]
    )
    overhead = resolve_s / direct_s if direct_s else 1.0

    payload = {
        "benchmark": "workload_ingest",
        "accesses": args.accesses,
        "ingest": {"seconds": ingest_s, "rate_per_s": ingest_rate,
                   "kept_vars": trace.sequence.num_variables,
                   "kept_accesses": len(trace)},
        "roundtrip": {"seconds": roundtrip_s, "rate_per_s": roundtrip_rate},
        "resolve": {"suite": list(names), "direct_s": direct_s,
                    "registry_s": resolve_s, "overhead_x": overhead,
                    "bit_identical": identical},
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"ingest:    {args.accesses} accesses in {ingest_s:.2f}s "
          f"({ingest_rate:,.0f}/s; kept {trace.sequence.num_variables} vars, "
          f"{len(trace)} accesses)")
    print(f"roundtrip: {len(trace)} accesses in {roundtrip_s:.2f}s "
          f"({roundtrip_rate:,.0f}/s)")
    print(f"resolve:   {len(names)} specs, direct {direct_s:.3f}s vs "
          f"registry {resolve_s:.3f}s ({overhead:.2f}x, "
          f"bit_identical={identical})")
    print(f"wrote {out}")

    if not identical:
        print("FAIL: registry suite differs from the direct loader",
              file=sys.stderr)
        return 1
    if args.min_ingest_rate and ingest_rate < args.min_ingest_rate:
        print(f"FAIL: ingest rate {ingest_rate:,.0f}/s < required "
              f"{args.min_ingest_rate:,.0f}/s", file=sys.stderr)
        return 1
    if args.min_roundtrip_rate and roundtrip_rate < args.min_roundtrip_rate:
        print(f"FAIL: roundtrip rate {roundtrip_rate:,.0f}/s < required "
              f"{args.min_roundtrip_rate:,.0f}/s", file=sys.stderr)
        return 1
    if args.max_resolve_overhead and overhead > args.max_resolve_overhead:
        print(f"FAIL: registry overhead {overhead:.2f}x > allowed "
              f"{args.max_resolve_overhead:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
