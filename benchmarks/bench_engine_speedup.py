#!/usr/bin/env python
"""Micro-benchmark: shift-engine backend throughput (accesses/sec).

Runs the reference (per-access Python) and numpy (batched vectorized)
backends on identical randomized traces and reports throughput per
backend plus the numpy-over-reference speedup, as JSON
(``BENCH_engine.json`` by default) so the performance trajectory is
tracked from PR to PR.

``--backends`` widens the comparison to any registered backend (for
example ``numba`` when the ``compiled`` extra is installed): the legacy
``results`` rows keep their exact reference+numpy shape, and a
``backends`` list adds one row per (ports, backend) with throughput and
speedup over reference. The reference backend is always timed — it is
the denominator — whether or not it is listed.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py
    PYTHONPATH=src python benchmarks/bench_engine_speedup.py \
        --accesses 1000000 --ports 1 2 4 --out results/BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_engine_speedup.py \
        --backends numpy numba

The acceptance bar of the engine PR: >= 10x accesses/sec on a
100k-access trace (single port); the script exits non-zero below
``--min-speedup`` so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import ShiftRequest, available_backends, get_backend


def make_request(accesses: int, num_dbcs: int, domains: int, ports: int,
                 seed: int) -> ShiftRequest:
    rng = np.random.default_rng(seed)
    return ShiftRequest(
        dbc=rng.integers(0, num_dbcs, accesses),
        slot=rng.integers(0, domains, accesses),
        num_dbcs=num_dbcs,
        domains=domains,
        ports=ports,
    )


def time_backend(backend, request: ShiftRequest, repeats: int) -> float:
    """Best-of-``repeats`` wall time for one request (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        backend.run(request)
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=100_000)
    parser.add_argument("--dbcs", type=int, default=8)
    parser.add_argument("--domains", type=int, default=128)
    parser.add_argument("--ports", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail below this numpy/reference ratio on the "
                             "single-port case (0 disables)")
    parser.add_argument("--backends", nargs="+", default=None,
                        help="registered backend names to time (default: "
                             "all registered); reference is always timed "
                             "as the denominator")
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    reference = get_backend("reference")
    vectorized = get_backend("numpy")
    # Dedupe by .name, reference first: it anchors every speedup column.
    contenders: dict[str, object] = {reference.name: reference}
    for name in (args.backends or available_backends()):
        backend = get_backend(name)
        contenders.setdefault(backend.name, backend)
    rows = []
    backend_rows = []
    gate_speedup = None
    for ports in args.ports:
        request = make_request(args.accesses, args.dbcs, args.domains,
                               ports, args.seed)
        # Cross-check while we are here: the numbers being compared must
        # be the *same* numbers.
        expected = reference.run(request).shifts
        assert vectorized.run(request).shifts == expected
        t_ref = time_backend(reference, request, args.repeats)
        t_vec = time_backend(vectorized, request, args.repeats)
        row = {
            "ports": ports,
            "reference_s": t_ref,
            "numpy_s": t_vec,
            "reference_accesses_per_s": args.accesses / t_ref,
            "numpy_accesses_per_s": args.accesses / t_vec,
            "speedup": t_ref / t_vec,
        }
        rows.append(row)
        if ports == 1:
            gate_speedup = row["speedup"]
        print(f"ports={ports}: reference {row['reference_accesses_per_s']:,.0f} acc/s, "
              f"numpy {row['numpy_accesses_per_s']:,.0f} acc/s, "
              f"speedup {row['speedup']:.1f}x")
        for backend in contenders.values():
            if backend.name == reference.name:
                seconds = t_ref
            elif backend.name == vectorized.name:
                seconds = t_vec
            else:
                assert backend.run(request).shifts == expected
                seconds = time_backend(backend, request, args.repeats)
                print(f"ports={ports}: {backend.name} "
                      f"{args.accesses / seconds:,.0f} acc/s, "
                      f"speedup {t_ref / seconds:.1f}x")
            backend_rows.append({
                "ports": ports,
                "backend": backend.name,
                "seconds": seconds,
                "accesses_per_s": args.accesses / seconds,
                "speedup_vs_reference": t_ref / seconds,
            })

    payload = {
        "benchmark": "engine_backend_throughput",
        "accesses": args.accesses,
        "dbcs": args.dbcs,
        "domains": args.domains,
        "repeats": args.repeats,
        "results": rows,
        "backends": backend_rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    if args.min_speedup and gate_speedup is not None \
            and gate_speedup < args.min_speedup:
        print(f"FAIL: single-port speedup {gate_speedup:.1f}x "
              f"< required {args.min_speedup}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
