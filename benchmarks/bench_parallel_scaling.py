#!/usr/bin/env python
"""Benchmark: matrix-runner scaling with pool workers and shared traces.

The zero-copy shared-trace arena (``SharedTraceArena``) exists so that
``--workers N`` scales wall time without multiplying memory: workers
attach read-only shared-memory views of the compiled traces instead of
each receiving a pickled copy of the suite. This bench makes both
claims observable on a large external workload:

* **scaling** — one (program x config x policy) matrix over a ~1M-access
  ``file:`` workload at ``--workers 1`` vs ``--workers 4`` (shared
  traces on). Gated: workers=4 must be ``--min-speedup`` (default 2.5x)
  faster than workers=1. The gate needs real parallelism, so it arms
  only when the machine has at least as many cores as workers; below
  that the row is recorded with ``gated: false`` and the reason.
* **bit-identity** — the workers=4 matrix with the arena on vs off must
  produce identical cells (always enforced; the arena only changes
  where bytes live, never any number).
* **hygiene** — no shared-memory segments may survive a normal matrix
  exit *or* an injected worker crash (always enforced; the arena's
  lifecycle is parent-owned with an ``atexit`` guard).

Peak resident memory (parent + every pool worker, summed) is sampled
``psutil``-free from ``/proc`` for each run and recorded in the JSON so
the zero-copy claim is a number, not an assertion.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \
        --accesses 2000000 --out results/BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import glob
import json
import multiprocessing
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench_utils import RssSampler  # noqa: E402

from repro.engine.compile import SharedTraceArena  # noqa: E402
from repro.eval.profiles import QUICK_PROFILE  # noqa: E402
from repro.eval.runner import clear_cell_cache, run_matrix  # noqa: E402
from repro.rtm.geometry import RTMConfig  # noqa: E402
from repro.workloads import WorkloadContext, resolve_workloads  # noqa: E402

#: Deterministic heuristic policies of comparable per-cell cost: the
#: pool's load stays balanced, so the speedup gate measures the runner,
#: not scheduling luck.
POLICIES = ("AFD", "AFD-SR", "DMA", "DMA-SR")


def shm_segments() -> set[str]:
    """Names currently present under /dev/shm (empty off-Linux)."""
    return set(glob.glob("/dev/shm/*"))


def write_address_trace(path: Path, accesses: int, seed: int) -> None:
    """A deterministic gem5-style raw address trace with a hot working set."""
    rng = np.random.default_rng(seed)
    words = 96
    ranks = np.arange(1, words + 1, dtype=np.float64)
    probs = 1.0 / ranks**1.1
    probs /= probs.sum()
    idx = rng.choice(words, size=accesses, p=probs)
    addrs = 0x1000 + 8 * idx
    with path.open("w", encoding="utf-8") as fh:
        fh.write("\n".join(f"0x{a:x}" for a in addrs))
        fh.write("\n")


def resolve_program(trace_file: Path):
    """Resolve the trace file through the registry, exactly as users do."""
    spec = f"file:{trace_file},word=8,max_vars=64,min_count=2"
    ctx = WorkloadContext.from_profile(QUICK_PROFILE)
    return resolve_workloads((spec,), ctx)


def timed_matrix(programs, configs, workers: int, shared: bool):
    """One cold matrix run; returns (results, wall_s, peak_rss_mib)."""
    clear_cell_cache()
    with RssSampler() as mem:
        start = time.perf_counter()
        results = run_matrix(
            POLICIES, QUICK_PROFILE, configs=configs, programs=programs,
            workers=workers, use_cache=False, shared_traces=shared,
        )
        wall = time.perf_counter() - start
    return results, wall, mem.peak_mib


def identical(a, b) -> bool:
    return set(a) == set(b) and all(
        a[k].shifts == b[k].shifts and a[k].report == b[k].report for k in a
    )


def _attach_and_die(spec) -> None:  # pragma: no cover - child process body
    SharedTraceArena.attach(spec)
    os._exit(1)  # simulated crash: no cleanup, no atexit


def crash_leak_check(programs) -> bool:
    """Inject a worker crash mid-attachment; the segment must still die.

    A child attaches to a live arena and exits hard (``os._exit``) —
    the moral equivalent of a pool worker being OOM-killed. Ownership
    stays with the parent, so dispose() must still remove the segment.
    """
    before = shm_segments()
    arena = SharedTraceArena.create(programs)
    try:
        ctx = multiprocessing.get_context()
        proc = ctx.Process(target=_attach_and_die, args=(arena.spec,))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == 1
    finally:
        arena.dispose()
    return shm_segments() == before


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=1_200_000,
                        help="length of the generated raw address trace "
                             "(cold-word filtering trims a few percent; the "
                             "default keeps the resolved workload over 1M)")
    parser.add_argument("--workers", type=int, nargs=2, default=[1, 4],
                        metavar=("LOW", "HIGH"),
                        help="the two worker counts to compare")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="gate: HIGH-workers speedup over LOW "
                             "(0 disables; auto-skipped below HIGH cores)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    low, high = args.workers
    configs = [
        RTMConfig(dbcs=16, tracks_per_dbc=1, domains_per_track=64,
                  ports_per_track=2),
        RTMConfig(dbcs=16, tracks_per_dbc=1, domains_per_track=64,
                  ports_per_track=4),
    ]

    baseline_segments = shm_segments()
    with tempfile.TemporaryDirectory(prefix="bench_parallel_") as tmp:
        trace_file = Path(tmp) / "addresses.trc"
        write_address_trace(trace_file, args.accesses, args.seed)
        programs = resolve_program(trace_file)
        accesses = sum(len(t) for p in programs for t in p.traces)
        cells = len(programs) * len(configs) * len(POLICIES)
        print(f"workload: {accesses:,} accesses, {cells} matrix cells")

        r_low, t_low, rss_low = timed_matrix(programs, configs, low, True)
        print(f"workers={low} shared: {t_low:.2f}s, peak {rss_low:.0f} MiB")
        r_high, t_high, rss_high = timed_matrix(programs, configs, high, True)
        print(f"workers={high} shared: {t_high:.2f}s, peak {rss_high:.0f} MiB")
        r_off, t_off, rss_off = timed_matrix(programs, configs, high, False)
        print(f"workers={high} pickled: {t_off:.2f}s, peak {rss_off:.0f} MiB")

        bit_identical = identical(r_low, r_high) and identical(r_high, r_off)
        no_leak = shm_segments() == baseline_segments
        crash_ok = crash_leak_check(programs)

    speedup = t_low / t_high
    cores = os.cpu_count() or 1
    gate_armed = bool(args.min_speedup) and cores >= high
    gate_reason = (
        "armed" if gate_armed else
        f"skipped: {cores} core(s) < {high} workers"
        if args.min_speedup else "disabled"
    )
    rows = [
        {"mode": "matrix", "workers": low, "shared_traces": True,
         "wall_s": t_low, "peak_rss_mib": rss_low},
        {"mode": "matrix", "workers": high, "shared_traces": True,
         "wall_s": t_high, "peak_rss_mib": rss_high,
         "speedup_vs_serial": speedup, "gated": gate_armed,
         "gate_reason": gate_reason},
        {"mode": "matrix", "workers": high, "shared_traces": False,
         "wall_s": t_off, "peak_rss_mib": rss_off},
    ]
    payload = {
        "benchmark": "parallel_scaling",
        "generated_accesses": args.accesses,
        "accesses": accesses,
        "cells": cells,
        "policies": list(POLICIES),
        "cores": cores,
        "results": rows,
        "checks": {
            "bit_identical_shm_on_off": bit_identical,
            "no_leaked_segments": no_leak,
            "no_leak_after_worker_crash": crash_ok,
        },
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    failures = []
    if not bit_identical:
        failures.append("shm-on vs shm-off results differ")
    if not no_leak:
        failures.append("shared-memory segments leaked after matrix exit")
    if not crash_ok:
        failures.append("shared-memory segment leaked after worker crash")
    if gate_armed and speedup < args.min_speedup:
        failures.append(
            f"workers={high} speedup {speedup:.2f}x < {args.min_speedup}x"
        )
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"speedup {speedup:.2f}x ({gate_reason}); all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
