"""E-S4C — Sec. IV-C's quoted latency improvements over AFD-OFU.

Shape targets (paper): DMA-OFU improves latency by ~50/50/33/10 % for
2/4/8/16 DBCs, with DMA-Chen and DMA-SR each adding a few points on top,
and all three fading as the DBC count grows.
"""

from repro.eval.experiments import experiment_sec4c

from _bench_utils import PROFILE, publish


def test_sec4c_latency_improvements(benchmark, paper_matrix):
    result = benchmark.pedantic(
        lambda: experiment_sec4c(PROFILE, matrix=paper_matrix),
        rounds=1, iterations=1,
    )
    publish(result, max_rows=None)

    dbc_counts = sorted({k[2] for k in paper_matrix})
    for q in dbc_counts:
        ofu = result.summary[f"dma_ofu_latency_pct@{q}"]
        chen = result.summary[f"dma_chen_latency_pct@{q}"]
        sr = result.summary[f"dma_sr_latency_pct@{q}"]
        # The intra-optimized variants must not lose latency vs DMA-OFU.
        assert chen >= ofu - 3.0
        assert sr >= ofu - 3.0
    # Latency gains must be clearly positive somewhere in the sweep.
    assert max(
        result.summary[f"dma_sr_latency_pct@{q}"] for q in dbc_counts
    ) > 5.0
