"""A-5 — scaling: placement wall-time vs trace size.

The paper positions DMA as a 'fast heuristic' fit for compilers
(Sec. III, 'Practicality in compilers demands fast-executing
heuristics'). These kernels time each heuristic against growing traces
so regressions in asymptotic behaviour show up as benchmark deltas.
"""

import pytest

from repro.core.policies import get_policy
from repro.trace.generators.synthetic import sliding_window_sequence

SIZES = {
    "small": (40, 400),
    "medium": (120, 1500),
    "large": (300, 3640),  # the suite's published maximum length
}


def _sequence(size):
    num_vars, length = SIZES[size]
    return sliding_window_sequence(
        num_vars, length, window=5, locality=0.4, shared_vars=6,
        shared_ratio=0.15, revisit=0.12, rng=42,
    )


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.parametrize("policy_name", ["AFD-OFU", "DMA-OFU", "DMA-SR"])
def test_placement_scaling(benchmark, policy_name, size):
    seq = _sequence(size)
    policy = get_policy(policy_name)
    placement = benchmark(lambda: policy.place(seq, 8, 128))
    placement.validate_for(seq, num_dbcs=8, capacity=128)


@pytest.mark.parametrize("size", ["small", "medium"])
def test_cost_evaluation_scaling(benchmark, size):
    """The analytic cost model is the GA's inner loop; it must stay fast."""
    from repro.core.cost import shift_cost
    seq = _sequence(size)
    placement = get_policy("DMA-SR").place(seq, 8, 128)
    cost = benchmark(lambda: shift_cost(seq, placement))
    assert cost >= 0


def test_simulation_scaling(benchmark):
    from repro.rtm.geometry import iso_capacity_sweep
    from repro.rtm.sim import simulate
    from repro.trace.trace import MemoryTrace
    seq = _sequence("medium")
    trace = MemoryTrace(seq)
    config = [c for c in iso_capacity_sweep() if c.dbcs == 8][0]
    placement = get_policy("DMA-SR").place(seq, 8, config.locations_per_dbc)
    report = benchmark(lambda: simulate(trace, placement, config))
    assert report.shifts >= 0
