#!/usr/bin/env python
"""Micro-benchmark: the multi-port fast path (2-D monoid scan).

PR 1's engine left multi-port nearest-port replay at 2.6-4.3x over the
reference backend (vs ~17x single-port), and ``evaluate_batch`` scored
nearest-port populations one row at a time. The multi-port tentpole
closed both gaps; this benchmark tracks them:

* **replay** — 1-D trace replay per port count: reference (per-access
  Python) vs numpy (per-gap transition tables + blocked monoid scan).
  Gated at ``--min-replay-speedup`` (default 8x) for the gate ports
  (default 2, 4 and 8 — narrow ports run the packed-table scan, 8
  ports the constant-collapse state chase, all gated alike since the
  collapse scan closed the wide-port gap).
* **population** — nearest-port ``evaluate_batch`` over a GA-sized
  candidate matrix vs the retired per-row fallback (one 1-D engine run
  per candidate, reconstructed here as the baseline). Gated at
  ``--min-batch-speedup`` (default 5x) at ``--population`` candidates.

Every timed pair is first checked *bit-identical* — against the
reference backend, not just between the two timed paths — so the
speedups always compare the same numbers. Results go to
``BENCH_multiport.json`` for the PR-to-PR trajectory; non-zero exit on
a missed gate lets CI enforce it.

Usage::

    PYTHONPATH=src python benchmarks/bench_multiport.py
    PYTHONPATH=src python benchmarks/bench_multiport.py \
        --ports 2 4 8 --population 200 --out results/BENCH_multiport.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import ShiftRequest, evaluate_batch, get_backend
from repro.engine.numpy_backend import NumpyBackend


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def replay_rows(args) -> list[dict]:
    reference = get_backend("reference")
    vectorized = get_backend("numpy")
    rng = np.random.default_rng(args.seed)
    rows = []
    for ports in args.ports:
        request = ShiftRequest(
            dbc=rng.integers(0, args.dbcs, args.accesses),
            slot=rng.integers(0, args.domains, args.accesses),
            num_dbcs=args.dbcs,
            domains=args.domains,
            ports=ports,
        )
        assert reference.run(request) == vectorized.run(request)
        t_ref = best_of(lambda: reference.run(request), args.repeats)
        t_vec = best_of(lambda: vectorized.run(request), args.repeats)
        rows.append({
            "mode": "replay",
            "ports": ports,
            "reference_s": t_ref,
            "numpy_s": t_vec,
            "reference_accesses_per_s": args.accesses / t_ref,
            "numpy_accesses_per_s": args.accesses / t_vec,
            "speedup": t_ref / t_vec,
            "gated": ports in args.gate_ports,
        })
        print(f"replay ports={ports}: "
              f"reference {rows[-1]['reference_accesses_per_s']:,.0f} acc/s, "
              f"numpy {rows[-1]['numpy_accesses_per_s']:,.0f} acc/s, "
              f"speedup {rows[-1]['speedup']:.1f}x")
    return rows


def population_rows(args) -> list[dict]:
    rng = np.random.default_rng(args.seed + 1)
    codes = rng.integers(0, args.variables, args.trace)
    dbc_of = rng.integers(0, args.dbcs, (args.population, args.variables))
    pos_of = rng.integers(0, args.domains, (args.population, args.variables))
    backend = NumpyBackend()
    reference = get_backend("reference")
    rows = []
    for ports in args.gate_ports:
        dbc = dbc_of[:, codes]
        slot = pos_of[:, codes]

        def per_row():
            # The retired fallback: one full 1-D engine run per candidate.
            return [
                backend.run(ShiftRequest(
                    dbc=dbc[i], slot=slot[i], num_dbcs=args.dbcs,
                    domains=args.domains, ports=ports,
                )).shifts
                for i in range(args.population)
            ]

        def population():
            return evaluate_batch(
                codes, dbc_of, pos_of, num_dbcs=args.dbcs,
                domains=args.domains, ports=ports,
            )

        want = [
            reference.run(ShiftRequest(
                dbc=dbc[i], slot=slot[i], num_dbcs=args.dbcs,
                domains=args.domains, ports=ports,
            )).shifts
            for i in range(args.population)
        ]
        assert per_row() == want
        assert list(population()) == want  # bit-identical to the oracle
        t_row = best_of(per_row, args.repeats)
        t_pop = best_of(population, args.repeats)
        rows.append({
            "mode": "population",
            "ports": ports,
            "candidates": args.population,
            "per_row_s": t_row,
            "population_s": t_pop,
            "per_row_candidates_per_s": args.population / t_row,
            "population_candidates_per_s": args.population / t_pop,
            "speedup": t_row / t_pop,
            "gated": True,
        })
        print(f"population ports={ports} K={args.population}: "
              f"per-row {t_row * 1e3:.1f} ms, "
              f"population {t_pop * 1e3:.1f} ms, "
              f"speedup {rows[-1]['speedup']:.1f}x")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=200_000,
                        help="replay trace length")
    parser.add_argument("--dbcs", type=int, default=8)
    parser.add_argument("--domains", type=int, default=128)
    parser.add_argument("--ports", type=int, nargs="+", default=[2, 4, 8],
                        help="port counts for the replay rows")
    parser.add_argument("--gate-ports", type=int, nargs="+", default=[2, 4, 8],
                        help="port counts the gates apply to (replay gating "
                             "and the population rows)")
    # The population workload mirrors bench_batch_eval's suite-median
    # GA generation (~32 variables, ~250 accesses, 200 candidates).
    parser.add_argument("--population", type=int, default=200)
    parser.add_argument("--variables", type=int, default=32)
    parser.add_argument("--trace", type=int, default=250,
                        help="population trace length")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-replay-speedup", type=float, default=8.0,
                        help="fail below this on gate ports (0 disables)")
    parser.add_argument("--min-batch-speedup", type=float, default=5.0,
                        help="fail below this on the population rows "
                             "(0 disables)")
    parser.add_argument("--out", default="BENCH_multiport.json")
    args = parser.parse_args(argv)

    rows = replay_rows(args) + population_rows(args)
    payload = {
        "benchmark": "multiport_fast_path",
        "accesses": args.accesses,
        "dbcs": args.dbcs,
        "domains": args.domains,
        "population": args.population,
        "variables": args.variables,
        "trace": args.trace,
        "repeats": args.repeats,
        "results": rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    failures = []
    for row in rows:
        if not row["gated"]:
            continue
        bar = (args.min_replay_speedup if row["mode"] == "replay"
               else args.min_batch_speedup)
        if bar and row["speedup"] < bar:
            failures.append(
                f"{row['mode']} ports={row['ports']} "
                f"({row['speedup']:.1f}x < {bar}x)"
            )
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
