"""E-S4B — the optimality-gap probe of Sec. IV-B.

The paper runs its GA for 2000 generations on the benchmark with the
largest access sequence and finds the best heuristic ~38% behind the GA,
with the random walk (same evaluation budget) never ahead. The timed
kernel is the long GA run at the profile's scale.
"""

from repro.eval.experiments import experiment_sec4b_gap

from _bench_utils import PROFILE, publish


def test_sec4b_optimality_gap(benchmark):
    result = benchmark.pedantic(
        lambda: experiment_sec4b_gap(PROFILE, num_dbcs=4),
        rounds=1, iterations=1,
    )
    publish(result, max_rows=None)

    # The GA must never lose to its own heuristic seeds, and the random
    # walk must not beat the GA (Fig. 4's RW-vs-GA relation).
    assert result.summary["ga_cost"] <= result.summary["best_heuristic_cost"]
    assert result.summary["rw_worse_than_ga"] == 1.0
    # The gap is finite: heuristics land within the same order of
    # magnitude as the long GA (the paper's 'reasonable range' claim).
    assert result.summary["best_heuristic_cost"] <= max(
        10.0 * result.summary["ga_cost"], result.summary["ga_cost"] + 10
    )
