"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures. The
rendered artifacts are (1) written to ``results/`` and (2) echoed in the
pytest terminal summary, so ``pytest benchmarks/ --benchmark-only | tee
bench_output.txt`` archives the full paper-vs-measured comparison.

Profile selection: set ``REPRO_PROFILE`` to ``smoke`` (seconds), ``quick``
(default, minutes) or ``full`` (the paper's budgets, hours).
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from _bench_utils import PROFILE, REPORTS, RESULTS_DIR

from repro.core.policies import PAPER_POLICIES
from repro.eval.runner import run_matrix


@pytest.fixture(scope="session")
def profile():
    return PROFILE


@pytest.fixture(scope="session")
def paper_matrix():
    """The (benchmark x config x policy) matrix shared by Figs. 4-6.

    Computed once per session; its wall-time is reported by the dedicated
    matrix benchmark rather than distorting every figure's timing.
    """
    return run_matrix(PAPER_POLICIES, PROFILE)


def pytest_terminal_summary(terminalreporter):
    if not REPORTS:
        return
    terminalreporter.section("paper artifacts (paper vs measured)")
    for report in REPORTS:
        terminalreporter.write_line("")
        for line in report.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
    terminalreporter.write_line(f"(full tables archived under {RESULTS_DIR})")
