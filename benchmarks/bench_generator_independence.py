"""A-9 — robustness: results must not depend on the trace generator.

The suite substitution (DESIGN.md §5) is the reproduction's largest
threat to validity: if the Fig. 4 ordering only held on the statistical
generators, it would be an artifact. This bench re-runs the policy
comparison on a *structurally different* source — the CFG-shaped
procedure model (``repro.trace.generators.programs``), which derives
traces from block-scoped program structure with no tuned statistical
knobs — and checks the same ordering emerges.
"""

import pytest

from repro.core.cost import shift_cost
from repro.core.policies import get_policy
from repro.trace.generators.programs import ProcedureSpec, program_sequences
from repro.util.tables import format_table

from _bench_utils import publish_text

POLICIES = ("AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR")


@pytest.fixture(scope="module")
def procedures():
    spec = ProcedureSpec(target_statements=90, procedure_vars=3)
    return program_sequences(8, spec=spec, rng=2024)


@pytest.mark.parametrize("dbcs,capacity", [(2, 512), (4, 256), (8, 128)])
def test_ordering_on_cfg_traces(benchmark, procedures, dbcs, capacity):
    def run():
        totals = {p: 0 for p in POLICIES}
        for seq in procedures:
            for p in POLICIES:
                placement = get_policy(p).place(seq, dbcs, capacity)
                totals[p] += shift_cost(seq, placement)
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_text(
        f"A-9 generator independence ({dbcs} DBCs, CFG-derived traces)",
        format_table(
            ["policy", "total shifts"],
            [[p, totals[p]] for p in POLICIES],
        ),
    )
    # The ordering that matters must hold on this independent source too:
    # the intra-optimized DMA variants clearly beat the baseline...
    assert totals["DMA-SR"] <= totals["AFD-OFU"] * 0.95
    assert totals["DMA-Chen"] <= totals["AFD-OFU"] * 0.95
    # ...and bare DMA-OFU stays within noise of AFD (on these low-
    # disjoint-capture traces the fairness guard makes it degenerate
    # toward AFD by design; residual separation decisions cost a few
    # percent either way).
    assert totals["DMA-OFU"] <= totals["AFD-OFU"] * 1.10
    assert totals["DMA-SR"] <= totals["DMA-OFU"]
