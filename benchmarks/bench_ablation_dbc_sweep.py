"""A-10 — extended iso-capacity DBC sweep (beyond Table I's four points).

Fig. 6 locates the energy sweet spot between 4 and 8 DBCs from four
anchor configurations. With the extrapolated DESTINY calibration the
sweep extends to a 32-DBC design and confirms the penalty keeps growing
past the paper's largest configuration.
"""

from repro.eval.ablations import ablation_dbc_sweep

from _bench_utils import PROFILE, publish


def test_extended_dbc_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_dbc_sweep(PROFILE), rounds=1, iterations=1
    )
    publish(result, max_rows=None)

    dbcs = [row[0] for row in result.rows]
    # all power-of-two iso-capacity splits must be present
    assert {2, 4, 8, 16, 32} <= set(dbcs)
    # the optimum is an interior configuration, as Fig. 6 argues...
    assert result.summary["best_energy_dbcs"] not in (2.0, 32.0)
    # ...and pushing beyond 16 DBCs keeps getting worse (leakage/area).
    assert result.summary["energy_pj@32"] > result.summary["energy_pj@8"]
