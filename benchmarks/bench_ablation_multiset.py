"""A-4 — ablation: the multi-set DMA extension (Sec. VI future work).

The outlook proposes harvesting more than one disjoint set. This bench
compares single-set Algorithm 1 against the multi-set extension on
phase-structured traces (where additional chains exist) and on the
generated suite (where the first chain usually dominates).
"""

from repro.core.cost import shift_cost
from repro.core.inter.dma import dma_placement
from repro.core.inter.multiset import extract_disjoint_sets, multiset_dma_placement
from repro.core.intra import shifts_reduce_order
from repro.trace.generators.offsetstone import load_benchmark
from repro.trace.generators.synthetic import phased_sequence
from repro.util.tables import format_table

from _bench_utils import PROFILE, publish_text


def test_multiset_on_phase_structured_traces(benchmark):
    seqs = [
        phased_sequence(8, 5, 60, shared_vars=3, shared_ratio=0.15, rng=s)
        for s in range(4)
    ]

    def sweep():
        rows = []
        for i, seq in enumerate(seqs):
            chains, _ = extract_disjoint_sets(seq)
            single = shift_cost(
                seq, dma_placement(seq, 4, 256, intra=shifts_reduce_order)
            )
            multi = shift_cost(
                seq,
                multiset_dma_placement(seq, 4, 256, intra=shifts_reduce_order),
            )
            rows.append([f"phased{i}", len(chains), single, multi])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish_text(
        "A-4 multi-set DMA on phased traces (4 DBCs)",
        format_table(
            ["trace", "chains found", "DMA-SR shifts", "MDMA-SR shifts"], rows
        ),
    )
    # The extension finds multiple chains on phased traces...
    assert max(r[1] for r in rows) >= 2
    # ...and stays in the same cost range as single-set DMA overall.
    assert sum(r[3] for r in rows) <= sum(r[2] for r in rows) * 1.3


def test_multiset_on_suite_programs(benchmark):
    names = ("jpeg", "flex", "mpeg2")

    def sweep():
        totals = {"DMA-SR": 0, "MDMA-SR": 0}
        for name in names:
            bench = load_benchmark(
                name, scale=PROFILE.suite_scale, seed=PROFILE.seed
            )
            for trace in bench.traces:
                seq = trace.sequence
                totals["DMA-SR"] += shift_cost(
                    seq, dma_placement(seq, 8, 128, intra=shifts_reduce_order)
                )
                totals["MDMA-SR"] += shift_cost(
                    seq,
                    multiset_dma_placement(
                        seq, 8, 128, intra=shifts_reduce_order
                    ),
                )
        return totals

    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish_text(
        "A-4 multi-set DMA on suite programs (8 DBCs, total shifts)",
        format_table(
            ["policy", "total shifts"],
            [[k, v] for k, v in totals.items()],
        ),
    )
    assert totals["MDMA-SR"] <= totals["DMA-SR"] * 1.3
