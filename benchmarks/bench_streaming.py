#!/usr/bin/env python
"""Benchmark: bounded-memory streaming replay of a huge address trace.

``stream_address_trace`` + the engine's ``ShiftCursor`` exist so that
hundred-million-access traces can be replayed without materializing
per-access arrays: ingestion spills coded accesses to disk in a census
pass and replay walks fixed-size chunks through the same backends the
monolithic path uses. This bench makes the three claims observable on a
~10M-access synthetic trace:

* **bit-identity** — the streamed replay's ``SimReport`` (integer
  counters *and* derived floats) must equal the in-memory replay's,
  always enforced.
* **bounded memory** — peak resident memory of the streamed run must
  stay below a flat ceiling (``--rss-ceiling``) *and* must not grow
  with trace length: the full-length streamed peak is gated against
  the quarter-length streamed peak times ``--flat-tolerance``.
* **throughput** — streaming may not cost more than a bounded slowdown:
  end-to-end (ingest + replay) streamed throughput must be at least
  ``--min-throughput`` (default 0.7x) of the in-memory path.

Each measured phase runs in a fresh forked child so one phase's
allocator high-water mark cannot pollute another's; the parent samples
peak PSS of the process tree from ``/proc`` (see ``_bench_utils``).

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py \
        --accesses 20000000 --out results/BENCH_streaming.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench_utils import RssSampler  # noqa: E402

from repro.rtm.controller import RTMController  # noqa: E402
from repro.rtm.geometry import RTMConfig  # noqa: E402
from repro.trace.io import read_address_trace  # noqa: E402
from repro.trace.streaming import stream_address_trace  # noqa: E402

#: Ingestion knobs shared by both paths (identical hot-set selection).
INGEST = dict(word_bytes=8, max_vars=64, min_count=2)

_WRITE_BATCH = 1 << 20


def write_address_trace(path: Path, accesses: int, seed: int) -> None:
    """A deterministic gem5-style raw address trace with a hot working set."""
    rng = np.random.default_rng(seed)
    words = 96
    ranks = np.arange(1, words + 1, dtype=np.float64)
    probs = 1.0 / ranks**1.1
    probs /= probs.sum()
    with path.open("w", encoding="utf-8") as fh:
        for start in range(0, accesses, _WRITE_BATCH):
            n = min(_WRITE_BATCH, accesses - start)
            idx = rng.choice(words, size=n, p=probs)
            fh.write("\n".join(f"0x{0x1000 + 8 * a:x}" for a in idx))
            fh.write("\n")


class RoundRobinPlacement:
    """Variables dealt round-robin across DBCs, in variable order.

    Policy-free and a pure function of the variable tuple, so the
    in-memory and streamed runs (whose variable orders are identical by
    the ingestion contract) replay against the same physical layout.
    """

    def __init__(self, variables, num_dbcs: int):
        lists: list[list[str]] = [[] for _ in range(num_dbcs)]
        for code, name in enumerate(variables):
            lists[code % num_dbcs].append(name)
        self._lists = lists

    def dbc_lists(self):
        return self._lists


def _run_phase(mode: str, path: str, chunk: int, limit, conn) -> None:
    """Child-process body: ingest + replay once, ship timings back."""
    config = RTMConfig(
        dbcs=16, tracks_per_dbc=1, domains_per_track=64, ports_per_track=4
    )
    t0 = time.perf_counter()
    if mode == "inmem":
        trace = read_address_trace(path, limit=limit, **INGEST)
    else:
        trace = stream_address_trace(path, chunk=chunk, limit=limit, **INGEST)
    t_ingest = time.perf_counter() - t0
    placement = RoundRobinPlacement(trace.sequence.variables, config.dbcs)
    controller = RTMController(config, placement)
    t1 = time.perf_counter()
    report = controller.execute(trace)
    t_replay = time.perf_counter() - t1
    conn.send({
        "accesses": len(trace),
        "variables": trace.sequence.num_variables,
        "ingest_s": t_ingest,
        "replay_s": t_replay,
        "report": report,
    })
    conn.close()


def timed_phase(mode: str, path: Path, chunk: int, limit=None):
    """Run one phase in a fresh child; returns (stats, peak_rss_mib)."""
    ctx = multiprocessing.get_context()
    parent, child = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_run_phase, args=(mode, str(path), chunk, limit, child)
    )
    with RssSampler() as mem:
        proc.start()
        child.close()
        stats = parent.recv()
        proc.join(timeout=600)
    parent.close()
    if proc.exitcode != 0:
        raise RuntimeError(f"{mode} phase exited with {proc.exitcode}")
    return stats, mem.peak_mib


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=10_000_000,
                        help="length of the generated raw address trace")
    parser.add_argument("--chunk", type=int, default=1 << 20,
                        help="streaming chunk size in accesses")
    parser.add_argument("--min-throughput", type=float, default=0.7,
                        help="gate: streamed end-to-end throughput as a "
                             "fraction of in-memory (0 disables)")
    parser.add_argument("--rss-ceiling", type=float, default=384.0,
                        help="gate: streamed peak RSS ceiling in MiB "
                             "(0 disables; independent of trace length)")
    parser.add_argument("--flat-tolerance", type=float, default=1.25,
                        help="gate: full-length streamed peak RSS may "
                             "exceed quarter-length by at most this factor "
                             "(0 disables)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default="BENCH_streaming.json")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench_streaming_") as tmp:
        trace_file = Path(tmp) / "addresses.trc"
        t0 = time.perf_counter()
        write_address_trace(trace_file, args.accesses, args.seed)
        size_mib = trace_file.stat().st_size / 2**20
        print(f"generated {args.accesses:,} accesses "
              f"({size_mib:.0f} MiB) in {time.perf_counter() - t0:.1f}s")

        inmem, rss_inmem = timed_phase("inmem", trace_file, args.chunk)
        print(f"in-memory : ingest {inmem['ingest_s']:.2f}s, replay "
              f"{inmem['replay_s']:.2f}s, peak {rss_inmem:.0f} MiB")
        stream, rss_stream = timed_phase("stream", trace_file, args.chunk)
        print(f"streamed  : ingest {stream['ingest_s']:.2f}s, replay "
              f"{stream['replay_s']:.2f}s, peak {rss_stream:.0f} MiB")
        quarter, rss_quarter = timed_phase(
            "stream", trace_file, args.chunk, limit=args.accesses // 4
        )
        print(f"streamed/4: ingest {quarter['ingest_s']:.2f}s, replay "
              f"{quarter['replay_s']:.2f}s, peak {rss_quarter:.0f} MiB")

    bit_identical = (
        stream["report"] == inmem["report"]
        and stream["accesses"] == inmem["accesses"]
    )
    t_inmem = inmem["ingest_s"] + inmem["replay_s"]
    t_stream = stream["ingest_s"] + stream["replay_s"]
    throughput = t_inmem / t_stream
    sampler_ok = min(rss_inmem, rss_stream, rss_quarter) > 0
    rss_growth = rss_stream / rss_quarter if rss_quarter else float("inf")

    def row(name, stats, rss):
        return {
            "mode": name,
            "accesses": stats["accesses"],
            "variables": stats["variables"],
            "ingest_s": stats["ingest_s"],
            "replay_s": stats["replay_s"],
            "peak_rss_mib": rss,
            "shifts": stats["report"].shifts,
        }

    payload = {
        "benchmark": "streaming_replay",
        "generated_accesses": args.accesses,
        "chunk": args.chunk,
        "results": [
            row("inmem", inmem, rss_inmem),
            row("stream", stream, rss_stream),
            row("stream_quarter", quarter, rss_quarter),
        ],
        "throughput_vs_inmem": throughput,
        "rss_growth_full_vs_quarter": rss_growth,
        "checks": {
            "bit_identical_stream_vs_inmem": bit_identical,
            "rss_sampler_available": sampler_ok,
        },
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    failures = []
    if not bit_identical:
        failures.append("streamed report differs from in-memory report")
    if args.min_throughput and throughput < args.min_throughput:
        failures.append(
            f"streamed throughput {throughput:.2f}x < {args.min_throughput}x"
        )
    if sampler_ok:
        if args.rss_ceiling and rss_stream > args.rss_ceiling:
            failures.append(
                f"streamed peak RSS {rss_stream:.0f} MiB > ceiling "
                f"{args.rss_ceiling:.0f} MiB"
            )
        if args.flat_tolerance and rss_growth > args.flat_tolerance:
            failures.append(
                f"streamed peak RSS grew {rss_growth:.2f}x from quarter to "
                f"full length (> {args.flat_tolerance}x)"
            )
    else:
        print("RSS gates skipped: /proc sampling unavailable")
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"throughput {throughput:.2f}x, RSS flat-growth {rss_growth:.2f}x; "
          f"all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
