#!/usr/bin/env python
"""Benchmark: claim-based queue scaling vs serial and static sharding.

The work queue exists so that N machines pulling open cells from one
store scale the matrix near-linearly *without* the load-balance failure
mode of static ``--shard i/N`` partitioning: shards are content-digest
slices with no notion of cell cost, so a skewed matrix pins the matrix
wall-clock to whichever shard drew the expensive cells, while the queue
hands out cells biggest-first to whoever is idle. This bench makes both
claims observable on a deliberately cost-skewed workload mix (one huge
streamed-length workload among small kernels — the cell costs span
~40x):

* **scaling** — the same enqueued matrix drained by 1 vs 4
  ``repro-worker`` processes. Gated: 4 workers must drain it
  ``--min-speedup`` (default 2.5x) faster than 1. Real parallelism
  needed, so the gate arms only when the machine has at least as many
  cores as workers.
* **queue vs static shard** — 4 queue workers vs 4 ``--shard i/4``
  processes computing the identical matrix. Gated (same arming rule):
  the queue must finish strictly faster — the digest partition is
  deterministic and provably imbalanced for this matrix (the bench
  prints big-cells-per-shard), so pull scheduling wins on makespan.
* **bit-identity** — cells computed by queue workers must equal a cold
  in-process serial run bit-exactly (always enforced; the queue only
  changes *who* computes, never any number).

Workers claim one cell per transaction here: cells cost seconds, so
batch amortization is irrelevant and single-cell claims give the
scheduler maximum packing freedom (big cells first, then fill).

Usage::

    PYTHONPATH=src python benchmarks/bench_queue_scaling.py
    PYTHONPATH=src python benchmarks/bench_queue_scaling.py \
        --scale 0.5 --out results/BENCH_queue.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")
sys.path.insert(0, REPO_SRC)

from repro.eval.profiles import QUICK_PROFILE  # noqa: E402
from repro.eval.runner import (  # noqa: E402
    clear_cell_cache,
    last_matrix_stats,
    run_matrix,
)
from repro.rtm.geometry import RTMConfig  # noqa: E402
from repro.store import ExperimentStore, WorkQueue  # noqa: E402

#: Deterministic heuristic policies: per-cell cost tracks trace length,
#: so the cost skew below is the *workload's* skew, not search-budget
#: noise, and bit-identity needs no seed bookkeeping.
POLICIES = ("AFD", "AFD-SR", "DMA", "DMA-SR")

#: One huge workload among small ones: the 4 big cells dominate the
#: matrix wall-clock, and their content digests land 2/1/1/0 across 4
#: shards (deterministic — the bench asserts it), so static sharding
#: serializes two big cells on one process while the queue never does.
BIG_LENGTH = 1_000_000
SMALL_SPECS = (
    "synthetic:zipf,vars=32,length=24000",
    "synthetic:zipf,vars=32,length=20000",
    "synthetic:markov,vars=24,length=16000",
    "synthetic:markov,vars=24,length=12000",
    "synthetic:uniform,vars=24,length=10000",
    "synthetic:uniform,vars=16,length=8000",
    "synthetic:uniform,vars=16,length=6000",
    "synthetic:sliding,vars=24,length=14000",
)

CONFIG = RTMConfig(dbcs=4, tracks_per_dbc=8, domains_per_track=64)

#: The shard process / queue worker count both comparisons use.
FAN_OUT = 4

_SHARD_CHILD = """
import sys
sys.path.insert(0, {src!r})
from dataclasses import replace

from repro.eval.profiles import QUICK_PROFILE
from repro.eval.runner import run_matrix
from repro.rtm.geometry import RTMConfig

profile = replace(QUICK_PROFILE, workloads=tuple({specs!r}), workers=1)
run_matrix({policies!r}, profile, configs=[RTMConfig(**{config!r})],
           store={store!r}, shard=(int(sys.argv[1]), {fan_out}))
"""


def bench_profile(scale: float):
    from dataclasses import replace

    per_phase = max(1, int(BIG_LENGTH * scale) // 4)
    big = f"synthetic:phased,phases=4,vars=24,length={per_phase}"
    return replace(QUICK_PROFILE, workloads=(big,) + SMALL_SPECS, workers=1)


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def enqueue(profile, store_path) -> int:
    clear_cell_cache()
    run_matrix(POLICIES, profile, configs=[CONFIG], store=store_path,
               enqueue=True)
    return last_matrix_stats().enqueued


def drain_with_workers(store_path, n: int) -> float:
    """Start n drain-mode workers; wall time until the last one exits."""
    start = time.perf_counter()
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.eval.service", "worker",
             "--store", str(store_path), "--drain", "--batch", "1",
             "--lease", "60", "--poll", "0.1", "-q"],
            env=child_env(),
        )
        for _ in range(n)
    ]
    failures = [w.wait() for w in workers]
    wall = time.perf_counter() - start
    if any(failures):
        raise RuntimeError(f"worker exit codes: {failures}")
    return wall


def run_shards(profile, store_path, tmp: Path) -> float:
    """FAN_OUT static-shard processes over one store; wall until all exit."""
    script = tmp / "shard_child.py"
    script.write_text(_SHARD_CHILD.format(
        src=REPO_SRC, specs=list(profile.workload_specs),
        policies=tuple(POLICIES), store=str(store_path),
        config={"dbcs": CONFIG.dbcs, "tracks_per_dbc": CONFIG.tracks_per_dbc,
                "domains_per_track": CONFIG.domains_per_track},
        fan_out=FAN_OUT,
    ))
    start = time.perf_counter()
    children = [
        subprocess.Popen([sys.executable, str(script), str(i)],
                         env=child_env())
        for i in range(FAN_OUT)
    ]
    codes = [c.wait() for c in children]
    wall = time.perf_counter() - start
    if any(codes):
        raise RuntimeError(f"shard exit codes: {codes}")
    return wall


def big_cells_per_shard(profile) -> list[int]:
    """The deterministic digest assignment of the 4 big cells."""
    from repro.eval.runner import _cell_key, _in_shard, load_suite, policy_specs
    from repro.util.rng import ensure_rng, spawn_seeds

    programs = load_suite(profile)
    specs = policy_specs(POLICIES, profile)
    seeds = spawn_seeds(ensure_rng(profile.seed), len(programs) * len(specs))
    per_shard = [0] * FAN_OUT
    big_name = programs[0].name  # the huge workload is first in the suite
    i = 0
    for program in programs:
        for spec in specs:
            key = _cell_key(program, spec, CONFIG, seeds[i], True, "numpy")
            i += 1
            if program.name == big_name:
                for shard in range(FAN_OUT):
                    if _in_shard(key, (shard, FAN_OUT)):
                        per_shard[shard] += 1
    return per_shard


def identical(a, b) -> bool:
    return set(a) == set(b) and all(
        a[k].shifts == b[k].shifts and a[k].report == b[k].report for k in a
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply the big workload's length "
                             "(1.0 = %d accesses)" % BIG_LENGTH)
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="gate: 4-worker drain speedup over 1 worker "
                             "(0 disables; auto-skipped below 4 cores)")
    parser.add_argument("--out", default="BENCH_queue.json")
    args = parser.parse_args(argv)

    profile = bench_profile(args.scale)
    cores = os.cpu_count() or 1
    gate_armed = bool(args.min_speedup) and cores >= FAN_OUT
    gate_reason = (
        "armed" if gate_armed else
        f"skipped: {cores} core(s) < {FAN_OUT} workers"
        if args.min_speedup else "disabled"
    )

    shard_load = big_cells_per_shard(profile)
    print(f"big cells per shard (digest partition): {shard_load}")

    with tempfile.TemporaryDirectory(prefix="bench_queue_") as tmp_s:
        tmp = Path(tmp_s)

        # Serial in-process reference: the ground truth cells and the
        # single-process wall the throughput rows are relative to.
        clear_cell_cache()
        start = time.perf_counter()
        reference = run_matrix(POLICIES, profile, configs=[CONFIG])
        t_serial = time.perf_counter() - start
        cells = len(reference)
        print(f"serial reference: {cells} cells in {t_serial:.2f}s")

        # Queue drained by 1 worker, then by FAN_OUT workers.
        q1_store = tmp / "q1.sqlite"
        enqueued = enqueue(profile, q1_store)
        t_q1 = drain_with_workers(q1_store, 1)
        print(f"queue, 1 worker:  {enqueued} cells in {t_q1:.2f}s")

        qn_store = tmp / "qn.sqlite"
        enqueue(profile, qn_store)
        t_qn = drain_with_workers(qn_store, FAN_OUT)
        print(f"queue, {FAN_OUT} workers: drained in {t_qn:.2f}s")

        # The identical matrix via static shards, same process count.
        shard_store = tmp / "shard.sqlite"
        t_shard = run_shards(profile, shard_store, tmp)
        print(f"static --shard x{FAN_OUT}: {t_shard:.2f}s")

        # Bit-identity: queue-computed cells vs the serial reference.
        clear_cell_cache()
        via_queue = run_matrix(POLICIES, profile, configs=[CONFIG],
                               store=qn_store, offline=True)
        stats = last_matrix_stats()
        bit_identical = (identical(via_queue, reference)
                         and stats.hits_queue == cells)
        with ExperimentStore(qn_store) as store:
            counts = WorkQueue(store).counts()

    speedup = t_q1 / t_qn
    vs_shard = t_shard / t_qn
    payload = {
        "benchmark": "queue_scaling",
        "cells": cells,
        "enqueued": enqueued,
        "policies": list(POLICIES),
        "big_cells_per_shard": shard_load,
        "cores": cores,
        "results": [
            {"mode": "serial", "processes": 1, "wall_s": t_serial},
            {"mode": "queue", "workers": 1, "wall_s": t_q1},
            {"mode": "queue", "workers": FAN_OUT, "wall_s": t_qn,
             "speedup_vs_1_worker": speedup, "gated": gate_armed,
             "gate_reason": gate_reason},
            {"mode": "shard", "processes": FAN_OUT, "wall_s": t_shard,
             "queue_advantage": vs_shard},
        ],
        "checks": {
            "bit_identical_queue_vs_serial": bit_identical,
            "queue_drained": counts
            == {"open": 0, "claimed": 0, "done": cells, "failed": 0},
            "shard_partition_skewed": max(shard_load) >= 2,
        },
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    failures = []
    if not bit_identical:
        failures.append("queue-computed cells differ from serial reference")
    if not payload["checks"]["queue_drained"]:
        failures.append(f"queue not fully drained: {counts}")
    if max(shard_load) < 2:
        failures.append(
            f"shard partition unexpectedly balanced ({shard_load}); "
            f"the vs-shard comparison would be meaningless"
        )
    if gate_armed and speedup < args.min_speedup:
        failures.append(
            f"{FAN_OUT}-worker speedup {speedup:.2f}x < {args.min_speedup}x"
        )
    if gate_armed and vs_shard <= 1.0:
        failures.append(
            f"queue ({t_qn:.2f}s) did not beat static shards "
            f"({t_shard:.2f}s) on the skewed matrix"
        )
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"speedup {speedup:.2f}x vs 1 worker, {vs_shard:.2f}x vs static "
          f"shards ({gate_reason}); all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
