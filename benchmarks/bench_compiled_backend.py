#!/usr/bin/env python
"""Benchmark the JIT-compiled (numba) backend against reference and numpy.

Per port count, times warm- and cold-start replay on identical randomized
traces through every backend, plus one K=200 population-scoring row
(`evaluate_batch` flattened-sort numpy path vs the compiled population
kernel). JIT warmup (LLVM compilation on first call) is measured once and
reported separately — steady-state rows never include it.

Gates, applied only when the ``compiled`` extra is installed:

* every numba row is bit-identical to the reference backend
  (full ``ShiftResult`` equality: counters *and* final state);
* at least one replay row reaches ``--min-speedup`` (default 1.2x) over
  the numpy backend, steady-state;
* no gated row (replay or population) falls below ``--min-ratio``
  (default 0.8x) of numpy.

With numba absent the script still writes the JSON — availability
flagged, reference/numpy columns populated — and exits 0, so the
committed ``BENCH_compiled.json`` seed stays refreshable on any machine
while CI's optional-backend leg regenerates and gates the full version.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiled_backend.py
    PYTHONPATH=src python benchmarks/bench_compiled_backend.py \
        --accesses 500000 --ports 1 2 4 8 --out BENCH_compiled.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import ShiftRequest, evaluate_batch, get_backend
from repro.engine.numba_backend import (
    NUMBA_AVAILABLE,
    NUMBA_VERSION,
    NumbaBackend,
    warmup,
)


def make_request(accesses: int, num_dbcs: int, domains: int, ports: int,
                 warm_start: bool, seed: int) -> ShiftRequest:
    rng = np.random.default_rng(seed)
    return ShiftRequest(
        dbc=rng.integers(0, num_dbcs, accesses),
        slot=rng.integers(0, domains, accesses),
        num_dbcs=num_dbcs,
        domains=domains,
        ports=ports,
        warm_start=warm_start,
    )


def time_call(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def make_population(k: int, num_vars: int, num_dbcs: int, accesses: int,
                    seed: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random valid placements (round-robin over a permutation) + trace."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, num_vars, accesses)
    dbc_of = np.empty((k, num_vars), dtype=np.int64)
    pos_of = np.empty((k, num_vars), dtype=np.int64)
    lanes = np.arange(num_vars, dtype=np.int64)
    for r in range(k):
        perm = rng.permutation(num_vars)
        dbc_of[r, perm] = lanes % num_dbcs
        pos_of[r, perm] = lanes // num_dbcs
    return codes, dbc_of, pos_of


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=200_000)
    parser.add_argument("--dbcs", type=int, default=8)
    parser.add_argument("--domains", type=int, default=128)
    parser.add_argument("--ports", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--pop-k", type=int, default=200,
                        help="population row: candidate count")
    parser.add_argument("--pop-vars", type=int, default=64)
    parser.add_argument("--pop-accesses", type=int, default=5_000)
    parser.add_argument("--pop-ports", type=int, default=2)
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="required numba/numpy ratio on >= 1 replay row "
                             "(0 disables the gates)")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="no gated row may fall below this numba/numpy "
                             "ratio")
    parser.add_argument("--out", default="BENCH_compiled.json")
    args = parser.parse_args(argv)

    reference = get_backend("reference")
    vectorized = get_backend("numpy")
    compiled = NumbaBackend() if NUMBA_AVAILABLE else None
    jit_warmup_s = warmup() if NUMBA_AVAILABLE else None
    if NUMBA_AVAILABLE:
        print(f"numba {NUMBA_VERSION}: JIT warmup {jit_warmup_s:.2f}s "
              f"(excluded from steady-state rows)")
    else:
        print("numba not installed (pip install repro-rtm-placement"
              "[compiled]); recording reference/numpy rows only")

    replay_rows = []
    identical = True
    for ports in args.ports:
        for warm_start in (True, False):
            request = make_request(args.accesses, args.dbcs, args.domains,
                                   ports, warm_start, args.seed)
            expected = reference.run(request)
            assert vectorized.run(request) == expected
            t_ref = time_call(lambda: reference.run(request), 1)
            t_np = time_call(lambda: vectorized.run(request), args.repeats)
            row = {
                "ports": ports,
                "warm_start": warm_start,
                "accesses": args.accesses,
                "reference_s": t_ref,
                "numpy_s": t_np,
                "numpy_accesses_per_s": args.accesses / t_np,
            }
            if compiled is not None:
                row["identical"] = compiled.run(request) == expected
                identical = identical and row["identical"]
                t_nb = time_call(lambda: compiled.run(request), args.repeats)
                row["numba_s"] = t_nb
                row["numba_accesses_per_s"] = args.accesses / t_nb
                row["numba_vs_numpy"] = t_np / t_nb
                row["numba_vs_reference"] = t_ref / t_nb
                print(f"ports={ports} {'warm' if warm_start else 'cold'}: "
                      f"numpy {row['numpy_accesses_per_s']:,.0f} acc/s, "
                      f"numba {row['numba_accesses_per_s']:,.0f} acc/s "
                      f"({row['numba_vs_numpy']:.2f}x numpy, "
                      f"identical={row['identical']})")
            else:
                print(f"ports={ports} {'warm' if warm_start else 'cold'}: "
                      f"numpy {row['numpy_accesses_per_s']:,.0f} acc/s")
            replay_rows.append(row)

    codes, dbc_of, pos_of = make_population(
        args.pop_k, args.pop_vars, args.dbcs, args.pop_accesses, args.seed
    )
    pop_kwargs = dict(num_dbcs=args.dbcs, domains=args.domains,
                      ports=args.pop_ports)
    totals_np = evaluate_batch(codes, dbc_of, pos_of, backend="numpy",
                               **pop_kwargs)
    t_np = time_call(
        lambda: evaluate_batch(codes, dbc_of, pos_of, backend="numpy",
                               **pop_kwargs),
        args.repeats,
    )
    population = {
        "k": args.pop_k,
        "vars": args.pop_vars,
        "accesses": args.pop_accesses,
        "ports": args.pop_ports,
        "numpy_s": t_np,
    }
    if compiled is not None:
        totals_nb = evaluate_batch(codes, dbc_of, pos_of, backend=compiled,
                                   **pop_kwargs)
        # Truth-check a sample of rows against the oracle, then the
        # whole population against the (reference-verified) numpy path.
        sample_ok = all(
            reference.run(ShiftRequest(
                dbc=dbc_of[r][codes], slot=pos_of[r][codes],
                num_dbcs=args.dbcs, domains=args.domains,
                ports=args.pop_ports,
            )).shifts == int(totals_nb[r])
            for r in range(0, args.pop_k, max(1, args.pop_k // 5))
        )
        population["identical"] = (
            bool(np.array_equal(totals_np, totals_nb)) and sample_ok
        )
        identical = identical and population["identical"]
        t_nb = time_call(
            lambda: evaluate_batch(codes, dbc_of, pos_of, backend=compiled,
                                   **pop_kwargs),
            args.repeats,
        )
        population["numba_s"] = t_nb
        population["numba_vs_numpy"] = t_np / t_nb
        print(f"population K={args.pop_k}: numpy {t_np * 1e3:.1f}ms, "
              f"numba {t_nb * 1e3:.1f}ms "
              f"({population['numba_vs_numpy']:.2f}x numpy, "
              f"identical={population['identical']})")
    else:
        print(f"population K={args.pop_k}: numpy {t_np * 1e3:.1f}ms")

    best_replay = max(
        (row["numba_vs_numpy"] for row in replay_rows if "numba_vs_numpy"
         in row),
        default=None,
    )
    gated_ratios = [
        row["numba_vs_numpy"] for row in replay_rows if "numba_vs_numpy" in row
    ] + ([population["numba_vs_numpy"]] if "numba_vs_numpy" in population
         else [])
    payload = {
        "benchmark": "compiled_backend",
        "numba_available": NUMBA_AVAILABLE,
        "numba_version": NUMBA_VERSION,
        "jit_warmup_s": jit_warmup_s,
        "accesses": args.accesses,
        "dbcs": args.dbcs,
        "domains": args.domains,
        "repeats": args.repeats,
        "replay": replay_rows,
        "population": population,
        "gates": {
            "min_speedup": args.min_speedup,
            "min_ratio": args.min_ratio,
            "best_replay_vs_numpy": best_replay,
            "worst_gated_vs_numpy": min(gated_ratios, default=None),
            "identical": identical if NUMBA_AVAILABLE else None,
        },
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    if not NUMBA_AVAILABLE or not args.min_speedup:
        return 0
    failures = []
    if not identical:
        failures.append("numba results diverge from the reference backend")
    if best_replay is None or best_replay < args.min_speedup:
        failures.append(
            f"best replay row {best_replay:.2f}x numpy "
            f"< required {args.min_speedup}x"
        )
    worst = min(gated_ratios, default=0.0)
    if worst < args.min_ratio:
        failures.append(
            f"a gated row fell to {worst:.2f}x numpy "
            f"< floor {args.min_ratio}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
