#!/usr/bin/env python
"""Benchmark the fault-injection layer: zero-cost when off, bounded when on.

Per port count, times clean replay against (a) a rate-0 fault model and
(b) live fault rates on identical randomized traces. The rate-0 model
must normalize away at request construction (checked structurally:
``request.fault is None``) and therefore run the *exact* clean code
path — its row is gated at ``--max-overhead`` (default 1.05x) of the
clean time. Live-fault rows pay for the vectorized post-pass and are
gated at ``--min-ratio`` (default 0.25x) of clean throughput. Every
faulted row is also cross-checked bit-identical across the reference
and numpy backends (and numba when the ``compiled`` extra is
installed) — the determinism contract, enforced where the perf numbers
are produced.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py
    PYTHONPATH=src python benchmarks/bench_fault_overhead.py \
        --accesses 500000 --ports 1 2 4 --out BENCH_faults.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import FaultModel, ShiftRequest, get_backend
from repro.engine.numba_backend import NUMBA_AVAILABLE, NumbaBackend, warmup


def make_arrays(accesses: int, num_dbcs: int, domains: int, seed: int):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, num_dbcs, accesses),
            rng.integers(0, domains, accesses))


def make_request(dbc, slot, num_dbcs, domains, ports, fault) -> ShiftRequest:
    return ShiftRequest(dbc=dbc, slot=slot, num_dbcs=num_dbcs,
                        domains=domains, ports=ports, fault=fault)


def time_call(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def time_pair(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """Interleaved best-of-``repeats`` for two calls.

    The rate-0 gate compares two runs of the *same* code path, so any
    drift between two back-to-back timing blocks (CPU frequency, cache
    warmth) reads as fake overhead; alternating the measurements makes
    both minima sample the same conditions.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", type=int, default=200_000)
    parser.add_argument("--dbcs", type=int, default=8)
    parser.add_argument("--domains", type=int, default=128)
    parser.add_argument("--ports", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--rates", type=float, nargs="+", default=[0.01, 0.1])
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-overhead", type=float, default=1.05,
                        help="rate-0 model time / clean time ceiling "
                             "(0 disables the gates)")
    parser.add_argument("--min-ratio", type=float, default=0.25,
                        help="faulted numpy throughput floor vs clean")
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    reference = get_backend("reference")
    vectorized = get_backend("numpy")
    compiled = NumbaBackend() if NUMBA_AVAILABLE else None
    if compiled is not None:
        warmup()  # compile both clean and fault kernels off the clock

    dbc, slot = make_arrays(args.accesses, args.dbcs, args.domains, args.seed)
    rows = []
    identical = True
    worst_overhead = 0.0
    worst_faulted = float("inf")
    for ports in args.ports:
        clean = make_request(dbc, slot, args.dbcs, args.domains, ports, None)
        zeroed = make_request(dbc, slot, args.dbcs, args.domains, ports,
                              FaultModel(rate=0.0, seed=args.seed))
        assert zeroed.fault is None, "rate-0 model failed to normalize away"
        assert vectorized.run(zeroed) == vectorized.run(clean)
        t_clean, t_zero = time_pair(lambda: vectorized.run(clean),
                                    lambda: vectorized.run(zeroed),
                                    args.repeats)
        overhead = t_zero / t_clean
        worst_overhead = max(worst_overhead, overhead)
        row = {
            "ports": ports,
            "accesses": args.accesses,
            "clean_s": t_clean,
            "clean_accesses_per_s": args.accesses / t_clean,
            "rate0_s": t_zero,
            "rate0_overhead_x": overhead,
        }
        print(f"ports={ports}: clean {row['clean_accesses_per_s']:,.0f} "
              f"acc/s, rate-0 overhead {overhead:.3f}x")
        faulted_rows = []
        for rate in args.rates:
            fault = FaultModel(rate=rate, seed=args.seed)
            request = make_request(dbc, slot, args.dbcs, args.domains,
                                   ports, fault)
            expected = vectorized.run(request)
            same = reference.run(request) == expected
            if compiled is not None:
                same = same and compiled.run(request) == expected
            identical = identical and same
            t_fault = time_call(lambda: vectorized.run(request), args.repeats)
            ratio = t_clean / t_fault
            worst_faulted = min(worst_faulted, ratio)
            frow = {
                "rate": rate,
                "numpy_s": t_fault,
                "numpy_accesses_per_s": args.accesses / t_fault,
                "vs_clean_x": ratio,
                "injected": expected.faults.injected,
                "misaligned": expected.faults.misaligned,
                "identical": same,
            }
            if compiled is not None:
                t_nb = time_call(lambda: compiled.run(request), args.repeats)
                frow["numba_s"] = t_nb
                frow["numba_accesses_per_s"] = args.accesses / t_nb
            print(f"  rate={rate:g}: numpy faulted "
                  f"{frow['numpy_accesses_per_s']:,.0f} acc/s "
                  f"({ratio:.2f}x clean, {frow['injected']} injected, "
                  f"identical={same})")
            faulted_rows.append(frow)
        row["faulted"] = faulted_rows
        rows.append(row)

    payload = {
        "benchmark": "fault_overhead",
        "numba_available": NUMBA_AVAILABLE,
        "accesses": args.accesses,
        "dbcs": args.dbcs,
        "domains": args.domains,
        "repeats": args.repeats,
        "rows": rows,
        "gates": {
            "max_overhead": args.max_overhead,
            "min_ratio": args.min_ratio,
            "worst_rate0_overhead_x": worst_overhead,
            "worst_faulted_vs_clean_x": worst_faulted,
            "identical": identical,
        },
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    if not args.max_overhead:
        return 0
    failures = []
    if not identical:
        failures.append("faulted results diverge across backends")
    if worst_overhead > args.max_overhead:
        failures.append(
            f"rate-0 overhead {worst_overhead:.3f}x clean "
            f"> ceiling {args.max_overhead}x"
        )
    if worst_faulted < args.min_ratio:
        failures.append(
            f"faulted throughput fell to {worst_faulted:.2f}x clean "
            f"< floor {args.min_ratio}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
