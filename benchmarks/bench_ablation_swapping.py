"""A-6 — ablation: static placement vs runtime mitigation schemes.

The paper's pitch for placement is that it removes shifts "with trivial
or no overheads" (Sec. V) compared to hardware schemes like runtime data
swapping [20] and proactive port alignment [1,12,21]. This bench stages
that comparison: AFD-OFU + swapping / pre-shifting (runtime help for a
frequency-only layout) against plain static DMA-SR.
"""

import pytest

from repro.core.policies import get_policy
from repro.rtm.geometry import iso_capacity_sweep
from repro.rtm.preshift import PreshiftController, PreshiftPolicy
from repro.rtm.sim import simulate
from repro.rtm.swapping import SwappingController
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table

from _bench_utils import PROFILE, publish_text


@pytest.fixture(scope="module")
def workload():
    bench = load_benchmark("h263", scale=PROFILE.suite_scale, seed=PROFILE.seed)
    config = [c for c in iso_capacity_sweep() if c.dbcs == 4][0]
    return bench, config


def test_static_dma_vs_online_swapping(benchmark, workload):
    bench, config = workload
    cap = config.locations_per_dbc

    def run():
        rows = []
        totals = {"AFD-OFU": 0, "AFD-OFU+swap": 0, "DMA-SR": 0}
        swaps = 0
        for trace in bench.traces:
            seq = trace.sequence
            afd = get_policy("AFD-OFU").place(seq, config.dbcs, cap)
            dma = get_policy("DMA-SR").place(seq, config.dbcs, cap)
            static_afd = simulate(trace, afd, config)
            static_dma = simulate(trace, dma, config)
            ctrl = SwappingController(config, afd, threshold=4)
            dynamic, stats = ctrl.execute(trace)
            totals["AFD-OFU"] += static_afd.shifts
            totals["AFD-OFU+swap"] += dynamic.shifts
            totals["DMA-SR"] += static_dma.shifts
            swaps += stats.swaps
        rows = [[k, v] for k, v in totals.items()]
        return rows, swaps

    rows, swaps = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_text(
        "A-6 static placement vs online swapping (4 DBCs, total shifts)",
        format_table(["scheme", "total shifts"], rows)
        + f"\n(swaps performed: {swaps})",
    )
    totals = dict((r[0], r[1]) for r in rows)
    # Static DMA-SR should beat the swap-assisted frequency layout —
    # the paper's 'no hardware overhead' argument.
    assert totals["DMA-SR"] <= totals["AFD-OFU+swap"]


def test_preshift_latency_energy_tradeoff(benchmark, workload):
    bench, config = workload
    cap = config.locations_per_dbc
    policy = get_policy("DMA-SR")

    def run():
        rows = []
        for label, ps in (("none", PreshiftPolicy.NONE),
                          ("centre", PreshiftPolicy.CENTRE),
                          ("stride", PreshiftPolicy.STRIDE)):
            demand = idle = 0
            latency = 0.0
            for trace in bench.traces:
                seq = trace.sequence
                placement = policy.place(seq, config.dbcs, cap)
                ctrl = PreshiftController(config, placement, policy=ps)
                report = ctrl.execute(trace)
                demand += report.demand_shifts
                idle += report.idle_shifts
                latency += report.latency_ns
            rows.append([label, demand, idle, round(latency, 1)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_text(
        "A-6 pre-shift policies on DMA-SR (4 DBCs)",
        format_table(
            ["policy", "demand shifts", "idle shifts", "latency [ns]"], rows
        )
        + "\n(finding: naive proactive alignment *increases* demand shifts "
        "on a placement-optimized layout — the placement already encodes "
        "the locality the predictor guesses at; see test_preshift.py for "
        "the ping-pong pattern where pre-shifting does win)",
    )
    by = {r[0]: r for r in rows}
    # Plain demand shifting performs no idle work...
    assert by["none"][2] == 0
    # ...and on a placement-optimized layout it is also the best policy:
    # the layout already puts successive accesses next to the port, so
    # speculative realignment can only lose. This supports the paper's
    # 'placement instead of hardware mitigation' argument (Sec. V).
    assert by["none"][1] <= by["stride"][1] <= by["centre"][1]
    assert by["centre"][2] > 0 and by["stride"][2] > 0
