"""E-T1 — regenerate Table I (memory system parameters).

Timed kernel: the calibrated parameter model across the iso-capacity
sweep, including the interpolation path for non-tabulated DBC counts.
"""

import pytest

from repro.eval.experiments import experiment_table1
from repro.rtm.timing import destiny_params

from _bench_utils import publish


def test_table1_parameters(benchmark):
    result = benchmark(experiment_table1)
    for key, expected in result.paper.items():
        assert result.summary[key] == pytest.approx(expected), key
    publish(result)


def test_table1_interpolation_path(benchmark):
    """Off-anchor queries (the DESTINY substitution's added capability)."""
    def interpolate():
        return [destiny_params(q).leakage_mw for q in (3, 5, 6, 10, 12, 24)]

    values = benchmark(interpolate)
    assert values == sorted(values)  # leakage grows with DBC count
