"""E-F5 — Fig. 5: energy normalized to AFD-OFU, split into
leakage / read-write / shift components.

Shape targets (paper): DMA-OFU and DMA-SR cut total energy substantially
at 2-8 DBCs and modestly at 16; the leakage share grows with the DBC
count; DMA's leakage component drops with runtime.
"""

import pytest

from repro.eval.experiments import experiment_fig5
from repro.rtm.timing import destiny_params

from _bench_utils import PROFILE, publish


def test_fig5_energy_breakdown(benchmark, paper_matrix):
    result = benchmark.pedantic(
        lambda: experiment_fig5(PROFILE, matrix=paper_matrix),
        rounds=1, iterations=1,
    )
    publish(result, max_rows=None)

    from repro.eval.charts import render_stacked_chart
    from _bench_utils import publish_text
    chart_rows = [
        (f"{row[0]} {row[1]}", {"leakage": row[2], "rw": row[3], "shift": row[4]})
        for row in result.rows
    ]
    publish_text(
        "Fig. 5 as a chart (energy normalized to AFD-OFU per config)",
        render_stacked_chart(chart_rows, width=40),
    )

    dbc_counts = sorted({k[2] for k in paper_matrix})
    for q in dbc_counts:
        sr = result.summary[f"dma_sr_energy_saving_pct@{q}"]
        ofu = result.summary[f"dma_ofu_energy_saving_pct@{q}"]
        assert sr >= ofu - 1.0, (
            f"DMA-SR should save at least as much energy as DMA-OFU at {q} DBCs"
        )
        assert sr > 0, f"DMA-SR must save energy at {q} DBCs"
    # Leakage share of the baseline grows with the DBC count (Table I).
    shares = [result.summary[f"leakage_share_afd@{q}"] for q in dbc_counts]
    assert shares[-1] > shares[0]


def test_leakage_power_drives_share(benchmark):
    """Sanity anchor: Table I leakage doubles from 2 to 16 DBCs."""
    ratio = benchmark(
        lambda: destiny_params(16).leakage_mw / destiny_params(2).leakage_mw
    )
    assert ratio == pytest.approx(8.94 / 3.39)
