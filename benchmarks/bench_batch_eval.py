#!/usr/bin/env python
"""Micro-benchmark: batched vs per-candidate placement scoring.

PR 1 vectorized single-placement trace replay; after it, search cost —
scoring thousands of candidate placements one at a time — dominated the
search-based policies. This benchmark tracks the two scoring paths the
batched-evaluation layer replaced:

* **population** — score a GA-sized population of complete placements.
  Baseline: the scalar per-candidate path the pre-refactor local-search
  and enumeration loops used (build a :class:`Placement`, call
  ``shift_cost``). Batched: stack the candidates into ``(K, V)``
  code-indexed arrays and score them through one
  :func:`repro.engine.evaluate_batch` pass — the stacking cost is
  *inside* the timed region, as the searchers pay it per generation.
* **generation** — the GA's own pre/post comparison: per-individual
  Python buffer fill + ``cost_from_arrays`` (the deleted ``fitness``
  loop) vs stacking + one batch pass. Gated as *non-regression* at
  1.3x rather than the 2x the other modes clear comfortably: both
  paths pay the identical per-(candidate, DBC) grouping sort — the
  irreducible kernel — so the batched win is bounded by the old loop's
  per-candidate call overhead (40-60% of its time at suite-median
  sizes) and measures ~1.6-2.2x depending on machine load; the gate
  sits below that band so a loaded CI runner cannot flake on it. The
  chain/map stacking fast path and the bincount boundary derivation
  already shaved what the batch side controls.
* **neighbor** — price transposition moves on one candidate (the
  annealing/2-opt inner loop). Baseline: full rescoring through the
  scalar array kernel per move. Incremental:
  :meth:`repro.engine.DeltaCost.swap_delta`, which touches only the
  access pairs incident to the two swapped variables.

Results go to ``BENCH_batch.json`` so the performance trajectory is
tracked from PR to PR; the script exits non-zero when either speedup
falls below ``--min-speedup`` so CI can gate on it.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_eval.py
    PYTHONPATH=src python benchmarks/bench_batch_eval.py \
        --population 400 --accesses 4000 --out results/BENCH_batch.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.cost import (
    cost_from_arrays,
    shift_cost,
    stack_placement_lists,
)
from repro.core.placement import Placement
from repro.engine import (
    DeltaCost,
    clear_compile_caches,
    evaluate_batch,
    stack_candidate_arrays,
)
from repro.trace.generators.synthetic import zipf_sequence


def random_candidates(sequence, num_dbcs: int, population: int, rng):
    """GA-style candidates: random partition + random intra order each."""
    variables = list(sequence.variables)
    candidates = []
    for _ in range(population):
        assign = rng.integers(0, num_dbcs, len(variables))
        lists = [[] for _ in range(num_dbcs)]
        for v in rng.permutation(len(variables)):
            lists[int(assign[v])].append(variables[int(v)])
        candidates.append(lists)
    return candidates


def best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # Defaults mirror the OffsetStone-like suite's median sequence
    # (~26 variables, ~180-250 accesses at full scale).
    parser.add_argument("--variables", type=int, default=32)
    parser.add_argument("--accesses", type=int, default=250)
    parser.add_argument("--dbcs", type=int, default=8)
    parser.add_argument("--population", type=int, default=200,
                        help="candidates per population pass (the paper's "
                             "GA scores mu + lambda = 200 per generation)")
    parser.add_argument("--moves", type=int, default=2000,
                        help="neighbor transpositions for the delta mode")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail below this speedup on the population/"
                             "neighbor modes (0 disables)")
    parser.add_argument("--min-generation-speedup", type=float, default=1.3,
                        help="non-regression gate for the generation mode, "
                             "margined below the ~1.6x worst observed "
                             "measurement so loaded CI runners don't flake "
                             "(see module docstring; 0 disables)")
    parser.add_argument("--out", default="BENCH_batch.json")
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    sequence = zipf_sequence(args.variables, args.accesses, rng=args.seed)
    candidates = random_candidates(sequence, args.dbcs, args.population, rng)
    codes = sequence.codes
    num_vars = sequence.num_variables
    index_of = sequence.index_of

    # -- population scoring --------------------------------------------------
    def scalar_population():
        # The pre-refactor search-loop path: one Placement + one scalar
        # shift_cost call per candidate. The compile cache is cleared so
        # repeats do not amortize it (search loops never see the same
        # candidate twice either).
        clear_compile_caches()
        return [shift_cost(sequence, Placement(lists)) for lists in candidates]

    def batched_population():
        # Stacking is part of the timed path: searchers rebuild the
        # candidate matrices every generation.
        dbc_of, pos_of = stack_placement_lists(sequence, candidates)
        return evaluate_batch(codes, dbc_of, pos_of, num_dbcs=args.dbcs)

    expected = scalar_population()
    assert list(batched_population()) == expected  # same numbers, always
    t_scalar = best_of(scalar_population, args.repeats)
    t_batch = best_of(batched_population, args.repeats)
    population_row = {
        "mode": "population",
        "candidates": args.population,
        "scalar_s": t_scalar,
        "batch_s": t_batch,
        "scalar_candidates_per_s": args.population / t_scalar,
        "batch_candidates_per_s": args.population / t_batch,
        "speedup": t_scalar / t_batch,
    }

    # -- GA generation scoring (pre/post fitness path, informational) --------
    code_candidates = [
        [[index_of(v) for v in dbc] for dbc in lists] for lists in candidates
    ]

    def old_fitness_loop():
        # The deleted GeneticPlacer.fitness: per-variable Python buffer
        # fill, then the scalar array kernel, per individual.
        dbc_buf = np.zeros(num_vars, dtype=np.int64)
        pos_buf = np.zeros(num_vars, dtype=np.int64)
        out = []
        for ind in code_candidates:
            for i, dbc in enumerate(ind):
                for k, v in enumerate(dbc):
                    dbc_buf[v] = i
                    pos_buf[v] = k
            out.append(cost_from_arrays(codes, dbc_buf, pos_buf, args.dbcs))
        return out

    def new_generation_pass():
        # GA individuals are already code lists; no name mapping occurs.
        dbc_of, pos_of = stack_candidate_arrays(code_candidates, num_vars)
        return evaluate_batch(codes, dbc_of, pos_of, num_dbcs=args.dbcs)

    assert old_fitness_loop() == list(new_generation_pass())
    t_old = best_of(old_fitness_loop, args.repeats)
    t_new = best_of(new_generation_pass, args.repeats)
    generation_row = {
        "mode": "generation",
        "candidates": args.population,
        "scalar_s": t_old,
        "batch_s": t_new,
        "speedup": t_old / t_new,
        "gated": bool(args.min_generation_speedup),
        "min_speedup": args.min_generation_speedup,
    }

    # -- neighbor-move pricing -----------------------------------------------
    moves = [
        (int(a), int(b))
        for a, b in (
            rng.choice(sequence.num_variables, 2, replace=False)
            for _ in range(args.moves)
        )
    ]
    base_dbc, base_pos = stack_placement_lists(sequence, candidates[:1])
    base_dbc, base_pos = base_dbc[0], base_pos[0]

    def full_rescore():
        pos = base_pos.copy()
        total = 0
        for u, v in moves:
            pos[u], pos[v] = pos[v], pos[u]
            total += cost_from_arrays(codes, base_dbc, pos, args.dbcs)
            pos[u], pos[v] = pos[v], pos[u]
        return total

    def delta_rescore():
        evaluator = DeltaCost(codes, base_dbc, base_pos)
        base = evaluator.cost
        return sum(base + evaluator.swap_delta(u, v) for u, v in moves)

    assert full_rescore() == delta_rescore()  # exact agreement per move
    t_full = best_of(full_rescore, args.repeats)
    t_delta = best_of(delta_rescore, args.repeats)
    neighbor_row = {
        "mode": "neighbor",
        "moves": args.moves,
        "full_s": t_full,
        "delta_s": t_delta,
        "full_moves_per_s": args.moves / t_full,
        "delta_moves_per_s": args.moves / t_delta,
        "speedup": t_full / t_delta,
    }

    for row in (population_row, generation_row, neighbor_row):
        print(f"{row['mode']}: speedup {row['speedup']:.1f}x")
    payload = {
        "benchmark": "batched_candidate_evaluation",
        "variables": args.variables,
        "accesses": args.accesses,
        "dbcs": args.dbcs,
        "repeats": args.repeats,
        "results": [population_row, generation_row, neighbor_row],
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    failures = []
    if args.min_speedup:
        failures += [
            f"{row['mode']} ({row['speedup']:.1f}x < {args.min_speedup}x)"
            for row in (population_row, neighbor_row)
            if row["speedup"] < args.min_speedup
        ]
    if args.min_generation_speedup and \
            generation_row["speedup"] < args.min_generation_speedup:
        failures.append(
            f"generation ({generation_row['speedup']:.1f}x < "
            f"{args.min_generation_speedup}x)"
        )
    if failures:
        print(f"FAIL: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
