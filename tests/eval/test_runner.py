"""Unit tests for the experiment matrix runner."""

import pytest

from repro.core.policies import get_policy
from repro.eval.profiles import EvalProfile
from repro.eval.runner import (
    build_policies,
    load_suite,
    run_matrix,
    run_policy_on_program,
)
from repro.rtm.geometry import iso_capacity_sweep
from repro.trace.generators.offsetstone import load_benchmark

TINY = EvalProfile(
    name="tiny",
    suite_scale=0.12,
    ga_options={"mu": 6, "lam": 6, "generations": 3},
    rw_iterations=20,
    benchmarks=("adpcm", "dct"),
)


@pytest.fixture(scope="module")
def tiny_matrix():
    return run_matrix(("AFD-OFU", "DMA-SR"), TINY,
                      configs=iso_capacity_sweep(dbc_counts=(2, 4)))


class TestRunPolicyOnProgram:
    def test_cell_aggregates_all_traces(self):
        bench = load_benchmark("adpcm", scale=0.12, seed=TINY.seed)
        config = iso_capacity_sweep(dbc_counts=(4,))[0]
        cell = run_policy_on_program(bench, get_policy("DMA-SR"), config)
        assert cell.report.accesses == bench.total_accesses
        assert cell.benchmark == "adpcm"
        assert cell.dbcs == 4
        assert cell.policy == "DMA-SR"

    def test_analytic_equals_simulated_shifts(self):
        bench = load_benchmark("dct", scale=0.12, seed=TINY.seed)
        config = iso_capacity_sweep(dbc_counts=(4,))[0]
        cell = run_policy_on_program(bench, get_policy("AFD-OFU"), config)
        assert cell.shifts == cell.report.shifts


class TestRunMatrix:
    def test_all_cells_present(self, tiny_matrix):
        keys = set(tiny_matrix)
        assert ("adpcm", "AFD-OFU", 2) in keys
        assert ("dct", "DMA-SR", 4) in keys
        assert len(keys) == 2 * 2 * 2

    def test_cells_deterministic_across_runs(self, tiny_matrix):
        again = run_matrix(("AFD-OFU", "DMA-SR"), TINY,
                           configs=iso_capacity_sweep(dbc_counts=(2, 4)))
        for key, cell in tiny_matrix.items():
            assert again[key].shifts == cell.shifts

    def test_metrics_positive(self, tiny_matrix):
        for cell in tiny_matrix.values():
            assert cell.report.runtime_ns > 0
            assert cell.report.total_energy_pj > 0


class TestBuildPolicies:
    def test_profile_budgets_applied(self):
        policies = build_policies(("GA", "RW", "DMA-SR"), TINY)
        names = [p.name for p in policies]
        assert names == ["GA", "RW", "DMA-SR"]

    def test_load_suite_respects_benchmark_list(self):
        suite = load_suite(TINY)
        assert [b.name for b in suite] == ["adpcm", "dct"]
