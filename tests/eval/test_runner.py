"""Unit tests for the experiment matrix runner."""

import pytest

from repro.core.policies import get_policy
from repro.errors import ExperimentError
from repro.eval.profiles import EvalProfile
from repro.eval.runner import (
    build_policies,
    clear_cell_cache,
    load_suite,
    policy_specs,
    run_matrix,
    run_policy_on_program,
)
from repro.rtm.geometry import iso_capacity_sweep
from repro.trace.generators.offsetstone import load_benchmark

TINY = EvalProfile(
    name="tiny",
    suite_scale=0.12,
    ga_options={"mu": 6, "lam": 6, "generations": 3},
    rw_iterations=20,
    benchmarks=("adpcm", "dct"),
)


@pytest.fixture(scope="module")
def tiny_matrix():
    return run_matrix(("AFD-OFU", "DMA-SR"), TINY,
                      configs=iso_capacity_sweep(dbc_counts=(2, 4)))


class TestRunPolicyOnProgram:
    def test_cell_aggregates_all_traces(self):
        bench = load_benchmark("adpcm", scale=0.12, seed=TINY.seed)
        config = iso_capacity_sweep(dbc_counts=(4,))[0]
        cell = run_policy_on_program(bench, get_policy("DMA-SR"), config)
        assert cell.report.accesses == bench.total_accesses
        assert cell.benchmark == "adpcm"
        assert cell.dbcs == 4
        assert cell.policy == "DMA-SR"

    def test_analytic_equals_simulated_shifts(self):
        bench = load_benchmark("dct", scale=0.12, seed=TINY.seed)
        config = iso_capacity_sweep(dbc_counts=(4,))[0]
        cell = run_policy_on_program(bench, get_policy("AFD-OFU"), config)
        assert cell.shifts == cell.report.shifts


class TestRunMatrix:
    def test_all_cells_present(self, tiny_matrix):
        keys = set(tiny_matrix)
        assert ("adpcm", "AFD-OFU", 2) in keys
        assert ("dct", "DMA-SR", 4) in keys
        assert len(keys) == 2 * 2 * 2

    def test_cells_deterministic_across_runs(self, tiny_matrix):
        again = run_matrix(("AFD-OFU", "DMA-SR"), TINY,
                           configs=iso_capacity_sweep(dbc_counts=(2, 4)))
        for key, cell in tiny_matrix.items():
            assert again[key].shifts == cell.shifts

    def test_metrics_positive(self, tiny_matrix):
        for cell in tiny_matrix.values():
            assert cell.report.runtime_ns > 0
            assert cell.report.total_energy_pj > 0


class TestBuildPolicies:
    def test_profile_budgets_applied(self):
        policies = build_policies(("GA", "RW", "DMA-SR"), TINY)
        names = [p.name for p in policies]
        assert names == ["GA", "RW", "DMA-SR"]

    def test_load_suite_respects_benchmark_list(self):
        suite = load_suite(TINY)
        assert [b.name for b in suite] == ["adpcm", "dct"]

    def test_specs_are_picklable_recipes(self):
        import pickle
        specs = policy_specs(("GA", "RW", "DMA-SR"), TINY)
        assert specs == [
            ("GA", {"mu": 6, "lam": 6, "generations": 3}),
            ("RW", {"iterations": 20}),
            ("DMA-SR", {}),
        ]
        rebuilt = [get_policy(n, **kw) for n, kw in pickle.loads(
            pickle.dumps(specs))]
        assert [p.name for p in rebuilt] == ["GA", "RW", "DMA-SR"]

    def test_search_scale_grows_ga_population_and_rw_budget(self):
        from dataclasses import replace
        scaled = replace(TINY, search_scale=3.0)
        specs = dict(policy_specs(("GA", "RW", "DMA-SR"), scaled))
        assert specs["GA"]["mu"] == 18
        assert specs["GA"]["lam"] == 18
        assert specs["GA"]["generations"] == 3  # iterations not scaled
        assert specs["RW"]["iterations"] == 60
        assert specs["DMA-SR"] == {}

    def test_search_scale_uses_paper_defaults_when_unset(self):
        from dataclasses import replace
        scaled = replace(TINY, ga_options={}, search_scale=0.5)
        specs = dict(policy_specs(("GA",), scaled))
        assert specs["GA"] == {"mu": 50, "lam": 50}

    def test_default_scale_leaves_specs_untouched(self):
        # The matrix runner's cell cache keys hash the specs; scale 1.0
        # must be a no-op so existing cached cells stay valid.
        assert policy_specs(("GA", "RW"), TINY) == [
            ("GA", {"mu": 6, "lam": 6, "generations": 3}),
            ("RW", {"iterations": 20}),
        ]


class TestParallelMatrix:
    CONFIGS = iso_capacity_sweep(dbc_counts=(2, 4))
    # GA/RW exercise the per-cell RNG streams; DMA-SR the deterministic path.
    POLICIES = ("DMA-SR", "GA", "RW")

    def test_workers_do_not_change_results(self):
        serial = run_matrix(self.POLICIES, TINY, configs=self.CONFIGS,
                            workers=1, use_cache=False)
        parallel = run_matrix(self.POLICIES, TINY, configs=self.CONFIGS,
                              workers=4, use_cache=False)
        assert set(serial) == set(parallel)
        for key, cell in serial.items():
            other = parallel[key]
            assert other.shifts == cell.shifts
            assert other.report == cell.report  # bit-identical, floats too

    def test_backends_agree_through_the_matrix(self):
        ref = run_matrix(("DMA-SR",), TINY, configs=self.CONFIGS,
                         backend="reference", use_cache=False)
        vec = run_matrix(("DMA-SR",), TINY, configs=self.CONFIGS,
                         backend="numpy", use_cache=False)
        for key, cell in ref.items():
            assert vec[key].shifts == cell.shifts
            assert vec[key].report == cell.report

    def test_workers_zero_means_all_cores(self):
        cells = run_matrix(("DMA-SR",), TINY,
                           configs=iso_capacity_sweep(dbc_counts=(2,)),
                           workers=0, use_cache=False)
        assert len(cells) == 2

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            run_matrix(("DMA-SR",), TINY, configs=self.CONFIGS, workers=-1)


class TestCellCache:
    CONFIGS = iso_capacity_sweep(dbc_counts=(2,))

    def test_repeat_runs_served_from_cache(self, monkeypatch):
        clear_cell_cache()
        first = run_matrix(("DMA-SR", "GA"), TINY, configs=self.CONFIGS,
                           use_cache=True)

        def boom(*args, **kwargs):  # any recomputation is a cache miss
            raise AssertionError("cell recomputed despite cache")

        monkeypatch.setattr("repro.eval.runner.run_policy_on_program", boom)
        again = run_matrix(("DMA-SR", "GA"), TINY, configs=self.CONFIGS,
                           use_cache=True)
        assert set(again) == set(first)
        for key, cell in first.items():
            assert again[key].report == cell.report

    def test_deterministic_cells_shared_across_matrix_shapes(self, monkeypatch):
        # Policy subsets reshuffle seed streams; deterministic cells must
        # still hit (their key omits the seed), stochastic ones must not.
        clear_cell_cache()
        run_matrix(("DMA-SR", "GA"), TINY, configs=self.CONFIGS,
                   use_cache=True)
        calls = []
        import repro.eval.runner as runner_module
        real = run_policy_on_program

        def spy(program, policy, config, **kwargs):
            calls.append(policy.name)
            return real(program, policy, config, **kwargs)

        monkeypatch.setattr(runner_module, "run_policy_on_program", spy)
        run_matrix(("AFD-OFU", "DMA-SR"), TINY, configs=self.CONFIGS,
                   use_cache=True)
        assert "DMA-SR" not in calls  # reused despite the new matrix shape
        assert "AFD-OFU" in calls

    def test_cache_can_be_bypassed(self, monkeypatch):
        clear_cell_cache()
        run_matrix(("DMA-SR",), TINY, configs=self.CONFIGS, use_cache=True)
        calls = []
        import repro.eval.runner as runner_module
        real = run_policy_on_program

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "run_policy_on_program", spy)
        run_matrix(("DMA-SR",), TINY, configs=self.CONFIGS, use_cache=False)
        assert calls  # recomputed


class TestFaultedMatrix:
    CONFIGS = iso_capacity_sweep(dbc_counts=(2, 4))

    def _faulted(self, **kw):
        from dataclasses import replace

        return replace(TINY, fault_rate=0.05, **kw)

    def test_workers_do_not_change_faulted_results(self):
        profile = self._faulted(scrub_interval=50)
        serial = run_matrix(("DMA-SR",), profile, configs=self.CONFIGS,
                            workers=1, use_cache=False)
        parallel = run_matrix(("DMA-SR",), profile, configs=self.CONFIGS,
                              workers=2, use_cache=False)
        assert set(serial) == set(parallel)
        for key, cell in serial.items():
            assert parallel[key].report == cell.report
        assert any(c.report.fault_injected for c in serial.values())

    def test_backends_agree_on_faulted_cells(self):
        profile = self._faulted()
        ref = run_matrix(("DMA-SR",), profile, configs=self.CONFIGS,
                         backend="reference", use_cache=False)
        vec = run_matrix(("DMA-SR",), profile, configs=self.CONFIGS,
                         backend="numpy", use_cache=False)
        for key, cell in ref.items():
            assert vec[key].report == cell.report

    def test_invalid_fault_rate_fails_pointedly(self):
        from dataclasses import replace

        with pytest.raises(ExperimentError, match="fault_rate"):
            run_matrix(("DMA-SR",), replace(TINY, fault_rate=2.0),
                       configs=self.CONFIGS, use_cache=False)

    def test_scrub_without_fault_fails_pointedly(self):
        from dataclasses import replace

        with pytest.raises(ExperimentError, match="scrub_interval"):
            run_matrix(("DMA-SR",), replace(TINY, scrub_interval=10),
                       configs=self.CONFIGS, use_cache=False)
