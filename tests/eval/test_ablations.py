"""Unit tests for the library-level ablation experiments."""

from repro.eval.ablations import (
    ablation_faults,
    ablation_multiset,
    ablation_ports,
    ablation_swapping,
)
from repro.eval.profiles import EvalProfile

TINY = EvalProfile(
    name="tiny", suite_scale=0.12, rw_iterations=10,
    benchmarks=("cc65", "jpeg"),
)


class TestPorts:
    def test_structure_and_relations(self):
        result = ablation_ports(TINY, benchmarks=("cc65",), ports=(1, 2))
        assert len(result.rows) == 2
        for pt in (1, 2):
            assert result.summary[f"dma_sr_vs_afd_x@{pt}p"] > 0.8

    def test_more_ports_never_increase_cost(self):
        result = ablation_ports(TINY, benchmarks=("jpeg",), ports=(1, 2, 4))
        for column in range(1, 4):
            values = [row[column] for row in result.rows]
            assert values == sorted(values, reverse=True)


class TestMultiset:
    def test_extension_wins_on_phased(self):
        result = ablation_multiset(TINY, seeds=(0, 1))
        assert result.summary["multi_vs_single_x"] > 1.0

    def test_rows_per_seed(self):
        result = ablation_multiset(TINY, seeds=(0, 1, 2))
        assert len(result.rows) == 3


class TestSwapping:
    def test_static_dma_beats_swapped_afd(self):
        result = ablation_swapping(TINY, benchmark="cc65")
        assert result.summary["dma_vs_swapped_afd_x"] >= 1.0

    def test_rows_cover_all_schemes(self):
        result = ablation_swapping(TINY, benchmark="jpeg")
        assert [r[0] for r in result.rows] == \
            ["AFD-OFU", "AFD-OFU+swap", "DMA-SR"]


class TestDbcSweep:
    def test_sweep_covers_interpolated_points(self):
        from repro.eval.ablations import ablation_dbc_sweep
        result = ablation_dbc_sweep(TINY, benchmarks=("cc65",),
                                    dbc_counts=(2, 4, 8))
        assert [row[0] for row in result.rows] == [2, 4, 8]
        assert result.summary["best_energy_dbcs"] in (2.0, 4.0, 8.0)

    def test_iso_capacity_maintained(self):
        from repro.eval.ablations import ablation_dbc_sweep
        result = ablation_dbc_sweep(TINY, benchmarks=("cc65",),
                                    dbc_counts=(2, 4, 8, 16))
        for row in result.rows:
            assert row[0] * row[1] * 32 == 4096 * 8

    def test_odd_splits_skipped(self):
        from repro.eval.ablations import ablation_dbc_sweep
        result = ablation_dbc_sweep(TINY, benchmarks=("cc65",),
                                    dbc_counts=(3, 4))  # 3 doesn't divide
        assert [row[0] for row in result.rows] == [4]


class TestFaults:
    def test_structure_and_ranking(self):
        result = ablation_faults(TINY, benchmarks=("cc65",),
                                 rates=(0.0, 0.05))
        assert len(result.rows) == 2 * 3  # rates x policies
        ranks = sorted(
            int(v) for k, v in result.summary.items() if k.startswith("rank_")
        )
        assert ranks == [1, 2, 3]
        assert result.summary["top_rate"] == 0.05
        assert "Most graceful" in result.notes

    def test_clean_rows_observe_nothing(self):
        result = ablation_faults(TINY, benchmarks=("cc65",),
                                 rates=(0.0, 0.05))
        clean = [r for r in result.rows if r[0] == "0"]
        assert clean and all(
            r[3] == 0 and r[4] == 0 and r[6] == "no" for r in clean
        )

    def test_faults_never_change_charged_shifts(self):
        """The believed-dynamics invariance, observed end to end."""
        result = ablation_faults(TINY, benchmarks=("jpeg",),
                                 rates=(0.0, 0.1))
        by_policy = {}
        for rate, policy, shifts, *_rest in result.rows:
            by_policy.setdefault(policy, set()).add(shifts)
        for policy, shift_counts in by_policy.items():
            assert len(shift_counts) == 1, policy

    def test_scrubbing_charges_extra_shifts(self):
        result = ablation_faults(TINY, benchmarks=("cc65",),
                                 rates=(0.05,), scrub_interval=25)
        assert any(row[3] > 0 for row in result.rows)  # scrub shifts
        assert "scrub every 25" in result.title


class TestGraphDot:
    def test_dot_export(self, fig3_sequence):
        from repro.trace.graph import AccessGraph
        dot = AccessGraph(fig3_sequence).to_dot()
        assert dot.startswith("graph access_graph {")
        assert '"a" -- "b"' in dot or '"b" -- "a"' in dot
        assert dot.rstrip().endswith("}")


class TestCLIWiring:
    def test_cli_runs_ablation(self, capsys, monkeypatch):
        from repro.cli import main_experiment
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert main_experiment(["ablation-multiset"]) == 0
        out = capsys.readouterr().out
        assert "Multi-set DMA" in out
