"""Unit tests for eval metrics helpers and util.mathx."""

import pytest

from repro.eval.metrics import (
    benchmarks_of,
    dbc_counts_of,
    geomean_shift_ratio,
    policies_of,
    shift_ratio,
    total_metric,
)
from repro.eval.runner import CellResult
from repro.rtm.report import SimReport
from repro.util.mathx import (
    geometric_mean,
    improvement_factor,
    normalize_to,
    percent_improvement,
    safe_div,
)


def _cell(bench, policy, dbcs, shifts, runtime=100.0):
    report = SimReport(
        dbcs=dbcs, accesses=10, reads=8, writes=2, shifts=shifts,
        runtime_ns=runtime, read_energy_pj=1.0, write_energy_pj=1.0,
        shift_energy_pj=float(shifts), leakage_energy_pj=5.0, area_mm2=0.01,
    )
    return CellResult(bench, policy, dbcs, shifts, report)


@pytest.fixture
def matrix():
    return {
        ("x", "A", 2): _cell("x", "A", 2, 40),
        ("x", "B", 2): _cell("x", "B", 2, 10),
        ("y", "A", 2): _cell("y", "A", 2, 90),
        ("y", "B", 2): _cell("y", "B", 2, 30),
    }


class TestMathx:
    def test_safe_div(self):
        assert safe_div(10, 2) == 5
        assert safe_div(10, 0, default=7.5) == 7.5

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([3]) == pytest.approx(3.0)

    def test_geometric_mean_clamps_zeros(self):
        assert geometric_mean([0.0, 4.0]) > 0

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    def test_normalize_to(self):
        normed = normalize_to({"a": 10.0, "b": 5.0}, "a")
        assert normed == {"a": 1.0, "b": 0.5}
        with pytest.raises(KeyError):
            normalize_to({"a": 1.0}, "zz")

    def test_improvement_factor(self):
        assert improvement_factor(39, 11) == pytest.approx(3.545, abs=1e-3)
        assert improvement_factor(0, 0) == 1.0
        assert improvement_factor(5, 0) == float("inf")

    def test_percent_improvement(self):
        assert percent_improvement(100, 50) == 50.0
        assert percent_improvement(0, 10) == 0.0


class TestMatrixHelpers:
    def test_introspection(self, matrix):
        assert benchmarks_of(matrix) == ["x", "y"]
        assert policies_of(matrix) == ["A", "B"]
        assert dbc_counts_of(matrix) == [2]

    def test_shift_ratio(self, matrix):
        assert shift_ratio(matrix, "x", "A", "B", 2) == 4.0

    def test_shift_ratio_degenerate(self):
        m = {
            ("x", "A", 2): _cell("x", "A", 2, 0),
            ("x", "B", 2): _cell("x", "B", 2, 0),
        }
        assert shift_ratio(m, "x", "A", "B", 2) == 1.0

    def test_geomean_shift_ratio(self, matrix):
        assert geomean_shift_ratio(matrix, "A", "B", 2) == pytest.approx(
            (4.0 * 3.0) ** 0.5
        )

    def test_total_metric_plain(self, matrix):
        assert total_metric(matrix, "A", 2, "shifts") == 130

    def test_total_metric_report_attr(self, matrix):
        assert total_metric(matrix, "A", 2, "report.leakage_energy_pj") == 10.0
