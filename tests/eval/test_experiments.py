"""Unit tests for the experiment definitions (table/figure regeneration)."""

import pytest

from repro.eval.experiments import (
    experiment_fig3,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6,
    experiment_sec4b_gap,
    experiment_sec4c,
    experiment_table1,
    fig3_sequence,
)
from repro.eval.profiles import EvalProfile
from repro.eval.reporting import render_experiment, save_experiment
from repro.eval.runner import run_matrix

TINY = EvalProfile(
    name="tiny",
    suite_scale=0.12,
    ga_options={"mu": 8, "lam": 8, "generations": 4},
    rw_iterations=30,
    benchmarks=("adpcm", "bison", "jpeg"),
)


@pytest.fixture(scope="module")
def tiny_matrix():
    policies = ("AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR", "GA", "RW")
    return run_matrix(policies, TINY)


class TestTable1:
    def test_values_match_paper_exactly(self):
        result = experiment_table1()
        for key, expected in result.paper.items():
            assert result.summary[key] == pytest.approx(expected), key

    def test_all_nine_rows(self):
        assert len(experiment_table1().rows) == 9


class TestFig3:
    def test_headline_numbers(self):
        result = experiment_fig3()
        assert result.summary["afd_total"] == 39
        assert result.summary["afd_s0"] == 24
        assert result.summary["afd_s1"] == 15
        assert result.summary["vdj_freq_sum"] == 11
        assert result.summary["dma_total"] == 10
        assert result.summary["improvement_x"] >= 3.54

    def test_sequence_matches_conftest(self, fig3_sequence_fixture=None):
        assert "".join(fig3_sequence().accesses) == "ababcacaddaiefefgeghgihi"


class TestFig4:
    def test_ga_normalization_is_identity(self, tiny_matrix):
        result = experiment_fig4(TINY, matrix=tiny_matrix)
        for q in (2, 4, 8, 16):
            assert result.summary[f"norm_GA@{q}"] == pytest.approx(1.0)

    def test_rows_cover_benchmarks_and_configs(self, tiny_matrix):
        result = experiment_fig4(TINY, matrix=tiny_matrix)
        assert len(result.rows) == len(TINY.benchmarks) * 4

    def test_dma_improves_on_afd(self, tiny_matrix):
        result = experiment_fig4(TINY, matrix=tiny_matrix)
        improvements = [
            result.summary[f"dma_vs_afd_x@{q}"] for q in (4, 8, 16)
        ]
        assert all(x >= 0.95 for x in improvements)
        assert max(x for x in improvements) > 1.05

    def test_paper_keys_have_measurements(self, tiny_matrix):
        result = experiment_fig4(TINY, matrix=tiny_matrix)
        for key in result.paper:
            assert key in result.summary


class TestFig5:
    def test_afd_total_normalized_to_one(self, tiny_matrix):
        result = experiment_fig5(TINY, matrix=tiny_matrix)
        afd_rows = [r for r in result.rows if r[1] == "AFD-OFU"]
        for row in afd_rows:
            assert row[5] == pytest.approx(1.0)

    def test_dma_sr_saves_energy(self, tiny_matrix):
        result = experiment_fig5(TINY, matrix=tiny_matrix)
        for q in (2, 4, 8):
            assert result.summary[f"dma_sr_energy_saving_pct@{q}"] > 0

    def test_breakdown_sums_to_total(self, tiny_matrix):
        result = experiment_fig5(TINY, matrix=tiny_matrix)
        for row in result.rows:
            assert row[2] + row[3] + row[4] == pytest.approx(row[5], abs=1e-3)

    def test_leakage_share_grows_with_dbcs(self, tiny_matrix):
        result = experiment_fig5(TINY, matrix=tiny_matrix)
        shares = [result.summary[f"leakage_share_afd@{q}"] for q in (2, 16)]
        assert shares[1] > shares[0]


class TestFig6:
    def test_area_column_matches_table1_ratios(self, tiny_matrix):
        result = experiment_fig6(TINY, matrix=tiny_matrix)
        assert result.summary["area_x@2"] == pytest.approx(1.0)
        assert result.summary["area_x@16"] == pytest.approx(0.0279 / 0.0159)

    def test_area_rises_with_dbc_count(self, tiny_matrix):
        result = experiment_fig6(TINY, matrix=tiny_matrix)
        areas = [result.summary[f"area_x@{q}"] for q in (2, 4, 8, 16)]
        assert areas == sorted(areas)

    def test_best_energy_config_not_extreme(self, tiny_matrix):
        result = experiment_fig6(TINY, matrix=tiny_matrix)
        assert result.summary["best_energy_dbcs"] in (2.0, 4.0, 8.0, 16.0)


class TestSec4c:
    def test_rows_for_three_policies(self, tiny_matrix):
        result = experiment_sec4c(TINY, matrix=tiny_matrix)
        assert [r[0] for r in result.rows] == ["DMA-OFU", "DMA-Chen", "DMA-SR"]

    def test_sr_improves_latency_somewhere(self, tiny_matrix):
        result = experiment_sec4c(TINY, matrix=tiny_matrix)
        values = [result.summary[f"dma_sr_latency_pct@{q}"] for q in (2, 4, 8, 16)]
        assert max(values) > 0


class TestSec4bGap:
    def test_gap_experiment_runs(self):
        result = experiment_sec4b_gap(TINY, num_dbcs=4, long_generations=6)
        assert "heuristic_gap_pct" in result.summary
        assert result.summary["ga_cost"] <= result.summary["best_heuristic_cost"]

    def test_invalid_dbcs_rejected(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            experiment_sec4b_gap(TINY, num_dbcs=5)


class TestReporting:
    def test_render_contains_paper_vs_measured(self, tiny_matrix):
        result = experiment_fig4(TINY, matrix=tiny_matrix)
        text = render_experiment(result)
        assert "paper vs measured" in text
        assert "dma_vs_afd_x@4" in text

    def test_render_truncation(self, tiny_matrix):
        result = experiment_fig4(TINY, matrix=tiny_matrix)
        text = render_experiment(result, max_rows=2)
        assert "more rows" in text

    def test_save_experiment_writes_file(self, tmp_path):
        result = experiment_table1()
        path = save_experiment(result, results_dir=tmp_path)
        assert path.exists()
        assert "Table I" in path.read_text()
