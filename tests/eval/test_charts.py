"""Unit tests for the ASCII chart renderers."""

import pytest

from repro.errors import ExperimentError
from repro.eval.charts import (
    render_bar_chart,
    render_series_chart,
    render_stacked_chart,
)


class TestBarChart:
    def test_scaling_to_peak(self):
        text = render_bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_unit(self):
        text = render_bar_chart([("x", 1.0)], title="T", unit=" pJ")
        assert text.splitlines()[0] == "T"
        assert "pJ" in text

    def test_zero_value_gets_no_bar(self):
        text = render_bar_chart([("a", 1.0), ("z", 0.0)], width=8)
        assert "|        |" in text.splitlines()[1]

    def test_all_zero_safe(self):
        render_bar_chart([("a", 0.0)])

    def test_validation(self):
        with pytest.raises(ExperimentError):
            render_bar_chart([])
        with pytest.raises(ExperimentError):
            render_bar_chart([("a", -1.0)])


class TestStackedChart:
    def test_segments_and_legend(self):
        text = render_stacked_chart(
            [("row", {"leak": 2.0, "shift": 2.0})], width=10
        )
        assert "#####=====" in text
        assert "legend: #=leak  ==shift" in text

    def test_rows_share_scale(self):
        text = render_stacked_chart(
            [("big", {"a": 10.0}), ("small", {"a": 5.0})], width=10
        )
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_missing_series_treated_as_zero(self):
        text = render_stacked_chart(
            [("r1", {"a": 1.0}), ("r2", {"b": 1.0})], width=8
        )
        assert "legend" in text

    def test_too_many_series_rejected(self):
        parts = {f"s{i}": 1.0 for i in range(9)}
        with pytest.raises(ExperimentError):
            render_stacked_chart([("r", parts)])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_stacked_chart([])


class TestSeriesChart:
    def test_grouped_layout(self):
        text = render_series_chart(
            ["shifts", "energy"],
            {"2": [1.0, 2.0], "4": [2.0, 1.0]},
            width=8,
        )
        assert "shifts:" in text and "energy:" in text
        assert text.count("|") == 8  # 2 groups x 2 series x 2 pipes

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            render_series_chart(["x"], {"s": [1.0, 2.0]})

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            render_series_chart(["x"], {"s": [-1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_series_chart([], {})
