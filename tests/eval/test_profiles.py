"""Unit tests for evaluation profiles."""

import pytest

from repro.errors import ExperimentError
from repro.eval.profiles import (
    FULL_PROFILE,
    QUICK_PROFILE,
    SMOKE_PROFILE,
    profile_from_env,
)


class TestProfiles:
    def test_full_uses_paper_budgets(self):
        assert FULL_PROFILE.suite_scale == 1.0
        assert FULL_PROFILE.ga_options == {}
        assert FULL_PROFILE.rw_iterations == 60_000
        assert len(FULL_PROFILE.benchmarks) == 31

    def test_quick_scales_down(self):
        assert QUICK_PROFILE.suite_scale < 1.0
        assert QUICK_PROFILE.ga_options["generations"] < 200
        assert QUICK_PROFILE.rw_iterations < 60_000

    def test_rw_budget_matches_ga_upper_bound_quick(self):
        ga = QUICK_PROFILE.ga_options
        upper = ga["generations"] * (ga["mu"] + ga["lam"])
        assert QUICK_PROFILE.rw_iterations == upper

    def test_smoke_subset(self):
        assert set(SMOKE_PROFILE.benchmarks) < set(FULL_PROFILE.benchmarks)

    def test_describe(self):
        assert "quick" in QUICK_PROFILE.describe()


class TestEnvSelection:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_from_env().name == "quick"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert profile_from_env().name == "smoke"

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", " FULL ")
        assert profile_from_env().name == "full"

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "warp9")
        with pytest.raises(ExperimentError):
            profile_from_env()


class TestFaultKnobs:
    def test_defaults_are_clean(self):
        assert QUICK_PROFILE.fault_rate == 0.0
        assert QUICK_PROFILE.scrub_interval is None

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.01")
        monkeypatch.setenv("REPRO_SCRUB_INTERVAL", "500")
        profile = profile_from_env()
        assert profile.fault_rate == 0.01
        assert profile.scrub_interval == 500

    @pytest.mark.parametrize("rate", ["lots", "-0.1", "1.5", "nan", "inf"])
    def test_env_rejects_bad_rate(self, monkeypatch, rate):
        monkeypatch.setenv("REPRO_FAULT_RATE", rate)
        with pytest.raises(ExperimentError, match="REPRO_FAULT_RATE"):
            profile_from_env()

    @pytest.mark.parametrize("interval", ["soon", "0", "-5"])
    def test_env_rejects_bad_interval(self, monkeypatch, interval):
        monkeypatch.setenv("REPRO_SCRUB_INTERVAL", interval)
        with pytest.raises(ExperimentError, match="REPRO_SCRUB_INTERVAL"):
            profile_from_env()

    def test_env_scrub_alone_passes_parse(self, monkeypatch):
        """scrub-without-fault is rejected downstream (CLI/run_matrix),
        not here: the CLI may still supply --fault-rate on top."""
        monkeypatch.setenv("REPRO_SCRUB_INTERVAL", "100")
        assert profile_from_env().scrub_interval == 100

    def test_describe_mentions_faults(self):
        from dataclasses import replace
        faulted = replace(QUICK_PROFILE, fault_rate=0.01, scrub_interval=200)
        assert "fault rate 0.01" in faulted.describe()
        assert "scrub every 200" in faulted.describe()
        assert "fault" not in QUICK_PROFILE.describe()


class TestSearchScale:
    def test_default_is_one(self):
        assert QUICK_PROFILE.search_scale == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_SCALE", "2.5")
        assert profile_from_env().search_scale == 2.5

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_SCALE", "plenty")
        with pytest.raises(ExperimentError):
            profile_from_env()

    def test_env_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_SCALE", "0")
        with pytest.raises(ExperimentError):
            profile_from_env()

    def test_describe_mentions_scale(self):
        from dataclasses import replace
        scaled = replace(QUICK_PROFILE, search_scale=4.0)
        assert "x4" in scaled.describe()
        assert "search" not in QUICK_PROFILE.describe()
