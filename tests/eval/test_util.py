"""Unit tests for table rendering and RNG utilities."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rng
from repro.util.tables import format_markdown_table, format_table


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seeds(self):
        a, b = ensure_rng(5), ensure_rng(5)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSpawnRng:
    def test_children_independent_and_reproducible(self):
        kids1 = spawn_rng(np.random.default_rng(1), 3)
        kids2 = spawn_rng(np.random.default_rng(1), 3)
        draws1 = [k.integers(0, 1000) for k in kids1]
        draws2 = [k.integers(0, 1000) for k in kids2]
        assert draws1 == draws2
        assert len(set(draws1)) > 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(np.random.default_rng(0), -1)

    def test_zero_count(self):
        assert spawn_rng(np.random.default_rng(0), 0) == []


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "--" in lines[1]

    def test_title(self):
        text = format_table(["c"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_numeric_right_aligned(self):
        text = format_table(["v"], [[1], [100]])
        rows = text.splitlines()[-2:]
        assert rows[0].endswith("1")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159265]])
        assert "3.142" in text

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])
