"""Integration tests: the matrix runner on top of the persistent store.

Covers the PR's acceptance semantics: hit/miss counters split by cache
layer, kill-and-resume equal to a cold run bit-identically, disjoint
shards whose union (and whose merged stores) reproduce the unsharded
matrix, offline regeneration, and schema-version invalidation through
the runner.
"""

import pytest

import repro.eval.runner as runner_module
from repro.errors import ExperimentError
from repro.eval.experiments import experiment_fig4, populate_matrix
from repro.eval.profiles import EvalProfile
from repro.eval.reporting import render_experiment, render_experiment_json
from repro.eval.runner import (
    clear_cell_cache,
    last_matrix_stats,
    parse_shard,
    run_matrix,
    run_policy_on_program,
)
from repro.rtm.geometry import iso_capacity_sweep
from repro.store import ExperimentStore
from repro.store import schema

TINY = EvalProfile(
    name="tiny",
    suite_scale=0.12,
    ga_options={"mu": 6, "lam": 6, "generations": 3},
    rw_iterations=20,
    benchmarks=("adpcm", "dct"),
)

CONFIGS = iso_capacity_sweep(dbc_counts=(2, 4))
POLICIES = ("DMA-SR", "GA")  # one deterministic, one seed-keyed


class TestCacheCounters:
    def test_counters_pinned_across_cache_layers(self, tmp_path):
        """2 benchmarks x 2 configs x 2 policies = 8 cells, layer by layer."""
        clear_cell_cache()
        path = tmp_path / "s.db"
        cold = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path)
        stats = last_matrix_stats()
        assert (stats.cells_total, stats.hits_memory,
                stats.hits_store, stats.computed) == (8, 0, 0, 8)
        assert stats.hits == 0

        warm_memory = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path)
        stats = last_matrix_stats()
        assert (stats.cells_total, stats.hits_memory,
                stats.hits_store, stats.computed) == (8, 8, 0, 0)

        clear_cell_cache()
        warm_store = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path)
        stats = last_matrix_stats()
        assert (stats.cells_total, stats.hits_memory,
                stats.hits_store, stats.computed) == (8, 0, 8, 0)
        assert stats.hits == 8

        assert warm_memory == cold
        assert warm_store == cold  # floats included: serde is exact

    def test_counters_without_store(self):
        clear_cell_cache()
        run_matrix(("DMA-SR",), TINY, configs=CONFIGS)
        stats = last_matrix_stats()
        assert (stats.cells_total, stats.hits_memory,
                stats.hits_store, stats.computed) == (4, 0, 0, 4)
        run_matrix(("DMA-SR",), TINY, configs=CONFIGS)
        assert last_matrix_stats().hits_memory == 4

    def test_store_hit_refills_memory_cache(self, tmp_path):
        clear_cell_cache()
        path = tmp_path / "s.db"
        run_matrix(("DMA-SR",), TINY, configs=CONFIGS, store=path)
        clear_cell_cache()
        run_matrix(("DMA-SR",), TINY, configs=CONFIGS, store=path)
        run_matrix(("DMA-SR",), TINY, configs=CONFIGS, store=path)
        assert last_matrix_stats().hits_memory == 4


class TestResume:
    def test_killed_run_resumes_bit_identically(self, tmp_path, monkeypatch):
        clear_cell_cache()
        cold = run_matrix(POLICIES, TINY, configs=CONFIGS, use_cache=False)

        path = tmp_path / "s.db"
        calls = []

        def dies_after_three(program, policy, config, **kwargs):
            if len(calls) == 3:
                raise KeyboardInterrupt("simulated kill")
            calls.append(program.name)
            return run_policy_on_program(program, policy, config, **kwargs)

        monkeypatch.setattr(runner_module, "run_policy_on_program",
                            dies_after_three)
        clear_cell_cache()
        with pytest.raises(KeyboardInterrupt):
            run_matrix(POLICIES, TINY, configs=CONFIGS, store=path)
        monkeypatch.undo()

        with ExperimentStore(path) as store:
            assert len(store) == 3  # completed cells survived the kill
            (run,) = store.runs()
            assert run["status"] == "failed"

        clear_cell_cache()
        resumed = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path)
        stats = last_matrix_stats()
        assert stats.hits_store == 3
        assert stats.computed == 5
        assert resumed == cold  # bit-identical to the never-killed run

        with ExperimentStore(path) as store:
            runs = store.runs()
            assert sorted(r["status"] for r in runs) == ["complete", "failed"]

    def test_resume_preserves_seed_assignment(self, tmp_path):
        """A store warmed by a partial policy list still hits: deterministic
        cells share keys across matrix shapes, stochastic ones re-run."""
        clear_cell_cache()
        path = tmp_path / "s.db"
        run_matrix(("DMA-SR",), TINY, configs=CONFIGS, store=path)
        clear_cell_cache()
        run_matrix(POLICIES, TINY, configs=CONFIGS, store=path)
        stats = last_matrix_stats()
        assert stats.hits_store == 4   # the deterministic DMA-SR cells
        assert stats.computed == 4     # the seed-keyed GA cells


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("2/2", "-1/2", "0/0", "x/y", "1"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_matrix(self):
        clear_cell_cache()
        full = run_matrix(POLICIES, TINY, configs=CONFIGS, use_cache=False)
        parts = []
        total_cells = 0
        for i in range(3):
            clear_cell_cache()
            part = run_matrix(POLICIES, TINY, configs=CONFIGS,
                              shard=(i, 3), use_cache=False)
            stats = last_matrix_stats()
            assert stats.cells_total + stats.sharded_out == 8
            total_cells += stats.cells_total
            parts.append(part)
        assert total_cells == 8  # disjoint and covering
        merged = {}
        for part in parts:
            assert not set(part) & set(merged)
            merged.update(part)
        assert merged == full  # union bit-identical to the unsharded run

    def test_merged_shard_stores_regenerate_unsharded(self, tmp_path):
        clear_cell_cache()
        full = run_matrix(POLICIES, TINY, configs=CONFIGS, use_cache=False)
        a, b = tmp_path / "a.db", tmp_path / "b.db"
        clear_cell_cache()
        run_matrix(POLICIES, TINY, configs=CONFIGS, shard="0/2", store=a)
        clear_cell_cache()
        run_matrix(POLICIES, TINY, configs=CONFIGS, shard="1/2", store=b)
        merged_path = tmp_path / "m.db"
        with ExperimentStore(merged_path) as merged:
            merged.merge_from(a)
            merged.merge_from(b)
            assert len(merged) == 8
        clear_cell_cache()
        regenerated = run_matrix(POLICIES, TINY, configs=CONFIGS,
                                 store=merged_path, offline=True)
        assert last_matrix_stats().computed == 0
        assert regenerated == full


class TestOffline:
    def test_offline_cold_store_raises(self, tmp_path):
        clear_cell_cache()
        with pytest.raises(ExperimentError, match="missing from the store"):
            run_matrix(POLICIES, TINY, configs=CONFIGS,
                       store=tmp_path / "cold.db", offline=True)

    def test_offline_warm_store_serves_everything(self, tmp_path):
        clear_cell_cache()
        path = tmp_path / "s.db"
        cold = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path)
        clear_cell_cache()
        warm = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path,
                          offline=True)
        assert warm == cold


class TestSchemaInvalidation:
    def test_stale_store_recomputes_cleanly(self, tmp_path, monkeypatch):
        clear_cell_cache()
        path = tmp_path / "s.db"
        cold = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path)
        monkeypatch.setattr(schema, "SCHEMA_VERSION", schema.SCHEMA_VERSION + 1)
        clear_cell_cache()
        again = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path)
        stats = last_matrix_stats()
        assert stats.hits_store == 0  # stale rows discarded, not misread
        assert stats.computed == 8
        assert again == cold


class TestExperimentRegeneration:
    def test_fig4_warm_rerun_is_byte_identical(self, tmp_path):
        """The acceptance criterion, at library level: zero recomputation
        and byte-identical report output against a warm store."""
        from dataclasses import replace

        # 2 benchmarks x 4 configs x 6 paper policies
        cells = 2 * 4 * 6
        profile = replace(TINY, store=str(tmp_path / "s.db"))
        clear_cell_cache()
        cold = experiment_fig4(profile)
        assert last_matrix_stats().computed == cells
        clear_cell_cache()
        warm = experiment_fig4(profile)
        stats = last_matrix_stats()
        assert stats.computed == 0
        assert stats.hits_store == stats.cells_total == cells
        assert render_experiment(warm) == render_experiment(cold)
        assert render_experiment_json(warm) == render_experiment_json(cold)

    def test_populate_matrix_fills_store_for_report(self, tmp_path):
        from dataclasses import replace

        from repro.eval.experiments import experiment_fig6

        path = str(tmp_path / "s.db")
        clear_cell_cache()
        stats = populate_matrix("fig6", TINY, store=path)
        assert stats.computed == stats.cells_total > 0
        clear_cell_cache()
        profile = replace(TINY, store=path, offline=True)
        result = experiment_fig6(profile)
        assert last_matrix_stats().computed == 0
        assert result.rows

    def test_populate_matrix_rejects_non_matrix_experiment(self):
        with pytest.raises(ExperimentError, match="not a matrix experiment"):
            populate_matrix("table1", TINY)


class TestFaultedCellKeys:
    def test_faulted_and_clean_cells_coexist_and_resume_warm(self, tmp_path):
        """Fault params are content-addressed: clean and faulted sweeps
        share one store under distinct keys, and each resumes 100% warm."""
        from dataclasses import replace

        clear_cell_cache()
        path = tmp_path / "s.db"
        clean = run_matrix(("DMA-SR",), TINY, configs=CONFIGS, store=path)
        faulted_profile = replace(TINY, fault_rate=0.05)
        faulted = run_matrix(("DMA-SR",), faulted_profile, configs=CONFIGS,
                             store=path)
        stats = last_matrix_stats()
        assert stats.computed == 4  # no false hits on the clean cells
        with ExperimentStore(path) as s:
            assert len(s) == 8  # 4 clean + 4 faulted rows
        assert all(c.report.fault_injected == 0 for c in clean.values())
        assert any(c.report.fault_injected > 0 for c in faulted.values())

        clear_cell_cache()
        again = run_matrix(("DMA-SR",), TINY, configs=CONFIGS, store=path)
        stats = last_matrix_stats()
        assert (stats.hits_store, stats.computed) == (4, 0)
        assert again == clean
        clear_cell_cache()
        again = run_matrix(("DMA-SR",), faulted_profile, configs=CONFIGS,
                           store=path)
        stats = last_matrix_stats()
        assert (stats.hits_store, stats.computed) == (4, 0)
        assert again == faulted  # bit-identical, drift histogram included

    def test_fault_params_distinguish_keys(self, tmp_path):
        """Rate, seed-bearing model and scrub cadence all key separately."""
        from dataclasses import replace

        clear_cell_cache()
        path = tmp_path / "s.db"
        variants = (
            replace(TINY, fault_rate=0.05),
            replace(TINY, fault_rate=0.1),
            replace(TINY, fault_rate=0.05, scrub_interval=50),
        )
        for profile in variants:
            run_matrix(("DMA-SR",), profile, configs=CONFIGS, store=path)
            assert last_matrix_stats().computed == 4
        with ExperimentStore(path) as s:
            assert len(s) == 12


class TestEnqueueMode:
    """``run_matrix(enqueue=True)``: submit instead of simulate."""

    def test_enqueue_worker_drain_offline_bit_identical(self, tmp_path):
        from repro.eval.service import worker_loop
        from repro.store import WorkQueue

        clear_cell_cache()
        path = tmp_path / "s.db"
        submitted = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path,
                               enqueue=True)
        stats = last_matrix_stats()
        assert submitted == {}  # nothing computed locally
        assert (stats.cells_total, stats.enqueued, stats.computed) == (8, 8, 0)

        outcome = worker_loop(path, drain=True, batch=3, lease_s=30)
        assert (outcome["computed"], outcome["failed"]) == (8, 0)

        clear_cell_cache()
        via_queue = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path,
                               offline=True)
        stats = last_matrix_stats()
        # Remotely computed cells are store hits, all credited to the queue.
        assert (stats.hits_store, stats.hits_queue, stats.computed) == (8, 8, 0)

        clear_cell_cache()
        cold = run_matrix(POLICIES, TINY, configs=CONFIGS, workers=1)
        assert via_queue == cold  # dataclass eq: every float bit-exact

    def test_enqueue_skips_warm_cells(self, tmp_path):
        clear_cell_cache()
        path = tmp_path / "s.db"
        run_matrix(("DMA-SR",), TINY, configs=CONFIGS, store=path)
        clear_cell_cache()
        run_matrix(POLICIES, TINY, configs=CONFIGS, store=path, enqueue=True)
        stats = last_matrix_stats()
        # The 4 DMA-SR cells are warm; only GA's 4 cells hit the queue.
        assert (stats.hits_store, stats.enqueued) == (4, 4)
        assert stats.hits_queue == 0  # warm cells were computed locally

    def test_enqueue_resubmission_is_idempotent(self, tmp_path):
        from repro.store import ExperimentStore, WorkQueue

        clear_cell_cache()
        path = tmp_path / "s.db"
        for _ in range(2):
            run_matrix(POLICIES, TINY, configs=CONFIGS, store=path,
                       enqueue=True)
        with ExperimentStore(path) as store:
            assert WorkQueue(store).counts()["open"] == 8

    def test_enqueue_requires_store(self):
        with pytest.raises(ExperimentError, match="store"):
            run_matrix(POLICIES, TINY, configs=CONFIGS, enqueue=True)

    def test_enqueue_conflicts_with_offline(self, tmp_path):
        with pytest.raises(ExperimentError, match="offline"):
            run_matrix(POLICIES, TINY, configs=CONFIGS,
                       store=tmp_path / "s.db", enqueue=True, offline=True)

    def test_enqueue_refuses_explicit_programs(self, tmp_path):
        from repro.eval.runner import load_suite

        with pytest.raises(ExperimentError, match="workload"):
            run_matrix(POLICIES, TINY, configs=CONFIGS,
                       store=tmp_path / "s.db", enqueue=True,
                       programs=load_suite(TINY))
