"""Unit tests for the ``repro-trace`` entry point."""

import pytest

from repro.trace.cli import main_trace
from repro.trace.io import read_traces, write_traces
from repro.trace.trace import MemoryTrace


@pytest.fixture
def native_file(tmp_path, fig3_sequence):
    path = tmp_path / "fig3.trc"
    write_traces(path, [MemoryTrace(fig3_sequence)])
    return str(path)


@pytest.fixture
def address_file(tmp_path):
    path = tmp_path / "app.csv"
    path.write_text("\n".join(
        f"{'w' if i % 5 == 0 else 'r'},0x{4096 + 4 * (i % 6):x}"
        for i in range(60)
    ))
    return str(path)


class TestStats:
    def test_native_file(self, native_file, capsys):
        assert main_trace(["stats", native_file]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "Accesses" in out

    def test_address_file_with_ingestion_knobs(self, address_file, capsys):
        assert main_trace(["stats", address_file, "--word", "8"]) == 0
        out = capsys.readouterr().out
        assert "app" in out

    def test_missing_file_exits_cleanly(self, capsys):
        assert main_trace(["stats", "/no/such/file"]) == 2
        assert "repro-trace:" in capsys.readouterr().err


class TestIngest:
    def test_writes_native_output(self, address_file, tmp_path, capsys):
        out_path = tmp_path / "out.trc"
        assert main_trace(["ingest", address_file, "--out", str(out_path),
                           "--min-count", "2"]) == 0
        (trace,) = read_traces(out_path)
        assert len(trace) > 0
        assert "ingested" in capsys.readouterr().out

    def test_stdout_when_no_out(self, address_file, capsys):
        assert main_trace(["ingest", address_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace app")

    def test_custom_name_and_cap(self, address_file, tmp_path):
        out_path = tmp_path / "out.trc"
        assert main_trace(["ingest", address_file, "--out", str(out_path),
                           "--name", "demo", "--max-vars", "3"]) == 0
        (trace,) = read_traces(out_path)
        assert trace.name == "demo"
        assert trace.sequence.num_variables <= 3

    def test_malformed_input_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.atrc"
        bad.write_text("not an address\n")
        assert main_trace(["ingest", str(bad)]) == 2
        assert "no address" in capsys.readouterr().err


class TestConvert:
    def test_native_normalization_roundtrip(self, native_file, tmp_path):
        out_path = tmp_path / "norm.trc"
        assert main_trace(["convert", native_file, "--out", str(out_path)]) == 0
        assert read_traces(out_path) == read_traces(native_file)

    def test_address_to_native(self, address_file, tmp_path):
        out_path = tmp_path / "conv.trc"
        assert main_trace(["convert", address_file, "--out",
                           str(out_path)]) == 0
        (trace,) = read_traces(out_path)
        assert trace.name == "app"

    def test_stats_rejects_knobs_on_forced_native(self, native_file, capsys):
        assert main_trace(["stats", native_file, "--format", "trace",
                           "--word", "8"]) == 2
        assert "only apply" in capsys.readouterr().err
