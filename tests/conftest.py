"""Shared fixtures: the paper's worked example and small generated inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.generators.synthetic import sliding_window_sequence
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace

from tests.paperdata import FIG3_ACCESSES, FIG3_VARIABLES


@pytest.fixture
def fig3_sequence() -> AccessSequence:
    return AccessSequence(FIG3_ACCESSES, variables=FIG3_VARIABLES, name="fig3")


@pytest.fixture
def fig3_trace(fig3_sequence) -> MemoryTrace:
    return MemoryTrace(fig3_sequence)


@pytest.fixture
def small_sequence() -> AccessSequence:
    """A deterministic 30-variable statement-style sequence."""
    return sliding_window_sequence(
        30, 180, window=4, locality=0.45, shared_vars=3, shared_ratio=0.15,
        revisit=0.1, rng=1234, name="small",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
