"""``stream=1`` file workloads: a residency knob, never a semantic one.

The acceptance path for streamed workloads: identical matrix cells and
store keys as the in-memory ``stream=0`` run (a stream=1 rerun must be
100% store hits), kill-and-resume mid-stream, and clean rejection of
the combinations streaming cannot honour.
"""

import numpy as np
import pytest

import repro.eval.runner as runner_module
from repro.errors import WorkloadError
from repro.eval.profiles import EvalProfile
from repro.eval.runner import (
    clear_cell_cache,
    last_matrix_stats,
    run_matrix,
    run_policy_on_program,
)
from repro.rtm.geometry import iso_capacity_sweep
from repro.store import ExperimentStore
from repro.workloads import WorkloadContext, resolve_workloads

CONFIGS = iso_capacity_sweep(dbc_counts=(2, 4))
POLICIES = ("DMA-SR", "GA")  # one deterministic, one seed-keyed


def write_trace_file(path, seed=0, accesses=800, words=40):
    rng = np.random.default_rng(seed)
    probs = 1.0 / np.arange(1, words + 1) ** 1.2
    probs /= probs.sum()
    idx = rng.choice(words, size=accesses, p=probs)
    path.write_text("".join(f"0x{0x400 + 8 * a:x}\n" for a in idx))
    return path


def profile_for(spec):
    return EvalProfile(
        name="stream-acceptance",
        suite_scale=1.0,
        ga_options={"mu": 6, "lam": 6, "generations": 3},
        rw_iterations=20,
        workloads=(spec,),
    )


@pytest.fixture
def trace_file(tmp_path):
    return write_trace_file(tmp_path / "app.trc")


class TestResolution:
    def test_streamed_program_has_streaming_trace(self, trace_file):
        ctx = WorkloadContext()
        (program,) = resolve_workloads(
            (f"file:{trace_file},stream=1,chunk=100",), ctx
        )
        (trace,) = program.traces
        assert hasattr(trace, "chunks")
        assert trace.chunk == 100

    def test_program_name_ignores_residency_params(self, trace_file):
        ctx = WorkloadContext()
        (inmem,) = resolve_workloads((f"file:{trace_file}",), ctx)
        (stream,) = resolve_workloads(
            (f"file:{trace_file},stream=1,chunk=64",), ctx
        )
        assert stream.name == inmem.name

    def test_window_stays_in_the_name(self, trace_file):
        """window changes placements, so it must stay key-relevant."""
        ctx = WorkloadContext()
        (plain,) = resolve_workloads(
            (f"file:{trace_file},stream=1",), ctx
        )
        (windowed,) = resolve_workloads(
            (f"file:{trace_file},stream=1,window=200",), ctx
        )
        assert windowed.name != plain.name
        assert "window=200" in windowed.name

    def test_chunk_without_stream_rejected(self, trace_file):
        with pytest.raises(WorkloadError, match="only apply with stream=1"):
            resolve_workloads(
                (f"file:{trace_file},chunk=64",), WorkloadContext()
            )

    def test_transforms_rejected_for_streaming(self, trace_file):
        with pytest.raises(WorkloadError, match="stream=0"):
            resolve_workloads(
                (f"file:{trace_file},stream=1@interleave=2",),
                WorkloadContext(),
            )

    def test_native_files_cannot_stream(self, tmp_path, trace_file):
        from repro.trace.io import load_traces, write_traces

        native = tmp_path / "native.trc"
        write_traces(native, load_traces(trace_file))
        with pytest.raises(WorkloadError, match="address traces"):
            resolve_workloads(
                (f"file:{native},stream=1",), WorkloadContext()
            )


class TestMatrixEquivalence:
    def test_streamed_cells_equal_inmem_cells(self, trace_file):
        inmem = profile_for(f"file:{trace_file},word=8")
        stream = profile_for(f"file:{trace_file},word=8,stream=1,chunk=97")
        clear_cell_cache()
        a = run_matrix(POLICIES, inmem, configs=CONFIGS, use_cache=False)
        clear_cell_cache()
        b = run_matrix(POLICIES, stream, configs=CONFIGS, use_cache=False)
        assert set(a) == set(b)
        for key in a:
            assert a[key].shifts == b[key].shifts
            assert a[key].report == b[key].report

    def test_streamed_run_hits_inmem_store_cells(self, tmp_path, trace_file):
        """stream=1 against a stream=0-populated store: 100% hits."""
        store_path = tmp_path / "s.db"
        inmem = profile_for(f"file:{trace_file},word=8")
        stream = profile_for(f"file:{trace_file},word=8,stream=1,chunk=97")
        clear_cell_cache()
        cold = run_matrix(POLICIES, inmem, configs=CONFIGS, store=store_path)
        clear_cell_cache()
        warm = run_matrix(POLICIES, stream, configs=CONFIGS, store=store_path)
        stats = last_matrix_stats()
        assert stats.computed == 0
        assert stats.hits_store == len(cold) == 4
        assert warm == cold

    def test_kill_mid_stream_resumes_bit_identically(
        self, tmp_path, trace_file, monkeypatch
    ):
        store_path = tmp_path / "s.db"
        stream = profile_for(f"file:{trace_file},word=8,stream=1,chunk=97")
        clear_cell_cache()
        cold = run_matrix(POLICIES, stream, configs=CONFIGS, use_cache=False)

        calls = []

        def dies_after_two(program, policy, config, **kwargs):
            if len(calls) == 2:
                raise KeyboardInterrupt("simulated kill")
            calls.append(program.name)
            return run_policy_on_program(program, policy, config, **kwargs)

        monkeypatch.setattr(runner_module, "run_policy_on_program",
                            dies_after_two)
        clear_cell_cache()
        with pytest.raises(KeyboardInterrupt):
            run_matrix(POLICIES, stream, configs=CONFIGS, store=store_path)
        monkeypatch.undo()
        with ExperimentStore(store_path) as store:
            assert len(store) == 2

        clear_cell_cache()
        resumed = run_matrix(POLICIES, stream, configs=CONFIGS,
                             store=store_path)
        stats = last_matrix_stats()
        assert stats.hits_store == 2 and stats.computed == 2
        assert resumed == cold

    def test_streamed_workers_match_serial(self, trace_file):
        """Streaming traces survive the pool's pickling round-trip."""
        stream = profile_for(f"file:{trace_file},word=8,stream=1,chunk=97")
        clear_cell_cache()
        serial = run_matrix(POLICIES, stream, configs=CONFIGS,
                            use_cache=False)
        clear_cell_cache()
        pooled = run_matrix(POLICIES, stream, configs=CONFIGS,
                            use_cache=False, workers=2)
        assert pooled == serial
