"""Resolution tests: sources, determinism, and the eval-layer contract."""

import pytest

from repro.errors import WorkloadError
from repro.eval.profiles import EvalProfile
from repro.eval.runner import load_suite
from repro.trace.generators.offsetstone import load_benchmark
from repro.trace.io import write_traces
from repro.trace.trace import MemoryTrace
from repro.workloads import (
    WorkloadContext,
    available_sources,
    resolve_workload,
    resolve_workloads,
    workload_fingerprint,
)

CTX = WorkloadContext(scale=0.12, seed=7, write_ratio=0.25)


class TestSources:
    def test_bare_offsetstone_is_bit_identical_to_loader(self):
        via_registry = resolve_workload("adpcm", CTX)
        direct = load_benchmark("adpcm", scale=0.12, seed=7, write_ratio=0.25)
        assert via_registry.name == "adpcm"
        assert workload_fingerprint(via_registry) == workload_fingerprint(direct)

    def test_kernels_source(self):
        prog = resolve_workload("kernels:matmul,n=4", CTX)
        assert prog.domain == "kernel"
        assert prog.name == "kernels:matmul,n=4"
        assert prog.num_sequences == 1

    def test_programs_source(self):
        prog = resolve_workload("programs:3,statements=30", CTX)
        assert prog.num_sequences == 3
        assert prog.total_accesses > 0

    def test_synthetic_source_with_seqs(self):
        prog = resolve_workload("synthetic:zipf,vars=12,length=99,seqs=2", CTX)
        assert prog.num_sequences == 2
        assert all(len(t) == 99 for t in prog.traces)

    def test_file_source_native(self, tmp_path, fig3_trace):
        path = tmp_path / "fig3.trc"
        write_traces(path, [fig3_trace])
        prog = resolve_workload(f"file:{path}", CTX)
        assert prog.domain == "file"
        assert prog.traces[0] == fig3_trace

    def test_file_source_address_format(self, tmp_path):
        path = tmp_path / "app.csv"
        path.write_text("\n".join(
            f"{'w' if i % 4 == 0 else 'r'},0x{4096 + 4 * (i % 5):x}"
            for i in range(40)
        ))
        prog = resolve_workload(f"file:{path},word=4", CTX)
        assert prog.traces[0].sequence.num_variables == 5
        assert len(prog.traces[0]) == 40

    def test_registry_lists_builtin_sources(self):
        assert {"offsetstone", "kernels", "programs", "synthetic",
                "file"} <= set(available_sources())

    @pytest.mark.parametrize("spec,match", [
        ("offsetstone:nope", "unknown offsetstone"),
        ("kernels:nope", "unknown kernel"),
        ("synthetic:nope", "unknown synthetic"),
        ("nope:x", "unknown workload source"),
        ("file:/does/not/exist.trc", "does not exist"),
        ("programs:0", "must be >= 1"),
        ("kernels:fir,bogus=3", "no parameter"),
        ("adpcm,scale=2", "no parameter"),
    ])
    def test_resolution_errors(self, spec, match):
        with pytest.raises(WorkloadError, match=match):
            resolve_workload(spec, CTX)

    def test_empty_file_raises_instead_of_empty_program(self, tmp_path):
        empty = tmp_path / "empty.trc"
        empty.write_text("# nothing but comments\n")
        with pytest.raises(WorkloadError, match="no trace blocks"):
            resolve_workload(f"file:{empty}", CTX)

    def test_binary_file_raises_cleanly(self, tmp_path):
        binary = tmp_path / "trace.bin"
        binary.write_bytes(bytes(range(256)))
        with pytest.raises(WorkloadError, match="not a text trace file"):
            resolve_workload(f"file:{binary}", CTX)

    def test_directory_payload_raises_cleanly(self, tmp_path):
        with pytest.raises(WorkloadError):
            resolve_workload(f"file:{tmp_path}", CTX)


class TestDeterminism:
    @pytest.mark.parametrize("spec", [
        "synthetic:phased,phases=4,vars=6,length=40@interleave=2",
        "kernels:fir@tile=2@skew=2",
        "programs:2,statements=24@subsample=0.6",
        "jpeg@phases=3",
    ])
    def test_same_spec_same_context_is_bit_identical(self, spec):
        a = resolve_workload(spec, CTX)
        b = resolve_workload(spec, CTX)
        assert workload_fingerprint(a) == workload_fingerprint(b)

    def test_seed_changes_stochastic_workloads(self):
        spec = "synthetic:zipf,vars=12,length=80"
        a = resolve_workload(spec, CTX)
        b = resolve_workload(spec, WorkloadContext(scale=0.12, seed=8))
        assert workload_fingerprint(a) != workload_fingerprint(b)

    def test_resolution_insensitive_to_neighbours(self):
        spec = "synthetic:markov,vars=10,length=60"
        alone = resolve_workload(spec, CTX)
        in_suite = resolve_workloads(["adpcm", spec, "kernels:fir"], CTX)[1]
        assert workload_fingerprint(alone) == workload_fingerprint(in_suite)

    def test_transformed_program_named_by_canonical_spec(self):
        prog = resolve_workload("adpcm@tile=2", CTX)
        assert prog.name == "offsetstone:adpcm@tile=2"


class TestSuiteIntegration:
    def test_default_profile_suite_unchanged(self):
        profile = EvalProfile(name="t", suite_scale=0.12,
                              benchmarks=("adpcm", "dct"))
        suite = load_suite(profile)
        direct = [
            load_benchmark(n, scale=0.12, seed=profile.seed,
                           write_ratio=profile.write_ratio)
            for n in ("adpcm", "dct")
        ]
        assert ([workload_fingerprint(p) for p in suite]
                == [workload_fingerprint(p) for p in direct])

    def test_workloads_field_overrides_benchmarks(self, tmp_path, fig3_trace):
        path = tmp_path / "fig3.trc"
        write_traces(path, [fig3_trace, fig3_trace])
        profile = EvalProfile(
            name="t", suite_scale=0.12, benchmarks=("adpcm",),
            workloads=(f"file:{path}", "kernels:fir"),
        )
        suite = load_suite(profile)
        assert [p.name for p in suite] == [f"file:{path}", "kernels:fir"]
        assert profile.workload_specs == profile.workloads

    def test_ablations_respect_explicit_workloads(self, tmp_path, fig3_trace):
        from repro.eval.ablations import ablation_ports, ablation_swapping

        path = tmp_path / "fig3.trc"
        write_traces(path, [fig3_trace])
        profile = EvalProfile(
            name="t", suite_scale=0.12,
            workloads=(f"file:{path}",),
        )
        result = ablation_ports(profile, ports=(1, 2), num_dbcs=2)
        assert result.rows  # ran over the external trace, not cc65/jpeg/gsm
        swap = ablation_swapping(profile, num_dbcs=2, threshold=2)
        assert f"file:{path}" in swap.title

    def test_sec4b_probes_first_explicit_workload(self, tmp_path, fig3_trace):
        from repro.eval.experiments import experiment_sec4b_gap

        path = tmp_path / "fig3.trc"
        write_traces(path, [fig3_trace])
        profile = EvalProfile(
            name="t", suite_scale=0.12,
            ga_options={"mu": 4, "lam": 4, "generations": 2},
            workloads=(f"file:{path}",),
        )
        result = experiment_sec4b_gap(profile, long_generations=3)
        assert f"file:{path}" in result.title

    def test_write_ratio_flows_through_context(self):
        lo = EvalProfile(name="t", suite_scale=0.12, write_ratio=0.0,
                         benchmarks=("adpcm",))
        hi = EvalProfile(name="t", suite_scale=0.12, write_ratio=1.0,
                         benchmarks=("adpcm",))
        (a,), (b,) = load_suite(lo), load_suite(hi)
        assert a.traces[0].num_writes < b.traces[0].num_writes


class TestMemoryTraceHelpers:
    def test_fingerprint_sensitive_to_writes(self, fig3_sequence):
        a = MemoryTrace(fig3_sequence)
        b = MemoryTrace.with_write_ratio(fig3_sequence, 0.9, rng=3)
        pa = resolve_workload("adpcm", CTX)
        assert workload_fingerprint(pa)  # smoke: hex digest
        from repro.engine import trace_fingerprint
        assert trace_fingerprint(a) != trace_fingerprint(b)
