"""Unit tests for the scenario transforms."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace
from repro.workloads import available_transforms
from repro.workloads.spec import TransformSpec
from repro.workloads.transforms import apply_transform


def _trace(accesses, name="t", writes=None):
    return MemoryTrace(AccessSequence(accesses, name=name), writes)


def _rng():
    return np.random.default_rng(123)


def _apply(name, traces, *args, **kwargs):
    spec = TransformSpec(
        name=name,
        args=tuple(str(a) for a in args),
        kwargs=tuple(sorted((k, str(v)) for k, v in kwargs.items())),
    )
    return apply_transform(spec, tuple(traces), _rng())


class TestInterleave:
    def test_merges_groups_preserving_stream_order(self):
        a = _trace(list("xyz"), name="a")
        b = _trace(list("pqr"), name="b")
        (merged,) = _apply("interleave", [a, b], 2)
        assert len(merged) == 6
        # Universes are prefixed and disjoint.
        assert set(merged.variables) == {
            "t0.x", "t0.y", "t0.z", "t1.p", "t1.q", "t1.r"
        }
        # Each constituent's internal order survives the shuffle.
        seq = list(merged.sequence)
        assert [v for v in seq if v.startswith("t0.")] == ["t0.x", "t0.y", "t0.z"]
        assert [v for v in seq if v.startswith("t1.")] == ["t1.p", "t1.q", "t1.r"]

    def test_carries_write_flags(self):
        a = _trace(list("xy"), writes=[True, False])
        b = _trace(list("pq"), writes=[False, True])
        (merged,) = _apply("interleave", [a, b], 2)
        assert merged.num_writes == 2

    def test_group_of_one_passes_through(self):
        a = _trace(list("xyz"))
        (out,) = _apply("interleave", [a], 4)
        assert out.sequence.accesses == a.sequence.accesses


class TestPhases:
    def test_splits_into_contiguous_phases(self):
        t = _trace(list("aabbcc"), name="t")
        out = _apply("phases", [t], 3)
        assert [tr.sequence.accesses for tr in out] == [
            ("a", "a"), ("b", "b"), ("c", "c")
        ]
        assert [tr.name for tr in out] == ["t.ph0", "t.ph1", "t.ph2"]
        # Each phase keeps only its own variables.
        assert out[0].variables == ("a",)

    def test_short_traces_yield_fewer_phases(self):
        t = _trace(list("ab"))
        out = _apply("phases", [t], 5)
        assert sum(len(tr) for tr in out) == 2


class TestTileStretch:
    def test_tile_repeats_stream(self):
        t = _trace(list("ab"), writes=[True, False])
        (out,) = _apply("tile", [t], 3)
        assert out.sequence.accesses == ("a", "b") * 3
        assert list(out.writes) == [True, False] * 3

    def test_stretch_hits_exact_length(self):
        t = _trace(list("abc"))
        (out,) = _apply("stretch", [t], 7)
        assert len(out) == 7
        assert out.sequence.accesses == ("a", "b", "c", "a", "b", "c", "a")

    def test_stretch_truncation_keeps_declared_universe(self):
        # Unaccessed variables still need a location (like `tile`).
        t = _trace(list("abc"))
        (out,) = _apply("stretch", [t], 2)
        assert out.sequence.accesses == ("a", "b")
        assert out.variables == ("a", "b", "c")


class TestSkew:
    def test_copies_are_rotated_and_renamed(self):
        t = _trace(list("abcd"), name="t")
        out = _apply("skew", [t], 2)
        assert len(out) == 2
        assert out[0].sequence.accesses == ("c0.a", "c0.b", "c0.c", "c0.d")
        assert out[1].sequence.accesses == ("c1.c", "c1.d", "c1.a", "c1.b")
        assert not set(out[0].variables) & set(out[1].variables)

    def test_copies_keep_the_declared_universe(self):
        # Every copy is the same placement problem: unaccessed declared
        # variables still demand a location.
        t = MemoryTrace(AccessSequence(list("ab"), variables=list("abu")))
        out = _apply("skew", [t], 2)
        assert out[0].variables == ("c0.a", "c0.b", "c0.u")
        assert out[1].variables == ("c1.a", "c1.b", "c1.u")


class TestSubsample:
    def test_keeps_roughly_p_accesses(self):
        t = _trace(["v%d" % (i % 7) for i in range(400)])
        (out,) = _apply("subsample", [t], 0.5)
        assert 100 < len(out) < 300
        assert set(out.variables) <= set(t.variables)

    def test_never_empties_a_trace(self):
        t = _trace(list("ab"))
        (out,) = _apply("subsample", [t], 0.001)
        assert len(out) >= 1

    def test_rejects_bad_probability(self):
        t = _trace(list("ab"))
        with pytest.raises(WorkloadError, match="probability"):
            _apply("subsample", [t], 1.5)


class TestBinding:
    def test_unknown_transform(self):
        with pytest.raises(WorkloadError, match="unknown transform"):
            _apply("bogus", [_trace(list("ab"))])

    def test_unknown_parameter(self):
        with pytest.raises(WorkloadError, match="no parameter"):
            _apply("tile", [_trace(list("ab"))], z=3)

    def test_too_many_positionals(self):
        with pytest.raises(WorkloadError, match="at most"):
            _apply("tile", [_trace(list("ab"))], 1, 2)

    def test_parameter_given_twice(self):
        with pytest.raises(WorkloadError, match="twice"):
            _apply("tile", [_trace(list("ab"))], 2, k=3)

    def test_non_integer_arg(self):
        with pytest.raises(WorkloadError, match="integer"):
            _apply("tile", [_trace(list("ab"))], "x")

    def test_registry_lists_all_builtins(self):
        names = set(available_transforms())
        assert {"interleave", "phases", "tile", "stretch", "skew",
                "subsample"} <= names
