"""Unit tests for the workload-spec grammar."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import parse_workload_spec
from repro.workloads.spec import TransformSpec, WorkloadSpec


class TestParse:
    def test_bare_name_defaults_to_offsetstone(self):
        spec = parse_workload_spec("h263")
        assert spec.source == "offsetstone"
        assert spec.payload == "h263"
        assert spec.is_plain

    def test_explicit_source(self):
        spec = parse_workload_spec("kernels:matmul")
        assert (spec.source, spec.payload) == ("kernels", "matmul")

    def test_params_sorted_into_canonical(self):
        spec = parse_workload_spec("synthetic:zipf,vars=20,alpha=1.5")
        assert spec.params == (("alpha", "1.5"), ("vars", "20"))
        assert spec.canonical == "synthetic:zipf,alpha=1.5,vars=20"

    def test_file_payload_keeps_path(self):
        spec = parse_workload_spec("file:traces/app.trc,word=8")
        assert spec.payload == "traces/app.trc"
        assert spec.params == (("word", "8"),)

    def test_transform_chain_order_preserved(self):
        spec = parse_workload_spec("jpeg@phases=4@interleave=2")
        assert [t.name for t in spec.transforms] == ["phases", "interleave"]
        assert spec.transforms[0].args == ("4",)
        assert not spec.is_plain

    def test_transform_kwargs(self):
        spec = parse_workload_spec("jpeg@subsample=p=0.5")
        assert spec.transforms[0].kwargs == (("p", "0.5"),)

    def test_transform_without_args(self):
        spec = parse_workload_spec("jpeg@tile")
        assert spec.transforms == (TransformSpec(name="tile"),)

    def test_whitespace_tolerated(self):
        spec = parse_workload_spec("  synthetic : zipf , vars=8 @ tile=2 ")
        assert spec.canonical == "synthetic:zipf,vars=8@tile=2"

    def test_workload_spec_passthrough(self):
        spec = WorkloadSpec(source="kernels", payload="fir")
        assert parse_workload_spec(spec) is spec

    def test_canonical_is_reparseable(self):
        text = "synthetic:phased,phases=4,vars=6@interleave=2@subsample=0.5"
        spec = parse_workload_spec(text)
        assert parse_workload_spec(spec.canonical) == spec


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "",
        "   ",
        ":payload",
        "source:",
        "kernels:fir,vars",       # bare param token
        "kernels:fir,=3",         # empty key
        "kernels:fir,k=",         # empty value
        "kernels:fir,k=1,k=2",    # repeated parameter
        "jpeg@",                  # empty transform
        "jpeg@=4",                # transform with no name
        "jpeg@tile=,",            # empty transform argument
        "jpeg@stretch=length=5,length=9",  # repeated transform parameter
    ])
    def test_malformed_specs(self, text):
        with pytest.raises(WorkloadError):
            parse_workload_spec(text)
