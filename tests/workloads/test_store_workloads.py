"""External-trace workloads through the persistent store (acceptance path).

An external ``file:`` workload must behave exactly like a synthetic one:
populate the store, survive kill-and-resume bit-identically, and
regenerate its results offline with zero simulation.
"""

import pytest

import repro.eval.runner as runner_module
from repro.errors import ExperimentError
from repro.eval.profiles import EvalProfile
from repro.eval.runner import (
    clear_cell_cache,
    last_matrix_stats,
    run_matrix,
    run_policy_on_program,
)
from repro.rtm.geometry import iso_capacity_sweep
from repro.store import ExperimentStore
from repro.trace.io import write_traces
from repro.trace.trace import MemoryTrace
from repro.trace.generators.synthetic import phased_sequence

CONFIGS = iso_capacity_sweep(dbc_counts=(2, 4))
POLICIES = ("DMA-SR", "GA")  # one deterministic, one seed-keyed


@pytest.fixture
def external_profile(tmp_path):
    """A profile whose whole suite is one external trace file."""
    seqs = [
        phased_sequence(4, 5, 40, shared_vars=2, rng=s, name=f"p{s}")
        for s in (0, 1)
    ]
    path = tmp_path / "app.trc"
    write_traces(path, [MemoryTrace(s) for s in seqs])
    return EvalProfile(
        name="external",
        suite_scale=1.0,
        ga_options={"mu": 6, "lam": 6, "generations": 3},
        rw_iterations=20,
        workloads=(f"file:{path}@interleave=2",),
    )


class TestExternalTraceStore:
    def test_populates_resumes_and_regenerates(
        self, tmp_path, external_profile, monkeypatch
    ):
        store_path = tmp_path / "s.db"

        # Reference run: no store, no cache.
        clear_cell_cache()
        cold = run_matrix(POLICIES, external_profile, configs=CONFIGS,
                          use_cache=False)
        assert len(cold) == 4  # 1 workload x 2 configs x 2 policies

        # Kill mid-run; completed cells must survive on disk.
        calls = []

        def dies_after_two(program, policy, config, **kwargs):
            if len(calls) == 2:
                raise KeyboardInterrupt("simulated kill")
            calls.append(program.name)
            return run_policy_on_program(program, policy, config, **kwargs)

        monkeypatch.setattr(runner_module, "run_policy_on_program",
                            dies_after_two)
        clear_cell_cache()
        with pytest.raises(KeyboardInterrupt):
            run_matrix(POLICIES, external_profile, configs=CONFIGS,
                       store=store_path)
        monkeypatch.undo()
        with ExperimentStore(store_path) as store:
            assert len(store) == 2

        # Resume: stored cells hit, the rest compute, bit-identical.
        clear_cell_cache()
        resumed = run_matrix(POLICIES, external_profile, configs=CONFIGS,
                             store=store_path)
        stats = last_matrix_stats()
        assert stats.hits_store == 2 and stats.computed == 2
        assert resumed == cold

        # Offline regeneration: zero simulation.
        clear_cell_cache()
        offline = run_matrix(POLICIES, external_profile, configs=CONFIGS,
                             store=store_path, offline=True)
        assert last_matrix_stats().computed == 0
        assert offline == cold

    def test_changed_trace_file_misses_the_store(
        self, tmp_path, external_profile
    ):
        store_path = tmp_path / "s.db"
        clear_cell_cache()
        run_matrix(("DMA-SR",), external_profile, configs=CONFIGS,
                   store=store_path)
        # Rewrite the trace file: the content-addressed keys must change.
        spec = external_profile.workloads[0]
        path = spec[len("file:"):].split("@")[0]
        seq = phased_sequence(3, 4, 30, rng=9, name="other")
        write_traces(path, [MemoryTrace(seq)])
        clear_cell_cache()
        with pytest.raises(ExperimentError, match="missing from the store"):
            run_matrix(("DMA-SR",), external_profile, configs=CONFIGS,
                       store=store_path, offline=True)

    def test_manifest_records_workload_specs(self, tmp_path, external_profile):
        store_path = tmp_path / "s.db"
        clear_cell_cache()
        run_matrix(("DMA-SR",), external_profile, configs=CONFIGS,
                   store=store_path)
        with ExperimentStore(store_path) as store:
            (run,) = store.runs()
        assert run["manifest"]["profile"]["workloads"] == list(
            external_profile.workloads
        )

    def test_sharded_external_workload(self, tmp_path, external_profile):
        clear_cell_cache()
        full = run_matrix(POLICIES, external_profile, configs=CONFIGS,
                          use_cache=False)
        merged = {}
        for i in range(2):
            clear_cell_cache()
            part = run_matrix(POLICIES, external_profile, configs=CONFIGS,
                              shard=(i, 2), use_cache=False)
            assert not set(part) & set(merged)
            merged.update(part)
        assert merged == full
