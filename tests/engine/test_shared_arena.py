"""SharedTraceArena: zero-copy rehydration, lifecycle, and fallbacks.

The arena serializes a suite's unique traces once into one
``multiprocessing.shared_memory`` block; pool workers attach views
instead of unpickling copies. These tests pin the rehydration's
equality with the originals, the zero-copy property itself, the
create → attach → close → unlink lifecycle (including a simulated
worker crash), the pickling fallback when shm is unavailable, and the
worker-state reset regression in the pool initializer.
"""

import glob
import multiprocessing
import os

import numpy as np
import pytest

from repro.engine.compile import (
    SharedTraceArena,
    compile_access_arrays,
    trace_fingerprint,
    try_create_arena,
)
from repro.trace.generators.offsetstone import BenchmarkProgram
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace


def shm_segments():
    return set(glob.glob("/dev/shm/*"))


def make_program(name="prog", seed=0, traces=2, accesses=300):
    rng = np.random.default_rng(seed)
    out = []
    variables = tuple(f"v{i}" for i in range(12))
    for t in range(traces):
        codes = rng.integers(0, len(variables), accesses)
        seq = AccessSequence.from_codes(
            variables, codes.astype(np.int64), name=f"{name}_t{t}"
        )
        writes = rng.random(accesses) < 0.3
        out.append(MemoryTrace(seq, writes))
    return BenchmarkProgram(name=name, domain="synthetic", traces=tuple(out))


@pytest.fixture
def suite():
    return [make_program("a", seed=1), make_program("b", seed=2, traces=3)]


class TestRehydration:
    def test_programs_roundtrip_equal(self, suite):
        arena = SharedTraceArena.create(suite)
        try:
            attached = SharedTraceArena.attach(arena.spec)
            rebuilt = attached.programs()
            assert [p.name for p in rebuilt] == [p.name for p in suite]
            assert [p.domain for p in rebuilt] == [p.domain for p in suite]
            for orig, copy in zip(suite, rebuilt):
                for t_orig, t_copy in zip(orig.traces, copy.traces):
                    assert t_orig == t_copy
                    assert t_orig.sequence.name == t_copy.sequence.name
                    assert trace_fingerprint(t_orig) == trace_fingerprint(
                        t_copy
                    )
        finally:
            arena.dispose()

    def test_views_are_zero_copy_and_frozen(self, suite):
        arena = SharedTraceArena.create(suite)
        try:
            rebuilt = SharedTraceArena.attach(arena.spec).programs()
            trace = rebuilt[0].traces[0]
            codes = trace.sequence.codes
            assert not codes.flags.writeable
            assert not codes.flags.owndata  # a view, not a copy
            assert not trace.writes.flags.writeable
            assert not trace.writes.flags.owndata
        finally:
            arena.dispose()

    def test_duplicate_traces_share_one_entry(self):
        program = make_program("dup", seed=3, traces=1)
        twice = BenchmarkProgram(
            name="twice", domain="synthetic",
            traces=program.traces + program.traces,
        )
        arena = SharedTraceArena.create([twice])
        try:
            assert len(arena.spec.entries) == 1
            rebuilt = SharedTraceArena.attach(arena.spec).programs()
            t0, t1 = rebuilt[0].traces
            assert t0 is t1  # one rehydrated object, two references
        finally:
            arena.dispose()

    def test_compiled_arrays_match_original(self, suite):
        from repro.core.policies import get_policy

        arena = SharedTraceArena.create(suite)
        try:
            rebuilt = SharedTraceArena.attach(arena.spec).programs()
            policy = get_policy("AFD")
            for orig, copy in zip(suite, rebuilt):
                seq_o = orig.traces[0].sequence
                seq_c = copy.traces[0].sequence
                placement = policy.place(seq_o, 4, 16)
                a = compile_access_arrays(seq_o, placement)
                b = compile_access_arrays(seq_c, placement)
                assert np.array_equal(a[0], b[0])
                assert np.array_equal(a[1], b[1])
        finally:
            arena.dispose()


class TestLifecycle:
    def test_dispose_unlinks_segment(self, suite):
        before = shm_segments()
        arena = SharedTraceArena.create(suite)
        assert shm_segments() != before  # segment exists while live
        spec = arena.spec
        arena.dispose()
        assert shm_segments() == before
        with pytest.raises(FileNotFoundError):
            SharedTraceArena.attach(spec)

    def test_dispose_is_idempotent(self, suite):
        arena = SharedTraceArena.create(suite)
        arena.dispose()
        arena.dispose()  # second call must be a no-op, not an error

    def test_worker_crash_leaves_no_segment(self, suite):
        before = shm_segments()
        arena = SharedTraceArena.create(suite)
        try:
            proc = multiprocessing.get_context().Process(
                target=_attach_and_die, args=(arena.spec,)
            )
            proc.start()
            proc.join(timeout=60)
            assert proc.exitcode == 1
        finally:
            arena.dispose()
        assert shm_segments() == before

    def test_create_failure_cleans_up(self, monkeypatch):
        # A trace that errors mid-serialization must not leak the block.
        before = shm_segments()
        program = make_program("boom", seed=4)
        bad = program.traces[0]
        monkeypatch.setattr(
            type(bad), "writes",
            property(lambda self: (_ for _ in ()).throw(RuntimeError("io"))),
        )
        with pytest.raises(RuntimeError):
            SharedTraceArena.create([program])
        assert shm_segments() == before


def _attach_and_die(spec):  # pragma: no cover - child process body
    SharedTraceArena.attach(spec)
    os._exit(1)


class TestFallback:
    def test_try_create_returns_none_without_shm(self, suite, monkeypatch):
        import multiprocessing.shared_memory as shm_mod

        def refuse(*args, **kwargs):
            raise OSError("no /dev/shm in this container")

        monkeypatch.setattr(shm_mod, "SharedMemory", refuse)
        assert try_create_arena(suite) is None

    def test_matrix_falls_back_to_pickling(self, suite, monkeypatch):
        import multiprocessing.shared_memory as shm_mod

        from repro.eval.profiles import SMOKE_PROFILE
        from repro.eval.runner import clear_cell_cache, run_matrix
        from repro.rtm.geometry import RTMConfig

        cfg = [RTMConfig(dbcs=4, tracks_per_dbc=1, domains_per_track=64,
                         ports_per_track=2)]
        clear_cell_cache()
        want = run_matrix(["AFD"], SMOKE_PROFILE, configs=cfg,
                          programs=suite, workers=2, use_cache=False,
                          shared_traces=False)

        def refuse(*args, **kwargs):
            raise OSError("no shm")

        monkeypatch.setattr(shm_mod, "SharedMemory", refuse)
        clear_cell_cache()
        got = run_matrix(["AFD"], SMOKE_PROFILE, configs=cfg,
                         programs=suite, workers=2, use_cache=False,
                         shared_traces=True)
        assert set(got) == set(want)
        for k in want:
            assert got[k].shifts == want[k].shifts
            assert got[k].report == want[k].report


class TestMatrixIntegration:
    def test_shared_matrix_bit_identical_and_leak_free(self, suite):
        from repro.eval.profiles import SMOKE_PROFILE
        from repro.eval.runner import clear_cell_cache, run_matrix
        from repro.rtm.geometry import RTMConfig

        cfg = [RTMConfig(dbcs=4, tracks_per_dbc=1, domains_per_track=64,
                         ports_per_track=2)]
        before = shm_segments()
        clear_cell_cache()
        off = run_matrix(["AFD", "DMA"], SMOKE_PROFILE, configs=cfg,
                         programs=suite, workers=2, use_cache=False,
                         shared_traces=False)
        clear_cell_cache()
        on = run_matrix(["AFD", "DMA"], SMOKE_PROFILE, configs=cfg,
                        programs=suite, workers=2, use_cache=False,
                        shared_traces=True)
        assert set(on) == set(off)
        for k in off:
            assert on[k].shifts == off[k].shifts
            assert on[k].report == off[k].report
        assert shm_segments() == before


class TestWorkerStateReset:
    """Regression: consecutive pools in one process leaked worker state."""

    def test_init_worker_clears_previous_suite(self, suite):
        from repro.eval.runner import _WORKER, _init_worker

        first = [make_program("old", seed=9)]
        _init_worker(first, [("AFD", {})], [], "numpy")
        # Populate the compile caches as a worker's cell jobs would.
        from repro.core.policies import get_policy

        seq = first[0].traces[0].sequence
        placement = get_policy("AFD").place(seq, 4, 16)
        compile_access_arrays(seq, placement)
        trace_fingerprint(first[0].traces[0])
        assert compile_access_arrays.cache_info().currsize > 0

        _init_worker(suite, [("AFD", {})], [], "numpy")
        assert [p.name for p in _WORKER["programs"]] == ["a", "b"]
        # The previous suite's compiled arrays are gone, not leaked.
        assert compile_access_arrays.cache_info().currsize == 0
        assert trace_fingerprint.cache_info().currsize == 0
        _WORKER.clear()

    def test_init_worker_closes_stale_arena_attachment(self, suite):
        from repro.eval.runner import _WORKER, _init_worker

        arena = SharedTraceArena.create(suite)
        try:
            _init_worker((), [("AFD", {})], [], "numpy",
                         arena_spec=arena.spec)
            assert "arena" in _WORKER
            stale = _WORKER["arena"]
            # Next pool's initializer must close the old mapping.
            _init_worker(suite, [("AFD", {})], [], "numpy")
            assert "arena" not in _WORKER
            assert stale._shm.buf is None or True  # close attempted
        finally:
            _WORKER.clear()
            arena.dispose()
