"""Property-style equivalence tests: numpy backend vs per-access oracle.

The acceptance bar of the engine refactor: on randomized traces across
port counts, warm/cold starts, policies and initial device states, the
vectorized backend must reproduce the reference backend's shift counts,
per-DBC split and final device state exactly.
"""

import numpy as np
import pytest

from repro.engine import PortPolicy, ShiftRequest, get_backend

REFERENCE = get_backend("reference")
NUMPY = get_backend("numpy")


def assert_equivalent(request: ShiftRequest) -> None:
    ref = REFERENCE.run(request)
    vec = NUMPY.run(request)
    assert vec.accesses == ref.accesses
    assert vec.shifts == ref.shifts
    assert vec.per_dbc_shifts == ref.per_dbc_shifts
    assert np.array_equal(vec.final_offsets, ref.final_offsets)
    assert np.array_equal(vec.final_aligned, ref.final_aligned)


def random_request(rng, ports, warm_start, with_init=False,
                   policy=PortPolicy.NEAREST):
    domains = int(rng.choice([ports, 8, 16, 63, 64, 257]))
    num_dbcs = int(rng.integers(1, 6))
    n = int(rng.integers(0, 300))
    kwargs = {}
    if with_init:
        kwargs["init_offsets"] = rng.integers(
            -(domains - 1), domains, num_dbcs
        )
        kwargs["init_aligned"] = rng.random(num_dbcs) < 0.5
    return ShiftRequest(
        dbc=rng.integers(0, num_dbcs, n),
        slot=rng.integers(0, domains, n),
        num_dbcs=num_dbcs,
        domains=domains,
        ports=ports,
        policy=policy,
        warm_start=warm_start,
        **kwargs,
    )


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("ports", [1, 2, 4])
    @pytest.mark.parametrize("warm_start", [True, False])
    def test_cold_and_warm_across_ports(self, ports, warm_start):
        rng = np.random.default_rng(1000 * ports + warm_start)
        for _ in range(30):
            assert_equivalent(random_request(rng, ports, warm_start))

    @pytest.mark.parametrize("ports", [1, 2, 4])
    def test_nontrivial_initial_state(self, ports):
        rng = np.random.default_rng(77 + ports)
        for _ in range(30):
            assert_equivalent(
                random_request(rng, ports, bool(rng.random() < 0.5),
                               with_init=True)
            )

    def test_many_ports_fallback_scan(self):
        # ports > 4 exceeds the packed-monoid table and exercises the
        # constant-collapse representation (_scan_maps doubling at these
        # lengths; _scan_collapse is covered in test_collapse_scan.py).
        rng = np.random.default_rng(321)
        for _ in range(10):
            assert_equivalent(
                random_request(rng, 8, bool(rng.random() < 0.5),
                               with_init=bool(rng.random() < 0.5))
            )

    @pytest.mark.parametrize("ports", [2, 4])
    def test_static_policy(self, ports):
        rng = np.random.default_rng(55 + ports)
        for _ in range(20):
            assert_equivalent(
                random_request(rng, ports, bool(rng.random() < 0.5),
                               with_init=bool(rng.random() < 0.5),
                               policy=PortPolicy.STATIC)
            )


class TestDegenerateSequences:
    @pytest.mark.parametrize("ports", [1, 2, 4])
    @pytest.mark.parametrize("warm_start", [True, False])
    def test_empty_request(self, ports, warm_start):
        request = ShiftRequest(
            dbc=np.array([], dtype=np.int64),
            slot=np.array([], dtype=np.int64),
            num_dbcs=3, domains=16, ports=ports, warm_start=warm_start,
        )
        assert_equivalent(request)
        result = NUMPY.run(request)
        assert result.shifts == 0
        assert result.per_dbc_shifts == (0, 0, 0)
        assert not result.final_aligned.any()

    @pytest.mark.parametrize("ports", [1, 2, 4])
    @pytest.mark.parametrize("warm_start", [True, False])
    def test_single_access(self, ports, warm_start):
        request = ShiftRequest(
            dbc=np.array([1]), slot=np.array([13]),
            num_dbcs=2, domains=16, ports=ports, warm_start=warm_start,
        )
        assert_equivalent(request)
        result = NUMPY.run(request)
        if warm_start:
            assert result.shifts == 0
        else:
            assert result.shifts > 0
        assert tuple(result.final_aligned) == (False, True)

    def test_repeated_same_slot_is_free_after_alignment(self):
        request = ShiftRequest(
            dbc=np.zeros(10, dtype=np.int64),
            slot=np.full(10, 7, dtype=np.int64),
            num_dbcs=1, domains=16, ports=2, warm_start=False,
        )
        assert_equivalent(request)
        ref = REFERENCE.run(request)
        # only the initial alignment is charged
        assert ref.shifts == NUMPY.run(request).shifts
        assert ref.shifts == abs(7 - min([4, 12], key=lambda p: abs(7 - p)))


class TestChainedState:
    """Splitting one request into chained batches must not change anything."""

    @pytest.mark.parametrize("ports", [1, 4])
    def test_split_equals_whole(self, ports):
        rng = np.random.default_rng(9 + ports)
        for _ in range(10):
            whole = random_request(rng, ports, True)
            n = whole.accesses
            if n < 2:
                continue
            cut = int(rng.integers(1, n))
            head = ShiftRequest(
                dbc=whole.dbc[:cut], slot=whole.slot[:cut],
                num_dbcs=whole.num_dbcs, domains=whole.domains,
                ports=ports,
            )
            for backend in (REFERENCE, NUMPY):
                first = backend.run(head)
                tail = ShiftRequest(
                    dbc=whole.dbc[cut:], slot=whole.slot[cut:],
                    num_dbcs=whole.num_dbcs, domains=whole.domains,
                    ports=ports,
                    init_offsets=first.final_offsets,
                    init_aligned=first.final_aligned,
                )
                second = backend.run(tail)
                total = backend.run(whole)
                assert first.shifts + second.shifts == total.shifts
                assert np.array_equal(second.final_offsets,
                                      total.final_offsets)


class TestSimulatorThroughBackends:
    """The two backends agree end-to-end through the simulator facade."""

    @pytest.mark.parametrize("ports", [1, 2, 4])
    def test_fig3_reports_match(self, fig3_trace, ports):
        from repro.core.placement import Placement
        from repro.rtm.geometry import RTMConfig
        from repro.rtm.sim import simulate
        placement = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        config = RTMConfig(dbcs=2, domains_per_track=512,
                           ports_per_track=ports)
        ref = simulate(fig3_trace, placement, config, backend="reference")
        vec = simulate(fig3_trace, placement, config, backend="numpy")
        assert ref == vec
        if ports == 1:
            assert ref.shifts == 39
