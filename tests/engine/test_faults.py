"""Unit tests for the deterministic fault-injection layer.

The cross-backend bit-identity matrix lives in
``test_backend_oracle.py``; here the :class:`FaultModel` itself is
pinned — validation, the counter-RNG determinism contract, null
normalization, drift/corruption semantics and cursor scrubbing.
"""

import numpy as np
import pytest

from repro.engine import FaultModel, ShiftCursor, ShiftRequest, get_backend
from repro.errors import SimulationError


def _request(fault=None, init_drifts=None, accesses=200, num_dbcs=4,
             domains=32, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return ShiftRequest(
        dbc=rng.integers(0, num_dbcs, accesses),
        slot=rng.integers(0, domains, accesses),
        num_dbcs=num_dbcs,
        domains=domains,
        fault=fault,
        init_drifts=init_drifts,
        **kwargs,
    )


# -- model validation --------------------------------------------------------

@pytest.mark.parametrize("rate", [-0.1, 1.5, float("nan"), float("inf")])
def test_invalid_rate_rejected(rate):
    with pytest.raises(SimulationError, match="probability"):
        FaultModel(rate=rate)


def test_invalid_skew_rejected():
    with pytest.raises(SimulationError, match="empty"):
        FaultModel(rate=0.1, dbc_skew=())
    with pytest.raises(SimulationError, match="finite"):
        FaultModel(rate=0.1, dbc_skew=(1.0, -2.0))
    with pytest.raises(SimulationError, match="finite"):
        FaultModel(rate=0.1, dbc_skew=(float("nan"),))


def test_is_null():
    assert FaultModel(rate=0.0).is_null
    assert FaultModel(rate=0.5, dbc_skew=(0.0, 0.0)).is_null
    assert not FaultModel(rate=0.5).is_null
    assert not FaultModel(rate=0.5, dbc_skew=(0.0, 1.0)).is_null


def test_key_payload_is_canonical():
    assert FaultModel(rate=0.25, seed=3).key_payload() == [0.25, 3, None]
    assert FaultModel(rate=0.25, seed=3, dbc_skew=(1, 2)).key_payload() == \
        [0.25, 3, [1.0, 2.0]]


# -- counter-RNG determinism -------------------------------------------------

def test_pending_is_deterministic_and_chunk_splittable():
    model = FaultModel(rate=0.3, seed=11)
    dbc = np.zeros(1000, dtype=np.int64)
    whole = model.pending(dbc, 0)
    assert np.array_equal(whole, model.pending(dbc, 0))
    # Any split at the same absolute indices reproduces the same draws.
    for cut in (1, 137, 999):
        parts = np.concatenate(
            [model.pending(dbc[:cut], 0), model.pending(dbc[cut:], cut)]
        )
        assert np.array_equal(parts, whole)


def test_pending_depends_on_seed():
    dbc = np.zeros(500, dtype=np.int64)
    a = FaultModel(rate=0.3, seed=1).pending(dbc)
    b = FaultModel(rate=0.3, seed=2).pending(dbc)
    assert not np.array_equal(a, b)


def test_pending_rate_is_roughly_honored():
    model = FaultModel(rate=0.25, seed=5)
    draws = model.pending(np.zeros(20_000, dtype=np.int64))
    frac = np.count_nonzero(draws) / draws.size
    assert 0.22 < frac < 0.28
    assert set(np.unique(draws)) <= {-1, 0, 1}


def test_pending_skew_immunizes_zero_dbcs():
    model = FaultModel(rate=0.5, seed=7, dbc_skew=(0.0, 2.0))
    dbc = np.arange(1000, dtype=np.int64) % 4  # DBCs 0 and 2 hit skew 0.0
    draws = model.pending(dbc)
    assert not np.any(draws[dbc % 2 == 0])
    assert np.any(draws[dbc % 2 == 1])


def test_pending_rejects_negative_base_and_handles_empty():
    model = FaultModel(rate=0.1)
    with pytest.raises(SimulationError, match="access_base"):
        model.pending(np.zeros(3, dtype=np.int64), -1)
    assert model.pending(np.zeros(0, dtype=np.int64)).size == 0


# -- request normalization ---------------------------------------------------

def test_null_model_normalized_away():
    assert _request(fault=FaultModel(rate=0.0, seed=9)).fault is None
    assert _request(
        fault=FaultModel(rate=0.4, dbc_skew=(0.0,))
    ).fault is None


def test_init_drifts_require_a_fault_model():
    with pytest.raises(SimulationError, match="fault"):
        _request(init_drifts=np.array([1, 0, 0, 0]))
    # All-zero drifts carry no information: allowed and normalized away.
    assert _request(init_drifts=np.zeros(4, dtype=np.int64)).init_drifts is None


# -- drift and corruption semantics ------------------------------------------

def test_drift_carry_in_is_respected():
    """Seeded drifts flow into misalignment counting and final drifts."""
    backend = get_backend("reference")
    fault = FaultModel(rate=0.0001, seed=1)  # effectively never fires
    drifted = _request(fault=fault,
                       init_drifts=np.array([2, 0, 0, 0]), accesses=50)
    result = backend.run(drifted)
    # DBC 0 stays drifted for its whole run: every DBC-0 access misaligned.
    dbc0_accesses = int(np.count_nonzero(np.asarray(drifted.dbc) == 0))
    assert result.faults.misaligned >= dbc0_accesses
    assert result.faults.final_drifts[0] == 2


def test_huge_drift_flags_corruption():
    backend = get_backend("numpy")
    request = _request(fault=FaultModel(rate=0.0001, seed=1),
                       init_drifts=np.array([64, 0, 0, 0]),
                       domains=32, accesses=50)
    assert backend.run(request).faults.corrupted


def test_drift_histogram():
    from repro.engine.faults import FaultObservation

    obs = FaultObservation(
        injected=3, misaligned=5,
        final_drifts=np.array([2, 0, -1, 2]), corrupted=False,
    )
    assert obs.drift_histogram() == ((-1, 1), (2, 2))


# -- cursor scrubbing --------------------------------------------------------

def test_cursor_scrub_charges_and_realigns():
    fault = FaultModel(rate=0.2, seed=3)
    request = _request(fault=fault, accesses=400, seed=4)
    cursor = ShiftCursor(num_dbcs=4, domains=32, fault=fault)
    cursor.replay_chunk(request.dbc, request.slot)
    drift_cost = int(np.abs(cursor.drifts).sum())
    assert drift_cost > 0  # rate 0.2 over 400 accesses: drift is certain
    charged = cursor.scrub()
    assert charged == drift_cost
    assert not np.any(cursor.drifts)
    assert cursor.scrub_shifts == drift_cost
    assert cursor.scrub_events == 1
    assert cursor.scrub() == 0  # already aligned: free
    assert cursor.scrub_events == 2
    result = cursor.result()
    assert result.faults.corrective_shifts == drift_cost


def test_cursor_scrub_without_fault_rejected():
    cursor = ShiftCursor(num_dbcs=4, domains=32)
    with pytest.raises(SimulationError, match="fault"):
        cursor.scrub()


def test_cursor_reset_clears_fault_state():
    fault = FaultModel(rate=0.3, seed=5)
    request = _request(fault=fault, accesses=300, seed=6)
    cursor = ShiftCursor(num_dbcs=4, domains=32, fault=fault)
    cursor.replay_chunk(request.dbc, request.slot)
    cursor.scrub()
    cursor.reset()
    assert cursor.fault_injected == 0
    assert cursor.fault_misaligned == 0
    assert cursor.scrub_shifts == 0
    assert cursor.scrub_events == 0
    assert not np.any(cursor.drifts)
    assert not cursor.corrupted
