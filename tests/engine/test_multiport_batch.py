"""Multi-port fast-path equivalence: the 2-D monoid scan vs the oracle.

The multi-port tentpole lifted nearest-port evaluation onto the same
vectorized footing as the single-port path: per-gap transition tables,
a blocked monoid scan in the 1-D backend, a population-level ``(K, N)``
flattened kernel in ``evaluate_batch``, and an exact per-DBC replay mode
in ``DeltaCost``. Everything here enforces the one invariant that makes
the fast path usable: *bit-identical totals* against the per-access
reference backend, across population sizes, port counts, warm/cold and
both port policies — plus seed-pinned multi-port searcher runs so the
wiring through GA/RW/annealing stays reproducible.
"""

import numpy as np
import pytest

from repro.core.cost import shift_cost
from repro.core.ga import GAConfig, GeneticPlacer
from repro.core.intra.annealing import annealed_order
from repro.core.placement import Placement
from repro.core.random_walk import random_walk_search
from repro.engine import (
    DeltaCost,
    PortPolicy,
    ShiftRequest,
    evaluate_batch,
    get_backend,
)
from repro.engine.numpy_backend import (
    _DOUBLING_MAX,
    _gap_maps,
    _transition_tables,
    boundaries_array,
    positions_array,
)
from repro.errors import SimulationError
from repro.trace.sequence import AccessSequence
from tests.paperdata import FIG3_ACCESSES


def reference_scores(codes, dbc_of, pos_of, num_dbcs, domains, ports,
                     policy, warm):
    backend = get_backend("reference")
    out = []
    for k in range(dbc_of.shape[0]):
        if codes.size == 0:
            out.append(0)
            continue
        out.append(backend.run(ShiftRequest(
            dbc=dbc_of[k][codes], slot=pos_of[k][codes],
            num_dbcs=num_dbcs, domains=domains, ports=ports,
            policy=policy, warm_start=warm,
        )).shifts)
    return out


class TestMultiPortBatchEquivalence:
    """K x ports x warm/cold x policy, bit-identical to the oracle."""

    @pytest.mark.parametrize("population", [1, 8, 64])
    @pytest.mark.parametrize("ports", [2, 4, 8])
    @pytest.mark.parametrize("warm", [True, False])
    @pytest.mark.parametrize("policy", [PortPolicy.NEAREST, PortPolicy.STATIC])
    def test_matches_reference_backend(self, population, ports, warm, policy):
        rng = np.random.default_rng(
            10_000 * population + 100 * ports + 10 * warm
            + (policy is PortPolicy.STATIC)
        )
        for _trial in range(3):
            num_vars = int(rng.integers(1, 14))
            accesses = int(rng.integers(0, 90))
            num_dbcs = int(rng.integers(1, 5))
            domains = int(rng.integers(ports + 4, 96))
            codes = rng.integers(0, num_vars, accesses)
            dbc_of = rng.integers(0, num_dbcs, (population, num_vars))
            pos_of = rng.integers(0, domains, (population, num_vars))
            got = evaluate_batch(
                codes, dbc_of, pos_of, num_dbcs=num_dbcs, domains=domains,
                ports=ports, policy=policy, warm_start=warm,
            )
            assert list(got) == reference_scores(
                codes, dbc_of, pos_of, num_dbcs, domains, ports, policy, warm
            )

    def test_long_rows_cross_the_chunk_budget(self):
        # Trace length beyond _FLAT_CHUNK_ELEMENTS // K forces few-row
        # chunks; the flattened kernel must stay exact there too.
        rng = np.random.default_rng(42)
        codes = rng.integers(0, 12, 5000)
        dbc_of = rng.integers(0, 3, (7, 12))
        pos_of = rng.integers(0, 48, (7, 12))
        got = evaluate_batch(
            codes, dbc_of, pos_of, num_dbcs=3, domains=48, ports=2,
            warm_start=False,
        )
        assert list(got) == reference_scores(
            codes, dbc_of, pos_of, 3, 48, 2, PortPolicy.NEAREST, False
        )

    @pytest.mark.parametrize("ports", [2, 4, 8])
    def test_blocked_scan_matches_doubling_scale(self, ports):
        # One request past _DOUBLING_MAX exercises the blocked two-level
        # scan (packed for ports <= 4, explicit maps for 8).
        rng = np.random.default_rng(ports)
        n = _DOUBLING_MAX + 1500
        req = ShiftRequest(
            dbc=rng.integers(0, 6, n), slot=rng.integers(0, 64, n),
            num_dbcs=6, domains=64, ports=ports,
            init_offsets=rng.integers(-20, 21, 6),
            init_aligned=rng.integers(0, 2, 6).astype(bool),
            warm_start=False,
        )
        assert get_backend("numpy").run(req) == get_backend("reference").run(req)

    def test_placeholder_entries_on_unaccessed_variables_stay_legal(self):
        # The range checks prefer the (K, V) matrices but the contract
        # only constrains entries the trace gathers: placeholder DBC /
        # slot values on never-accessed variables must not raise.
        codes = np.array([0, 1, 0, 1])
        dbc_of = np.array([[0, 0, 99]])  # variable 2 never accessed
        pos_of = np.array([[0, 1, 7]])
        got = evaluate_batch(
            codes, dbc_of, pos_of, num_dbcs=1, domains=4, ports=2
        )
        assert got.tolist() == reference_scores(
            codes, np.zeros((1, 3), dtype=np.int64), pos_of, 1, 4, 2,
            PortPolicy.NEAREST, True,
        )
        # Accessed violations still raise.
        with pytest.raises(SimulationError):
            evaluate_batch(
                codes, np.zeros((1, 3), dtype=np.int64),
                np.array([[0, 7, 1]]), num_dbcs=1, domains=4, ports=2,
            )

    def test_population_rows_cannot_leak_port_state(self):
        # Row boundaries are run resets: a candidate's multi-port cost
        # must not depend on its batchmates.
        codes = np.arange(4)
        dbc_of = np.zeros((2, 4), dtype=np.int64)
        lone = evaluate_batch(
            codes, dbc_of[:1], np.array([[0, 60, 3, 55]]),
            num_dbcs=1, domains=64, ports=2,
        )
        paired = evaluate_batch(
            codes, dbc_of, np.array([[0, 60, 3, 55], [63, 1, 62, 2]]),
            num_dbcs=1, domains=64, ports=2,
        )
        assert int(lone[0]) == int(paired[0])


class TestCachedGeometryTables:
    """Per-(domains, ports) tables are built once and shared (satellite)."""

    def test_tables_are_cached_and_frozen(self):
        for fn in (positions_array, boundaries_array, _transition_tables):
            a = fn(128, 4)
            assert fn(128, 4) is a  # identity: no rebuild per matrix cell
            assert not a.flags.writeable

    def test_transition_table_shapes(self):
        packed = _transition_tables(64, 2)     # packed: one int per gap
        assert packed.shape == (127,)
        rows, const = _gap_maps(64, 8)         # wide: rows plus const lane
        assert rows.shape == (127, 8)
        assert const.shape == (127,)
        # Constant lane agrees with the rows it summarizes.
        is_const = rows[:, 0] == rows[:, -1]
        assert np.array_equal(const >= 0, is_const)
        assert np.array_equal(const[is_const], rows[is_const, 0])


class TestMultiPortDeltaCost:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("ports", [2, 4])
    def test_random_walk_agrees_with_reference(self, seed, ports):
        rng = np.random.default_rng(100 * ports + seed)
        num_vars = int(rng.integers(2, 14))
        accesses = int(rng.integers(2, 150))
        num_dbcs = int(rng.integers(1, 4))
        domains = int(rng.integers(16, 80))
        codes = rng.integers(0, num_vars, accesses)
        dbc_of = rng.integers(0, num_dbcs, num_vars)
        pos_of = rng.permutation(domains)[:num_vars].astype(np.int64)
        evaluator = DeltaCost(
            codes, dbc_of, pos_of, domains=domains, ports=ports
        )
        pos = pos_of.copy()

        def oracle():
            return reference_scores(
                codes, dbc_of[None, :], pos[None, :], num_dbcs, domains,
                ports, PortPolicy.NEAREST, True,
            )[0]

        assert evaluator.cost == oracle()
        for _ in range(20):
            a, b = (int(x) for x in rng.choice(num_vars, 2, replace=False))
            priced = evaluator.swap_delta(a, b)
            before = evaluator.cost
            assert evaluator.cost == before  # pricing must not commit
            pos[a], pos[b] = pos[b], pos[a]
            assert evaluator.swap(a, b) == oracle()
            assert evaluator.cost - before == priced
        assert evaluator.resync() == oracle()

    def test_generic_moves(self):
        rng = np.random.default_rng(17)
        codes = rng.integers(0, 6, 80)
        dbc_of = np.zeros(6, dtype=np.int64)
        pos_of = np.array([0, 30, 3, 28, 7, 19], dtype=np.int64)
        evaluator = DeltaCost(codes, dbc_of, pos_of, domains=32, ports=2)
        moves = {0: 30, 1: 3, 2: 0}  # 3-cycle within the DBC
        priced = evaluator.delta(moves)
        total = evaluator.apply(moves)
        pos = pos_of.copy()
        pos[[0, 1, 2]] = [30, 3, 0]
        want = reference_scores(
            codes, dbc_of[None, :], pos[None, :], 1, 32, 2,
            PortPolicy.NEAREST, True,
        )[0]
        assert total == want
        assert priced == want - reference_scores(
            codes, dbc_of[None, :], pos_of[None, :], 1, 32, 2,
            PortPolicy.NEAREST, True,
        )[0]

    def test_static_multi_port_uses_pair_mode(self):
        # STATIC is single-port-equivalent, so the pair structure stays
        # valid and no replay bookkeeping is built.
        codes = np.array([0, 1, 0, 2])
        evaluator = DeltaCost(
            codes, np.zeros(3, dtype=np.int64), np.arange(3, dtype=np.int64),
            domains=16, ports=4, policy=PortPolicy.STATIC,
        )
        assert not evaluator._replay
        single = DeltaCost(
            codes, np.zeros(3, dtype=np.int64), np.arange(3, dtype=np.int64)
        )
        assert evaluator.cost == single.cost

    def test_multi_port_requires_domains(self):
        with pytest.raises(SimulationError):
            DeltaCost(
                np.array([0, 1]), np.zeros(2, dtype=np.int64),
                np.arange(2, dtype=np.int64), ports=2,
            )


class TestMultiPortSearcherPins:
    """Seed-fixed multi-port searcher results (regression pins).

    The values were captured when the multi-port wiring landed; every
    pin is also cross-checked against the scalar multi-port cost so a
    pin can only move if the engine's numbers move.
    """

    @pytest.fixture()
    def fig3(self):
        return AccessSequence(FIG3_ACCESSES, name="fig3")

    GA_SMALL = GAConfig(mu=10, lam=10, generations=8)

    @pytest.mark.parametrize("seed,cost,evaluations", [
        (1, 9, 90), (5, 9, 90), (7, 9, 90),
    ])
    def test_ga_pinned_ports2(self, fig3, seed, cost, evaluations):
        result = GeneticPlacer(
            fig3, 2, 512, self.GA_SMALL, rng=seed, ports=2, domains=64
        ).run()
        assert result.cost == cost
        assert result.evaluations == evaluations
        assert result.cost == shift_cost(
            fig3, result.placement, ports=2, domains=64
        )

    @pytest.mark.parametrize("seed,cost", [(3, 13), (4, 12), (9, 13)])
    def test_rw_pinned_ports2(self, fig3, seed, cost):
        result = random_walk_search(
            fig3, 2, 512, iterations=300, rng=seed, history_stride=100,
            ports=2, domains=64,
        )
        assert result.cost == cost
        assert result.cost == shift_cost(
            fig3, result.placement, ports=2, domains=64
        )

    @pytest.mark.parametrize("seed,order,cost", [
        (0, "iacdfeghb", 29), (2, "feghidacb", 30),
    ])
    def test_annealing_pinned_ports2(self, fig3, seed, order, cost):
        got = annealed_order(
            fig3, fig3.variables, iterations=500, rng=seed,
            ports=2, domains=16,
        )
        assert "".join(got) == order
        assert shift_cost(
            fig3, Placement([got]), ports=2, domains=16
        ) == cost
