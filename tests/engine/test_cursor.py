"""Chunk-size invariance of the :class:`ShiftCursor`.

The cursor's contract: replaying a trace chunk by chunk — any chunk
size, either backend, any port count, cold or warm start — accumulates
bit-identical counters and final device state to one monolithic run of
the whole trace. This is what makes streamed replay a pure residency
change rather than a semantic one.
"""

import numpy as np
import pytest

from repro.engine import ShiftCursor, ShiftRequest, get_backend

N = 240
NUM_DBCS = 4
DOMAINS = 64


def random_accesses(seed=3, n=N):
    rng = np.random.default_rng(seed)
    return rng.integers(0, NUM_DBCS, n), rng.integers(0, DOMAINS, n)


def monolithic(dbc, slot, backend, ports, warm_start, **init):
    return get_backend(backend).run(ShiftRequest(
        dbc=dbc, slot=slot, num_dbcs=NUM_DBCS, domains=DOMAINS,
        ports=ports, warm_start=warm_start, **init,
    ))


def assert_same(cursor_result, mono):
    assert cursor_result.accesses == mono.accesses
    assert cursor_result.shifts == mono.shifts
    assert cursor_result.per_dbc_shifts == mono.per_dbc_shifts
    assert np.array_equal(cursor_result.final_offsets, mono.final_offsets)
    assert np.array_equal(cursor_result.final_aligned, mono.final_aligned)


class TestChunkInvariance:
    @pytest.mark.parametrize("backend", ["reference", "numpy"])
    @pytest.mark.parametrize("ports", [1, 2, 4, 8])
    @pytest.mark.parametrize("warm_start", [True, False])
    @pytest.mark.parametrize("chunk", [1, 7, 128, N])
    def test_matches_monolithic(self, backend, ports, warm_start, chunk):
        dbc, slot = random_accesses()
        mono = monolithic(dbc, slot, backend, ports, warm_start)
        cursor = ShiftCursor(NUM_DBCS, DOMAINS, ports=ports,
                             warm_start=warm_start, backend=backend)
        for start in range(0, N, chunk):
            cursor.replay_chunk(dbc[start:start + chunk],
                                slot[start:start + chunk])
        assert_same(cursor.result(), mono)
        assert cursor.accesses == N
        assert cursor.shifts == mono.shifts

    @pytest.mark.parametrize("backend", ["reference", "numpy"])
    @pytest.mark.parametrize("chunk", [1, 7, 128])
    def test_carried_init_state(self, backend, chunk):
        """A seeded cursor equals a monolithic run with the same carry."""
        dbc, slot = random_accesses(seed=9)
        rng = np.random.default_rng(4)
        init = dict(
            init_offsets=rng.integers(0, DOMAINS, NUM_DBCS),
            init_aligned=rng.random(NUM_DBCS) < 0.5,
        )
        mono = monolithic(dbc, slot, backend, 2, True, **init)
        cursor = ShiftCursor(NUM_DBCS, DOMAINS, ports=2, backend=backend,
                             **init)
        for start in range(0, N, chunk):
            cursor.replay_chunk(dbc[start:start + chunk],
                                slot[start:start + chunk])
        assert_same(cursor.result(), mono)

    def test_warm_start_composes_across_chunks(self):
        """A DBC first touched in a later chunk still aligns for free."""
        # DBC 0 is touched in chunk one, DBC 1 only in chunk two.
        dbc = np.array([0, 0, 1, 1])
        slot = np.array([5, 9, 7, 2])
        mono = monolithic(dbc, slot, "numpy", 1, True)
        cursor = ShiftCursor(NUM_DBCS, DOMAINS, ports=1, warm_start=True)
        cursor.replay_chunk(dbc[:2], slot[:2])
        cursor.replay_chunk(dbc[2:], slot[2:])
        assert_same(cursor.result(), mono)


class TestCursorApi:
    def test_chunk_result_is_chunk_local(self):
        dbc, slot = random_accesses(seed=5, n=20)
        cursor = ShiftCursor(NUM_DBCS, DOMAINS)
        first = cursor.replay_chunk(dbc[:10], slot[:10])
        second = cursor.replay_chunk(dbc[10:], slot[10:])
        assert first.accesses == second.accesses == 10
        assert cursor.shifts == first.shifts + second.shifts

    def test_write_counter_is_optional(self):
        dbc, slot = random_accesses(seed=5, n=8)
        cursor = ShiftCursor(NUM_DBCS, DOMAINS)
        cursor.replay_chunk(dbc, slot)
        assert cursor.writes == 0
        cursor.replay_chunk(dbc, slot, writes=np.array([True] * 5 + [False] * 3))
        assert cursor.writes == 5

    def test_reset_returns_to_cold_state(self):
        dbc, slot = random_accesses(seed=5, n=8)
        cursor = ShiftCursor(NUM_DBCS, DOMAINS)
        cursor.replay_chunk(dbc, slot)
        cursor.reset()
        assert cursor.accesses == cursor.shifts == cursor.writes == 0
        assert not cursor.aligned.any()
        assert not cursor.offsets.any()
        mono = monolithic(dbc, slot, None, 1, True)
        cursor.replay_chunk(dbc, slot)
        assert_same(cursor.result(), mono)

    def test_empty_chunk_is_a_noop(self):
        cursor = ShiftCursor(NUM_DBCS, DOMAINS)
        empty = np.empty(0, dtype=np.int64)
        cursor.replay_chunk(empty, empty)
        assert cursor.accesses == 0 and cursor.shifts == 0
