"""Unit tests for the engine API surface: registry, requests, caches."""

import numpy as np
import pytest

from repro.core.cost import cost_from_arrays
from repro.core.placement import Placement
from repro.engine import (
    ShiftRequest,
    available_backends,
    clear_compile_caches,
    compile_access_arrays,
    get_backend,
    single_port_warm_total,
    trace_fingerprint,
)
from repro.errors import SimulationError
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace


class TestBackendRegistry:
    def test_both_backends_registered(self):
        # The core pair is always present; the optional numba backend is
        # registered exactly when its import gate passed.
        from repro.engine.numba_backend import NUMBA_AVAILABLE

        registered = available_backends()
        assert "numpy" in registered and "reference" in registered
        assert ("numba" in registered) == NUMBA_AVAILABLE
        assert set(registered) <= {"numpy", "reference", "numba"}

    def test_lookup_by_name(self):
        assert get_backend("numpy").name == "numpy"
        assert get_backend("reference").name == "reference"

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert get_backend(None).name == "numpy"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert get_backend(None).name == "reference"

    def test_instance_passthrough(self):
        backend = get_backend("reference")
        assert get_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine backend"):
            get_backend("cuda")

    def test_non_backend_rejected(self):
        with pytest.raises(SimulationError):
            get_backend(42)


class TestShiftRequestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            ShiftRequest(dbc=np.array([0, 1]), slot=np.array([0]),
                         num_dbcs=2, domains=8)

    def test_dbc_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            ShiftRequest(dbc=np.array([2]), slot=np.array([0]),
                         num_dbcs=2, domains=8)

    @pytest.mark.parametrize("backend_name", ["numpy", "reference"])
    def test_slot_outside_track_rejected(self, backend_name):
        request = ShiftRequest(dbc=np.array([0]), slot=np.array([8]),
                               num_dbcs=1, domains=8)
        with pytest.raises(SimulationError, match="outside track"):
            get_backend(backend_name).run(request)

    def test_bad_init_offsets_rejected(self):
        request = ShiftRequest(dbc=np.array([0]), slot=np.array([0]),
                               num_dbcs=1, domains=8,
                               init_offsets=np.array([8]))
        with pytest.raises(SimulationError, match="envelope"):
            get_backend("numpy").run(request)

    def test_init_shape_mismatch_rejected(self):
        request = ShiftRequest(dbc=np.array([0]), slot=np.array([0]),
                               num_dbcs=2, domains=8,
                               init_offsets=np.array([0]))
        with pytest.raises(SimulationError, match="shape"):
            get_backend("numpy").run(request)


class TestCompileCache:
    def test_arrays_are_cached_and_frozen(self):
        seq = AccessSequence(list("abcab"))
        placement = Placement([("a", "b"), ("c",)])
        first = compile_access_arrays(seq, placement)
        second = compile_access_arrays(seq, placement)
        assert first[0] is second[0] and first[1] is second[1]
        assert not first[0].flags.writeable
        assert first[0].tolist() == [0, 0, 1, 0, 0]
        assert first[1].tolist() == [0, 1, 0, 0, 1]

    def test_equal_inputs_share_entries(self):
        # lru_cache keys on equality, so freshly built equal objects hit.
        hits_before = compile_access_arrays.cache_info().hits
        for _ in range(2):
            seq = AccessSequence(list("xyx"))
            placement = Placement([("x", "y")])
            compile_access_arrays(seq, placement)
        assert compile_access_arrays.cache_info().hits > hits_before

    def test_clear_compile_caches(self):
        seq = AccessSequence(list("ab"))
        compile_access_arrays(seq, Placement([("a", "b")]))
        clear_compile_caches()
        assert compile_access_arrays.cache_info().currsize == 0


class TestTraceFingerprint:
    def test_content_identity(self):
        a = MemoryTrace(AccessSequence(list("abab"), name="one"))
        b = MemoryTrace(AccessSequence(list("abab"), name="two"))
        assert trace_fingerprint(a) == trace_fingerprint(b)  # name-free

    def test_write_mask_matters(self):
        seq = AccessSequence(list("abab"))
        default = MemoryTrace(seq)
        all_writes = MemoryTrace(seq, writes=[True] * 4)
        assert trace_fingerprint(default) != trace_fingerprint(all_writes)

    def test_access_order_matters(self):
        a = MemoryTrace(AccessSequence(list("ab"), variables=list("ab")))
        b = MemoryTrace(AccessSequence(list("ba"), variables=list("ab")))
        assert trace_fingerprint(a) != trace_fingerprint(b)


class TestWarmSinglePortKernel:
    def test_matches_cost_from_arrays(self, fig3_sequence):
        placement = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        dbc_of, pos_of = placement.as_arrays(fig3_sequence)
        codes = fig3_sequence.codes
        assert single_port_warm_total(dbc_of[codes], pos_of[codes]) == 39
        assert cost_from_arrays(codes, dbc_of, pos_of, 2) == 39

    def test_trivial_sizes(self):
        empty = np.array([], dtype=np.int64)
        assert single_port_warm_total(empty, empty) == 0
        one = np.array([0], dtype=np.int64)
        assert single_port_warm_total(one, np.array([5])) == 0
