"""The JIT-compiled backend, tested without needing the extra.

When numba is absent, the ``njit`` decorator in
:mod:`repro.engine.numba_backend` degrades to the identity — the exact
kernel code the JIT would compile runs interpreted. These tests
construct the backend with ``require_compiled=False``, so the compiled
semantics (replay loops, carry-in, population kernel, ``evaluate_batch``
delegation) are pinned on every machine; the CI leg with the
``compiled`` extra runs the same tests through the real JIT.
"""

import numpy as np
import pytest

import repro.engine as engine
from repro.engine import (
    AUTO_BACKEND,
    ShiftCursor,
    ShiftRequest,
    evaluate_batch,
    get_backend,
    resolve_backend_name,
)
from repro.engine.numba_backend import (
    INSTALL_HINT,
    NUMBA_AVAILABLE,
    NumbaBackend,
)
from repro.engine.reference import ReferenceBackend
from repro.errors import SimulationError


@pytest.fixture
def interpreted():
    return NumbaBackend(require_compiled=False)


def random_request(seed=3, accesses=400, num_dbcs=6, domains=64, ports=2,
                   warm_start=True, **kwargs):
    rng = np.random.default_rng(seed)
    return ShiftRequest(
        dbc=rng.integers(0, num_dbcs, accesses),
        slot=rng.integers(0, domains, accesses),
        num_dbcs=num_dbcs,
        domains=domains,
        ports=ports,
        warm_start=warm_start,
        **kwargs,
    )


class TestInterpretedKernels:
    @pytest.mark.parametrize("ports", [1, 2, 8])
    @pytest.mark.parametrize("warm_start", [True, False])
    def test_replay_matches_reference(self, interpreted, ports, warm_start):
        request = random_request(ports=ports, warm_start=warm_start)
        assert interpreted.run(request) == ReferenceBackend().run(request)

    def test_static_positions_slice(self, interpreted):
        from repro.engine.semantics import PortPolicy

        rng = np.random.default_rng(9)
        request = ShiftRequest(
            dbc=rng.integers(0, 4, 200), slot=rng.integers(0, 32, 200),
            num_dbcs=4, domains=32, ports=4, policy=PortPolicy.STATIC,
        )
        assert interpreted.run(request) == ReferenceBackend().run(request)

    def test_carry_in_chains(self, interpreted):
        """Two carried halves == one monolithic run."""
        request = random_request(seed=17, accesses=300)
        whole = interpreted.run(request)
        half = 150
        first = interpreted.run(ShiftRequest(
            dbc=request.dbc[:half], slot=request.slot[:half],
            num_dbcs=request.num_dbcs, domains=request.domains, ports=2,
        ))
        second = interpreted.run(ShiftRequest(
            dbc=request.dbc[half:], slot=request.slot[half:],
            num_dbcs=request.num_dbcs, domains=request.domains, ports=2,
            init_offsets=np.asarray(first.final_offsets),
            init_aligned=np.asarray(first.final_aligned),
        ))
        assert first.shifts + second.shifts == whole.shifts
        assert np.array_equal(second.final_offsets, whole.final_offsets)

    def test_cursor_accepts_instance(self, interpreted):
        request = random_request(seed=29, accesses=256, ports=4)
        cursor = ShiftCursor(num_dbcs=6, domains=64, ports=4,
                             backend=interpreted)
        for start in range(0, 256, 100):
            cursor.replay_chunk(request.dbc[start:start + 100],
                                request.slot[start:start + 100])
        assert cursor.result() == interpreted.run(request)

    def test_slot_outside_track_rejected(self, interpreted):
        request = ShiftRequest(dbc=np.array([0]), slot=np.array([8]),
                               num_dbcs=1, domains=8)
        with pytest.raises(SimulationError, match="outside track"):
            interpreted.run(request)

    def test_empty_request(self, interpreted):
        empty = np.array([], dtype=np.int64)
        result = interpreted.run(ShiftRequest(
            dbc=empty, slot=empty, num_dbcs=3, domains=16,
        ))
        assert result.accesses == 0 and result.shifts == 0


class TestPopulationKernel:
    @pytest.fixture
    def population(self):
        rng = np.random.default_rng(31)
        k, num_vars, num_dbcs, accesses = 8, 12, 3, 120
        codes = rng.integers(0, num_vars, accesses)
        dbc_of = np.empty((k, num_vars), dtype=np.int64)
        pos_of = np.empty((k, num_vars), dtype=np.int64)
        lanes = np.arange(num_vars, dtype=np.int64)
        for r in range(k):
            perm = rng.permutation(num_vars)
            dbc_of[r, perm] = lanes % num_dbcs
            pos_of[r, perm] = lanes // num_dbcs
        return codes, dbc_of, pos_of, num_dbcs

    @pytest.mark.parametrize("warm_start", [True, False])
    def test_matches_numpy_and_reference(self, interpreted, population,
                                         warm_start):
        codes, dbc_of, pos_of, num_dbcs = population
        kwargs = dict(num_dbcs=num_dbcs, domains=16, ports=2,
                      warm_start=warm_start)
        totals_np = evaluate_batch(codes, dbc_of, pos_of, backend="numpy",
                                   **kwargs)
        totals_nb = evaluate_batch(codes, dbc_of, pos_of,
                                   backend=interpreted, **kwargs)
        assert np.array_equal(totals_np, totals_nb)
        oracle = ReferenceBackend()
        for r in range(dbc_of.shape[0]):
            expected = oracle.run(ShiftRequest(
                dbc=dbc_of[r][codes], slot=pos_of[r][codes],
                num_dbcs=num_dbcs, domains=16, ports=2,
                warm_start=warm_start,
            )).shifts
            assert int(totals_nb[r]) == expected

    def test_delegation_reaches_hook(self, interpreted, population,
                                     monkeypatch):
        """With a hook-bearing backend, ``_batch_nearest`` is bypassed."""
        import repro.engine.batch as batch

        def boom(*args, **kwargs):
            raise AssertionError("flattened-sort path should be bypassed")

        monkeypatch.setattr(batch, "_batch_nearest", boom)
        codes, dbc_of, pos_of, num_dbcs = population
        totals = evaluate_batch(codes, dbc_of, pos_of, backend=interpreted,
                                num_dbcs=num_dbcs, domains=16, ports=2)
        assert totals.shape == (dbc_of.shape[0],)

    def test_ambient_env_delegates(self, interpreted, population,
                                   monkeypatch):
        """``REPRO_BACKEND`` steers ``evaluate_batch(backend=None)``."""
        codes, dbc_of, pos_of, num_dbcs = population
        kwargs = dict(num_dbcs=num_dbcs, domains=16, ports=2)
        baseline = evaluate_batch(codes, dbc_of, pos_of, **kwargs)
        monkeypatch.setitem(engine._BACKENDS, "numba", interpreted)
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        totals = evaluate_batch(codes, dbc_of, pos_of, **kwargs)
        assert np.array_equal(totals, baseline)

    def test_single_port_stays_anchored(self, interpreted, population):
        """ports=1 keeps the closed-form path; no hook involvement."""
        codes, dbc_of, pos_of, num_dbcs = population
        kwargs = dict(num_dbcs=num_dbcs, domains=16, ports=1)
        assert np.array_equal(
            evaluate_batch(codes, dbc_of, pos_of, backend=interpreted,
                           **kwargs),
            evaluate_batch(codes, dbc_of, pos_of, backend="numpy", **kwargs),
        )


class TestAvailabilityGating:
    def test_registration_tracks_import_gate(self):
        assert ("numba" in engine.available_backends()) == NUMBA_AVAILABLE

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs numba absent")
    def test_constructor_raises_with_hint(self):
        with pytest.raises(SimulationError, match="compiled"):
            NumbaBackend()
        with pytest.raises(SimulationError,
                           match=INSTALL_HINT.replace("[", r"\[")):
            NumbaBackend()

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs numba absent")
    def test_get_backend_raises_with_hint(self):
        with pytest.raises(SimulationError,
                           match=INSTALL_HINT.replace("[", r"\[")):
            get_backend("numba")

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="needs the extra")
    def test_registered_when_installed(self):
        assert get_backend("numba").name == "numba"
        from repro.engine.numba_backend import warmup

        assert warmup() >= 0.0

    def test_truly_unknown_name_keeps_old_error(self):
        with pytest.raises(SimulationError, match="unknown engine backend"):
            get_backend("cuda")

    def test_non_callable_run_rejected(self):
        class Impostor:
            run = "not callable"

        with pytest.raises(SimulationError, match="non-callable"):
            get_backend(Impostor())


class TestAutoSelection:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        engine._reset_auto_cache()
        yield
        engine._reset_auto_cache()

    def test_resolves_to_registered_backend(self):
        name = resolve_backend_name(AUTO_BACKEND)
        assert name in engine.available_backends()
        assert name != "reference"  # the oracle never wins auto

    def test_resolution_is_cached(self, monkeypatch):
        first = engine.resolve_auto_backend()

        def boom():
            raise AssertionError("calibration must run at most once")

        monkeypatch.setattr(engine, "_calibrate_auto", boom)
        assert engine.resolve_auto_backend() == first

    def test_get_backend_accepts_auto(self):
        backend = get_backend(AUTO_BACKEND)
        assert backend.name == engine.resolve_auto_backend()

    def test_env_accepts_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", AUTO_BACKEND)
        assert get_backend(None).name == engine.resolve_auto_backend()

    def test_cursor_accepts_auto(self):
        cursor = ShiftCursor(num_dbcs=2, domains=16, backend=AUTO_BACKEND)
        rng = np.random.default_rng(1)
        cursor.replay_chunk(rng.integers(0, 2, 32), rng.integers(0, 16, 32))
        assert cursor.shifts >= 0

    def test_registered_names_pass_through(self):
        assert resolve_backend_name("numpy") == "numpy"
        assert resolve_backend_name("reference") == "reference"
