"""Cross-backend differential oracle.

Every registered backend must produce bit-identical ``ShiftResult``s to
the per-access reference backend — counters *and* final state — over a
randomized matrix of traces, port counts, warm/cold starts and
:class:`ShiftCursor` chunk sizes. The parametrization iterates
``available_backends()`` plus the known optional backends, so a newly
registered backend inherits the whole matrix for free and an
uninstalled optional backend shows up as an explicit skip with its
install hint, not as silent non-coverage.
"""

import numpy as np
import pytest

from repro.engine import (
    OPTIONAL_BACKEND_EXTRAS,
    FaultModel,
    PortPolicy,
    ShiftCursor,
    ShiftRequest,
    available_backends,
    get_backend,
)
from repro.engine.reference import ReferenceBackend

#: Registered backends plus known optional ones — the latter param-skip
#: with a pointed reason when the extra is not installed.
ALL_BACKENDS = sorted(set(available_backends()) | set(OPTIONAL_BACKEND_EXTRAS))

PORTS = (1, 2, 4, 8)
CHUNK_SIZES = (1, 7, 4096)

#: Fault configurations the oracle matrix sweeps: clean, the rate-0
#: model (must normalize to the clean path), light and heavy uniform
#: rates, and a per-DBC skew including a fault-immune DBC.
FAULT_MODELS = (
    None,
    FaultModel(rate=0.0, seed=3),
    FaultModel(rate=0.01, seed=3),
    FaultModel(rate=0.1, seed=3),
    FaultModel(rate=0.05, seed=9, dbc_skew=(0.5, 2.0, 0.0)),
)


def _fault_id(model):
    if model is None:
        return "clean"
    skew = "+skew" if model.dbc_skew is not None else ""
    return f"rate{model.rate:g}{skew}"


@pytest.fixture(params=ALL_BACKENDS)
def backend(request):
    name = request.param
    if name not in available_backends():
        from repro.engine import _install_hint

        pytest.skip(f"backend {name!r} not installed ({_install_hint(name)})")
    return get_backend(name)


def random_request(seed: int, ports: int, warm_start: bool,
                   accesses: int = 500, num_dbcs: int = 6,
                   domains: int = 64) -> ShiftRequest:
    rng = np.random.default_rng(seed)
    return ShiftRequest(
        dbc=rng.integers(0, num_dbcs, accesses),
        slot=rng.integers(0, domains, accesses),
        num_dbcs=num_dbcs,
        domains=domains,
        ports=ports,
        warm_start=warm_start,
    )


@pytest.mark.parametrize("ports", PORTS)
@pytest.mark.parametrize("warm_start", [True, False])
def test_monolithic_replay_matches_reference(backend, ports, warm_start):
    oracle = ReferenceBackend()
    for seed in range(3):
        request = random_request(seed, ports, warm_start)
        assert backend.run(request) == oracle.run(request)


@pytest.mark.parametrize("ports", [1, 4])
def test_static_policy_matches_reference(backend, ports):
    oracle = ReferenceBackend()
    request = random_request(11, ports, True)
    request = ShiftRequest(
        dbc=request.dbc, slot=request.slot, num_dbcs=request.num_dbcs,
        domains=request.domains, ports=ports, policy=PortPolicy.STATIC,
    )
    assert backend.run(request) == oracle.run(request)


@pytest.mark.parametrize("warm_start", [True, False])
def test_carry_in_matches_reference(backend, warm_start):
    oracle = ReferenceBackend()
    rng = np.random.default_rng(23)
    request = random_request(23, 2, warm_start)
    seeded = ShiftRequest(
        dbc=request.dbc, slot=request.slot, num_dbcs=request.num_dbcs,
        domains=request.domains, ports=2, warm_start=warm_start,
        init_offsets=rng.integers(0, request.domains, request.num_dbcs),
        init_aligned=rng.integers(0, 2, request.num_dbcs).astype(bool),
    )
    assert backend.run(seeded) == oracle.run(seeded)


@pytest.mark.parametrize("chunk", CHUNK_SIZES)
@pytest.mark.parametrize("warm_start", [True, False])
def test_cursor_chunk_size_invariance(backend, chunk, warm_start):
    """Chunked replay == monolithic replay, for any chunk size."""
    request = random_request(42, 4, warm_start, accesses=600)
    monolithic = backend.run(request)
    cursor = ShiftCursor(
        num_dbcs=request.num_dbcs, domains=request.domains, ports=4,
        warm_start=warm_start, backend=backend,
    )
    for start in range(0, request.accesses, chunk):
        cursor.replay_chunk(request.dbc[start:start + chunk],
                            request.slot[start:start + chunk])
    accumulated = cursor.result()
    assert accumulated.shifts == monolithic.shifts
    assert accumulated.per_dbc_shifts == monolithic.per_dbc_shifts
    assert np.array_equal(accumulated.final_offsets,
                          monolithic.final_offsets)
    assert np.array_equal(accumulated.final_aligned,
                          monolithic.final_aligned)


@pytest.mark.parametrize("fault", FAULT_MODELS, ids=_fault_id)
@pytest.mark.parametrize("ports", PORTS)
def test_faulted_replay_matches_reference(backend, ports, fault):
    """Fault draws are backend-independent: bit-identical observations.

    ``ShiftResult.__eq__`` covers the attached ``FaultObservation``
    (injected/misaligned counters, final drifts, corruption flag), so
    one ``==`` pins the whole faulted result, counters and state alike.
    """
    oracle = ReferenceBackend()
    for seed in range(2):
        base = random_request(seed, ports, True)
        request = ShiftRequest(
            dbc=base.dbc, slot=base.slot, num_dbcs=base.num_dbcs,
            domains=base.domains, ports=ports, warm_start=True,
            fault=fault,
        )
        assert backend.run(request) == oracle.run(request)


@pytest.mark.parametrize("fault", [m for m in FAULT_MODELS if m is not None],
                         ids=_fault_id)
@pytest.mark.parametrize("chunk", CHUNK_SIZES)
def test_faulted_cursor_chunk_size_invariance(backend, chunk, fault):
    """Fault draws key on the absolute access index, so any chunking of
    the same trace sees the same faults as one monolithic replay."""
    base = random_request(42, 4, True, accesses=600)
    request = ShiftRequest(
        dbc=base.dbc, slot=base.slot, num_dbcs=base.num_dbcs,
        domains=base.domains, ports=4, warm_start=True, fault=fault,
    )
    monolithic = backend.run(request)
    cursor = ShiftCursor(
        num_dbcs=request.num_dbcs, domains=request.domains, ports=4,
        warm_start=True, backend=backend, fault=fault,
    )
    for start in range(0, request.accesses, chunk):
        cursor.replay_chunk(request.dbc[start:start + chunk],
                            request.slot[start:start + chunk])
    accumulated = cursor.result()
    assert accumulated == monolithic
    if fault.is_null:
        assert accumulated.faults is None
    else:
        assert accumulated.faults is not None
        assert cursor.fault_injected == monolithic.faults.injected
        assert cursor.fault_misaligned == monolithic.faults.misaligned
        assert np.array_equal(cursor.drifts, monolithic.faults.final_drifts)


def test_rate_zero_model_is_clean_path(backend):
    """A rate-0 model normalizes away: the request IS the clean request."""
    base = random_request(7, 2, True)
    clean = ShiftRequest(
        dbc=base.dbc, slot=base.slot, num_dbcs=base.num_dbcs,
        domains=base.domains, ports=2, warm_start=True,
    )
    zeroed = ShiftRequest(
        dbc=base.dbc, slot=base.slot, num_dbcs=base.num_dbcs,
        domains=base.domains, ports=2, warm_start=True,
        fault=FaultModel(rate=0.0, seed=123),
    )
    assert zeroed.fault is None
    result = backend.run(zeroed)
    assert result == backend.run(clean)
    assert result.faults is None


def test_empty_chunk_is_identity(backend):
    request = random_request(5, 2, True, accesses=50)
    before = backend.run(request)
    empty = np.array([], dtype=np.int64)
    resumed = ShiftRequest(
        dbc=empty, slot=empty, num_dbcs=request.num_dbcs,
        domains=request.domains, ports=2,
        init_offsets=np.asarray(before.final_offsets),
        init_aligned=np.asarray(before.final_aligned),
    )
    after = backend.run(resumed)
    assert after.shifts == 0
    assert np.array_equal(after.final_offsets, before.final_offsets)
    assert np.array_equal(after.final_aligned, before.final_aligned)
