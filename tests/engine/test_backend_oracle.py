"""Cross-backend differential oracle.

Every registered backend must produce bit-identical ``ShiftResult``s to
the per-access reference backend — counters *and* final state — over a
randomized matrix of traces, port counts, warm/cold starts and
:class:`ShiftCursor` chunk sizes. The parametrization iterates
``available_backends()`` plus the known optional backends, so a newly
registered backend inherits the whole matrix for free and an
uninstalled optional backend shows up as an explicit skip with its
install hint, not as silent non-coverage.
"""

import numpy as np
import pytest

from repro.engine import (
    OPTIONAL_BACKEND_EXTRAS,
    PortPolicy,
    ShiftCursor,
    ShiftRequest,
    available_backends,
    get_backend,
)
from repro.engine.reference import ReferenceBackend

#: Registered backends plus known optional ones — the latter param-skip
#: with a pointed reason when the extra is not installed.
ALL_BACKENDS = sorted(set(available_backends()) | set(OPTIONAL_BACKEND_EXTRAS))

PORTS = (1, 2, 4, 8)
CHUNK_SIZES = (1, 7, 4096)


@pytest.fixture(params=ALL_BACKENDS)
def backend(request):
    name = request.param
    if name not in available_backends():
        from repro.engine import _install_hint

        pytest.skip(f"backend {name!r} not installed ({_install_hint(name)})")
    return get_backend(name)


def random_request(seed: int, ports: int, warm_start: bool,
                   accesses: int = 500, num_dbcs: int = 6,
                   domains: int = 64) -> ShiftRequest:
    rng = np.random.default_rng(seed)
    return ShiftRequest(
        dbc=rng.integers(0, num_dbcs, accesses),
        slot=rng.integers(0, domains, accesses),
        num_dbcs=num_dbcs,
        domains=domains,
        ports=ports,
        warm_start=warm_start,
    )


@pytest.mark.parametrize("ports", PORTS)
@pytest.mark.parametrize("warm_start", [True, False])
def test_monolithic_replay_matches_reference(backend, ports, warm_start):
    oracle = ReferenceBackend()
    for seed in range(3):
        request = random_request(seed, ports, warm_start)
        assert backend.run(request) == oracle.run(request)


@pytest.mark.parametrize("ports", [1, 4])
def test_static_policy_matches_reference(backend, ports):
    oracle = ReferenceBackend()
    request = random_request(11, ports, True)
    request = ShiftRequest(
        dbc=request.dbc, slot=request.slot, num_dbcs=request.num_dbcs,
        domains=request.domains, ports=ports, policy=PortPolicy.STATIC,
    )
    assert backend.run(request) == oracle.run(request)


@pytest.mark.parametrize("warm_start", [True, False])
def test_carry_in_matches_reference(backend, warm_start):
    oracle = ReferenceBackend()
    rng = np.random.default_rng(23)
    request = random_request(23, 2, warm_start)
    seeded = ShiftRequest(
        dbc=request.dbc, slot=request.slot, num_dbcs=request.num_dbcs,
        domains=request.domains, ports=2, warm_start=warm_start,
        init_offsets=rng.integers(0, request.domains, request.num_dbcs),
        init_aligned=rng.integers(0, 2, request.num_dbcs).astype(bool),
    )
    assert backend.run(seeded) == oracle.run(seeded)


@pytest.mark.parametrize("chunk", CHUNK_SIZES)
@pytest.mark.parametrize("warm_start", [True, False])
def test_cursor_chunk_size_invariance(backend, chunk, warm_start):
    """Chunked replay == monolithic replay, for any chunk size."""
    request = random_request(42, 4, warm_start, accesses=600)
    monolithic = backend.run(request)
    cursor = ShiftCursor(
        num_dbcs=request.num_dbcs, domains=request.domains, ports=4,
        warm_start=warm_start, backend=backend,
    )
    for start in range(0, request.accesses, chunk):
        cursor.replay_chunk(request.dbc[start:start + chunk],
                            request.slot[start:start + chunk])
    accumulated = cursor.result()
    assert accumulated.shifts == monolithic.shifts
    assert accumulated.per_dbc_shifts == monolithic.per_dbc_shifts
    assert np.array_equal(accumulated.final_offsets,
                          monolithic.final_offsets)
    assert np.array_equal(accumulated.final_aligned,
                          monolithic.final_aligned)


def test_empty_chunk_is_identity(backend):
    request = random_request(5, 2, True, accesses=50)
    before = backend.run(request)
    empty = np.array([], dtype=np.int64)
    resumed = ShiftRequest(
        dbc=empty, slot=empty, num_dbcs=request.num_dbcs,
        domains=request.domains, ports=2,
        init_offsets=np.asarray(before.final_offsets),
        init_aligned=np.asarray(before.final_aligned),
    )
    after = backend.run(resumed)
    assert after.shifts == 0
    assert np.array_equal(after.final_offsets, before.final_offsets)
    assert np.array_equal(after.final_aligned, before.final_aligned)
