"""Bit-identity of the constant-collapse wide-port scan vs the oracle.

Wide ports (``p**p > 256``) replay through ``_scan_collapse``: maps are
``(const, rows)`` pairs, prefix states collapse to scalars at the first
constant map, and the blocked chase tracks O(blocks) scalars instead of
map rows. These tests pin every dispatch path — Hillis–Steele doubling
(``n <= _DOUBLING_MAX``), the collapse chase beyond it, block-boundary
lengths, and the degenerate all-constant / constant-free map streams —
against the per-access reference backend, across ``p in {3, 5, 8}``.
"""

import numpy as np
import pytest

from repro.engine import ShiftRequest, get_backend
from repro.engine.numpy_backend import (
    _DOUBLING_MAX,
    _SCAN_BLOCK,
    _gap_maps,
    _scan_collapse,
)

REFERENCE = get_backend("reference")
NUMPY = get_backend("numpy")

WIDE_PORTS = [3, 5, 8]  # all beyond the packed table (p**p > 256)


def assert_equivalent(request: ShiftRequest) -> None:
    ref = REFERENCE.run(request)
    vec = NUMPY.run(request)
    assert vec.shifts == ref.shifts
    assert vec.per_dbc_shifts == ref.per_dbc_shifts
    assert np.array_equal(vec.final_offsets, ref.final_offsets)


def request_for(slots, ports, dbcs=4, domains=128, seed=0, warm=True):
    rng = np.random.default_rng(seed)
    slots = np.asarray(slots, dtype=np.int64)
    return ShiftRequest(
        dbc=rng.integers(0, dbcs, slots.size),
        slot=slots,
        num_dbcs=dbcs,
        domains=domains,
        ports=ports,
        warm_start=warm,
    )


class TestScanPathDispatch:
    """Both scan paths, either side of the doubling/collapse switch."""

    @pytest.mark.parametrize("ports", WIDE_PORTS)
    @pytest.mark.parametrize(
        "n", [1, 2, _DOUBLING_MAX, _DOUBLING_MAX + 1, 3 * _DOUBLING_MAX]
    )
    def test_random_traces(self, ports, n):
        rng = np.random.default_rng(n * 31 + ports)
        slots = rng.integers(0, 128, n)
        assert_equivalent(request_for(slots, ports, seed=n + ports))

    @pytest.mark.parametrize("ports", WIDE_PORTS)
    @pytest.mark.parametrize("warm", [True, False])
    def test_cold_and_warm_beyond_doubling(self, ports, warm):
        rng = np.random.default_rng(5 + ports)
        slots = rng.integers(0, 64, _DOUBLING_MAX + 500)
        assert_equivalent(
            request_for(slots, ports, domains=64, seed=ports, warm=warm)
        )

    @pytest.mark.parametrize("ports", WIDE_PORTS)
    def test_huge_track_skips_gap_table(self, ports):
        # 2K-1 beyond the table-span floor: maps resolved per access,
        # same collapse scan.
        rng = np.random.default_rng(17 + ports)
        slots = rng.integers(0, 200_000, _DOUBLING_MAX + 300)
        assert_equivalent(
            request_for(slots, ports, domains=200_000, seed=ports)
        )


class TestBlockBoundaries:
    """Lengths straddling the chase's 128-access block structure."""

    @pytest.mark.parametrize("ports", WIDE_PORTS)
    @pytest.mark.parametrize(
        "extra", [_SCAN_BLOCK - 1, _SCAN_BLOCK, _SCAN_BLOCK + 1]
    )
    def test_boundary_lengths_beyond_doubling(self, ports, extra):
        n = _DOUBLING_MAX + extra  # partial, exact, and spilling last block
        rng = np.random.default_rng(n + ports)
        slots = rng.integers(0, 128, n)
        assert_equivalent(request_for(slots, ports, seed=n))

    @pytest.mark.parametrize("ports", WIDE_PORTS)
    @pytest.mark.parametrize("n", [127, 128, 129, 255, 256, 257])
    def test_scan_collapse_directly_at_small_boundaries(self, ports, n):
        # The backend routes small n through doubling; drive the collapse
        # scan itself at single/partial-block shapes and cross-check.
        rng = np.random.default_rng(n * 7 + ports)
        rows_tbl, const_tbl = _gap_maps(128, ports)
        gaps = rng.integers(0, rows_tbl.shape[0], n)
        rows = rows_tbl[gaps]
        const = const_tbl[gaps]
        const[0] = rows[0, 0]  # element 0 must be a reset (constant) map
        rows[0] = const[0]
        chosen = _scan_collapse(const.copy(), rows.copy(), ports)
        # Oracle: sequential evaluation of the same map stream.
        state = 0
        for i in range(n):
            state = int(const[i]) if const[i] >= 0 else int(rows[i, state])
            assert chosen[i] == state


class TestDegenerateMapStreams:
    @pytest.mark.parametrize("ports", WIDE_PORTS)
    def test_no_constant_stream(self, ports):
        # A pinned slot yields gap-0 identity maps everywhere: not one
        # constant after the first access, the collapse scan's worst
        # case (exercises the constant-free block repair).
        slots = np.full(_DOUBLING_MAX + 400, 64, dtype=np.int64)
        assert_equivalent(request_for(slots, ports, dbcs=1, seed=ports))

    @pytest.mark.parametrize("ports", WIDE_PORTS)
    def test_all_constant_stream(self, ports):
        # Alternating track extremes: every gap map is constant.
        n = _DOUBLING_MAX + 400
        slots = np.empty(n, dtype=np.int64)
        slots[::2] = 0
        slots[1::2] = 127
        assert_equivalent(request_for(slots, ports, dbcs=1, seed=ports))

    @pytest.mark.parametrize("ports", WIDE_PORTS)
    def test_mixed_runs_of_identity_maps(self, ports):
        # Long constant-free stretches interleaved with resets: covers
        # the depth-limited forward fill across many blocks.
        rng = np.random.default_rng(23 + ports)
        pieces = []
        for _ in range(12):
            pieces.append(np.full(int(rng.integers(1, 900)),
                                  int(rng.integers(0, 128))))
            pieces.append(rng.integers(0, 128, int(rng.integers(1, 50))))
        slots = np.concatenate(pieces)
        assert_equivalent(request_for(slots, ports, dbcs=2, seed=ports))


class TestPopulationInheritsCollapse:
    @pytest.mark.parametrize("ports", WIDE_PORTS)
    def test_evaluate_batch_matches_reference(self, ports):
        from repro.engine import evaluate_batch

        rng = np.random.default_rng(41 + ports)
        variables, trace, k, dbcs, domains = 16, 700, 12, 4, 64
        codes = rng.integers(0, variables, trace)
        dbc_of = rng.integers(0, dbcs, (k, variables))
        pos_of = rng.integers(0, domains, (k, variables))
        got = evaluate_batch(codes, dbc_of, pos_of, num_dbcs=dbcs,
                             domains=domains, ports=ports)
        want = [
            REFERENCE.run(ShiftRequest(
                dbc=dbc_of[i, codes], slot=pos_of[i, codes],
                num_dbcs=dbcs, domains=domains, ports=ports,
            )).shifts
            for i in range(k)
        ]
        assert list(got) == want
