"""Equivalence tests for the batched candidate-evaluation layer.

The contract: :func:`repro.engine.evaluate_batch` and
:class:`repro.engine.DeltaCost` must agree *exactly* — same integers —
with scoring each candidate through the per-access reference backend.
The searchers built on top (GA, RW, annealing) must keep producing
seed-for-seed identical results to the pre-batch scalar implementations,
which the regression pins at the bottom lock down.
"""

import numpy as np
import pytest

from repro.core.cost import cost_from_arrays, shift_cost, shift_costs_batch
from repro.core.ga import GAConfig, GeneticPlacer
from repro.core.placement import Placement
from repro.core.random_walk import random_walk_search
from repro.engine import (
    DeltaCost,
    PortPolicy,
    ShiftRequest,
    evaluate_batch,
    get_backend,
)
from repro.errors import SimulationError


def reference_scores(codes, dbc_of, pos_of, num_dbcs, domains, ports, warm):
    """Per-candidate totals through the per-access oracle backend."""
    backend = get_backend("reference")
    out = []
    for k in range(dbc_of.shape[0]):
        if codes.size == 0:
            out.append(0)
            continue
        result = backend.run(
            ShiftRequest(
                dbc=dbc_of[k][codes], slot=pos_of[k][codes],
                num_dbcs=num_dbcs, domains=domains, ports=ports,
                warm_start=warm,
            )
        )
        out.append(result.shifts)
    return out


class TestEvaluateBatch:
    @pytest.mark.parametrize("population", [1, 8, 64])
    @pytest.mark.parametrize("ports", [1, 2, 4])
    @pytest.mark.parametrize("warm", [True, False])
    def test_matches_reference_backend(self, population, ports, warm):
        rng = np.random.default_rng(1000 * population + 10 * ports + warm)
        for trial in range(4):
            num_vars = int(rng.integers(1, 14))
            accesses = int(rng.integers(0, 80))
            num_dbcs = int(rng.integers(1, 5))
            domains = int(rng.integers(8, 72))
            codes = rng.integers(0, num_vars, accesses)
            dbc_of = rng.integers(0, num_dbcs, (population, num_vars))
            pos_of = rng.integers(0, domains, (population, num_vars))
            got = evaluate_batch(
                codes, dbc_of, pos_of, num_dbcs=num_dbcs, domains=domains,
                ports=ports, warm_start=warm,
            )
            want = reference_scores(
                codes, dbc_of, pos_of, num_dbcs, domains, ports, warm
            )
            assert list(got) == want

    def test_long_traces_take_the_per_row_path(self):
        # > _FLAT_MAX_ACCESSES exercises the row-by-row kernel.
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 9, 700)
        dbc_of = rng.integers(0, 3, (5, 9))
        pos_of = rng.integers(0, 40, (5, 9))
        got = evaluate_batch(
            codes, dbc_of, pos_of, num_dbcs=3, domains=40, warm_start=False
        )
        assert list(got) == reference_scores(
            codes, dbc_of, pos_of, 3, 40, 1, False
        )

    def test_chunked_flat_key_range(self):
        # rows * num_dbcs beyond uint16 forces row chunking.
        rng = np.random.default_rng(4)
        codes = rng.integers(0, 20, 50)
        dbc_of = rng.integers(0, 600, (150, 20))
        pos_of = rng.integers(0, 64, (150, 20))
        got = evaluate_batch(codes, dbc_of, pos_of, num_dbcs=600, domains=64)
        assert list(got) == reference_scores(
            codes, dbc_of, pos_of, 600, 64, 1, True
        )

    def test_single_candidate_promotion(self):
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 6, 30)
        dbc_of = rng.integers(0, 2, 6)
        pos_of = rng.integers(0, 8, 6)
        got = evaluate_batch(codes, dbc_of, pos_of, num_dbcs=2, domains=8)
        assert got.shape == (1,)
        assert int(got[0]) == cost_from_arrays(codes, dbc_of, pos_of, 2)

    @pytest.mark.parametrize("warm", [True, False])
    def test_static_policy_matches_reference(self, warm):
        # STATIC multi-port takes the anchored path, so the cold branch
        # must charge the |slot - port_positions[0]| anchor correctly.
        rng = np.random.default_rng(6)
        codes = rng.integers(0, 8, 64)
        dbc_of = rng.integers(0, 2, (8, 8))
        pos_of = rng.integers(0, 32, (8, 8))
        got = evaluate_batch(
            codes, dbc_of, pos_of, num_dbcs=2, domains=32, ports=4,
            policy=PortPolicy.STATIC, warm_start=warm,
        )
        backend = get_backend("reference")
        want = [
            backend.run(
                ShiftRequest(
                    dbc=dbc_of[k][codes], slot=pos_of[k][codes], num_dbcs=2,
                    domains=32, ports=4, policy=PortPolicy.STATIC,
                    warm_start=warm,
                )
            ).shifts
            for k in range(8)
        ]
        assert list(got) == want

    def test_empty_population_and_trace(self):
        assert evaluate_batch(
            np.empty(0, dtype=np.int64),
            np.empty((3, 4), dtype=np.int64),
            np.empty((3, 4), dtype=np.int64),
            num_dbcs=2,
            domains=8,
        ).tolist() == [0, 0, 0]

    def test_validation(self):
        codes = np.array([0, 1])
        ok = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(SimulationError):
            evaluate_batch(codes, ok, np.zeros((3, 2)), num_dbcs=1)
        with pytest.raises(SimulationError):
            evaluate_batch(codes, ok + 5, ok, num_dbcs=2, domains=4)
        with pytest.raises(SimulationError):
            evaluate_batch(codes, ok, ok + 9, num_dbcs=2, domains=4)
        with pytest.raises(SimulationError):  # multi-port needs geometry
            evaluate_batch(codes, ok, ok, num_dbcs=2, ports=2)
        with pytest.raises(SimulationError):  # cold start needs geometry too
            evaluate_batch(codes, ok, ok, num_dbcs=2, warm_start=False)
        with pytest.raises(SimulationError):  # codes outside the candidates
            evaluate_batch(np.array([7]), ok, ok, num_dbcs=2, domains=4)

    def test_malformed_candidate_rejected(self):
        # Right element count, but one code duplicated and one missing:
        # must raise, not score uninitialized memory.
        from repro.engine import stack_candidate_arrays
        with pytest.raises(SimulationError):
            stack_candidate_arrays([[[0, 0], [2]]], 3)
        # Well-formed candidates still pack exactly.
        dbc_of, pos_of = stack_candidate_arrays([[[1, 0], [2]]], 3)
        assert dbc_of.tolist() == [[0, 0, 1]]
        assert pos_of.tolist() == [[1, 0, 0]]

    def test_cold_cost_independent_of_batchmates(self):
        # A candidate's cold-start cost must not depend on which other
        # candidates share the batch (the track length is explicit).
        codes = np.array([0, 1])
        lone = evaluate_batch(
            codes, np.zeros((1, 2), dtype=np.int64),
            np.array([[0, 1]]), num_dbcs=1, domains=10, warm_start=False,
        )
        paired = evaluate_batch(
            codes, np.zeros((2, 2), dtype=np.int64),
            np.array([[0, 1], [0, 9]]), num_dbcs=1, domains=10,
            warm_start=False,
        )
        assert int(lone[0]) == int(paired[0])


class TestDeltaCost:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_walk_agrees_with_reference(self, seed):
        rng = np.random.default_rng(seed)
        num_vars = int(rng.integers(2, 16))
        accesses = int(rng.integers(2, 150))
        num_dbcs = int(rng.integers(1, 4))
        codes = rng.integers(0, num_vars, accesses)
        dbc_of = rng.integers(0, num_dbcs, num_vars)
        pos_of = rng.permutation(num_vars).astype(np.int64)
        evaluator = DeltaCost(codes, dbc_of, pos_of)
        pos = pos_of.copy()

        def oracle():
            return reference_scores(
                codes, dbc_of[None, :], pos[None, :], num_dbcs,
                int(pos.max()) + 1, 1, True,
            )[0]

        assert evaluator.cost == oracle()
        for _ in range(25):
            a, b = (int(x) for x in rng.choice(num_vars, 2, replace=False))
            priced = evaluator.swap_delta(a, b)
            before = evaluator.cost
            pos[a], pos[b] = pos[b], pos[a]
            assert evaluator.swap(a, b) == oracle()
            assert evaluator.cost - before == priced
        assert evaluator.resync() == oracle()

    def test_generic_moves(self):
        rng = np.random.default_rng(11)
        codes = rng.integers(0, 8, 60)
        dbc_of = np.zeros(8, dtype=np.int64)
        pos_of = np.arange(8, dtype=np.int64)
        evaluator = DeltaCost(codes, dbc_of, pos_of)
        # Rotate three variables' slots: a 3-cycle as one move set.
        moves = {0: int(pos_of[1]), 1: int(pos_of[2]), 2: int(pos_of[0])}
        priced = evaluator.delta(moves)
        total = evaluator.apply(moves)
        pos = pos_of.copy()
        pos[[0, 1, 2]] = [pos_of[1], pos_of[2], pos_of[0]]
        want = cost_from_arrays(codes, dbc_of, pos, 1)
        assert total == want
        assert priced == want - cost_from_arrays(codes, dbc_of, pos_of, 1)

    def test_wide_dbc_indices_stay_grouped(self):
        # DBC indices beyond uint16 must not wrap in the pair compiler.
        codes = np.array([0, 1, 2])
        dbc_of = np.array([0, 0x10000, 0], dtype=np.int64)
        pos_of = np.array([0, 3, 7], dtype=np.int64)
        evaluator = DeltaCost(codes, dbc_of, pos_of)
        assert evaluator.cost == 7  # codes 0 and 2 share a DBC: |0 - 7|

    def test_delta_does_not_commit(self):
        codes = np.array([0, 1, 0, 2, 1])
        evaluator = DeltaCost(
            codes, np.zeros(3, dtype=np.int64), np.arange(3, dtype=np.int64)
        )
        before = evaluator.cost
        evaluator.swap_delta(0, 2)
        assert evaluator.cost == before
        assert evaluator.position_of(0) == 0


class TestPlacementBatchWrapper:
    def test_matches_scalar_shift_cost(self, fig3_sequence):
        placements = [
            Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")]),
            Placement([tuple(fig3_sequence.variables)]),
            Placement([(v,) for v in fig3_sequence.variables]),
        ]
        got = shift_costs_batch(fig3_sequence, placements)
        assert got.tolist() == [
            shift_cost(fig3_sequence, p) for p in placements
        ]

    def test_cold_start_matches(self, fig3_sequence):
        placements = [
            Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")]),
        ]
        got = shift_costs_batch(
            fig3_sequence, placements, domains=64, first_access_free=False
        )
        want = shift_cost(
            fig3_sequence, placements[0], domains=64, first_access_free=False
        )
        assert got.tolist() == [want]

    def test_multi_port_matches(self, fig3_sequence):
        placement = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        got = shift_costs_batch(fig3_sequence, [placement], ports=2, domains=64)
        assert got.tolist() == [
            shift_cost(fig3_sequence, placement, ports=2, domains=64)
        ]

    def test_empty_population(self, fig3_sequence):
        assert shift_costs_batch(fig3_sequence, []).tolist() == []


class TestSearcherRegressions:
    """Seed-fixed results pinned across the batch refactor.

    The values were captured from the pre-batch scalar implementations;
    the batched searchers must reproduce them bit-for-bit (the RNG
    streams are untouched because scoring consumes no randomness).
    """

    GA_SMALL = GAConfig(mu=10, lam=10, generations=8)

    @pytest.mark.parametrize("seed,cost,evaluations", [
        (1, 9, 90), (5, 9, 90), (7, 9, 90),
    ])
    def test_ga_pinned(self, fig3_sequence, seed, cost, evaluations):
        result = GeneticPlacer(
            fig3_sequence, 2, 512, self.GA_SMALL, rng=seed
        ).run()
        assert result.cost == cost
        assert result.evaluations == evaluations

    @pytest.mark.parametrize("seed,cost", [(3, 13), (4, 14), (9, 13)])
    def test_rw_pinned(self, fig3_sequence, seed, cost):
        result = random_walk_search(
            fig3_sequence, 2, 512, iterations=300, rng=seed,
            history_stride=100,
        )
        assert result.cost == cost

    def test_ga_batch_scoring_matches_single_fitness(self, fig3_sequence):
        placer = GeneticPlacer(
            fig3_sequence, 2, 512, self.GA_SMALL, rng=0
        )
        population = [placer.random_individual() for _ in range(12)]
        batch = placer.score_population(population)
        singles = [placer.fitness(ind) for ind in population]
        assert batch == singles
        # Both paths also agree with the scalar placement cost.
        variables = fig3_sequence.variables
        for ind, score in zip(population, batch):
            placement = Placement(
                [[variables[v] for v in dbc] for dbc in ind]
            )
            assert score == shift_cost(fig3_sequence, placement)
