"""Tests for the ``repro-store`` command-line interface."""

import json

import pytest

from repro.store import ExperimentStore
from repro.store.cli import main_store

from tests.store.test_store import make_cell


@pytest.fixture()
def store_path(tmp_path):
    path = tmp_path / "s.db"
    with ExperimentStore(path) as store:
        run_id = store.begin_run({"backend": "numpy"})
        store.put_cell("aaaa1111", make_cell(), run_id=run_id)
        store.put_cell("bbbb2222", make_cell(benchmark="jpeg", policy="GA"),
                       run_id=run_id)
        store.finish_run(run_id, status="complete", wall_time_s=0.1,
                         cells_total=2, hits_memory=0, hits_store=0,
                         computed=2)
    return path


class TestSubcommands:
    def test_ls(self, store_path, capsys):
        assert main_store(["--store", str(store_path), "ls"]) == 0
        out = capsys.readouterr().out
        assert "2 stored cell(s)" in out
        assert "adpcm" in out and "jpeg" in out

    def test_ls_limit_truncates(self, store_path, capsys):
        assert main_store(["--store", str(store_path), "ls", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 more" in out

    def test_stats(self, store_path, capsys):
        assert main_store(["--store", str(store_path), "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["cells"] == 2
        assert stats["runs"] == {"complete": 1}

    def test_runs(self, store_path, capsys):
        assert main_store(["--store", str(store_path), "runs"]) == 0
        (run,) = json.loads(capsys.readouterr().out)
        assert run["status"] == "complete"
        assert run["manifest"] == {"backend": "numpy"}

    def test_gc(self, store_path, capsys):
        assert main_store(["--store", str(store_path), "gc",
                           "--older-than", "-1"]) == 0
        assert "removed 2 cell(s)" in capsys.readouterr().out

    def test_export_stdout_and_file(self, store_path, capsys, tmp_path):
        assert main_store(["--store", str(store_path), "export"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        out_file = tmp_path / "dump.jsonl"
        assert main_store(["--store", str(store_path), "export",
                           "--out", str(out_file)]) == 0
        assert len(out_file.read_text().splitlines()) == 2

    def test_merge(self, store_path, tmp_path, capsys):
        dest = tmp_path / "dest.db"
        assert main_store(["--store", str(dest), "merge", str(store_path)]) == 0
        assert "+2 cell(s)" in capsys.readouterr().out
        with ExperimentStore(dest) as store:
            assert len(store) == 2


class TestErrors:
    def test_no_store_given(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main_store(["ls"]) == 2
        assert "no store given" in capsys.readouterr().err

    def test_missing_store_file(self, tmp_path, capsys):
        assert main_store(["--store", str(tmp_path / "nope.db"), "ls"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_env_store_used(self, store_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(store_path))
        assert main_store(["stats"]) == 0
        assert json.loads(capsys.readouterr().out)["cells"] == 2

    def test_merge_missing_source(self, tmp_path, capsys):
        dest = tmp_path / "dest.db"
        assert main_store(["--store", str(dest), "merge",
                           str(tmp_path / "ghost.db")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestQueueSubcommands:
    @pytest.fixture()
    def queued_path(self, tmp_path):
        from repro.store import QueueJob, WorkQueue

        path = tmp_path / "q.db"
        with ExperimentStore(path) as store:
            queue = WorkQueue(store)
            queue.submit([
                QueueJob(key=f"cell{i}", benchmark="adpcm", policy="DMA-SR",
                         dbcs=4, job={"i": i}, cost_hint=i,
                         max_attempts=1)
                for i in range(3)
            ])
            [claimed] = queue.claim(1, "w1")
            queue.fail(claimed.key, "w1", "synthetic failure")
        return path

    def test_queue_listing(self, queued_path, capsys):
        assert main_store(["--store", str(queued_path), "queue"]) == 0
        out = capsys.readouterr().out
        assert "3 queue row(s): 2 open" in out and "1 failed" in out
        assert "cell" in out and "DMA-SR" in out

    def test_queue_status_filter(self, queued_path, capsys):
        assert main_store(["--store", str(queued_path), "queue",
                           "--status", "failed"]) == 0
        out = capsys.readouterr().out
        assert out.count("\nc") == 1  # one data row

    def test_requeue_failed(self, queued_path, capsys):
        assert main_store(["--store", str(queued_path), "requeue",
                           "--failed"]) == 0
        assert "retrying 1 failed cell(s)" in capsys.readouterr().out

    def test_errors(self, queued_path, capsys):
        assert main_store(["--store", str(queued_path), "errors"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert len(log) == 1 and log[0]["error"] == "synthetic failure"

    def test_stats_includes_queue_block(self, queued_path, capsys):
        assert main_store(["--store", str(queued_path), "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["queue"]["open"] == 2
        assert stats["queue"]["failed"] == 1
        assert stats["queue"]["error_log_rows"] == 1

    def test_gc_reports_queue_reaping(self, queued_path, capsys):
        assert main_store(["--store", str(queued_path), "gc",
                           "--older-than", "-1"]) == 0
        out = capsys.readouterr().out
        assert "1 settled queue row(s)" in out
        assert "1 orphaned error(s)" in out
