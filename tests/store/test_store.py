"""Unit tests for the persistent experiment store."""

import io
import json
import threading

import pytest

from repro.eval.runner import CellResult
from repro.rtm.report import SimReport
from repro.store import (
    ExperimentStore,
    cell_from_payload,
    cell_to_payload,
    open_store,
    store_from_env,
)
from repro.store import schema
from repro.errors import ExperimentError


def make_cell(benchmark="adpcm", policy="DMA-SR", dbcs=4, shifts=123,
              **report_fields) -> CellResult:
    """A cell with awkward floats to exercise exact round-tripping."""
    report = SimReport(
        dbcs=dbcs, accesses=100, reads=75, writes=25, shifts=shifts,
        runtime_ns=0.1 + 0.2,  # 0.30000000000000004
        read_energy_pj=1.0 / 3.0,
        write_energy_pj=2.18e-13,
        shift_energy_pj=987.6543210123456,
        leakage_energy_pj=8.94,
        area_mm2=0.0186,
        per_dbc_shifts=(40, 30, 33, 20),
        **report_fields,
    )
    return CellResult(benchmark=benchmark, policy=policy, dbcs=dbcs,
                      shifts=shifts, report=report)


class TestSerde:
    def test_roundtrip_is_exact(self):
        cell = make_cell()
        again = cell_from_payload(cell_to_payload(cell))
        assert again == cell  # dataclass eq: every float bit-exact
        assert again.report.runtime_ns == 0.1 + 0.2
        assert isinstance(again.report.per_dbc_shifts, tuple)

    def test_payload_is_canonical(self):
        cell = make_cell()
        assert cell_to_payload(cell) == cell_to_payload(cell)
        assert json.loads(cell_to_payload(cell))["benchmark"] == "adpcm"

    def test_faulted_report_roundtrips(self):
        cell = make_cell(
            fault_injected=7, fault_misaligned=31, fault_corrupted=True,
            scrub_shifts=12, scrub_events=3,
            drift_histogram=((-2, 1), (1, 2)),
        )
        again = cell_from_payload(cell_to_payload(cell))
        assert again == cell
        assert again.report.drift_histogram == ((-2, 1), (1, 2))
        assert isinstance(again.report.drift_histogram[0], tuple)

    def test_prefault_payload_still_loads(self):
        """Payloads written before the fault axis deserialize cleanly."""
        data = json.loads(cell_to_payload(make_cell()))
        for field in ("drift_histogram", "fault_injected", "fault_misaligned",
                      "fault_corrupted", "scrub_shifts", "scrub_events"):
            data["report"].pop(field, None)
        again = cell_from_payload(json.dumps(data))
        assert again == make_cell()
        assert again.report.drift_histogram == ()
        assert again.report.fault_injected == 0


class TestStoreBasics:
    def test_put_get_roundtrip(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            cell = make_cell()
            store.put_cell("k1", cell)
            assert store.get_cell("k1") == cell
            assert store.get_cell("missing") is None
            assert store.has_cell("k1") and not store.has_cell("k2")
            assert len(store) == 1

    def test_cells_persist_across_reopen(self, tmp_path):
        path = tmp_path / "s.db"
        cell = make_cell()
        with ExperimentStore(path) as store:
            store.put_cell("k1", cell)
        with ExperimentStore(path) as store:
            assert store.get_cell("k1") == cell

    def test_reput_is_idempotent(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            store.put_cell("k1", make_cell(shifts=1))
            store.put_cell("k1", make_cell(shifts=999))  # content key: no-op
            assert store.get_cell("k1").shifts == 1
            assert len(store) == 1

    def test_iter_cells_ordered(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            store.put_cell("kb", make_cell(benchmark="jpeg"))
            store.put_cell("ka", make_cell(benchmark="adpcm"))
            rows = list(store.iter_cells())
            assert [r[1] for r in rows] == ["adpcm", "jpeg"]

    def test_open_store_and_env(self, tmp_path, monkeypatch):
        path = tmp_path / "env.db"
        open_store(path).close()
        monkeypatch.setenv("REPRO_STORE", str(path))
        store_from_env().close()
        monkeypatch.delenv("REPRO_STORE")
        with pytest.raises(ExperimentError):
            store_from_env()


class TestSchemaVersion:
    def test_version_bump_invalidates_cleanly(self, tmp_path, monkeypatch):
        path = tmp_path / "s.db"
        with ExperimentStore(path) as store:
            store.put_cell("k1", make_cell())
            run = store.begin_run({"why": "test"})
            store.finish_run(run)
        monkeypatch.setattr(schema, "SCHEMA_VERSION", schema.SCHEMA_VERSION + 1)
        with ExperimentStore(path) as store:  # no crash, just empty
            assert len(store) == 0
            assert store.runs() == []
            store.put_cell("k2", make_cell())
        with ExperimentStore(path) as store:  # new version sticks
            assert len(store) == 1

    def test_same_version_preserves(self, tmp_path):
        path = tmp_path / "s.db"
        with ExperimentStore(path) as store:
            store.put_cell("k1", make_cell())
        with ExperimentStore(path) as store:
            assert len(store) == 1


class TestRunManifests:
    def test_run_lifecycle(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            run_id = store.begin_run({"profile": {"name": "quick"}, "backend": "numpy"})
            store.put_cell("k1", make_cell(), run_id=run_id)
            store.finish_run(run_id, status="complete", wall_time_s=1.5,
                             cells_total=4, hits_memory=1, hits_store=2,
                             computed=1)
            (run,) = store.runs()
            assert run["run_id"] == run_id
            assert run["status"] == "complete"
            assert run["manifest"]["backend"] == "numpy"
            assert run["cells_total"] == 4
            assert run["hits_store"] == 2
            assert run["wall_time_s"] == 1.5

    def test_stats_aggregates(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            store.put_cell("k1", make_cell(policy="GA"))
            store.put_cell("k2", make_cell(policy="GA", benchmark="jpeg"))
            store.put_cell("k3", make_cell(policy="DMA-SR"))
            stats = store.stats()
            assert stats["cells"] == 3
            assert stats["cells_by_policy"] == {"GA": 2, "DMA-SR": 1}
            assert stats["benchmarks"] == 2
            assert stats["schema_version"] == schema.SCHEMA_VERSION
            assert stats["size_bytes"] > 0


class TestMaintenance:
    def test_gc_horizon(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            store.put_cell("old", make_cell())
            removed = store.gc(older_than_s=-1.0)  # everything is "old"
            assert removed["cells"] == 1
            assert len(store) == 0

    def test_gc_without_horizon_keeps_everything(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            store.put_cell("k1", make_cell())
            removed = store.gc()
            assert removed == {
                "cells": 0, "runs": 0, "queue_rows": 0,
                "orphaned_errors": 0, "leases_reopened": 0,
                "leases_quarantined": 0,
            }
            assert len(store) == 1

    def test_export_jsonl(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            store.put_cell("k1", make_cell())
            store.put_cell("k2", make_cell(benchmark="jpeg"))
            buf = io.StringIO()
            assert store.export(buf) == 2
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert {line["benchmark"] for line in lines} == {"adpcm", "jpeg"}
        assert all("cell" in line and "key" in line for line in lines)

    def test_gc_keeps_runs_referenced_by_live_cells(self, tmp_path):
        import sqlite3

        path = tmp_path / "s.db"
        with ExperimentStore(path) as store:
            run_id = store.begin_run({"k": "v"})
            store.put_cell("live", make_cell(), run_id=run_id)
            store.finish_run(run_id)
            # Age the *run* past the horizon but keep its cell fresh.
            conn = sqlite3.connect(path)
            with conn:
                conn.execute("UPDATE runs SET started_at = 0, finished_at = 1")
            conn.close()
            removed = store.gc(older_than_s=3600)
            # Provenance survives; no queue debris to reap either.
            assert removed == {
                "cells": 0, "runs": 0, "queue_rows": 0,
                "orphaned_errors": 0, "leases_reopened": 0,
                "leases_quarantined": 0,
            }
            (run,) = store.runs()
            assert run["run_id"] == run_id

    def test_merge_refuses_stale_source_without_destroying_it(
        self, tmp_path, monkeypatch
    ):
        src_path = tmp_path / "old.db"
        with ExperimentStore(src_path) as src:
            src.put_cell("k1", make_cell())
        monkeypatch.setattr(schema, "SCHEMA_VERSION", schema.SCHEMA_VERSION + 1)
        with ExperimentStore(tmp_path / "dest.db") as dest:
            with pytest.raises(ExperimentError, match="cannot merge"):
                dest.merge_from(src_path)
        monkeypatch.undo()
        with ExperimentStore(src_path) as src:  # source data intact
            assert len(src) == 1

    def test_merge_unions_and_is_idempotent(self, tmp_path):
        a_path, b_path = tmp_path / "a.db", tmp_path / "b.db"
        cell_a, cell_b = make_cell(), make_cell(benchmark="jpeg")
        with ExperimentStore(a_path) as a:
            a.put_cell("ka", cell_a)
            a.put_cell("shared", cell_a)
        with ExperimentStore(b_path) as b:
            b.put_cell("kb", cell_b)
            b.put_cell("shared", cell_a)
        with ExperimentStore(tmp_path / "m.db") as merged:
            assert merged.merge_from(a_path) == 2
            assert merged.merge_from(b_path) == 1  # 'shared' already there
            assert merged.merge_from(b_path) == 0  # idempotent
            assert len(merged) == 3
            assert merged.get_cell("kb") == cell_b


class _LockedProxy:
    """A connection that reports 'database is locked' for the first
    ``failures`` write statements, then delegates to the real one —
    the classic transient-lock scenario the retry loop must absorb."""

    def __init__(self, conn, failures, message="database is locked"):
        self._conn = conn
        self._failures = failures
        self._message = message
        self.write_attempts = 0

    def __enter__(self):
        return self._conn.__enter__()

    def __exit__(self, *exc):
        return self._conn.__exit__(*exc)

    def execute(self, sql, *args):
        if sql.lstrip().upper().startswith(("INSERT", "UPDATE")):
            self.write_attempts += 1
            if self.write_attempts <= self._failures:
                import sqlite3

                raise sqlite3.OperationalError(self._message)
        return self._conn.execute(sql, *args)

    def __getattr__(self, name):
        return getattr(self._conn, name)


class TestLockRetry:
    @pytest.fixture(autouse=True)
    def _no_backoff_sleep(self, monkeypatch):
        from repro.store import store as store_module

        monkeypatch.setattr(store_module, "_LOCK_BACKOFF_S", 0.0)

    def test_put_cell_retries_through_transient_lock(self, tmp_path):
        from repro.store.store import _LOCK_RETRIES

        with ExperimentStore(tmp_path / "s.db") as store:
            proxy = _LockedProxy(store._conn, failures=_LOCK_RETRIES)
            store._conn = proxy
            store.put_cell("k1", make_cell())  # must absorb every failure
            store._conn = proxy._conn
            assert proxy.write_attempts == _LOCK_RETRIES + 1
            assert store.get_cell("k1") == make_cell()

    def test_exhausted_retries_raise_pointed_error(self, tmp_path):
        from repro.store.store import _LOCK_RETRIES

        path = tmp_path / "s.db"
        with ExperimentStore(path) as store:
            proxy = _LockedProxy(store._conn, failures=_LOCK_RETRIES + 1)
            store._conn = proxy
            with pytest.raises(ExperimentError, match="stayed locked"):
                store.put_cell("k1", make_cell())
            assert proxy.write_attempts == _LOCK_RETRIES + 1
            store._conn = proxy._conn

    def test_non_lock_errors_propagate_immediately(self, tmp_path):
        import sqlite3

        with ExperimentStore(tmp_path / "s.db") as store:
            proxy = _LockedProxy(store._conn, failures=99,
                                 message="no such table: cells")
            store._conn = proxy
            with pytest.raises(sqlite3.OperationalError, match="no such table"):
                store.put_cell("k1", make_cell())
            assert proxy.write_attempts == 1  # no retry on real errors
            store._conn = proxy._conn

    def test_begin_and_finish_run_retry(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            proxy = _LockedProxy(store._conn, failures=2)
            store._conn = proxy
            run_id = store.begin_run({"k": "v"})
            proxy.write_attempts = 0
            proxy._failures = 2
            store.finish_run(run_id)
            store._conn = proxy._conn
            (run,) = store.runs()
            assert run["status"] == "complete"


class TestConcurrentWriters:
    def test_parallel_writers_one_file(self, tmp_path):
        """Shards pointed at one store file must not corrupt it."""
        path = tmp_path / "s.db"
        errors = []

        def writer(offset: int) -> None:
            try:
                with ExperimentStore(path) as store:
                    for i in range(20):
                        store.put_cell(f"k{offset}-{i}", make_cell(shifts=i))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with ExperimentStore(path) as store:
            assert len(store) == 80
