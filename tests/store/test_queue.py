"""Unit tests for the claim-based work queue."""

import time

import pytest

from repro.errors import ExperimentError
from repro.store import ExperimentStore, QueueJob, WorkQueue
from repro.store.queue import DEFAULT_MAX_ATTEMPTS

from tests.store.test_store import make_cell


def make_jobs(n=5, max_attempts=DEFAULT_MAX_ATTEMPTS):
    """n jobs whose cost_hint rises with the index (k0 cheapest)."""
    return [
        QueueJob(key=f"k{i}", benchmark="adpcm", policy="DMA-SR", dbcs=4,
                 job={"i": i}, cost_hint=100 * (i + 1),
                 max_attempts=max_attempts)
        for i in range(n)
    ]


@pytest.fixture
def store(tmp_path):
    with ExperimentStore(tmp_path / "s.db") as s:
        yield s


class TestSubmit:
    def test_submit_counts_and_dedup(self, store):
        queue = WorkQueue(store)
        assert queue.submit(make_jobs(3)) == {
            "submitted": 3, "already_queued": 0, "already_stored": 0,
        }
        assert queue.submit(make_jobs(3)) == {
            "submitted": 0, "already_queued": 3, "already_stored": 0,
        }
        assert queue.counts()["open"] == 3

    def test_submit_skips_stored_cells(self, store):
        store.put_cell("k1", make_cell())
        counts = WorkQueue(store).submit(make_jobs(3))
        assert counts == {
            "submitted": 2, "already_queued": 0, "already_stored": 1,
        }

    def test_resubmit_never_reopens_settled_rows(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(2))
        [cell, _] = queue.claim(2, "w")
        queue.complete(cell.key, "w")
        queue.submit(make_jobs(2))
        counts = queue.counts()
        assert counts["done"] == 1 and counts["claimed"] == 1


class TestClaim:
    def test_expensive_cells_first(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(5))
        claimed = queue.claim(3, "w")
        assert [c.key for c in claimed] == ["k4", "k3", "k2"]
        assert all(c.job == {"i": int(c.key[1])} for c in claimed)
        counts = queue.counts()
        assert counts == {"open": 2, "claimed": 3, "done": 0, "failed": 0}

    def test_claim_is_exclusive(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(4))
        first = {c.key for c in queue.claim(2, "w1")}
        second = {c.key for c in queue.claim(10, "w2")}
        assert not first & second
        assert first | second == {"k0", "k1", "k2", "k3"}

    def test_claim_increments_attempts_and_sets_lease(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(1))
        [cell] = queue.claim(1, "w", lease_s=60)
        assert cell.attempts == 1
        assert cell.lease_expiry > time.time() + 30
        [row] = queue.jobs(status="claimed")
        assert row["owner"] == "w"

    def test_empty_queue_claims_nothing(self, store):
        assert WorkQueue(store).claim(5, "w") == []

    def test_claim_validates_arguments(self, store):
        queue = WorkQueue(store)
        with pytest.raises(ExperimentError, match="limit"):
            queue.claim(0, "w")
        with pytest.raises(ExperimentError, match="owner"):
            queue.claim(1, "")


class TestLeases:
    def test_expired_claim_is_stolen(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(1))
        assert queue.claim(1, "w1", lease_s=0.05)
        time.sleep(0.1)
        [stolen] = queue.claim(1, "w2")
        assert stolen.key == "k0"
        assert stolen.attempts == 2
        # The original owner's late completion is harmlessly rejected.
        assert queue.complete("k0", "w1") is False
        assert queue.complete("k0", "w2") is True

    def test_live_lease_is_not_stolen(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(1))
        assert queue.claim(1, "w1", lease_s=60)
        assert queue.claim(1, "w2") == []

    def test_heartbeat_renews_all_owned_leases(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(3))
        queue.claim(2, "w1", lease_s=0.1)
        assert queue.heartbeat("w1", lease_s=60) == 2
        time.sleep(0.15)
        # Renewed leases survive the original 0.1s expiry: w2 gets only
        # the one cell that was never claimed, never w1's.
        assert [c.key for c in queue.claim(3, "w2")] == ["k0"]
        assert queue.counts()["claimed"] == 3
        assert queue.stats()["expired_leases"] == 0

    def test_release_reopens_owned_claims(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(3))
        queue.claim(2, "w1")
        assert queue.release("w1") == 2
        assert queue.counts() == {"open": 3, "claimed": 0, "done": 0,
                                  "failed": 0}

    def test_requeue_expired_reopens_and_quarantines(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(2, max_attempts=1))
        queue.submit([QueueJob(key="fresh", benchmark="b", policy="p",
                               dbcs=2, job={}, max_attempts=3)])
        assert len(queue.claim(3, "w1", lease_s=0.05)) == 3
        time.sleep(0.1)
        result = queue.requeue_expired()
        # k0/k1 had max_attempts=1 and are out of budget: quarantined.
        assert result == {"reopened": 1, "quarantined": 2}
        counts = queue.counts()
        assert counts["open"] == 1 and counts["failed"] == 2
        assert len(queue.errors()) == 2


class TestFailure:
    def test_fail_reopens_until_budget_exhausted(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(1, max_attempts=2))
        [cell] = queue.claim(1, "w")
        assert queue.fail(cell.key, "w", "boom 1") == "open"
        [cell] = queue.claim(1, "w")
        assert cell.attempts == 2
        assert queue.fail(cell.key, "w", "boom 2") == "failed"
        assert queue.counts()["failed"] == 1

    def test_quarantined_cell_is_never_claimed(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(1, max_attempts=1))
        [cell] = queue.claim(1, "w")
        queue.fail(cell.key, "w", "boom")
        assert queue.claim(5, "w") == []

    def test_error_log_keeps_every_attempt(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(1, max_attempts=2))
        [cell] = queue.claim(1, "w1")
        queue.fail(cell.key, "w1", "first")
        [cell] = queue.claim(1, "w2")
        queue.fail(cell.key, "w2", "second")
        log = queue.errors(key="k0")
        assert [(e["error"], e["owner"], e["attempt"]) for e in log] == [
            ("second", "w2", 2), ("first", "w1", 1),
        ]

    def test_retry_failed_restores_budget(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(1, max_attempts=1))
        [cell] = queue.claim(1, "w")
        queue.fail(cell.key, "w", "boom")
        assert queue.retry_failed() == 1
        [cell] = queue.claim(1, "w")
        assert cell.attempts == 1
        # The pre-retry failure stays in the log.
        assert len(queue.errors()) == 1

    def test_fail_after_lost_lease_still_logs(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(1))
        queue.claim(1, "w1", lease_s=0.05)
        time.sleep(0.1)
        queue.claim(1, "w2")
        assert queue.fail("k0", "w1", "late boom") == "lost"
        assert queue.counts()["claimed"] == 1  # w2's claim untouched
        assert len(queue.errors()) == 1


class TestObservability:
    def test_stats_shape(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(4))
        [cell, _] = queue.claim(2, "w", lease_s=60)
        queue.complete(cell.key, "w")
        stats = queue.stats()
        assert stats["open"] == 2 and stats["claimed"] == 1
        assert stats["done"] == 1 and stats["failed"] == 0
        assert stats["oldest_lease_expiry"] > time.time()
        assert stats["expired_leases"] == 0
        assert stats["attempt_histogram"] == {"0": 2, "1": 2}
        assert stats["error_log_rows"] == 0

    def test_store_stats_carries_queue_block(self, store):
        WorkQueue(store).submit(make_jobs(2))
        assert store.stats()["queue"]["open"] == 2

    def test_done_among(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(3))
        [cell] = queue.claim(1, "w")
        queue.complete(cell.key, "w")
        assert queue.done_among(["k0", "k1", "k2", "absent"]) == {cell.key}

    def test_gc_reaps_settled_rows_and_orphaned_errors(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(2, max_attempts=1))
        [cell, other] = queue.claim(2, "w")
        queue.complete(cell.key, "w")
        queue.fail(other.key, "w", "boom")
        removed = store.gc(older_than_s=0)
        assert removed["queue_rows"] == 2
        # The failed row's error log went with it.
        assert removed["orphaned_errors"] == 1
        assert queue.counts() == {"open": 0, "claimed": 0, "done": 0,
                                  "failed": 0}

    def test_gc_reaps_stale_leases(self, store):
        queue = WorkQueue(store)
        queue.submit(make_jobs(1))
        queue.claim(1, "w", lease_s=0.05)
        time.sleep(0.1)
        removed = store.gc()
        assert removed["leases_reopened"] == 1
        assert queue.counts()["open"] == 1


class TestClaimIndexes:
    """The satellite requirement: claims stay O(log n) as queues grow."""

    def _plans(self, store, sql, params):
        return " | ".join(
            row[-1] for row in
            store._conn.execute(f"EXPLAIN QUERY PLAN {sql}", params)
        )

    def test_expired_lease_scan_uses_covering_index(self, store):
        WorkQueue(store).submit(make_jobs(3))
        plan = self._plans(
            store,
            "SELECT key FROM queue WHERE status = 'claimed' "
            "AND lease_expiry <= ? ORDER BY lease_expiry LIMIT ?",
            (time.time(), 4),
        )
        assert "idx_queue_claim" in plan
        # The ORDER BY is satisfied by the index: no sort step.
        assert "TEMP B-TREE" not in plan

    def test_open_scan_uses_cost_ordered_index(self, store):
        WorkQueue(store).submit(make_jobs(3))
        plan = self._plans(
            store,
            "SELECT key FROM queue WHERE status = 'open' "
            "ORDER BY cost_hint DESC, key LIMIT ?",
            (4,),
        )
        assert "idx_queue_open" in plan
        assert "TEMP B-TREE" not in plan


class TestMigration:
    def test_v1_store_upgrades_in_place_keeping_cells(self, tmp_path):
        """A pre-queue (v1) store gains the queue tables; cells stay warm."""
        path = tmp_path / "old.db"
        with ExperimentStore(path) as store:
            store.put_cell("k1", make_cell())
            with store._conn:
                store._conn.execute("DROP TABLE queue")
                store._conn.execute("DROP TABLE queue_errors")
                store._conn.execute(
                    "UPDATE meta SET value = '1' WHERE key = 'schema_version'"
                )
        with ExperimentStore(path) as store:
            assert len(store) == 1  # the v1 cell survived the upgrade
            queue = WorkQueue(store)
            queue.submit(make_jobs(1))
            assert queue.counts()["open"] == 1
            assert store.stats()["schema_version"] == 2
