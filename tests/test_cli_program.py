"""CLI tests for the whole-program placement flag."""

import pytest

from repro.cli import main_place
from repro.trace.io import write_traces
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace


@pytest.fixture
def program_file(tmp_path):
    seqs = [
        AccessSequence(list("aabga"), variables=["a", "b", "g"], name="p0"),
        AccessSequence(list("ccgdd"), variables=["c", "d", "g"], name="p1"),
    ]
    path = tmp_path / "program.txt"
    write_traces(path, [MemoryTrace(s) for s in seqs])
    return str(path)


class TestProgramFlag:
    def test_single_layout_emitted(self, program_file, capsys):
        assert main_place([program_file, "--program", "--dbcs", "2",
                           "--domains", "8"]) == 0
        out = capsys.readouterr().out
        assert "program layout over 2 sequences" in out
        assert "p0:" in out and "p1:" in out
        assert "total shifts:" in out

    def test_per_trace_mode_unchanged(self, program_file, capsys):
        assert main_place([program_file, "--dbcs", "2", "--domains", "8"]) == 0
        out = capsys.readouterr().out
        assert out.count("total shifts:") == 2
