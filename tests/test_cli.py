"""Unit tests for the command-line entry points."""

import pytest

from repro.cli import main_experiment, main_place, main_sim, main_suite
from repro.trace.io import write_traces
from repro.trace.trace import MemoryTrace


@pytest.fixture
def trace_file(tmp_path, fig3_sequence):
    path = tmp_path / "fig3.txt"
    write_traces(path, [MemoryTrace(fig3_sequence)])
    return str(path)


class TestPlace:
    def test_prints_costs(self, trace_file, capsys):
        assert main_place([trace_file, "--dbcs", "2", "--domains", "512"]) == 0
        out = capsys.readouterr().out
        assert "total shifts:" in out
        assert "fig3" in out

    def test_policy_selection(self, trace_file, capsys):
        main_place([trace_file, "--policy", "AFD", "--dbcs", "2",
                    "--domains", "512"])
        out = capsys.readouterr().out
        assert "total shifts: 39" in out


class TestSim:
    def test_prints_report(self, trace_file, capsys):
        assert main_sim([trace_file, "--dbcs", "2", "--domains", "512"]) == 0
        out = capsys.readouterr().out
        assert "shifts" in out and "pJ" in out

    def test_cold_start_flag(self, trace_file, capsys):
        main_sim([trace_file, "--dbcs", "2", "--domains", "512",
                  "--cold-start"])
        assert "shifts" in capsys.readouterr().out


class TestSuite:
    def test_lists_programs(self, capsys):
        assert main_suite(["--scale", "0.12", "adpcm", "dct"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out and "dct" in out


class TestExperiment:
    def test_table1(self, capsys):
        assert main_experiment(["table1"]) == 0
        out = capsys.readouterr().out
        assert "8.94" in out and "0.0159" in out

    def test_fig3(self, capsys):
        assert main_experiment(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "39" in out

    def test_save(self, tmp_path, capsys):
        assert main_experiment(["table1", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table1.json").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main_experiment(["fig99"])


class TestExperimentStoreFlags:
    @pytest.fixture(autouse=True)
    def smoke_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")

    def test_store_then_from_store(self, tmp_path, capsys):
        from repro.eval.runner import clear_cell_cache, last_matrix_stats

        store = str(tmp_path / "s.db")
        clear_cell_cache()
        assert main_experiment(["fig6", "--store", store]) == 0
        assert last_matrix_stats().computed > 0
        clear_cell_cache()
        assert main_experiment(["fig6", "--store", store,
                                "--from-store"]) == 0
        stats = last_matrix_stats()
        assert stats.computed == 0 and stats.hits_store == stats.cells_total
        assert "store hit(s)" in capsys.readouterr().err

    def test_from_store_requires_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit):
            main_experiment(["fig6", "--from-store"])

    def test_from_store_cold_store_fails_cleanly(self, tmp_path, capsys):
        from repro.eval.runner import clear_cell_cache

        clear_cell_cache()
        rc = main_experiment(["fig6", "--store", str(tmp_path / "cold.db"),
                              "--from-store"])
        assert rc == 2  # clean exit code, no traceback
        assert "missing from the store" in capsys.readouterr().err

    def test_shard_populates_store_without_report(self, tmp_path, capsys):
        from repro.eval.runner import clear_cell_cache
        from repro.store import ExperimentStore

        store = tmp_path / "s.db"
        clear_cell_cache()
        assert main_experiment(["fig6", "--store", str(store),
                                "--shard", "0/2"]) == 0
        out = capsys.readouterr().out
        assert "shard 0/2" in out
        assert "Fig. 6" not in out  # no report on shard runs
        with ExperimentStore(store) as s:
            assert 0 < len(s) < 32  # a strict, non-empty slice

    def test_shard_requires_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit):
            main_experiment(["fig6", "--shard", "0/2"])

    def test_shard_rejects_non_matrix_experiment(self, tmp_path):
        with pytest.raises(SystemExit):
            main_experiment(["table1", "--store", str(tmp_path / "s.db"),
                             "--shard", "0/2"])

    def test_bad_shard_designator(self, tmp_path):
        with pytest.raises(SystemExit):
            main_experiment(["fig6", "--store", str(tmp_path / "s.db"),
                             "--shard", "2/2"])


class TestFaultFlags:
    @pytest.fixture(autouse=True)
    def smoke_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")

    def test_faulted_experiment_runs(self, capsys):
        assert main_experiment(["ablation-faults"]) == 0
        out = capsys.readouterr().out
        assert "Fault-rate ablation" in out
        assert "misaligned" in out

    def test_scrub_without_fault_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main_experiment(["fig6", "--scrub-interval", "100"])
        err = capsys.readouterr().err
        assert "requires a nonzero --fault-rate" in err

    @pytest.mark.parametrize("rate", ["-0.5", "1.5", "nan"])
    def test_bad_fault_rate_rejected(self, rate, capsys):
        with pytest.raises(SystemExit):
            main_experiment(["fig6", "--fault-rate", rate])
        assert "probability in [0, 1]" in capsys.readouterr().err

    def test_bad_scrub_interval_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main_experiment(["fig6", "--fault-rate", "0.01",
                             "--scrub-interval", "0"])
        assert "--scrub-interval must be >= 1" in capsys.readouterr().err

    def test_env_scrub_with_cli_rate_accepted(self, monkeypatch, capsys):
        """The combined check runs after ALL overrides: an interval from
        the environment plus a rate from the CLI is a valid pairing."""
        monkeypatch.setenv("REPRO_SCRUB_INTERVAL", "50")
        assert main_experiment(["fig3", "--fault-rate", "0.01"]) == 0
        capsys.readouterr()


class TestBackendFlags:
    def test_list_backends(self, capsys):
        assert main_experiment(["--list-backends"]) == 0
        out = capsys.readouterr().out
        assert "auto" in out and "numpy" in out and "reference" in out
        assert "numba" in out  # known optional backend always listed
        from repro.engine.numba_backend import NUMBA_AVAILABLE

        if not NUMBA_AVAILABLE:
            assert "pip install" in out and "[compiled]" in out

    def test_uninstalled_backend_gets_pointed_error(self, trace_file,
                                                    capsys):
        from repro.engine.numba_backend import NUMBA_AVAILABLE

        if NUMBA_AVAILABLE:
            pytest.skip("needs numba absent")
        with pytest.raises(SystemExit):
            main_sim([trace_file, "--dbcs", "2", "--domains", "512",
                      "--backend", "numba"])
        err = capsys.readouterr().err
        assert "compiled" in err and "pip install" in err

    def test_auto_backend_accepted(self, trace_file, capsys):
        assert main_sim([trace_file, "--dbcs", "2", "--domains", "512",
                        "--backend", "auto"]) == 0
        assert "shifts" in capsys.readouterr().out


class TestExperimentWorkloads:
    @pytest.fixture(autouse=True)
    def smoke_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        monkeypatch.delenv("REPRO_WORKLOADS", raising=False)

    def test_list_workloads(self, capsys):
        assert main_experiment(["--list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "offsetstone" in out and "interleave" in out
        assert "h263" in out  # the suite names are listed too

    def test_experiment_required_without_list(self):
        with pytest.raises(SystemExit):
            main_experiment([])

    def test_workloads_flag_drives_the_matrix(self, trace_file, capsys):
        rc = main_experiment([
            "fig6", "--workloads", f"file:{trace_file}", "kernels:fir",
        ])
        assert rc == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_flag_first_ordering_reclaims_experiment(self, trace_file, capsys):
        # nargs='+' swallows the trailing positional; the CLI reclaims it.
        rc = main_experiment(["--workloads", f"file:{trace_file}", "fig6"])
        assert rc == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_from_store_regenerates_external_workload(
        self, trace_file, tmp_path, capsys
    ):
        from repro.eval.runner import clear_cell_cache, last_matrix_stats

        store = str(tmp_path / "s.db")
        spec = f"file:{trace_file}@tile=2"
        clear_cell_cache()
        assert main_experiment(["fig6", "--workloads", spec,
                                "--store", store]) == 0
        assert last_matrix_stats().computed > 0
        clear_cell_cache()
        assert main_experiment(["fig6", "--workloads", spec, "--store", store,
                                "--from-store"]) == 0
        stats = last_matrix_stats()
        assert stats.computed == 0 and stats.hits_store == stats.cells_total

    def test_bad_workload_spec_fails_cleanly(self, capsys):
        rc = main_experiment(["fig6", "--workloads", "nope:x"])
        assert rc == 2
        assert "unknown workload source" in capsys.readouterr().err

    def test_env_workloads_respected(self, monkeypatch, trace_file, capsys):
        monkeypatch.setenv("REPRO_WORKLOADS", f"file:{trace_file}")
        assert main_experiment(["fig6"]) == 0
        assert "Fig. 6" in capsys.readouterr().out
