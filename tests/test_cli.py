"""Unit tests for the command-line entry points."""

import pytest

from repro.cli import main_experiment, main_place, main_sim, main_suite
from repro.trace.io import write_traces
from repro.trace.trace import MemoryTrace


@pytest.fixture
def trace_file(tmp_path, fig3_sequence):
    path = tmp_path / "fig3.txt"
    write_traces(path, [MemoryTrace(fig3_sequence)])
    return str(path)


class TestPlace:
    def test_prints_costs(self, trace_file, capsys):
        assert main_place([trace_file, "--dbcs", "2", "--domains", "512"]) == 0
        out = capsys.readouterr().out
        assert "total shifts:" in out
        assert "fig3" in out

    def test_policy_selection(self, trace_file, capsys):
        main_place([trace_file, "--policy", "AFD", "--dbcs", "2",
                    "--domains", "512"])
        out = capsys.readouterr().out
        assert "total shifts: 39" in out


class TestSim:
    def test_prints_report(self, trace_file, capsys):
        assert main_sim([trace_file, "--dbcs", "2", "--domains", "512"]) == 0
        out = capsys.readouterr().out
        assert "shifts" in out and "pJ" in out

    def test_cold_start_flag(self, trace_file, capsys):
        main_sim([trace_file, "--dbcs", "2", "--domains", "512",
                  "--cold-start"])
        assert "shifts" in capsys.readouterr().out


class TestSuite:
    def test_lists_programs(self, capsys):
        assert main_suite(["--scale", "0.12", "adpcm", "dct"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out and "dct" in out


class TestExperiment:
    def test_table1(self, capsys):
        assert main_experiment(["table1"]) == 0
        out = capsys.readouterr().out
        assert "8.94" in out and "0.0159" in out

    def test_fig3(self, capsys):
        assert main_experiment(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "39" in out

    def test_save(self, tmp_path, capsys):
        assert main_experiment(["table1", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main_experiment(["fig99"])
