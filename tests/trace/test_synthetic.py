"""Unit tests for the synthetic sequence generators."""

import pytest

from repro.errors import TraceError
from repro.trace.generators.synthetic import (
    concat_sequences,
    looped_sequence,
    markov_sequence,
    phased_sequence,
    sliding_window_sequence,
    uniform_random_sequence,
    zipf_sequence,
)
from repro.trace.liveness import Liveness


ALL_GENERATORS = [
    lambda rng: uniform_random_sequence(10, 50, rng=rng),
    lambda rng: zipf_sequence(10, 50, rng=rng),
    lambda rng: markov_sequence(10, 50, rng=rng),
    lambda rng: phased_sequence(3, 4, 20, shared_vars=2, rng=rng),
    lambda rng: looped_sequence(3, 5, 4, 4, rng=rng),
    lambda rng: sliding_window_sequence(10, 50, rng=rng),
]


class TestCommonContract:
    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_deterministic_for_seed(self, make):
        assert make(42) == make(42)

    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_different_seeds_differ(self, make):
        assert make(1) != make(2)

    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_every_access_is_declared(self, make):
        seq = make(5)
        assert set(seq.accesses) <= set(seq.variables)


class TestParameterValidation:
    def test_zero_vars_rejected(self):
        with pytest.raises(TraceError):
            uniform_random_sequence(0, 10)

    def test_zero_length_rejected(self):
        with pytest.raises(TraceError):
            uniform_random_sequence(10, 0)

    def test_zipf_alpha_positive(self):
        with pytest.raises(TraceError):
            zipf_sequence(5, 10, alpha=0.0)

    def test_zipf_locality_range(self):
        with pytest.raises(TraceError):
            zipf_sequence(5, 10, locality=1.0)

    def test_markov_reuse_range(self):
        with pytest.raises(TraceError):
            markov_sequence(5, 10, reuse=1.0)

    def test_markov_window_positive(self):
        with pytest.raises(TraceError):
            markov_sequence(5, 10, window=0)

    def test_phased_rejects_zero_phase(self):
        with pytest.raises(TraceError):
            phased_sequence(0, 4, 10)

    def test_phased_rejects_negative_shared(self):
        with pytest.raises(TraceError):
            phased_sequence(2, 4, 10, shared_vars=-1)

    def test_looped_rejects_zero(self):
        with pytest.raises(TraceError):
            looped_sequence(1, 0, 1, 1)

    def test_sliding_revisit_range(self):
        with pytest.raises(TraceError):
            sliding_window_sequence(5, 10, revisit=1.0)

    def test_sliding_window_positive(self):
        with pytest.raises(TraceError):
            sliding_window_sequence(5, 10, window=0)

    def test_concat_empty_rejected(self):
        with pytest.raises(TraceError):
            concat_sequences([])


class TestStructure:
    def test_phased_private_vars_are_disjoint_across_phases(self):
        seq = phased_sequence(4, 3, 30, shared_vars=0, rng=3)
        live = Liveness(seq)
        p0 = [v for v in seq.variables if v.startswith("p0_")]
        p3 = [v for v in seq.variables if v.startswith("p3_")]
        for u in p0:
            for v in p3:
                assert live.disjoint(u, v)

    def test_phased_total_length(self):
        seq = phased_sequence(4, 3, 25, rng=0)
        assert len(seq) == 100

    def test_looped_repeats_pattern(self):
        seq = looped_sequence(1, 4, 5, 3, rng=0)
        body = seq.accesses[:4]
        assert seq.accesses == body * 5

    def test_looped_groups_disjoint(self):
        seq = looped_sequence(3, 4, 3, 3, rng=1)
        live = Liveness(seq)
        g0 = [v for v in seq.variables if v.startswith("l0_")]
        g2 = [v for v in seq.variables if v.startswith("l2_")]
        for u in g0:
            for v in g2:
                assert live.disjoint(u, v)

    def test_sliding_window_staggers_lifetimes(self):
        seq = sliding_window_sequence(40, 400, window=3, locality=0.3, rng=5)
        live = Liveness(seq)
        accessed = [v for v in seq.variables if live.is_accessed(v)]
        assert len(accessed) > 10
        assert live.disjoint(accessed[0], accessed[-1])

    def test_sliding_shared_vars_span_trace(self):
        seq = sliding_window_sequence(
            30, 600, shared_vars=2, shared_ratio=0.3, rng=6
        )
        live = Liveness(seq)
        shared = [v for v in seq.variables if v.startswith("g")]
        assert shared, "expected shared variables"
        assert max(live.lifespan(v) for v in shared) > len(seq) // 2

    def test_zipf_skews_frequencies(self):
        seq = zipf_sequence(20, 2000, alpha=1.5, locality=0.0, rng=7)
        freqs = sorted(
            (seq.frequency(v) for v in seq.variables), reverse=True
        )
        assert freqs[0] > 3 * max(freqs[10], 1)

    def test_markov_reuses_recent(self):
        seq = markov_sequence(50, 500, reuse=0.8, window=2, rng=8)
        repeats = sum(1 for a, b in zip(seq.accesses, seq.accesses[1:]) if a == b)
        assert repeats > 50  # strong reuse with a tiny window

    def test_concat_shares_union_universe(self):
        a = uniform_random_sequence(3, 5, rng=1)
        b = uniform_random_sequence(5, 5, rng=2)
        c = concat_sequences([a, b], name="joined")
        assert len(c) == 10
        assert set(c.variables) == set(a.variables) | set(b.variables)
        assert c.name == "joined"
