"""Unit tests for repro.trace.liveness (Fig. 3-(e) ground truth)."""

from repro.trace.liveness import NEVER, Liveness
from repro.trace.sequence import AccessSequence

from tests.paperdata import FIG3_LIVENESS


class TestFig3Table:
    def test_liveness_table_matches_paper(self, fig3_sequence):
        live = Liveness(fig3_sequence)
        for v, (a, f, l) in FIG3_LIVENESS.items():
            assert live.frequency(v) == a, v
            assert live.first(v) == f, v
            assert live.last(v) == l, v

    def test_lifespan_of_b_is_two(self, fig3_sequence):
        """Sec. III-B: 'the lifespan of variable b is 2 (4-2)'."""
        assert Liveness(fig3_sequence).lifespan("b") == 2

    def test_b_and_c_disjoint(self, fig3_sequence):
        """Sec. III-B: 'variables b and c have disjoint lifespans'."""
        live = Liveness(fig3_sequence)
        assert live.disjoint("b", "c")
        assert live.disjoint("c", "b")

    def test_a_overlaps_b(self, fig3_sequence):
        assert not Liveness(fig3_sequence).disjoint("a", "b")

    def test_nested_within_a(self, fig3_sequence):
        """Sec. III-B: objects inside a's lifespan are b, c, d."""
        live = Liveness(fig3_sequence)
        assert sorted(live.nested_within("a")) == ["b", "c", "d"]


class TestEdgeCases:
    def test_unaccessed_variable(self):
        seq = AccessSequence(["a"], variables=["a", "ghost"])
        live = Liveness(seq)
        assert live.first("ghost") == NEVER
        assert live.last("ghost") == NEVER
        assert live.frequency("ghost") == 0
        assert not live.is_accessed("ghost")
        assert live.lifespan("ghost") == 0

    def test_unaccessed_disjoint_from_everything(self):
        seq = AccessSequence(["a", "a"], variables=["a", "ghost"])
        live = Liveness(seq)
        assert live.disjoint("a", "ghost")
        assert live.disjoint("ghost", "a")

    def test_single_access_lifespan_zero(self):
        live = Liveness(AccessSequence(["a"]))
        assert live.lifespan("a") == 0
        assert live.first("a") == live.last("a") == 1

    def test_empty_sequence(self):
        live = Liveness(AccessSequence([], variables=["a", "b"]))
        assert live.first("a") == NEVER
        live.validate()

    def test_positions_are_one_based(self):
        live = Liveness(AccessSequence(["x", "y"]))
        assert live.first("x") == 1
        assert live.first("y") == 2


class TestRelations:
    def test_pairwise_disjoint_true(self, fig3_sequence):
        live = Liveness(fig3_sequence)
        assert live.pairwise_disjoint(["b", "c", "d", "e", "h"])

    def test_pairwise_disjoint_false(self, fig3_sequence):
        live = Liveness(fig3_sequence)
        assert not live.pairwise_disjoint(["a", "b"])

    def test_pairwise_disjoint_touching_is_overlap(self):
        # u ends exactly where v starts -> they share position, not disjoint
        seq = AccessSequence(list("aab"), variables=["a", "b"])
        live = Liveness(seq)
        assert live.disjoint("a", "b")  # L_a=2 < F_b=3
        seq2 = AccessSequence(list("aba"), variables=["a", "b"])
        assert not Liveness(seq2).disjoint("a", "b")

    def test_by_first_occurrence_order(self, fig3_sequence):
        order = Liveness(fig3_sequence).by_first_occurrence()
        assert order == list("abcdiefgh")

    def test_by_first_occurrence_unaccessed_last(self):
        seq = AccessSequence(["b", "a"], variables=["a", "b", "z1", "z0"])
        order = Liveness(seq).by_first_occurrence()
        assert order == ["b", "a", "z1", "z0"]  # unaccessed keep decl order

    def test_validate_passes(self, fig3_sequence):
        Liveness(fig3_sequence).validate()
