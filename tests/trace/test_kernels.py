"""Unit tests for the loop-nest kernel trace builders."""

import pytest

from repro.errors import TraceError
from repro.trace.generators import kernels as k


#: Kernels whose builders take an rng (stochastic data-dependent paths).
STOCHASTIC = {"huffman", "histogram", "qsort"}


class TestContracts:
    @pytest.mark.parametrize("name,builder", sorted(k.KERNELS.items()))
    def test_default_kernels_build(self, name, builder):
        seq = builder(rng=0) if name in STOCHASTIC else builder()
        assert len(seq) > 0
        assert seq.num_variables >= 2
        assert set(seq.accesses) <= set(seq.variables)

    def test_registry_names_match_sequence_names(self):
        for name, builder in k.KERNELS.items():
            seq = builder(rng=0) if name in STOCHASTIC else builder()
            assert seq.name == name

    @pytest.mark.parametrize("name", sorted(STOCHASTIC))
    def test_stochastic_kernels_deterministic_for_seed(self, name):
        builder = k.KERNELS[name]
        assert builder(rng=5) == builder(rng=5)


class TestScaling:
    def test_fir_scales_with_samples(self):
        assert len(k.fir_filter(8, 20)) > len(k.fir_filter(8, 5))

    def test_fir_vars_scale_with_taps(self):
        assert k.fir_filter(16, 2).num_variables > k.fir_filter(4, 2).num_variables

    def test_matmul_access_count(self):
        # n^2 output cells, each: acc init + n 3-touch MACs + acc/store
        seq = k.matmul(3)
        assert len(seq) == 9 * (1 + 3 * 3 + 2)

    def test_fft_requires_power_of_two(self):
        with pytest.raises(TraceError):
            k.fft_butterfly(12)

    def test_fft_vars(self):
        seq = k.fft_butterfly(8)
        assert seq.num_variables == 2 * 8 + 4  # re/im + twiddles + temps

    def test_stencil_interior_only(self):
        seq = k.stencil5(4, 4, 1)
        # 2x2 interior points, 6 recorder calls with 21 touches each... just
        # assert the known touch count stays stable.
        assert len(seq) == 4 * 13

    def test_viterbi_scales_with_steps(self):
        assert len(k.viterbi_trellis(4, 8)) == 2 * len(k.viterbi_trellis(4, 4))


class TestValidation:
    @pytest.mark.parametrize("call", [
        lambda: k.fir_filter(0, 1),
        lambda: k.iir_biquad(0, 1),
        lambda: k.dct8(0),
        lambda: k.matmul(0),
        lambda: k.stencil5(2, 3),
        lambda: k.viterbi_trellis(1, 1),
        lambda: k.gsm_lpc(1, 1),
        lambda: k.adpcm_step(0),
        lambda: k.motion_estimation(1, 1),
        lambda: k.huffman_encode(1, 1),
        lambda: k.sobel3x3(2, 3),
        lambda: k.conv1d(1, 5),
        lambda: k.conv1d(5, 3),
        lambda: k.histogram(1, 5),
        lambda: k.crc32_loop(0),
        lambda: k.quicksort_partition(2, 1),
    ])
    def test_bad_parameters_rejected(self, call):
        with pytest.raises(TraceError):
            call()


class TestRealism:
    def test_fir_has_heavy_accumulator_reuse(self):
        seq = k.fir_filter(8, 10)
        acc_freq = seq.frequency("acc")
        assert acc_freq >= 10 * 8  # one acc touch per tap per sample

    def test_adpcm_predictor_is_hot(self):
        seq = k.adpcm_step(16)
        assert seq.frequency("pred") >= 16 * 2

    def test_motion_estimation_touches_all_window_offsets(self):
        seq = k.motion_estimation(block=3, search=1)
        assert seq.frequency("sad") >= 9 * 9  # 9 candidates x 9 pixels

    def test_huffman_skewed_symbols(self):
        seq = k.huffman_encode(8, 200, rng=1)
        hot = seq.frequency("code0")
        cold = seq.frequency("code7")
        assert hot > cold

    def test_sobel_taps_are_hot(self):
        seq = k.sobel3x3(5, 5)
        assert seq.frequency("sx") >= 9 * 7  # 9 interior px, 6 taps + init

    def test_conv_signal_reuse(self):
        # each interior signal word is touched `taps` times
        seq = k.conv1d(taps=3, samples=10)
        assert seq.frequency("s5") == 3

    def test_histogram_hot_bins(self):
        seq = k.histogram(bins=4, samples=100, rng=3)
        freqs = [seq.frequency(f"bin{i}") for i in range(4)]
        assert sum(freqs) == 200  # each sample hits its bin twice (RMW)

    def test_crc_state_register_dominates(self):
        seq = k.crc32_loop(blocks=20)
        assert seq.frequency("crc") == 3 * 20

    def test_qsort_cursors_sweep(self):
        seq = k.quicksort_partition(elements=8, rounds=2, rng=4)
        assert seq.frequency("pivot") > 2
