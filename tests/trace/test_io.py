"""Unit tests for the trace file formats (repro.trace.io)."""

import numpy as np
import pytest

from repro.errors import TraceError, TraceFormatError
from repro.trace.io import (
    addresses_to_trace,
    iter_address_chunks,
    iter_address_trace,
    detect_trace_format,
    load_traces,
    parse_address_trace,
    parse_traces,
    read_address_trace,
    read_traces,
    render_traces,
    write_traces,
)
from repro.trace.trace import MemoryTrace


SAMPLE = """
# a comment
trace demo
vars a b c
seq a b a c
writes 0 3
end
"""


class TestParse:
    def test_parse_basic_block(self):
        traces = parse_traces(SAMPLE)
        assert len(traces) == 1
        t = traces[0]
        assert t.name == "demo"
        assert t.sequence.accesses == ("a", "b", "a", "c")
        assert list(t.writes) == [True, False, False, True]

    def test_vars_optional(self):
        (t,) = parse_traces("trace t\nseq x y x\nend\n")
        assert t.variables == ("x", "y")

    def test_default_write_rule_when_no_writes_line(self):
        (t,) = parse_traces("trace t\nseq x y x\nend\n")
        assert list(t.writes) == [True, True, False]

    def test_multiple_blocks(self):
        text = "trace a\nseq x\nend\ntrace b\nseq y y\nend\n"
        traces = parse_traces(text)
        assert [t.name for t in traces] == ["a", "b"]

    def test_seq_continuation_lines(self):
        (t,) = parse_traces("trace t\nseq a b\nseq c a\nend\n")
        assert t.sequence.accesses == ("a", "b", "c", "a")

    def test_comments_and_blanks_ignored(self):
        (t,) = parse_traces("# hi\n\ntrace t # trailing\nseq a\nend\n")
        assert t.name == "t"


class TestParseErrors:
    @pytest.mark.parametrize("text,match", [
        ("seq a\nend\n", "outside"),
        ("trace t\ntrace u\n", "before previous"),
        ("trace t\nseq a\n", "not terminated"),
        ("trace t\nend\n", "empty sequence"),
        ("trace t\nseq a\nwrites 5\nend\n", "out of range"),
        ("trace t\nseq a\nwrites x\nend\n", "integers"),
        ("trace a b\nseq a\nend\n", "one name"),
        ("bogus a\n", "unknown keyword"),
    ])
    def test_malformed_inputs(self, text, match):
        with pytest.raises(TraceFormatError, match=match):
            parse_traces(text)

    def test_errors_carry_line_numbers(self):
        with pytest.raises(TraceFormatError, match="line 3"):
            parse_traces("# comment\ntrace t\nbork\n")

    def test_duplicate_vars_are_format_errors_with_lines(self):
        text = "trace t\nvars a a\nseq a\nend\n"
        with pytest.raises(TraceFormatError, match="lines 1-4.*duplicate"):
            parse_traces(text)

    def test_undeclared_access_is_a_format_error(self):
        text = "trace t\nvars a\nseq a b\nend\n"
        with pytest.raises(TraceFormatError, match="undeclared"):
            parse_traces(text)

    def test_unterminated_block_names_its_opening_line(self):
        with pytest.raises(TraceFormatError, match="line 2.*'t'"):
            parse_traces("# header\ntrace t\nseq a\n")


class TestRoundtrip:
    def test_render_parse_roundtrip(self, fig3_trace):
        text = render_traces([fig3_trace])
        (back,) = parse_traces(text)
        assert back == fig3_trace

    def test_roundtrip_preserves_unaccessed_vars(self):
        t = MemoryTrace.from_accesses(["a"], variables=["a", "ghost"])
        (back,) = parse_traces(render_traces([t]))
        assert back.variables == ("a", "ghost")

    def test_file_roundtrip(self, tmp_path, fig3_trace):
        path = tmp_path / "traces.txt"
        write_traces(path, [fig3_trace, fig3_trace])
        traces = read_traces(path)
        assert traces == [fig3_trace, fig3_trace]

    def test_long_sequences_wrap(self, small_sequence):
        t = MemoryTrace(small_sequence)
        text = render_traces([t], wrap=8)
        assert max(len(line) for line in text.splitlines()) < 120
        (back,) = parse_traces(text)
        assert back == t

    def test_parse_render_parse_identity(self, small_sequence, fig3_trace):
        traces = [MemoryTrace(small_sequence), fig3_trace]
        text = render_traces(traces)
        once = parse_traces(text)
        again = parse_traces(render_traces(once))
        assert once == traces
        assert again == once


ADDR_SAMPLE = """\
# gem5-style lines, CSV rows and bare addresses all mix
1000: R 0x1000 4
1001: W 0x1004 4
1002,r,0x1008
w 0x1000
4104
"""


class TestAddressTraces:
    def test_parse_lines(self):
        addrs, writes = parse_address_trace(ADDR_SAMPLE)
        assert addrs.tolist() == [0x1000, 0x1004, 0x1008, 0x1000, 4104]
        assert writes.tolist() == [False, True, False, True, False]

    def test_hex_beats_trailing_decimal_size(self):
        addrs, _ = parse_address_trace("R 0x2000 8\n")
        assert addrs.tolist() == [0x2000]

    def test_decimal_only_lines(self):
        addrs, _ = parse_address_trace("8192\n8196\n")
        assert addrs.tolist() == [8192, 8196]

    @pytest.mark.parametrize("text,match", [
        ("", "no accesses"),
        ("R W\n", "line 1: no address"),
        ("0x10\nR nope\n", "line 2: no address"),
        ("-4\n", "non-negative"),
    ])
    def test_malformed_address_lines(self, text, match):
        with pytest.raises(TraceFormatError, match=match):
            parse_address_trace(text)

    def test_word_granularity_groups_addresses(self):
        addrs = np.array([0, 1, 4, 5, 8])
        t = addresses_to_trace(addrs, word_bytes=4)
        assert t.sequence.accesses == ("m0", "m0", "m1", "m1", "m2")
        t8 = addresses_to_trace(addrs, word_bytes=8)
        assert t8.sequence.accesses == ("m0", "m0", "m0", "m0", "m1")

    def test_default_word_is_the_32_track_word(self):
        t = addresses_to_trace([0, 3, 4])
        assert t.sequence.accesses == ("m0", "m0", "m1")

    def test_cold_filter_drops_rare_words(self):
        addrs = [0, 0, 0, 4, 8, 8]
        t = addresses_to_trace(addrs, word_bytes=4, min_count=2)
        assert set(t.sequence.accesses) == {"m0", "m2"}
        assert len(t) == 5

    def test_working_set_cap_keeps_hottest(self):
        addrs = [0] * 5 + [4] * 3 + [8] * 1
        t = addresses_to_trace(addrs, word_bytes=4, max_vars=2)
        assert set(t.sequence.accesses) == {"m0", "m1"}

    def test_cap_ties_break_by_lower_address(self):
        addrs = [0, 4, 8, 0, 4, 8]
        t = addresses_to_trace(addrs, word_bytes=4, max_vars=2)
        assert set(t.sequence.accesses) == {"m0", "m1"}

    def test_limit_truncates_before_filtering(self):
        addrs = [0, 4, 8, 12]
        t = addresses_to_trace(addrs, word_bytes=4, limit=2)
        assert len(t) == 2

    def test_explicit_writes_survive_mapping(self):
        t = addresses_to_trace([0, 4, 0], writes=[True, False, True],
                               word_bytes=4)
        assert t.writes.tolist() == [True, False, True]

    def test_default_writes_follow_first_access_rule(self):
        t = addresses_to_trace([0, 4, 0], word_bytes=4)
        assert t.writes.tolist() == [True, True, False]

    def test_everything_filtered_raises(self):
        with pytest.raises(TraceError, match="min_count"):
            addresses_to_trace([0, 4, 8], word_bytes=4, min_count=2)

    def test_read_address_trace_names_from_stem(self, tmp_path):
        path = tmp_path / "app.atrc"
        path.write_text("0x10\n0x14\n")
        t = read_address_trace(path)
        assert t.name == "app"
        assert len(t) == 2


class TestLoadTraces:
    def test_detects_native_format(self):
        assert detect_trace_format("# c\ntrace t\nseq a\nend\n") == "trace"
        assert detect_trace_format("0x1000\n") == "addr"
        assert detect_trace_format("1000: R 0x4 4\n") == "addr"

    def test_auto_loads_both_formats(self, tmp_path, fig3_trace):
        native = tmp_path / "n.trc"
        write_traces(native, [fig3_trace])
        assert load_traces(native) == [fig3_trace]
        raw = tmp_path / "r.csv"
        raw.write_text("r,0x0\nw,0x4\n")
        (t,) = load_traces(raw)
        assert t.sequence.accesses == ("m0", "m1")

    def test_ingestion_kwargs_rejected_for_native(self, tmp_path, fig3_trace):
        native = tmp_path / "n.trc"
        write_traces(native, [fig3_trace])
        with pytest.raises(TraceError, match="no ingestion options"):
            load_traces(native, max_vars=4)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="unknown trace format"):
            load_traces(tmp_path / "x", format="bogus")


class TestGzipTransparency:
    """Any text trace may arrive gzip-compressed; sniffed by magic bytes."""

    def _gz(self, path, text):
        import gzip

        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(text)
        return path

    def test_gzipped_address_trace_loads_identically(self, tmp_path):
        text = "0x1000\n0x1008\n0x1000\n"
        plain = tmp_path / "a.trc"
        plain.write_text(text)
        gzed = self._gz(tmp_path / "a2.trc.gz", text)
        (a,) = load_traces(plain)
        (b,) = load_traces(gzed)
        assert np.array_equal(a.sequence.codes, b.sequence.codes)
        assert np.array_equal(a.writes, b.writes)

    def test_gzipped_native_trace_loads(self, tmp_path, fig3_trace):
        native = tmp_path / "n.trc"
        write_traces(native, [fig3_trace])
        gzed = self._gz(tmp_path / "n.trc.gz", native.read_text())
        assert load_traces(gzed) == [fig3_trace]

    def test_magic_bytes_beat_the_extension(self, tmp_path):
        # Gzipped content under a plain name still decompresses.
        misnamed = self._gz(tmp_path / "plain.trc", "0x10\n0x18\n")
        (t,) = load_traces(misnamed)
        assert len(t) == 2

    def test_gz_stem_strips_both_suffixes(self, tmp_path):
        gzed = self._gz(tmp_path / "app.trc.gz", "0x10\n")
        (t,) = load_traces(gzed)
        assert t.name == "app"

    def test_truncated_gzip_is_a_format_error(self, tmp_path):
        path = tmp_path / "bad.trc.gz"
        path.write_bytes(b"\x1f\x8b\x08\x00garbage")
        with pytest.raises(TraceFormatError):
            load_traces(path)

    def test_binary_junk_is_a_format_error(self, tmp_path):
        path = tmp_path / "junk.trc"
        path.write_bytes(bytes(range(256)) * 4)
        with pytest.raises(TraceFormatError, match="not a text trace"):
            load_traces(path)


class TestAddressStreaming:
    """Line-level iteration: the bounded-memory face of the parser."""

    def test_iter_matches_parse(self, tmp_path):
        text = "0x10\nw,0x18\n# comment\n0x10\n"
        path = tmp_path / "s.trc"
        path.write_text(text)
        pairs = list(iter_address_trace(path))
        addrs, writes = parse_address_trace(text)
        assert [a for a, _ in pairs] == list(addrs)
        assert [w for _, w in pairs] == list(writes)

    def test_iter_accepts_line_iterables(self):
        pairs = list(iter_address_trace(["0x10", "0x18"]))
        assert [a for a, _ in pairs] == [0x10, 0x18]

    def test_iter_reports_line_numbers_in_errors(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("0x10\nnonsense here\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            list(iter_address_trace(path))

    def test_chunked_iteration_is_bounded_and_complete(self, tmp_path):
        path = tmp_path / "c.trc"
        path.write_text("".join(f"0x{8 * i:x}\n" for i in range(10)))
        chunks = list(iter_address_chunks(path, 4))
        assert [len(a) for a, _ in chunks] == [4, 4, 2]
        assert np.concatenate([a for a, _ in chunks]).tolist() == [
            8 * i for i in range(10)
        ]

    def test_chunk_must_be_positive(self, tmp_path):
        with pytest.raises(TraceError, match="chunk"):
            list(iter_address_chunks(["0x10"], 0))

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_address_trace(tmp_path / "nope.trc"))
