"""Unit tests for the trace text format (repro.trace.io)."""

import pytest

from repro.errors import TraceFormatError
from repro.trace.io import parse_traces, read_traces, render_traces, write_traces
from repro.trace.trace import MemoryTrace


SAMPLE = """
# a comment
trace demo
vars a b c
seq a b a c
writes 0 3
end
"""


class TestParse:
    def test_parse_basic_block(self):
        traces = parse_traces(SAMPLE)
        assert len(traces) == 1
        t = traces[0]
        assert t.name == "demo"
        assert t.sequence.accesses == ("a", "b", "a", "c")
        assert list(t.writes) == [True, False, False, True]

    def test_vars_optional(self):
        (t,) = parse_traces("trace t\nseq x y x\nend\n")
        assert t.variables == ("x", "y")

    def test_default_write_rule_when_no_writes_line(self):
        (t,) = parse_traces("trace t\nseq x y x\nend\n")
        assert list(t.writes) == [True, True, False]

    def test_multiple_blocks(self):
        text = "trace a\nseq x\nend\ntrace b\nseq y y\nend\n"
        traces = parse_traces(text)
        assert [t.name for t in traces] == ["a", "b"]

    def test_seq_continuation_lines(self):
        (t,) = parse_traces("trace t\nseq a b\nseq c a\nend\n")
        assert t.sequence.accesses == ("a", "b", "c", "a")

    def test_comments_and_blanks_ignored(self):
        (t,) = parse_traces("# hi\n\ntrace t # trailing\nseq a\nend\n")
        assert t.name == "t"


class TestParseErrors:
    @pytest.mark.parametrize("text,match", [
        ("seq a\nend\n", "outside"),
        ("trace t\ntrace u\n", "before previous"),
        ("trace t\nseq a\n", "not terminated"),
        ("trace t\nend\n", "empty sequence"),
        ("trace t\nseq a\nwrites 5\nend\n", "out of range"),
        ("trace t\nseq a\nwrites x\nend\n", "integers"),
        ("trace a b\nseq a\nend\n", "one name"),
        ("bogus a\n", "unknown keyword"),
    ])
    def test_malformed_inputs(self, text, match):
        with pytest.raises(TraceFormatError, match=match):
            parse_traces(text)


class TestRoundtrip:
    def test_render_parse_roundtrip(self, fig3_trace):
        text = render_traces([fig3_trace])
        (back,) = parse_traces(text)
        assert back == fig3_trace

    def test_roundtrip_preserves_unaccessed_vars(self):
        t = MemoryTrace.from_accesses(["a"], variables=["a", "ghost"])
        (back,) = parse_traces(render_traces([t]))
        assert back.variables == ("a", "ghost")

    def test_file_roundtrip(self, tmp_path, fig3_trace):
        path = tmp_path / "traces.txt"
        write_traces(path, [fig3_trace, fig3_trace])
        traces = read_traces(path)
        assert traces == [fig3_trace, fig3_trace]

    def test_long_sequences_wrap(self, small_sequence):
        t = MemoryTrace(small_sequence)
        text = render_traces([t], wrap=8)
        assert max(len(line) for line in text.splitlines()) < 120
        (back,) = parse_traces(text)
        assert back == t
