"""Unit tests for the OffsetStone-like benchmark suite."""

import pytest

from repro.errors import TraceError
from repro.trace.generators.offsetstone import (
    MAX_VARS,
    OFFSETSTONE_NAMES,
    benchmark_profile,
    largest_sequence_benchmark,
    load_benchmark,
    offsetstone_suite,
)


class TestSuiteShape:
    def test_has_31_fig4_programs(self):
        assert len(OFFSETSTONE_NAMES) == 31
        for expected in ("8051", "adpcm", "gzip", "jpeg", "viterbi", "mp3"):
            assert expected in OFFSETSTONE_NAMES

    def test_every_profile_loadable_at_small_scale(self):
        for name in OFFSETSTONE_NAMES:
            bench = load_benchmark(name, scale=0.12, seed=3)
            assert bench.num_sequences >= 2
            assert bench.max_variables >= 2

    def test_suite_loader_matches_individual_loads(self):
        suite = offsetstone_suite(scale=0.15, seed=1, names=("adpcm", "gzip"))
        solo = load_benchmark("adpcm", scale=0.15, seed=1)
        assert suite[0].traces == solo.traces

    def test_var_counts_capped_for_4kib_rtm(self):
        for name in ("mp3", "mpeg2", "lpsolve"):
            bench = load_benchmark(name, scale=1.0)
            assert bench.max_variables <= MAX_VARS

    def test_largest_benchmark_has_longest_sequence(self):
        largest = load_benchmark(largest_sequence_benchmark(), scale=1.0)
        assert largest.max_length >= 3000  # the published max is 3640

    def test_domains_are_known(self):
        domains = {"control", "dsp", "media", "compression", "scientific"}
        for name in OFFSETSTONE_NAMES:
            assert benchmark_profile(name).domain in domains


class TestDeterminism:
    def test_same_name_seed_scale_reproduces(self):
        a = load_benchmark("bison", scale=0.2, seed=5)
        b = load_benchmark("bison", scale=0.2, seed=5)
        assert a.traces == b.traces

    def test_different_seed_changes_traces(self):
        a = load_benchmark("bison", scale=0.2, seed=5)
        b = load_benchmark("bison", scale=0.2, seed=6)
        assert a.traces != b.traces

    def test_names_produce_distinct_programs(self):
        a = load_benchmark("flex", scale=0.2, seed=5)
        b = load_benchmark("cpp", scale=0.2, seed=5)
        assert a.traces != b.traces


class TestValidation:
    def test_unknown_name_rejected(self):
        with pytest.raises(TraceError, match="unknown benchmark"):
            load_benchmark("quake3")

    def test_bad_scale_rejected(self):
        with pytest.raises(TraceError):
            load_benchmark("adpcm", scale=0.0)
        with pytest.raises(TraceError):
            load_benchmark("adpcm", scale=1.5)


class TestProgramAccessors:
    def test_aggregate_properties(self):
        bench = load_benchmark("dct", scale=0.3, seed=2)
        assert bench.total_accesses == sum(len(t) for t in bench.traces)
        assert bench.max_length == max(len(t) for t in bench.traces)
        assert bench.num_sequences == len(bench.traces)

    def test_write_ratio_controls_writes(self):
        lo = load_benchmark("dct", scale=0.3, seed=2, write_ratio=0.0)
        hi = load_benchmark("dct", scale=0.3, seed=2, write_ratio=0.9)
        assert sum(t.num_writes for t in hi.traces) > sum(
            t.num_writes for t in lo.traces
        )

    def test_scale_shrinks_work(self):
        small = load_benchmark("jpeg", scale=0.15, seed=4)
        large = load_benchmark("jpeg", scale=1.0, seed=4)
        assert small.total_accesses < large.total_accesses
