"""Unit tests for repro.trace.sequence.AccessSequence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.sequence import AccessSequence


class TestConstruction:
    def test_infers_variables_in_first_appearance_order(self):
        seq = AccessSequence(["b", "a", "b", "c"])
        assert seq.variables == ("b", "a", "c")

    def test_explicit_variable_order_is_preserved(self):
        seq = AccessSequence(["b", "a"], variables=["a", "b", "z"])
        assert seq.variables == ("a", "b", "z")

    def test_declared_but_unaccessed_variables_allowed(self):
        seq = AccessSequence(["a"], variables=["a", "ghost"])
        assert seq.frequency("ghost") == 0

    def test_empty_accesses_with_declared_variables(self):
        seq = AccessSequence([], variables=["a"])
        assert len(seq) == 0
        assert seq.num_variables == 1

    def test_rejects_empty_variable_universe(self):
        with pytest.raises(TraceError):
            AccessSequence([])

    def test_rejects_duplicate_variables(self):
        with pytest.raises(TraceError, match="duplicate"):
            AccessSequence(["a"], variables=["a", "a"])

    def test_rejects_undeclared_access(self):
        with pytest.raises(TraceError, match="undeclared"):
            AccessSequence(["a", "x"], variables=["a"])

    def test_rejects_non_string_variable(self):
        with pytest.raises(TraceError):
            AccessSequence([1, 2])  # type: ignore[list-item]

    def test_rejects_empty_string_variable(self):
        with pytest.raises(TraceError):
            AccessSequence([""], variables=[""])


class TestProtocol:
    def test_len_iter_getitem(self, fig3_sequence):
        assert len(fig3_sequence) == 24
        assert list(fig3_sequence)[:4] == ["a", "b", "a", "b"]
        assert fig3_sequence[4] == "c"

    def test_equality_and_hash(self):
        a = AccessSequence(["a", "b"], variables=["a", "b"])
        b = AccessSequence(["a", "b"], variables=["a", "b"])
        c = AccessSequence(["a", "b"], variables=["b", "a"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_other_type(self):
        assert AccessSequence(["a"]) != "a"

    def test_contains(self, fig3_sequence):
        assert "a" in fig3_sequence
        assert "z" not in fig3_sequence

    def test_repr_mentions_sizes(self, fig3_sequence):
        assert "9 vars" in repr(fig3_sequence)
        assert "24 accesses" in repr(fig3_sequence)


class TestDerivedData:
    def test_codes_match_variables(self, fig3_sequence):
        codes = fig3_sequence.codes
        assert codes.dtype == np.int64
        assert fig3_sequence.variables[codes[0]] == "a"
        assert fig3_sequence.variables[codes[4]] == "c"

    def test_codes_are_read_only(self, fig3_sequence):
        with pytest.raises(ValueError):
            fig3_sequence.codes[0] = 3

    def test_frequencies(self, fig3_sequence):
        freq = {v: fig3_sequence.frequency(v) for v in fig3_sequence.variables}
        assert freq == {"a": 5, "b": 2, "c": 2, "d": 2, "e": 3,
                        "f": 2, "g": 3, "h": 2, "i": 3}

    def test_frequencies_sum_to_length(self, fig3_sequence):
        assert int(fig3_sequence.frequencies.sum()) == len(fig3_sequence)

    def test_index_of_unknown_raises(self, fig3_sequence):
        with pytest.raises(TraceError):
            fig3_sequence.index_of("nope")

    def test_accesses_roundtrip(self, fig3_sequence):
        rebuilt = AccessSequence(
            fig3_sequence.accesses, variables=fig3_sequence.variables
        )
        assert rebuilt == fig3_sequence


class TestRestriction:
    def test_restricted_to_keeps_subsequence(self, fig3_sequence):
        local = fig3_sequence.restricted_to(["a", "b", "d", "g", "h"])
        assert "".join(local.accesses) == "ababaaddagghgh"

    def test_restricted_preserves_declaration_order(self, fig3_sequence):
        local = fig3_sequence.restricted_to(["h", "a", "b"])
        assert local.variables == ("a", "b", "h")

    def test_restricted_unknown_variable_raises(self, fig3_sequence):
        with pytest.raises(TraceError):
            fig3_sequence.restricted_to(["a", "zz"])

    def test_restricted_empty_subset_raises(self, fig3_sequence):
        with pytest.raises(TraceError):
            fig3_sequence.restricted_to([])

    def test_restriction_partitions_sequence(self, fig3_sequence):
        s0 = fig3_sequence.restricted_to(["a", "g", "b", "d", "h"])
        s1 = fig3_sequence.restricted_to(["e", "i", "c", "f"])
        assert len(s0) + len(s1) == len(fig3_sequence)

    def test_fig3_afd_subsequences(self, fig3_sequence):
        """The S0/S1 split printed in Fig. 3-(c)."""
        s0 = fig3_sequence.restricted_to(["a", "g", "b", "d", "h"])
        s1 = fig3_sequence.restricted_to(["e", "i", "c", "f"])
        assert "".join(s0.accesses) == "ababaaddagghgh"
        assert "".join(s1.accesses) == "cciefefeii"


class TestMisc:
    def test_with_name(self, fig3_sequence):
        renamed = fig3_sequence.with_name("other")
        assert renamed.name == "other"
        assert renamed == fig3_sequence  # same content

    def test_consecutive_pairs_count(self, fig3_sequence):
        pairs = list(fig3_sequence.consecutive_pairs())
        assert len(pairs) == len(fig3_sequence) - 1
        assert pairs[0] == ("a", "b")
