"""Unit tests for repro.trace.trace.MemoryTrace."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace


class TestDefaults:
    def test_first_access_of_each_variable_is_write(self, fig3_sequence):
        trace = MemoryTrace(fig3_sequence)
        firsts = {}
        for i, (name, is_write) in enumerate(trace.operations()):
            if name not in firsts:
                firsts[name] = i
                assert is_write, f"first access of {name} should be a write"
            elif i not in firsts.values():
                pass  # later accesses may be either
        assert trace.num_writes == fig3_sequence.num_variables

    def test_reads_plus_writes_is_length(self, fig3_trace):
        assert fig3_trace.num_reads + fig3_trace.num_writes == len(fig3_trace)

    def test_from_accesses_builder(self):
        trace = MemoryTrace.from_accesses(["x", "y", "x"], name="t")
        assert trace.name == "t"
        assert len(trace) == 3


class TestExplicitMask:
    def test_explicit_mask_respected(self):
        seq = AccessSequence(["a", "b", "a"])
        trace = MemoryTrace(seq, writes=[True, False, True])
        assert trace.num_writes == 2

    def test_wrong_mask_shape_rejected(self):
        seq = AccessSequence(["a", "b"])
        with pytest.raises(TraceError, match="shape"):
            MemoryTrace(seq, writes=[True])

    def test_mask_is_immutable(self, fig3_trace):
        with pytest.raises(ValueError):
            fig3_trace.writes[0] = False

    def test_mask_copied_from_caller(self):
        seq = AccessSequence(["a", "b"])
        mask = np.array([True, False])
        trace = MemoryTrace(seq, writes=mask)
        mask[1] = True
        assert trace.num_writes == 1


class TestWriteRatio:
    def test_ratio_zero_only_first_writes(self, fig3_sequence):
        trace = MemoryTrace.with_write_ratio(fig3_sequence, 0.0, rng=1)
        assert trace.num_writes == fig3_sequence.num_variables

    def test_ratio_one_all_writes(self, fig3_sequence):
        trace = MemoryTrace.with_write_ratio(fig3_sequence, 1.0, rng=1)
        assert trace.num_writes == len(fig3_sequence)

    def test_ratio_reproducible(self, fig3_sequence):
        a = MemoryTrace.with_write_ratio(fig3_sequence, 0.5, rng=7)
        b = MemoryTrace.with_write_ratio(fig3_sequence, 0.5, rng=7)
        assert a == b

    def test_bad_ratio_rejected(self, fig3_sequence):
        with pytest.raises(TraceError):
            MemoryTrace.with_write_ratio(fig3_sequence, 1.5)


class TestProtocol:
    def test_equality(self, fig3_sequence):
        assert MemoryTrace(fig3_sequence) == MemoryTrace(fig3_sequence)
        assert MemoryTrace(fig3_sequence) != "x"

    def test_operations_order(self):
        trace = MemoryTrace.from_accesses(["x", "y"])
        ops = list(trace.operations())
        assert [n for n, _ in ops] == ["x", "y"]

    def test_variables_exposed(self, fig3_trace):
        assert fig3_trace.variables == tuple("abcdefghi")

    def test_repr(self, fig3_trace):
        assert "24 accesses" in repr(fig3_trace)
