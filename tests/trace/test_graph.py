"""Unit tests for repro.trace.graph.AccessGraph."""

import pytest

from repro.errors import TraceError
from repro.trace.graph import AccessGraph
from repro.trace.sequence import AccessSequence


@pytest.fixture
def tiny_graph():
    #  a b a b c c  -> edges: {a,b} w=3, {b,c} w=1; one self transition (c,c)
    return AccessGraph(AccessSequence(list("ababcc")))


class TestWeights:
    def test_edge_weight_counts_consecutive_pairs(self, tiny_graph):
        assert tiny_graph.weight("a", "b") == 3
        assert tiny_graph.weight("b", "c") == 1

    def test_weight_is_symmetric(self, tiny_graph):
        assert tiny_graph.weight("a", "b") == tiny_graph.weight("b", "a")

    def test_absent_edge_weight_zero(self, tiny_graph):
        assert tiny_graph.weight("a", "c") == 0

    def test_self_transitions_not_edges(self, tiny_graph):
        assert tiny_graph.weight("c", "c") == 0
        assert tiny_graph.self_transitions == 1

    def test_unknown_vertex_raises(self, tiny_graph):
        with pytest.raises(TraceError):
            tiny_graph.weight("a", "zz")
        with pytest.raises(TraceError):
            tiny_graph.neighbors("zz")
        with pytest.raises(TraceError):
            tiny_graph.weighted_degree("zz")


class TestStructure:
    def test_vertices_cover_all_variables(self, fig3_sequence):
        g = AccessGraph(fig3_sequence)
        assert g.vertices == fig3_sequence.variables

    def test_edges_yielded_once(self, tiny_graph):
        edges = list(tiny_graph.edges())
        assert sorted((u, v) for u, v, _ in edges) == [("a", "b"), ("b", "c")]

    def test_num_edges(self, tiny_graph):
        assert tiny_graph.num_edges() == 2

    def test_total_weight_plus_self_is_length_minus_one(self, fig3_sequence):
        g = AccessGraph(fig3_sequence)
        assert g.total_weight() + g.self_transitions == len(fig3_sequence) - 1

    def test_weighted_degree(self, tiny_graph):
        assert tiny_graph.weighted_degree("b") == 4
        assert tiny_graph.weighted_degree("a") == 3
        assert tiny_graph.weighted_degree("c") == 1

    def test_neighbors_returns_copy(self, tiny_graph):
        n = tiny_graph.neighbors("a")
        n["b"] = 999
        assert tiny_graph.weight("a", "b") == 3

    def test_isolated_vertex(self):
        g = AccessGraph(AccessSequence(["a"], variables=["a", "lonely"]))
        assert g.weighted_degree("lonely") == 0
        assert g.neighbors("lonely") == {}

    def test_empty_sequence_graph(self):
        g = AccessGraph(AccessSequence([], variables=["a"]))
        assert g.num_edges() == 0
        assert g.self_transitions == 0


class TestNetworkxExport:
    def test_to_networkx(self, fig3_sequence):
        nx = pytest.importorskip("networkx")
        g = AccessGraph(fig3_sequence).to_networkx()
        assert g.number_of_nodes() == 9
        assert g["a"]["b"]["weight"] == AccessGraph(fig3_sequence).weight("a", "b")
