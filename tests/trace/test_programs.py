"""Unit tests for the CFG-shaped procedure trace generator."""

import pytest

from repro.errors import TraceError
from repro.trace.generators.programs import (
    ProcedureModel,
    ProcedureSpec,
    procedure_sequence,
    program_sequences,
)
from repro.trace.liveness import Liveness
from repro.trace.stats import analyze


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"target_statements": 0},
        {"max_depth": -1},
        {"procedure_vars": -1},
        {"loop_probability": 1.0},
        {"branch_probability": 1.0},
        {"max_loop_iterations": 0},
        {"reads_per_statement": (0, 2)},
        {"reads_per_statement": (3, 2)},
        {"locals_per_region": (0, 2)},
    ])
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(TraceError):
            ProcedureSpec(**kwargs).validate()

    def test_default_spec_valid(self):
        ProcedureSpec().validate()


class TestEmission:
    def test_deterministic_for_seed(self):
        a = procedure_sequence(rng=7, name="p")
        b = procedure_sequence(rng=7, name="p")
        assert a == b

    def test_different_seeds_differ(self):
        assert procedure_sequence(rng=1) != procedure_sequence(rng=2)

    def test_every_access_declared(self):
        seq = procedure_sequence(rng=3)
        assert set(seq.accesses) <= set(seq.variables)

    def test_procedure_vars_span_whole_trace(self):
        spec = ProcedureSpec(procedure_vars=3, target_statements=60)
        seq = procedure_sequence(spec=spec, rng=5, name="q")
        live = Liveness(seq)
        globals_ = [v for v in seq.variables if "_g" in v]
        assert len(globals_) == 3
        spans = [live.lifespan(v) for v in globals_ if live.is_accessed(v)]
        assert max(spans) > len(seq) // 2

    def test_block_locals_are_region_scoped(self):
        """Most locals die quickly: median lifespan well under the trace."""
        seq = procedure_sequence(
            ProcedureSpec(target_statements=120, procedure_vars=2), rng=11
        )
        stats = analyze(seq)
        assert stats.median_lifespan < stats.length / 2

    def test_most_variables_are_live(self):
        seq = procedure_sequence(ProcedureSpec(target_statements=100), rng=13)
        stats = analyze(seq)
        assert stats.num_accessed >= stats.num_variables * 0.6

    def test_loops_create_revisits(self):
        """With loops enabled, some variables are re-touched after a gap."""
        from repro.trace.stats import reuse_distances
        spec = ProcedureSpec(target_statements=100, loop_probability=0.5)
        seq = procedure_sequence(spec=spec, rng=17)
        distances = reuse_distances(seq)
        assert distances.size > 0
        assert distances.max() > 20

    def test_no_loops_no_branches(self):
        spec = ProcedureSpec(
            target_statements=40, loop_probability=0.0,
            branch_probability=0.0, max_depth=0,
        )
        seq = procedure_sequence(spec=spec, rng=19)
        assert len(seq) >= 40  # every statement emits >= 2 accesses

    def test_zero_procedure_vars_allowed(self):
        spec = ProcedureSpec(procedure_vars=0, target_statements=30)
        seq = procedure_sequence(spec=spec, rng=23)
        assert len(seq) > 0

    def test_model_exposes_tree(self):
        model = ProcedureModel(rng=29, name="m")
        assert model.root.kind == "block"
        assert model.emit().name == "m"

    def test_emit_is_idempotent(self):
        model = ProcedureModel(rng=43, name="idem")
        assert model.emit() == model.emit()


class TestProgramBag:
    def test_bag_size_and_names(self):
        seqs = program_sequences(3, rng=31, name="app")
        assert [s.name for s in seqs] == ["app_p0", "app_p1", "app_p2"]

    def test_procedures_are_independent(self):
        seqs = program_sequences(2, rng=37)
        assert set(seqs[0].variables).isdisjoint(seqs[1].variables)

    def test_zero_rejected(self):
        with pytest.raises(TraceError):
            program_sequences(0)

    def test_placement_quality_on_generated_programs(self):
        """DMA should at least match AFD on structure-derived traces."""
        from repro.core.cost import shift_cost
        from repro.core.policies import get_policy
        afd_total = dma_total = 0
        for seq in program_sequences(4, rng=41):
            afd_total += shift_cost(
                seq, get_policy("AFD-OFU").place(seq, 4, 256)
            )
            dma_total += shift_cost(
                seq, get_policy("DMA-SR").place(seq, 4, 256)
            )
        assert dma_total <= afd_total
