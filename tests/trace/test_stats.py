"""Unit tests for the trace statistics module."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.sequence import AccessSequence
from repro.trace.stats import (
    analyze,
    reuse_distances,
    self_transition_ratio,
    working_set_sizes,
    working_set_turnover,
)


class TestReuseDistances:
    def test_simple(self):
        seq = AccessSequence(list("aba"))
        np.testing.assert_array_equal(reuse_distances(seq), [2])

    def test_immediate_repeat_distance_one(self):
        seq = AccessSequence(list("aa"))
        np.testing.assert_array_equal(reuse_distances(seq), [1])

    def test_no_reuse(self):
        seq = AccessSequence(list("abc"))
        assert reuse_distances(seq).size == 0


class TestWorkingSets:
    def test_sizes_per_window(self):
        seq = AccessSequence(list("aabbccdd"))
        np.testing.assert_array_equal(working_set_sizes(seq, window=4), [2, 2])

    def test_turnover_full_rotation(self):
        seq = AccessSequence(list("aaaabbbb"))
        assert working_set_turnover(seq, window=4) == 1.0

    def test_turnover_static_set(self):
        seq = AccessSequence(list("abababab"))
        assert working_set_turnover(seq, window=4) == 0.0

    def test_window_validation(self):
        seq = AccessSequence(list("ab"))
        with pytest.raises(TraceError):
            working_set_sizes(seq, window=0)
        with pytest.raises(TraceError):
            working_set_turnover(seq, window=0)


class TestSelfTransitions:
    def test_ratio(self):
        seq = AccessSequence(list("aab"))
        assert self_transition_ratio(seq) == pytest.approx(0.5)

    def test_single_access(self):
        assert self_transition_ratio(AccessSequence(["a"])) == 0.0


class TestAnalyze:
    def test_bundle_consistency(self, small_sequence):
        stats = analyze(small_sequence)
        assert stats.length == len(small_sequence)
        assert stats.num_variables == small_sequence.num_variables
        assert 0 <= stats.self_transition_ratio <= 1
        assert 0 <= stats.working_set_turnover <= 1
        assert 0 <= stats.disjoint_access_share <= 1
        assert stats.disjoint_variables <= stats.num_accessed

    def test_describe_is_informative(self, small_sequence):
        text = analyze(small_sequence).describe()
        assert "accesses" in text and "disjoint" in text

    def test_phased_trace_has_high_turnover(self):
        from repro.trace.generators.synthetic import phased_sequence
        seq = phased_sequence(6, 4, 40, rng=1)
        stats = analyze(seq, window=40)
        assert stats.working_set_turnover > 0.5

    def test_static_trace_has_low_turnover(self):
        from repro.trace.generators.synthetic import zipf_sequence
        seq = zipf_sequence(6, 240, alpha=1.0, locality=0.0, rng=1)
        stats = analyze(seq, window=40)
        assert stats.working_set_turnover < 0.3

    def test_empty_sequence(self):
        stats = analyze(AccessSequence([], variables=["a"]))
        assert stats.length == 0
        assert stats.disjoint_access_share == 0.0
