"""Streaming ingestion and replay (repro.trace.streaming).

The acceptance bar: a :class:`StreamingTrace` is bit-identical *in
content* to the monolithic ingestion of the same file — variables,
codes, writes, fingerprint — and replaying it chunk by chunk through
the controller reproduces the monolithic :class:`SimReport` exactly,
for every chunk size and backend.
"""

import gzip
import os
import pickle

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.engine.compile import trace_fingerprint
from repro.errors import TraceError, TraceFormatError
from repro.rtm.geometry import RTMConfig
from repro.rtm.sim import simulate
from repro.trace.io import read_address_trace
from repro.trace.streaming import StreamingTrace, stream_address_trace


def write_trace_file(path, seed=0, accesses=600, words=24, gz=False):
    """A zipf-ish raw address trace with explicit read/write flags."""
    rng = np.random.default_rng(seed)
    probs = 1.0 / np.arange(1, words + 1) ** 1.2
    probs /= probs.sum()
    idx = rng.choice(words, size=accesses, p=probs)
    w = rng.random(accesses) < 0.3
    lines = "".join(
        f"{'w' if wr else 'r'},0x{0x400 + 8 * a:x}\n" for a, wr in zip(idx, w)
    )
    opener = gzip.open if gz else open
    with opener(path, "wt", encoding="utf-8") as fh:
        fh.write(lines)
    return path


@pytest.fixture
def trace_file(tmp_path):
    return write_trace_file(tmp_path / "app.trc")


INGEST_VARIANTS = [
    {},
    {"word_bytes": 16},
    {"max_vars": 8},
    {"min_count": 3},
    {"limit": 100},
    {"max_vars": 6, "min_count": 2, "limit": 400, "word_bytes": 16},
]


class TestIngestionIdentity:
    @pytest.mark.parametrize("kwargs", INGEST_VARIANTS)
    def test_content_matches_monolithic(self, trace_file, kwargs):
        mono = read_address_trace(trace_file, **kwargs)
        streamed = stream_address_trace(trace_file, chunk=64, **kwargs)
        assert streamed.name == mono.name == "app"
        assert streamed.variables == mono.sequence.variables
        assert len(streamed) == len(mono)
        twin = streamed.materialize()
        assert np.array_equal(twin.sequence.codes, mono.sequence.codes)
        assert np.array_equal(twin.writes, mono.writes)
        assert streamed.content_fingerprint == trace_fingerprint(mono)

    def test_gzip_source_is_identical(self, tmp_path):
        plain = write_trace_file(tmp_path / "z.trc", seed=2)
        gzed = write_trace_file(tmp_path / "z2.trc.gz", seed=2, gz=True)
        a = stream_address_trace(plain, chunk=50)
        b = stream_address_trace(gzed, chunk=50)
        assert a.content_fingerprint == b.content_fingerprint
        assert b.name == "z2"  # .trc.gz stripped to the stem

    def test_chunk_size_never_changes_content(self, trace_file):
        prints = {
            stream_address_trace(trace_file, chunk=c).content_fingerprint
            for c in (1, 7, 64, 10_000)
        }
        assert len(prints) == 1

    def test_census_batch_boundaries(self, tmp_path):
        """A trace longer than one census batch still ingests identically."""
        from repro.trace import streaming

        path = write_trace_file(tmp_path / "b.trc", seed=3, accesses=700)
        mono = read_address_trace(path)
        real = streaming._BATCH
        try:
            streaming._BATCH = 256  # force multiple census batches
            streamed = stream_address_trace(path, chunk=300)
            assert streamed.content_fingerprint == trace_fingerprint(mono)
        finally:
            streaming._BATCH = real


class TestChunks:
    def test_fixed_size_chunks_reassemble(self, trace_file):
        streamed = stream_address_trace(trace_file, chunk=100)
        chunks = list(streamed.chunks())
        assert streamed.num_chunks == len(chunks) == 6
        assert [len(c) for c in chunks] == [100] * 6
        assert [c.start for c in chunks] == [0, 100, 200, 300, 400, 500]
        twin = streamed.materialize()
        assert np.array_equal(
            np.concatenate([c.codes for c in chunks]), twin.sequence.codes
        )
        assert np.array_equal(
            np.concatenate([c.writes for c in chunks]), twin.writes
        )

    def test_chunks_are_read_only(self, trace_file):
        chunk = next(stream_address_trace(trace_file, chunk=10).chunks())
        with pytest.raises(ValueError):
            chunk.codes[0] = 1

    def test_sequence_face_refuses_codes(self, trace_file):
        streamed = stream_address_trace(trace_file, chunk=10)
        assert streamed.sequence.num_variables == len(streamed.variables)
        with pytest.raises(TraceError, match="does not materialize"):
            streamed.sequence.codes
        with pytest.raises(TraceError, match="does not materialize"):
            streamed.writes

    def test_placement_sequence_window(self, trace_file):
        streamed = stream_address_trace(trace_file, chunk=10)
        full = streamed.placement_sequence()
        assert len(full) == len(streamed)
        head = streamed.placement_sequence(window=40)
        assert len(head) == 40
        # The universe stays the full one so every variable gets placed.
        assert head.variables == streamed.variables
        windowed = stream_address_trace(trace_file, chunk=10, window=40)
        assert len(windowed.placement_sequence()) == 40


class TestSpillLifecycle:
    def test_pickle_roundtrip_replays_identically(self, trace_file):
        streamed = stream_address_trace(trace_file, chunk=64)
        copy = pickle.loads(pickle.dumps(streamed))
        assert copy.content_fingerprint == streamed.content_fingerprint
        assert np.array_equal(
            copy.materialize().sequence.codes,
            streamed.materialize().sequence.codes,
        )
        # The copy borrows the creator's spill and must never delete it.
        spill = streamed._spill_path
        del copy
        assert os.path.exists(spill)

    def test_spill_rebuilds_after_loss(self, trace_file):
        streamed = stream_address_trace(trace_file, chunk=64)
        before = streamed.materialize()
        os.remove(streamed._spill_path)
        after = streamed.materialize()  # transparently rebuilt
        assert np.array_equal(
            before.sequence.codes, after.sequence.codes
        )

    def test_changed_file_fails_fingerprint_on_rebuild(self, trace_file):
        streamed = stream_address_trace(trace_file, chunk=64)
        os.remove(streamed._spill_path)
        write_trace_file(trace_file, seed=99)
        with pytest.raises(TraceError, match="content changed"):
            list(streamed.chunks())

    def test_spill_removed_with_the_trace(self, trace_file):
        streamed = stream_address_trace(trace_file, chunk=64)
        spill = streamed._spill_path
        assert os.path.exists(spill)
        streamed._finalizer()
        assert not os.path.exists(spill)


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.trc"
        path.write_text("# nothing\n")
        with pytest.raises(TraceFormatError, match="no accesses"):
            stream_address_trace(path, chunk=8)

    def test_everything_filtered_rejected(self, tmp_path):
        path = tmp_path / "f.trc"
        path.write_text("0x10\n0x20\n0x30\n")
        with pytest.raises(TraceError, match="min_count"):
            stream_address_trace(path, chunk=8, min_count=2)

    @pytest.mark.parametrize("kwargs", [
        {"chunk": 0},
        {"chunk": 8, "word_bytes": 0},
        {"chunk": 8, "min_count": 0},
        {"chunk": 8, "max_vars": 0},
        {"chunk": 8, "limit": 0},
        {"chunk": 8, "window": 0},
    ])
    def test_bad_parameters_rejected(self, trace_file, kwargs):
        with pytest.raises(TraceError):
            stream_address_trace(trace_file, **kwargs)


def round_robin_placement(variables, num_dbcs):
    lists = [[] for _ in range(num_dbcs)]
    for code, name in enumerate(variables):
        lists[code % num_dbcs].append(name)
    return Placement([tuple(lst) for lst in lists])


class TestStreamedSimulation:
    """Replaying a streamed trace == simulating its materialized twin."""

    @pytest.mark.parametrize("backend", ["reference", "numpy"])
    @pytest.mark.parametrize("ports", [1, 2, 4, 8])
    @pytest.mark.parametrize("chunk", [1, 7, 128, 10_000])
    def test_report_bit_identical(self, trace_file, backend, ports, chunk):
        streamed = stream_address_trace(trace_file, chunk=chunk)
        config = RTMConfig(dbcs=4, tracks_per_dbc=1, domains_per_track=64,
                           ports_per_track=ports)
        placement = round_robin_placement(streamed.variables, config.dbcs)
        mono = simulate(streamed.materialize(), placement, config,
                        backend=backend)
        stream = simulate(streamed, placement, config, backend=backend)
        assert stream == mono  # every counter and every derived float

    @pytest.mark.parametrize("cold", [False, True])
    def test_warm_and_cold_start(self, trace_file, cold):
        streamed = stream_address_trace(trace_file, chunk=37)
        config = RTMConfig(dbcs=2, tracks_per_dbc=1, domains_per_track=64)
        placement = round_robin_placement(streamed.variables, config.dbcs)
        mono = simulate(streamed.materialize(), placement, config,
                        warm_start=not cold)
        stream = simulate(streamed, placement, config, warm_start=not cold)
        assert stream == mono

    def test_unplaced_variable_rejected_up_front(self, trace_file):
        from repro.errors import SimulationError
        from repro.rtm.controller import RTMController

        streamed = stream_address_trace(trace_file, chunk=37)
        config = RTMConfig(dbcs=2, tracks_per_dbc=1, domains_per_track=64)
        partial = Placement([tuple(streamed.variables[:-1]), ()])
        controller = RTMController(config, partial)
        with pytest.raises(SimulationError, match="has no location"):
            controller.execute(streamed)

    def test_controller_state_carries_across_streams(self, trace_file):
        """Chained execute() calls behave the same in both residencies."""
        from repro.rtm.controller import RTMController

        streamed = stream_address_trace(trace_file, chunk=64)
        mono = streamed.materialize()
        config = RTMConfig(dbcs=2, tracks_per_dbc=1, domains_per_track=64)
        placement = round_robin_placement(streamed.variables, config.dbcs)
        a = RTMController(config, placement)
        first_m, second_m = a.execute(mono), a.execute(mono)
        b = RTMController(config, placement)
        first_s, second_s = b.execute(streamed), b.execute(streamed)
        assert (first_s, second_s) == (first_m, second_m)

    def test_streaming_constructor_validates_directly(self, trace_file):
        trace = StreamingTrace(
            str(trace_file), chunk=16, word_bytes=8, max_vars=None,
            min_count=1, limit=None, name="direct",
        )
        assert trace.name == "direct"
        assert trace.num_chunks == -(-len(trace) // 16)
