"""Shared hypothesis strategies for the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.trace.sequence import AccessSequence

#: Small variable alphabet keeps shrinking pleasant.
_VAR_POOL = [f"v{i}" for i in range(12)]


@st.composite
def access_sequences(
    draw,
    max_vars: int = 12,
    min_length: int = 0,
    max_length: int = 60,
    allow_unaccessed: bool = True,
) -> AccessSequence:
    """A random access sequence over a small declared universe."""
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    variables = _VAR_POOL[:num_vars]
    length = draw(st.integers(min_value=min_length, max_value=max_length))
    codes = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_vars - 1),
            min_size=length, max_size=length,
        )
    )
    if not allow_unaccessed and num_vars > 0:
        # force every variable to appear at least once
        codes = list(range(num_vars)) + codes
    accesses = [variables[c] for c in codes]
    return AccessSequence(accesses, variables=variables)


@st.composite
def sequences_with_geometry(
    draw,
    max_vars: int = 10,
    max_length: int = 50,
):
    """(sequence, num_dbcs, capacity) with guaranteed feasibility."""
    seq = draw(access_sequences(max_vars=max_vars, max_length=max_length))
    num_dbcs = draw(st.integers(min_value=1, max_value=6))
    min_capacity = -(-seq.num_variables // num_dbcs)  # ceil division
    capacity = draw(st.integers(min_value=min_capacity,
                                max_value=max(min_capacity, 16)))
    return seq, num_dbcs, capacity
