"""Property-based tests for the lower bounds and intra-heuristic quality."""

from hypothesis import given, settings

from repro.core.bounds import (
    degree_lower_bound,
    edge_lower_bound,
    intra_lower_bound,
)
from repro.core.cost import shift_cost
from repro.core.intra import (
    chen_order,
    ofu_order,
    optimal_intra_cost,
    shifts_reduce_order,
    tsp_order,
)
from repro.core.placement import Placement

from strategies import access_sequences


@given(seq=access_sequences(max_vars=8, max_length=40))
@settings(max_examples=80, deadline=None)
def test_degree_bound_dominates_edge_bound(seq):
    variables = list(seq.variables)
    assert degree_lower_bound(seq, variables) >= edge_lower_bound(seq, variables)


@given(seq=access_sequences(max_vars=8, max_length=40))
@settings(max_examples=60, deadline=None)
def test_bounds_never_exceed_optimum(seq):
    variables = list(seq.variables)
    optimum = optimal_intra_cost(seq, variables)
    assert intra_lower_bound(seq, variables) <= optimum


@given(seq=access_sequences(max_vars=8, max_length=40))
@settings(max_examples=60, deadline=None)
def test_heuristics_between_optimum_and_worst(seq):
    variables = list(seq.variables)
    optimum = optimal_intra_cost(seq, variables)
    for heuristic in (ofu_order, chen_order, shifts_reduce_order, tsp_order):
        order = heuristic(seq, variables)
        cost = shift_cost(
            seq.restricted_to(variables) if len(variables) > 0 else seq,
            Placement([order]),
        )
        assert cost >= optimum


@given(seq=access_sequences(max_vars=10, max_length=50))
@settings(max_examples=80, deadline=None)
def test_bound_is_zero_only_without_distinct_transitions(seq):
    variables = list(seq.variables)
    lb = intra_lower_bound(seq, variables)
    codes = seq.codes
    has_distinct_transition = any(
        codes[i] != codes[i + 1] for i in range(len(codes) - 1)
    )
    if not has_distinct_transition:
        assert lb == 0
    else:
        assert lb >= 1
