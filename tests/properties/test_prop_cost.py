"""Property-based tests for the analytic cost model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import per_dbc_shift_costs, shift_cost
from repro.core.inter.random_inter import random_partition
from repro.core.placement import Placement

from strategies import access_sequences, sequences_with_geometry


@given(data=sequences_with_geometry(), seed=st.integers(0, 2**16))
@settings(max_examples=120, deadline=None)
def test_cost_nonnegative_and_bounded(data, seed):
    """0 <= cost <= (|S|-1) * (max DBC fill - 1)."""
    seq, q, cap = data
    placement = Placement(random_partition(seq, q, cap, seed))
    cost = shift_cost(seq, placement)
    assert cost >= 0
    max_fill = max((len(d) for d in placement.dbc_lists()), default=1)
    assert cost <= max(len(seq) - 1, 0) * max(max_fill - 1, 0)


@given(data=sequences_with_geometry(), seed=st.integers(0, 2**16))
@settings(max_examples=120, deadline=None)
def test_total_is_sum_of_per_dbc(data, seed):
    seq, q, cap = data
    placement = Placement(random_partition(seq, q, cap, seed))
    assert shift_cost(seq, placement) == sum(per_dbc_shift_costs(seq, placement))


@given(data=sequences_with_geometry(), seed=st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_dbc_permutation_invariance(data, seed):
    """Shuffling whole DBCs (inter order) never changes the cost."""
    seq, q, cap = data
    lists = random_partition(seq, q, cap, seed)
    base = shift_cost(seq, Placement(lists))
    assert shift_cost(seq, Placement(list(reversed(lists)))) == base


@given(data=sequences_with_geometry(), seed=st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_intra_reversal_invariance(data, seed):
    """Reversing the layout within every DBC preserves all distances."""
    seq, q, cap = data
    lists = random_partition(seq, q, cap, seed)
    base = shift_cost(seq, Placement(lists))
    reversed_lists = [list(reversed(d)) for d in lists]
    assert shift_cost(seq, Placement(reversed_lists)) == base


@given(data=sequences_with_geometry(), seed=st.integers(0, 2**16))
@settings(max_examples=80, deadline=None)
def test_isolating_a_variable_never_increases_cost(data, seed):
    """Moving one variable into a fresh DBC can only shed shifts.

    Distances on a line obey the triangle inequality, so stitching the
    remaining subsequence together never costs more than the detour did.
    """
    seq, q, cap = data
    lists = random_partition(seq, q, cap, seed)
    placement = Placement(lists)
    before = shift_cost(seq, placement)
    donor = next((i for i, d in enumerate(lists) if len(d) >= 2), None)
    if donor is None:
        return
    moved = lists[donor][0]
    new_lists = [
        [v for v in d if v != moved] for d in lists
    ] + [[moved]]
    after = shift_cost(seq, Placement(new_lists))
    assert after <= before


@given(seq=access_sequences(max_vars=6, max_length=40),
       ports=st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_multi_port_never_worse_than_single(seq, ports):
    placement = Placement([list(seq.variables)])
    domains = max(seq.num_variables, ports)
    multi = shift_cost(seq, placement, ports=ports, domains=domains)
    single = shift_cost(seq, placement, ports=1)
    assert multi <= single


@given(seq=access_sequences(max_length=40))
@settings(max_examples=80, deadline=None)
def test_duplicating_sequence_at_most_doubles_plus_link(seq):
    """Cost is subadditive over concatenation (one linking hop at most...
    bounded by the max distance within a DBC)."""
    placement = Placement([list(seq.variables)])
    once = shift_cost(seq, placement)
    from repro.trace.sequence import AccessSequence
    doubled = AccessSequence(
        list(seq.accesses) + list(seq.accesses), variables=seq.variables
    )
    twice = shift_cost(doubled, placement)
    assert twice <= 2 * once + max(seq.num_variables - 1, 0)
