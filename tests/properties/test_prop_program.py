"""Property-based tests for sequence fusion and whole-program placement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import shift_cost
from repro.core.program import evaluate_program, fuse_sequences, place_program
from repro.trace.liveness import Liveness

from strategies import access_sequences


@st.composite
def sequence_bags(draw, max_sequences: int = 4):
    count = draw(st.integers(min_value=1, max_value=max_sequences))
    return [
        draw(access_sequences(max_vars=6, min_length=1, max_length=25))
        for _ in range(count)
    ]


@given(bag=sequence_bags())
@settings(max_examples=80, deadline=None)
def test_fusion_preserves_length_and_universe(bag):
    fused = fuse_sequences(bag)
    assert len(fused) == sum(len(s) for s in bag)
    assert set(fused.variables) == {v for s in bag for v in s.variables}


@given(bag=sequence_bags())
@settings(max_examples=60, deadline=None)
def test_fusion_preserves_per_sequence_order(bag):
    fused = fuse_sequences(bag)
    flattened = [a for s in bag for a in s.accesses]
    assert list(fused.accesses) == flattened


@given(bag=sequence_bags())
@settings(max_examples=50, deadline=None)
def test_program_placement_is_valid_and_scored(bag):
    union = {v for s in bag for v in s.variables}
    capacity = max(4, len(union))
    result = place_program(bag, 2, capacity, policy="DMA-OFU")
    costs = evaluate_program(result.placement, bag)
    assert len(costs) == len(bag)
    assert result.total_cost == sum(costs.values())
    for seq in bag:
        assert shift_cost(seq, result.placement) >= 0


@given(seq_a=access_sequences(max_vars=4, min_length=1, max_length=20),
       seq_b=access_sequences(max_vars=4, min_length=1, max_length=20))
@settings(max_examples=60, deadline=None)
def test_fused_liveness_spans_components(seq_a, seq_b):
    """A variable used in both halves must span the fusion boundary."""
    fused = fuse_sequences([seq_a, seq_b])
    live = Liveness(fused)
    shared = set(seq_a.variables) & set(seq_b.variables)
    for v in shared:
        in_a = v in set(seq_a.accesses)
        in_b = v in set(seq_b.accesses)
        if in_a and in_b:
            assert live.first(v) <= len(seq_a)
            assert live.last(v) > len(seq_a)
