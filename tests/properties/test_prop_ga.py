"""Property-based tests for the GA's genetic operators.

Sec. III-C claims the operators keep individuals valid and can reach any
assignment; validity is exactly checkable, so hypothesis hammers it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ga import GAConfig, GeneticPlacer

from strategies import sequences_with_geometry


def _placer(seq, q, cap, seed):
    cfg = GAConfig(mu=4, lam=4, generations=1)
    return GeneticPlacer(seq, q, cap, cfg, rng=seed)


@given(data=sequences_with_geometry(), seed=st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_crossover_preserves_validity(data, seed):
    seq, q, cap = data
    placer = _placer(seq, q, cap, seed)
    a = placer.random_individual()
    b = placer.random_individual()
    for child in placer.crossover(a, b):
        placer.validate_individual(child)


@given(data=sequences_with_geometry(), seed=st.integers(0, 2**16),
       rounds=st.integers(1, 12))
@settings(max_examples=100, deadline=None)
def test_mutation_chain_preserves_validity(data, seed, rounds):
    seq, q, cap = data
    placer = _placer(seq, q, cap, seed)
    ind = placer.random_individual()
    for _ in range(rounds):
        ind = placer.mutate(ind)
        placer.validate_individual(ind)


@given(data=sequences_with_geometry(), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_fitness_matches_placement_cost(data, seed):
    from repro.core.cost import shift_cost
    from repro.core.placement import Placement
    seq, q, cap = data
    placer = _placer(seq, q, cap, seed)
    ind = placer.random_individual()
    names = [[seq.variables[v] for v in dbc] for dbc in ind]
    assert placer.fitness(ind) == shift_cost(seq, Placement(names))


@given(data=sequences_with_geometry(), seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_short_run_returns_valid_best(data, seed):
    seq, q, cap = data
    result = _placer(seq, q, cap, seed).run()
    result.placement.validate_for(seq, num_dbcs=q, capacity=cap)
    assert result.cost >= 0
