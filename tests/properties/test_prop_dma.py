"""Property-based tests for Algorithm 1 and the other distributors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inter.afd import afd_partition
from repro.core.inter.dma import dma_partition, dma_split
from repro.core.inter.multiset import extract_disjoint_sets, multiset_dma_partition
from repro.trace.liveness import Liveness

from strategies import access_sequences, sequences_with_geometry


@given(seq=access_sequences())
@settings(max_examples=150, deadline=None)
def test_dma_split_partitions_universe(seq):
    split = dma_split(seq)
    assert sorted(split.vdj + split.vndj) == sorted(seq.variables)


@given(seq=access_sequences())
@settings(max_examples=150, deadline=None)
def test_vdj_pairwise_disjoint(seq):
    """The invariant that makes the disjoint DBC cheap (Sec. III-B)."""
    split = dma_split(seq)
    live = Liveness(seq)
    assert live.pairwise_disjoint(list(split.vdj))


@given(seq=access_sequences())
@settings(max_examples=100, deadline=None)
def test_vdj_ordered_by_first_occurrence(seq):
    split = dma_split(seq)
    live = Liveness(seq)
    firsts = [live.first(v) for v in split.vdj]
    assert firsts == sorted(firsts)


@given(seq=access_sequences())
@settings(max_examples=100, deadline=None)
def test_vdj_frequency_sum_consistent(seq):
    split = dma_split(seq)
    assert split.disjoint_frequency_sum == sum(
        seq.frequency(v) for v in split.vdj
    )


@given(data=sequences_with_geometry(), guard=st.booleans())
@settings(max_examples=150, deadline=None)
def test_dma_partition_is_valid(data, guard):
    seq, q, cap = data
    dbcs, k = dma_partition(seq, q, cap, fairness_guard=guard)
    assert len(dbcs) == q
    assert 0 <= k <= q
    assert all(len(d) <= cap for d in dbcs)
    placed = sorted(v for d in dbcs for v in d)
    assert placed == sorted(seq.variables)


@given(data=sequences_with_geometry())
@settings(max_examples=100, deadline=None)
def test_afd_partition_is_valid(data):
    seq, q, cap = data
    dbcs = afd_partition(seq, q, cap)
    assert all(len(d) <= cap for d in dbcs)
    assert sorted(v for d in dbcs for v in d) == sorted(seq.variables)


@given(data=sequences_with_geometry())
@settings(max_examples=100, deadline=None)
def test_multiset_partition_is_valid(data):
    seq, q, cap = data
    dbcs, used = multiset_dma_partition(seq, q, cap)
    assert 0 <= used <= q
    assert all(len(d) <= cap for d in dbcs)
    assert sorted(v for d in dbcs for v in d) == sorted(seq.variables)


@given(seq=access_sequences())
@settings(max_examples=100, deadline=None)
def test_multiset_chains_disjoint_and_exclusive(seq):
    chains, leftovers = extract_disjoint_sets(seq)
    live = Liveness(seq)
    flat = []
    for chain in chains:
        assert len(chain) >= 2
        assert live.pairwise_disjoint(chain)
        flat.extend(chain)
    flat.extend(leftovers)
    assert sorted(flat) == sorted(seq.variables)
