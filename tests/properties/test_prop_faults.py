"""Property-based invariants of the fault-injection layer.

Two contracts the whole robustness axis rests on:

* ``fault_rate=0`` is *exactly* the clean path — a rate-0 model
  normalizes away and the result compares bit-equal to a request with
  no model attached, on every backend.
* Faults never touch the believed dynamics: charged shift counters and
  final believed offsets are identical to the clean replay, and the
  total drift magnitude is bounded by the number of injected faults
  (each fault moves exactly one DBC's drift by exactly one).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import FaultModel, ShiftRequest, available_backends, get_backend


def _request(dbc, slot, num_dbcs, domains, ports, fault):
    return ShiftRequest(
        dbc=np.asarray(dbc, dtype=np.int64),
        slot=np.asarray(slot, dtype=np.int64),
        num_dbcs=num_dbcs,
        domains=domains,
        ports=ports,
        fault=fault,
    )


def _backends():
    return [get_backend(name) for name in available_backends()]


@st.composite
def traces(draw, max_len=120, num_dbcs=4, domains=16):
    n = draw(st.integers(0, max_len))
    dbc = draw(st.lists(st.integers(0, num_dbcs - 1),
                        min_size=n, max_size=n))
    slot = draw(st.lists(st.integers(0, domains - 1),
                         min_size=n, max_size=n))
    return dbc, slot


@given(trace=traces(), seed=st.integers(0, 2**16), ports=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_rate_zero_equals_no_model_on_every_backend(trace, seed, ports):
    dbc, slot = trace
    zeroed = _request(dbc, slot, 4, 16, ports, FaultModel(rate=0.0, seed=seed))
    clean = _request(dbc, slot, 4, 16, ports, None)
    assert zeroed.fault is None
    for backend in _backends():
        result = backend.run(zeroed)
        assert result == backend.run(clean)
        assert result.faults is None


@given(
    trace=traces(),
    rate=st.floats(0.001, 1.0),
    seed=st.integers(0, 2**16),
    ports=st.integers(1, 3),
)
@settings(max_examples=60, deadline=None)
def test_faults_never_touch_believed_dynamics(trace, rate, seed, ports):
    dbc, slot = trace
    faulted = _request(dbc, slot, 4, 16, ports, FaultModel(rate=rate, seed=seed))
    clean = _request(dbc, slot, 4, 16, ports, None)
    backend = get_backend("numpy")
    f, c = backend.run(faulted), backend.run(clean)
    assert f.shifts == c.shifts
    assert f.per_dbc_shifts == c.per_dbc_shifts
    assert np.array_equal(f.final_offsets, c.final_offsets)
    assert np.array_equal(f.final_aligned, c.final_aligned)


@given(
    trace=traces(),
    rate=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_drift_bounded_by_injected_faults(trace, rate, seed):
    dbc, slot = trace
    request = _request(dbc, slot, 4, 16, 1, FaultModel(rate=rate, seed=seed))
    result = get_backend("numpy").run(request)
    if result.faults is None:  # rate 0 normalized away
        assert rate == 0.0
        return
    obs = result.faults
    assert int(np.abs(obs.final_drifts).sum()) <= obs.injected
    assert obs.misaligned <= len(dbc)
    assert obs.injected <= len(dbc)
