"""Property-based tests for the trace substrate (liveness, IO, graphs)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.graph import AccessGraph
from repro.trace.io import parse_traces, render_traces
from repro.trace.liveness import NEVER, Liveness
from repro.trace.trace import MemoryTrace

from strategies import access_sequences


@given(seq=access_sequences())
@settings(max_examples=150, deadline=None)
def test_liveness_bounds(seq):
    live = Liveness(seq)
    live.validate()
    for v in seq.variables:
        f, l = live.first(v), live.last(v)
        if live.is_accessed(v):
            assert 1 <= f <= l <= len(seq)
            assert seq[f - 1] == v and seq[l - 1] == v
        else:
            assert f == l == NEVER


@given(seq=access_sequences())
@settings(max_examples=100, deadline=None)
def test_disjointness_symmetric_and_irreflexive_for_live_vars(seq):
    live = Liveness(seq)
    for u in seq.variables:
        for v in seq.variables:
            assert live.disjoint(u, v) == live.disjoint(v, u)
        if live.frequency(u) > 0:
            assert not live.disjoint(u, u)


@given(seq=access_sequences())
@settings(max_examples=100, deadline=None)
def test_graph_weight_conservation(seq):
    g = AccessGraph(seq)
    assert g.total_weight() + g.self_transitions == max(len(seq) - 1, 0)


@given(seq=access_sequences())
@settings(max_examples=100, deadline=None)
def test_graph_degree_is_sum_of_incident_weights(seq):
    g = AccessGraph(seq)
    for v in seq.variables:
        assert g.weighted_degree(v) == sum(g.neighbors(v).values())


@given(seq=access_sequences(min_length=1), ratio=st.floats(0.0, 1.0))
@settings(max_examples=80, deadline=None)
def test_io_roundtrip(seq, ratio):
    trace = MemoryTrace.with_write_ratio(seq, ratio, rng=0)
    (back,) = parse_traces(render_traces([trace]))
    assert back == trace


@given(seq=access_sequences(min_length=1))
@settings(max_examples=80, deadline=None)
def test_restriction_preserves_access_order(seq):
    subset = list(seq.variables)[: max(1, seq.num_variables // 2)]
    local = seq.restricted_to(subset)
    expected = [a for a in seq.accesses if a in set(subset)]
    assert list(local.accesses) == expected
