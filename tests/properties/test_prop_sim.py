"""Property-based agreement between the simulator and the analytic model.

The heuristics optimize the analytic cost; the simulator measures the
device. If the two ever disagree on shift counts the evaluation is
meaningless, so this is the library's most load-bearing invariant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import shift_cost
from repro.core.inter.random_inter import random_partition
from repro.core.placement import Placement
from repro.rtm.geometry import RTMConfig
from repro.rtm.sim import simulate
from repro.rtm.timing import destiny_params
from repro.trace.trace import MemoryTrace

from strategies import access_sequences


@given(
    seq=access_sequences(max_vars=8, min_length=1, max_length=50),
    q=st.integers(1, 4),
    seed=st.integers(0, 2**16),
    ports=st.integers(1, 3),
)
@settings(max_examples=100, deadline=None)
def test_simulator_matches_analytic_model(seq, q, seed, ports):
    domains = 16
    config = RTMConfig(dbcs=q, domains_per_track=domains,
                       ports_per_track=ports)
    lists = random_partition(seq, q, domains, seed)
    placement = Placement(lists)
    trace = MemoryTrace(seq)
    report = simulate(trace, placement, config, params=destiny_params(q))
    analytic = shift_cost(seq, placement, ports=ports, domains=domains)
    assert report.shifts == analytic


@given(
    seq=access_sequences(max_vars=8, min_length=1, max_length=40),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_cold_start_never_cheaper(seq, seed):
    config = RTMConfig(dbcs=2, domains_per_track=16)
    placement = Placement(random_partition(seq, 2, 16, seed))
    trace = MemoryTrace(seq)
    warm = simulate(trace, placement, config, params=destiny_params(2))
    cold = simulate(trace, placement, config, params=destiny_params(2),
                    warm_start=False)
    assert cold.shifts >= warm.shifts


@given(
    seq=access_sequences(max_vars=8, min_length=1, max_length=40),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_energy_accounting_consistent(seq, seed):
    config = RTMConfig(dbcs=2, domains_per_track=16)
    p = destiny_params(2)
    placement = Placement(random_partition(seq, 2, 16, seed))
    trace = MemoryTrace(seq)
    r = simulate(trace, placement, config, params=p)
    assert r.reads + r.writes == len(trace)
    assert abs(r.total_energy_pj - (
        r.leakage_energy_pj + r.rw_energy_pj + r.shift_energy_pj
    )) < 1e-9
    expected_runtime = (
        r.reads * p.read_latency_ns
        + r.writes * p.write_latency_ns
        + r.shifts * p.shift_latency_ns
    )
    assert abs(r.runtime_ns - expected_runtime) < 1e-9
