"""Every shipped example must run to completion (deliverable guard)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    required = {
        "quickstart",
        "dsp_kernel_placement",
        "design_space_exploration",
        "custom_policy",
        "trace_analysis_report",
        "online_vs_static",
        "program_layout",
        "tensor_scratchpad",
        "external_trace_ingestion",
        "streaming_replay",
    }
    assert required <= names, required - names
