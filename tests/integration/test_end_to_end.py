"""Integration tests: full flows across trace -> core -> rtm -> eval."""

import pytest

from repro.core.cost import shift_cost
from repro.core.policies import PAPER_POLICIES, get_policy
from repro.eval.profiles import EvalProfile
from repro.eval.runner import run_matrix, run_policy_on_program
from repro.rtm.geometry import iso_capacity_sweep
from repro.rtm.sim import simulate
from repro.trace.generators.offsetstone import load_benchmark
from repro.trace.io import parse_traces, render_traces

MINI = EvalProfile(
    name="mini",
    suite_scale=0.12,
    ga_options={"mu": 6, "lam": 6, "generations": 3},
    rw_iterations=15,
    benchmarks=("dct", "gzip"),
)


class TestSuiteThroughSimulator:
    """Every generated program x every config x every paper policy."""

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    def test_policy_handles_whole_mini_suite(self, policy_name):
        from repro.eval.runner import build_policies
        policy = build_policies([policy_name], MINI)[0]
        for name in MINI.benchmarks:
            program = load_benchmark(name, scale=MINI.suite_scale,
                                     seed=MINI.seed)
            for config in iso_capacity_sweep():
                cell = run_policy_on_program(program, policy, config, rng=3)
                assert cell.shifts == cell.report.shifts
                assert cell.report.accesses == program.total_accesses


class TestTraceFileToSimulation:
    """Text trace file -> parse -> place -> simulate, like the CLI does."""

    def test_roundtripped_trace_places_identically(self, tmp_path):
        program = load_benchmark("dct", scale=0.12, seed=1)
        trace = program.traces[0]
        text = render_traces([trace])
        (back,) = parse_traces(text)
        config = iso_capacity_sweep()[1]  # 4 DBCs
        policy = get_policy("DMA-SR")
        p1 = policy.place(trace.sequence, config.dbcs, config.locations_per_dbc)
        p2 = policy.place(back.sequence, config.dbcs, config.locations_per_dbc)
        assert p1 == p2
        assert simulate(trace, p1, config).shifts == \
            simulate(back, p2, config).shifts


class TestCrossPolicyConsistency:
    def test_all_policies_agree_on_problem_shape(self, small_sequence):
        """Placements differ; variable coverage and capacity must not."""
        for name in ("AFD", "DMA", "AFD-OFU", "DMA-OFU", "DMA-Chen",
                     "DMA-SR", "DMA-TSP", "MDMA-SR"):
            placement = get_policy(name).place(small_sequence, 4, 64)
            placement.validate_for(small_sequence, num_dbcs=4, capacity=64)

    def test_matrix_and_direct_cells_agree(self):
        matrix = run_matrix(("AFD-OFU",), MINI,
                            configs=iso_capacity_sweep(dbc_counts=(4,)))
        program = load_benchmark("dct", scale=MINI.suite_scale, seed=MINI.seed)
        config = iso_capacity_sweep(dbc_counts=(4,))[0]
        direct = run_policy_on_program(
            program, get_policy("AFD-OFU"), config
        )
        assert matrix[("dct", "AFD-OFU", 4)].shifts == direct.shifts


class TestAnalyticModelIsTheFitness:
    """The quantity the optimizers minimize is what the device executes."""

    def test_ga_result_cost_matches_simulator(self, small_sequence):
        from repro.core.ga import GAConfig, GeneticPlacer
        from repro.trace.trace import MemoryTrace
        config = iso_capacity_sweep(dbc_counts=(4,))[0]
        ga = GeneticPlacer(
            small_sequence, 4, config.locations_per_dbc,
            GAConfig(mu=8, lam=8, generations=4), rng=5,
        )
        result = ga.run()
        report = simulate(MemoryTrace(small_sequence), result.placement, config)
        assert report.shifts == result.cost

    def test_better_analytic_cost_never_hurts_energy(self, small_sequence):
        from repro.trace.trace import MemoryTrace
        config = iso_capacity_sweep(dbc_counts=(4,))[0]
        cap = config.locations_per_dbc
        trace = MemoryTrace(small_sequence)
        afd = get_policy("AFD-OFU").place(small_sequence, 4, cap)
        dma = get_policy("DMA-SR").place(small_sequence, 4, cap)
        c_afd = shift_cost(small_sequence, afd)
        c_dma = shift_cost(small_sequence, dma)
        r_afd = simulate(trace, afd, config)
        r_dma = simulate(trace, dma, config)
        if c_dma < c_afd:
            assert r_dma.total_energy_pj < r_afd.total_energy_pj
            assert r_dma.runtime_ns < r_afd.runtime_ns
