"""Integration tests for the distributed queue service.

The PR's acceptance semantics end-to-end: a SIGKILLed worker forfeits
its claim through lease expiry and the retried cell lands bit-identical
to a cold single-process run; ``repro-serve`` plus real ``repro-worker``
subprocesses compute a matrix and stream its report out; a poisoned
recipe exhausts its bounded retries into quarantine without ever
stopping the worker loop.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.eval.profiles import EvalProfile
from repro.eval.runner import clear_cell_cache, last_matrix_stats, run_matrix
from repro.eval.service import compute_job, worker_loop
from repro.rtm.geometry import iso_capacity_sweep
from repro.store import ExperimentStore, QueueJob, WorkQueue

SRC = str(Path(__file__).resolve().parents[2] / "src")

TINY = EvalProfile(
    name="tiny",
    suite_scale=0.12,
    ga_options={"mu": 6, "lam": 6, "generations": 3},
    rw_iterations=20,
    benchmarks=("adpcm", "dct"),
)

CONFIGS = iso_capacity_sweep(dbc_counts=(2, 4))
POLICIES = ("DMA-SR", "GA")  # 2 benchmarks x 2 configs x 2 policies = 8


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


#: A claimer that grabs one cell, announces it, then hangs — the stand-in
#: for a worker that dies mid-computation (no heartbeat, no progress).
_HANG_AFTER_CLAIM = """
import sys, time
sys.path.insert(0, {src!r})
from repro.store import ExperimentStore, WorkQueue

store = ExperimentStore({store!r})
cells = WorkQueue(store).claim(1, "crashy", lease_s={lease})
assert cells, "nothing claimable"
print("CLAIMED", cells[0].key, flush=True)
time.sleep(600)  # SIGKILLed long before this returns
"""


class TestCrashSemantics:
    def test_sigkilled_worker_requeues_and_result_lands(self, tmp_path):
        """Kill a claim-holder mid-cell; lease expiry returns the cell,
        a healthy worker retries it, and the final matrix is
        bit-identical to a cold single-process run."""
        clear_cell_cache()
        path = str(tmp_path / "s.db")
        run_matrix(POLICIES, TINY, configs=CONFIGS, store=path, enqueue=True)
        assert last_matrix_stats().enqueued == 8

        lease_s = 1.0
        script = tmp_path / "crashy.py"
        script.write_text(_HANG_AFTER_CLAIM.format(
            src=SRC, store=path, lease=lease_s,
        ))
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, text=True, env=_subprocess_env(),
        )
        try:
            line = proc.stdout.readline().split()
            assert line[0] == "CLAIMED"
            claimed_key = line[1]
        finally:
            proc.kill()  # SIGKILL: no cleanup, no release, no heartbeat
            proc.wait(timeout=30)

        with ExperimentStore(path) as store:
            queue = WorkQueue(store)
            [row] = queue.jobs(status="claimed")
            assert row["key"] == claimed_key and row["owner"] == "crashy"
            # The lease is still live: nobody can steal the cell yet.
            assert all(c.key != claimed_key for c in queue.claim(8, "probe"))
            assert queue.release("probe") == 7

        time.sleep(lease_s + 0.2)  # let the dead worker's lease lapse

        outcome = worker_loop(path, drain=True, batch=4, lease_s=30)
        assert (outcome["computed"], outcome["failed"]) == (8, 0)
        with ExperimentStore(path) as store:
            queue = WorkQueue(store)
            assert queue.counts() == {"open": 0, "claimed": 0, "done": 8,
                                      "failed": 0}
            # The stolen cell records both claims' attempts.
            [stolen] = [r for r in queue.jobs() if r["key"] == claimed_key]
            assert stolen["attempts"] == 2

        clear_cell_cache()
        via_queue = run_matrix(POLICIES, TINY, configs=CONFIGS, store=path,
                               offline=True)
        stats = last_matrix_stats()
        assert (stats.hits_store, stats.hits_queue) == (8, 8)
        clear_cell_cache()
        cold = run_matrix(POLICIES, TINY, configs=CONFIGS, workers=1)
        assert via_queue == cold  # dataclass eq: every float bit-exact


class TestBoundedRetry:
    def test_poisoned_recipe_quarantines_without_stopping_worker(
        self, tmp_path
    ):
        clear_cell_cache()
        path = str(tmp_path / "s.db")
        run_matrix(("DMA-SR",), TINY, configs=CONFIGS, store=path,
                   enqueue=True)
        with ExperimentStore(path) as store:
            WorkQueue(store).submit([QueueJob(
                key="poison", benchmark="bad", policy="NO-SUCH-POLICY",
                dbcs=2,
                job={"workload": "adpcm",
                     "context": {"scale": 0.12, "seed": 7,
                                 "write_ratio": 0.25},
                     "policy": ["NO-SUCH-POLICY", {}],
                     "config": {"dbcs": 2, "tracks_per_dbc": 32,
                                "domains_per_track": 512,
                                "ports_per_track": 1, "banks": 1,
                                "subarrays": 1},
                     "seed": 1, "backend": None, "fault": None,
                     "scrub_interval": None},
                max_attempts=2,
            )])

        outcome = worker_loop(path, drain=True, batch=4, lease_s=30)
        assert outcome["computed"] == 4
        assert outcome["failed"] == 2  # both retry attempts, then give up
        with ExperimentStore(path) as store:
            queue = WorkQueue(store)
            counts = queue.counts()
            assert counts["done"] == 4 and counts["failed"] == 1
            log = queue.errors(key="poison")
            assert len(log) == 2
            assert all("NO-SUCH-POLICY" in e["error"] or "policy"
                       in e["error"].lower() for e in log)

    def test_key_drift_is_refused(self):
        job = {"workload": "synthetic:uniform,vars=8,length=64",
               "context": {"scale": 1.0, "seed": 0, "write_ratio": 0.25},
               "policy": ["DMA-SR", {}],
               "config": {"dbcs": 2, "tracks_per_dbc": 32,
                          "domains_per_track": 512, "ports_per_track": 1,
                          "banks": 1, "subarrays": 1},
               "seed": 1, "backend": None, "fault": None,
               "scrub_interval": None}
        with pytest.raises(ExperimentError, match="drift"):
            compute_job(job, expected_key="0" * 64)


class TestServeWorkersEndToEnd:
    def test_serve_plus_two_workers_produce_report(self, tmp_path):
        """The CI leg's shape in miniature: one dispatcher, two real
        worker processes, report written while the parent only watches."""
        env = _subprocess_env()
        env["REPRO_WORKLOADS"] = ("synthetic:uniform,vars=10,length=120 "
                                  "synthetic:zipf,vars=12,length=160")
        store = str(tmp_path / "s.db")
        report_dir = tmp_path / "reports"

        serve = subprocess.Popen(
            [sys.executable, "-m", "repro.eval.service", "serve", "fig4",
             "--store", store, "--interval", "0.5",
             "--report-dir", str(report_dir), "--timeout", "240", "-q"],
            env=env,
        )
        workers = []
        try:
            # Wait for the dispatcher to populate the queue before the
            # drain-mode workers start, or they exit on an empty queue.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    with ExperimentStore(store) as s:
                        if WorkQueue(s).counts()["open"] > 0:
                            break
                except Exception:
                    pass
                time.sleep(0.25)
            else:
                pytest.fail("serve never populated the queue")

            workers = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro.eval.service", "worker",
                     "--store", store, "--drain", "--batch", "4",
                     "--lease", "15", "--poll", "0.2", "-q"],
                    env=env,
                )
                for _ in range(2)
            ]
            for worker in workers:
                assert worker.wait(timeout=240) == 0
            assert serve.wait(timeout=60) == 0
        finally:
            for proc in [serve, *workers]:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)

        report = json.loads((report_dir / "fig4.json").read_text())
        assert report["experiment_id"] == "fig4"
        assert report["rows"]
        with ExperimentStore(store) as s:
            counts = WorkQueue(s).counts()
            assert counts["failed"] == 0 and counts["open"] == 0
            assert counts["done"] == len(s)
