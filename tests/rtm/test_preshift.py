"""Unit tests for the proactive-alignment controller."""

import pytest

from repro.core.placement import Placement
from repro.errors import PlacementError, SimulationError
from repro.rtm.geometry import RTMConfig
from repro.rtm.preshift import PreshiftController, PreshiftPolicy
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace


@pytest.fixture
def config():
    return RTMConfig(dbcs=1, domains_per_track=16)


def execute(config, placement, accesses, policy):
    seq = AccessSequence(accesses, variables=None)
    ctrl = PreshiftController(config, placement, policy=policy)
    return ctrl.execute(MemoryTrace(seq))


class TestPolicies:
    def test_none_policy_has_no_idle_shifts(self, config):
        placement = Placement([("a", "b", "c", "d")])
        report = execute(config, placement, list("adadad"), PreshiftPolicy.NONE)
        assert report.idle_shifts == 0
        assert report.demand_shifts > 0

    def test_stride_policy_hides_streaming_shifts(self, config):
        """A strided sweep is perfectly predictable: demand shifts vanish."""
        placement = Placement([tuple("abcdefgh")])
        sweep = list("abcdefgh")
        none = execute(config, placement, sweep, PreshiftPolicy.NONE)
        stride = execute(config, placement, sweep, PreshiftPolicy.STRIDE)
        assert stride.demand_shifts < none.demand_shifts
        assert stride.latency_ns < none.latency_ns

    def test_idle_shifts_cost_energy(self, config):
        placement = Placement([tuple("abcdefgh")])
        sweep = list("abcdefgh")
        none = execute(config, placement, sweep, PreshiftPolicy.NONE)
        stride = execute(config, placement, sweep, PreshiftPolicy.STRIDE)
        # total shift work (energy) can exceed the demand-only baseline
        assert stride.shift_energy_pj >= none.shift_energy_pj * 0.5
        assert stride.total_shifts >= none.demand_shifts

    def test_centre_policy_bounds_worst_case(self, config):
        placement = Placement([tuple("abcdefgh")])
        # ping-pong between the two ends: centring halves each demand hop
        pattern = list("ah" * 10)
        none = execute(config, placement, pattern, PreshiftPolicy.NONE)
        centre = execute(config, placement, pattern, PreshiftPolicy.CENTRE)
        assert centre.demand_shifts < none.demand_shifts

    def test_policy_accepts_strings(self, config):
        placement = Placement([("a", "b")])
        ctrl = PreshiftController(config, placement, policy="centre")
        assert ctrl.policy is PreshiftPolicy.CENTRE


class TestValidation:
    def test_capacity_enforced(self):
        tiny = RTMConfig(dbcs=1, domains_per_track=2)
        with pytest.raises(PlacementError):
            PreshiftController(tiny, Placement([("a", "b", "c")]))

    def test_unknown_variable(self, config):
        ctrl = PreshiftController(config, Placement([("a",)]))
        seq = AccessSequence(["z"])
        with pytest.raises(SimulationError):
            ctrl.execute(MemoryTrace(seq))

    def test_too_many_dbcs(self, config):
        with pytest.raises(PlacementError):
            PreshiftController(config, Placement([("a",), ("b",)]))


class TestReport:
    def test_total_shifts_sum(self, config):
        placement = Placement([tuple("abcd")])
        report = execute(config, placement, list("abcdabcd"),
                         PreshiftPolicy.STRIDE)
        assert report.total_shifts == report.demand_shifts + report.idle_shifts

    def test_accesses_counted(self, config):
        placement = Placement([tuple("abcd")])
        report = execute(config, placement, list("abcd"), PreshiftPolicy.NONE)
        assert report.accesses == 4
