"""Unit tests for the Table-I-calibrated parameter model."""

import pytest

from repro.errors import GeometryError
from repro.rtm.geometry import RTMConfig
from repro.rtm.timing import destiny_params, params_for, table1_rows

from tests.paperdata import TABLE1

FIELDS = (
    "leakage_mw", "write_energy_pj", "read_energy_pj", "shift_energy_pj",
    "read_latency_ns", "write_latency_ns", "shift_latency_ns", "area_mm2",
)


class TestAnchors:
    @pytest.mark.parametrize("dbcs", sorted(TABLE1))
    def test_table1_reproduced_exactly(self, dbcs):
        p = destiny_params(dbcs)
        for field, expected in zip(FIELDS, TABLE1[dbcs]):
            assert getattr(p, field) == pytest.approx(expected), field

    def test_domains_per_dbc_column(self):
        assert [destiny_params(q).domains_per_dbc for q in (2, 4, 8, 16)] == \
            [512, 256, 128, 64]

    def test_validate_accepts_anchors(self):
        for q in TABLE1:
            destiny_params(q).validate()


class TestInterpolation:
    def test_interpolated_within_anchor_bounds(self):
        p = destiny_params(6)
        lo, hi = destiny_params(4), destiny_params(8)
        for field in FIELDS:
            a, b = sorted((getattr(lo, field), getattr(hi, field)))
            assert a <= getattr(p, field) <= b, field

    def test_monotone_leakage(self):
        values = [destiny_params(q).leakage_mw for q in (2, 3, 4, 6, 8, 12, 16)]
        assert values == sorted(values)

    def test_monotone_area(self):
        values = [destiny_params(q).area_mm2 for q in (2, 3, 4, 6, 8, 12, 16)]
        assert values == sorted(values)

    def test_extrapolation_beyond_16(self):
        p = destiny_params(32)
        assert p.leakage_mw > destiny_params(16).leakage_mw
        p.validate()

    def test_extrapolation_below_2(self):
        p = destiny_params(1)
        assert p.leakage_mw < destiny_params(2).leakage_mw

    def test_interpolated_domains(self):
        assert destiny_params(4).domains_per_dbc == 256
        assert destiny_params(8).domains_per_dbc == 128


class TestValidation:
    def test_non_table_geometry_rejected(self):
        with pytest.raises(GeometryError):
            destiny_params(4, capacity_bytes=8192)
        with pytest.raises(GeometryError):
            destiny_params(4, tracks_per_dbc=16)

    def test_bad_dbcs_rejected(self):
        with pytest.raises(GeometryError):
            destiny_params(0)


class TestParamsFor:
    def test_table_geometry_exact(self):
        cfg = RTMConfig(dbcs=4, domains_per_track=256)
        assert params_for(cfg).leakage_mw == pytest.approx(4.33)

    def test_non_table_geometry_falls_back_by_dbc_count(self):
        cfg = RTMConfig(dbcs=4, domains_per_track=64)  # 1 KiB
        assert params_for(cfg).leakage_mw == pytest.approx(4.33)

    def test_strict_rejects_non_table_geometry(self):
        cfg = RTMConfig(dbcs=4, domains_per_track=64)
        with pytest.raises(GeometryError):
            params_for(cfg, strict=True)


class TestTable1Rows:
    def test_rows_cover_all_parameters(self):
        rows = table1_rows()
        labels = [label for label, _ in rows]
        assert "Leakage power [mW]" in labels
        assert "Area [mm2]" in labels
        assert len(rows) == 9

    def test_row_values_match_anchors(self):
        rows = dict(table1_rows())
        assert rows["Shift energy [pJ]"] == pytest.approx([2.18, 2.03, 1.97, 1.86])
        assert rows["Number of domains in a DBC"] == [512, 256, 128, 64]
