"""Unit tests for repro.rtm.geometry."""

import pytest

from repro.errors import GeometryError
from repro.rtm.geometry import RTMConfig, TABLE1_DBC_COUNTS, iso_capacity_sweep


class TestRTMConfig:
    def test_defaults(self):
        cfg = RTMConfig(dbcs=4)
        assert cfg.tracks_per_dbc == 32
        assert cfg.ports_per_track == 1

    def test_locations_per_dbc_is_domains(self):
        cfg = RTMConfig(dbcs=4, domains_per_track=256)
        assert cfg.locations_per_dbc == 256
        assert cfg.total_locations == 1024

    def test_capacity_bytes(self):
        cfg = RTMConfig(dbcs=2, tracks_per_dbc=32, domains_per_track=512)
        assert cfg.capacity_bytes == 4096

    def test_word_bytes(self):
        assert RTMConfig(dbcs=2, tracks_per_dbc=32).word_bytes == 4
        assert RTMConfig(dbcs=2, tracks_per_dbc=12).word_bytes == 0

    def test_max_shift_distance(self):
        assert RTMConfig(dbcs=2, domains_per_track=64).max_shift_distance == 63

    def test_with_ports(self):
        cfg = RTMConfig(dbcs=2).with_ports(4)
        assert cfg.ports_per_track == 4
        assert cfg.dbcs == 2

    def test_describe_mentions_geometry(self):
        text = RTMConfig(dbcs=8, domains_per_track=128).describe()
        assert "8 DBCs" in text and "128 domains" in text

    @pytest.mark.parametrize("field,value", [
        ("dbcs", 0), ("tracks_per_dbc", 0), ("domains_per_track", -1),
        ("ports_per_track", 0), ("banks", 0), ("subarrays", 0),
    ])
    def test_positive_int_validation(self, field, value):
        kwargs = {"dbcs": 2, field: value}
        with pytest.raises(GeometryError):
            RTMConfig(**kwargs)

    def test_more_ports_than_domains_rejected(self):
        with pytest.raises(GeometryError):
            RTMConfig(dbcs=2, domains_per_track=4, ports_per_track=5)

    def test_non_int_rejected(self):
        with pytest.raises(GeometryError):
            RTMConfig(dbcs=2.5)  # type: ignore[arg-type]


class TestIsoCapacitySweep:
    def test_table1_sweep(self):
        configs = iso_capacity_sweep()
        assert [c.dbcs for c in configs] == list(TABLE1_DBC_COUNTS)
        assert [c.domains_per_track for c in configs] == [512, 256, 128, 64]

    def test_sweep_preserves_capacity(self):
        for cfg in iso_capacity_sweep():
            assert cfg.capacity_bytes == 4096

    def test_custom_capacity(self):
        (cfg,) = iso_capacity_sweep(capacity_bytes=8192, dbc_counts=(4,))
        assert cfg.domains_per_track == 512

    def test_indivisible_capacity_rejected(self):
        with pytest.raises(GeometryError):
            iso_capacity_sweep(capacity_bytes=1000, dbc_counts=(3,))

    def test_too_small_capacity_rejected(self):
        with pytest.raises(GeometryError):
            iso_capacity_sweep(capacity_bytes=4, dbc_counts=(2,))

    def test_ports_forwarded(self):
        for cfg in iso_capacity_sweep(ports_per_track=2):
            assert cfg.ports_per_track == 2
