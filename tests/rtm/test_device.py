"""Unit tests for the per-DBC device state machine."""

import pytest

from repro.errors import SimulationError
from repro.rtm.device import DBCState
from repro.rtm.ports import PortPolicy


class TestWarmStart:
    def test_first_access_free(self):
        dbc = DBCState(64)
        assert dbc.access(40) == 0
        assert dbc.shifts == 0

    def test_second_access_costs_distance(self):
        dbc = DBCState(64)
        dbc.access(40)
        assert dbc.access(45) == 5
        assert dbc.shifts == 5

    def test_same_location_costs_nothing(self):
        dbc = DBCState(64)
        dbc.access(10)
        assert dbc.access(10) == 0


class TestColdStart:
    def test_first_access_charged_from_port(self):
        dbc = DBCState(64)
        cost = dbc.access(40, warm_start=False)
        assert cost == abs(40 - 32)  # single port at the track centre

    def test_cold_ge_warm_total(self):
        pattern = [3, 60, 3, 31, 31, 12]
        warm = DBCState(64)
        cold = DBCState(64)
        w = sum(warm.access(x) for x in pattern)
        c = sum(cold.access(x, warm_start=False) for x in pattern)
        assert c >= w


class TestMultiPort:
    def test_two_ports_halve_long_hops(self):
        one = DBCState(64, ports=1)
        two = DBCState(64, ports=2)
        pattern = [0, 63, 0, 63]
        c1 = sum(one.access(x) for x in pattern)
        c2 = sum(two.access(x) for x in pattern)
        assert c2 < c1

    def test_static_policy_single_port_equivalent(self):
        dbc = DBCState(64, ports=2)
        dbc.access(10, policy=PortPolicy.STATIC)
        cost = dbc.access(50, policy=PortPolicy.STATIC)
        assert cost == 40


class TestInvariants:
    def test_location_bounds_checked(self):
        dbc = DBCState(16)
        with pytest.raises(SimulationError):
            dbc.access(16)
        with pytest.raises(SimulationError):
            dbc.access(-1)

    def test_offset_stays_in_envelope(self):
        dbc = DBCState(32)
        for loc in (0, 31, 0, 31, 15, 16):
            dbc.access(loc)
            assert abs(dbc.offset) <= 31

    def test_counters(self):
        dbc = DBCState(64)
        for loc in (1, 2, 3):
            dbc.access(loc)
        assert dbc.accesses == 3
        assert dbc.shifts == 2

    def test_reset(self):
        dbc = DBCState(64)
        dbc.access(5)
        dbc.access(40)
        dbc.reset()
        assert dbc.shifts == 0
        assert dbc.accesses == 0
        assert not dbc.aligned
        assert dbc.access(63) == 0  # warm start applies again

    def test_max_excursion_tracked(self):
        dbc = DBCState(64)
        dbc.access(0)
        dbc.access(63)
        assert dbc.max_excursion >= 31
