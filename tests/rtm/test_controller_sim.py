"""Unit tests for the controller, simulator and reports."""

import pytest

from repro.core.placement import Placement
from repro.core.cost import shift_cost
from repro.errors import PlacementError, SimulationError
from repro.rtm.controller import RTMController
from repro.rtm.geometry import RTMConfig, iso_capacity_sweep
from repro.rtm.report import SimReport
from repro.rtm.sim import simulate, simulate_program
from repro.rtm.timing import destiny_params
from repro.trace.trace import MemoryTrace


@pytest.fixture
def config():
    return RTMConfig(dbcs=2, tracks_per_dbc=32, domains_per_track=512)


@pytest.fixture
def fig3_placement(fig3_sequence):
    return Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])


class TestController:
    def test_fig3_afd_costs_39_shifts(self, config, fig3_trace, fig3_placement):
        report = simulate(fig3_trace, fig3_placement, config)
        assert report.shifts == 39
        assert report.per_dbc_shifts == (24, 15)

    def test_location_mapping(self, config, fig3_placement):
        ctrl = RTMController(config, fig3_placement)
        assert ctrl.location_of("a") == (0, 0)
        assert ctrl.location_of("f") == (1, 3)
        with pytest.raises(SimulationError):
            ctrl.location_of("zz")

    def test_too_many_dbcs_rejected(self, config, fig3_sequence):
        placement = Placement([("a",), ("b",), ("c",)] +
                              [tuple()] * 0 + [("d", "e", "f", "g", "h", "i")])
        with pytest.raises(PlacementError):
            RTMController(config, placement)

    def test_overfull_dbc_rejected(self, fig3_sequence):
        tiny = RTMConfig(dbcs=2, domains_per_track=4)
        placement = Placement([tuple("abcde"), tuple("fghi")])
        with pytest.raises(PlacementError):
            RTMController(tiny, placement)

    def test_duplicate_variable_rejected(self, config):
        class FakePlacement:
            def dbc_lists(self):
                return [("a",), ("a",)]

        with pytest.raises(PlacementError):
            RTMController(config, FakePlacement())

    def test_reset_between_traces(self, config, fig3_trace, fig3_placement):
        ctrl = RTMController(config, fig3_placement)
        first = ctrl.execute(fig3_trace)
        ctrl.reset()
        second = ctrl.execute(fig3_trace)
        assert first.shifts == second.shifts


class TestSimulatorAgreement:
    @pytest.mark.parametrize("dbcs", [2, 4, 8, 16])
    def test_sim_matches_analytic_cost(self, dbcs, small_sequence):
        sweep = {c.dbcs: c for c in iso_capacity_sweep()}
        config = sweep[dbcs]
        from repro.core.policies import get_policy
        placement = get_policy("DMA-SR").place(
            small_sequence, dbcs, config.locations_per_dbc
        )
        trace = MemoryTrace(small_sequence)
        report = simulate(trace, placement, config)
        assert report.shifts == shift_cost(small_sequence, placement)

    def test_multiport_sim_matches_analytic(self, small_sequence):
        config = RTMConfig(dbcs=2, domains_per_track=64, ports_per_track=4)
        from repro.core.policies import get_policy
        placement = get_policy("DMA-SR").place(small_sequence, 2, 64)
        trace = MemoryTrace(small_sequence)
        report = simulate(trace, placement, config)
        assert report.shifts == shift_cost(
            small_sequence, placement, ports=4, domains=64
        )

    def test_cold_start_not_cheaper(self, config, fig3_trace, fig3_placement):
        warm = simulate(fig3_trace, fig3_placement, config)
        cold = simulate(fig3_trace, fig3_placement, config, warm_start=False)
        assert cold.shifts >= warm.shifts


class TestEnergyAccounting:
    def test_energy_components(self, config, fig3_trace, fig3_placement):
        p = destiny_params(2)
        report = simulate(fig3_trace, fig3_placement, config)
        assert report.read_energy_pj == pytest.approx(
            report.reads * p.read_energy_pj
        )
        assert report.write_energy_pj == pytest.approx(
            report.writes * p.write_energy_pj
        )
        assert report.shift_energy_pj == pytest.approx(39 * p.shift_energy_pj)
        assert report.leakage_energy_pj == pytest.approx(
            p.leakage_mw * report.runtime_ns
        )

    def test_runtime_composition(self, config, fig3_trace, fig3_placement):
        p = destiny_params(2)
        report = simulate(fig3_trace, fig3_placement, config)
        expected = (
            report.reads * p.read_latency_ns
            + report.writes * p.write_latency_ns
            + report.shifts * p.shift_latency_ns
        )
        assert report.runtime_ns == pytest.approx(expected)

    def test_total_energy_is_breakdown_sum(self, config, fig3_trace, fig3_placement):
        report = simulate(fig3_trace, fig3_placement, config)
        assert report.total_energy_pj == pytest.approx(
            sum(report.energy_breakdown().values())
        )

    def test_fewer_shifts_means_less_energy(self, config, fig3_trace, fig3_sequence):
        afd = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        dma = Placement([("b", "c", "d", "e", "h"), ("a", "g", "i", "f")])
        r_afd = simulate(fig3_trace, afd, config)
        r_dma = simulate(fig3_trace, dma, config)
        assert r_dma.shifts < r_afd.shifts
        assert r_dma.total_energy_pj < r_afd.total_energy_pj
        assert r_dma.runtime_ns < r_afd.runtime_ns


class TestSimReport:
    def test_addition(self, config, fig3_trace, fig3_placement):
        r = simulate(fig3_trace, fig3_placement, config)
        combined = r + r
        assert combined.shifts == 2 * r.shifts
        assert combined.accesses == 2 * r.accesses
        assert combined.total_energy_pj == pytest.approx(2 * r.total_energy_pj)
        assert combined.area_mm2 == r.area_mm2
        assert combined.per_dbc_shifts == (48, 30)

    def test_sum_builtin(self, config, fig3_trace, fig3_placement):
        r = simulate(fig3_trace, fig3_placement, config)
        total = sum([r, r, r])
        assert total.shifts == 3 * r.shifts

    def test_mismatched_dbcs_rejected(self):
        with pytest.raises(ValueError):
            SimReport(dbcs=2) + SimReport(dbcs=4)

    def test_shifts_per_access(self):
        r = SimReport(dbcs=2, accesses=10, shifts=25)
        assert r.shifts_per_access == 2.5
        assert SimReport(dbcs=2).shifts_per_access == 0.0

    def test_summary_text(self, config, fig3_trace, fig3_placement):
        r = simulate(fig3_trace, fig3_placement, config)
        assert "39 shifts" in r.summary()

    def test_simulate_program_sums(self, config, fig3_trace, fig3_placement):
        single = simulate(fig3_trace, fig3_placement, config)
        double = simulate_program(
            [(fig3_trace, fig3_placement), (fig3_trace, fig3_placement)], config
        )
        assert double.shifts == 2 * single.shifts

    def test_simulate_program_empty_rejected(self, config):
        with pytest.raises(ValueError):
            simulate_program([], config)


class TestFaultedSimulation:
    @pytest.fixture
    def fault(self):
        from repro.engine import FaultModel

        return FaultModel(rate=0.2, seed=3)

    def test_faults_never_change_charged_counters(
        self, config, fig3_trace, fig3_placement, fault
    ):
        """Open-loop shifting: the controller charges what it believes."""
        clean = simulate(fig3_trace, fig3_placement, config)
        faulted = simulate(fig3_trace, fig3_placement, config, fault=fault)
        assert faulted.shifts == clean.shifts == 39
        assert faulted.per_dbc_shifts == clean.per_dbc_shifts
        assert faulted.fault_injected > 0
        assert faulted.fault_misaligned > 0
        assert 0.0 < faulted.misaligned_fraction <= 1.0

    def test_rate_zero_report_is_bit_identical(
        self, config, fig3_trace, fig3_placement
    ):
        from repro.engine import FaultModel

        clean = simulate(fig3_trace, fig3_placement, config)
        zeroed = simulate(fig3_trace, fig3_placement, config,
                          fault=FaultModel(rate=0.0, seed=9))
        assert zeroed == clean

    def test_split_execution_draws_same_faults(
        self, config, fig3_trace, fig3_placement, fault
    ):
        """Fault draws key on the controller's lifetime access index."""
        ctrl = RTMController(config, fig3_placement, fault=fault)
        whole = ctrl.execute(fig3_trace) + ctrl.execute(fig3_trace)
        ctrl2 = RTMController(config, fig3_placement, fault=fault)
        again = ctrl2.execute(fig3_trace) + ctrl2.execute(fig3_trace)
        assert whole == again
        assert whole.fault_injected > 0

    def test_scrubbing_charges_device_shifts(
        self, config, fig3_trace, fig3_placement, fault
    ):
        plain = simulate(fig3_trace, fig3_placement, config, fault=fault)
        scrubbed = simulate(fig3_trace, fig3_placement, config, fault=fault,
                            scrub_interval=5)
        # Placement traffic is untouched; the scrubs are priced on top.
        assert scrubbed.shifts == plain.shifts
        assert scrubbed.scrub_events > 0
        assert scrubbed.scrub_shifts > 0
        assert scrubbed.runtime_ns > plain.runtime_ns
        assert scrubbed.shift_energy_pj > plain.shift_energy_pj

    def test_scrub_without_fault_rejected(self, config, fig3_placement):
        with pytest.raises(SimulationError, match="fault"):
            RTMController(config, fig3_placement, scrub_interval=10)

    def test_report_surfaces_drift_histogram(
        self, config, fig3_trace, fig3_placement, fault
    ):
        report = simulate(fig3_trace, fig3_placement, config, fault=fault)
        counted = sum(c for _d, c in report.drift_histogram)
        assert 0 < counted <= config.dbcs
        assert all(d != 0 for d, _c in report.drift_histogram)
        assert "faults:" in report.summary()

    def test_reset_clears_fault_state(
        self, config, fig3_trace, fig3_placement, fault
    ):
        ctrl = RTMController(config, fig3_placement, fault=fault)
        first = ctrl.execute(fig3_trace)
        ctrl.reset()
        again = ctrl.execute(fig3_trace)
        assert again == first
