"""Unit tests for the wear/endurance accounting."""

import pytest

from repro.core.placement import Placement
from repro.errors import SimulationError
from repro.rtm.report import SimReport
from repro.rtm.wear import rotate_placement, wear_report


def report_with(per_dbc):
    return SimReport(
        dbcs=len(per_dbc), shifts=sum(per_dbc),
        per_dbc_shifts=tuple(per_dbc),
    )


class TestWearReport:
    def test_level_distribution(self):
        w = wear_report(report_with([10, 10, 10, 10]))
        assert w.imbalance == pytest.approx(1.0)
        assert w.coefficient_of_variation == pytest.approx(0.0)
        assert w.gini == pytest.approx(0.0)

    def test_concentrated_distribution(self):
        w = wear_report(report_with([40, 0, 0, 0]))
        assert w.imbalance == pytest.approx(4.0)
        assert w.gini > 0.7
        assert w.max_shifts == 40

    def test_zero_traffic(self):
        w = wear_report(report_with([0, 0]))
        assert w.total_shifts == 0
        assert w.imbalance == 1.0
        assert w.gini == 0.0

    def test_monotone_gini(self):
        even = wear_report(report_with([5, 5, 5, 5])).gini
        skew = wear_report(report_with([2, 3, 7, 8])).gini
        extreme = wear_report(report_with([0, 0, 0, 20])).gini
        assert even < skew < extreme

    def test_missing_per_dbc_counts_rejected(self):
        with pytest.raises(SimulationError):
            wear_report(SimReport(dbcs=2, shifts=5))

    def test_lifetime_fraction(self):
        w = wear_report(report_with([30, 10]))
        assert w.lifetime_fraction(100) == pytest.approx(0.7)
        assert w.lifetime_fraction(20) == 0.0
        with pytest.raises(SimulationError):
            w.lifetime_fraction(0)


class TestRotation:
    def test_rotation_preserves_contents_and_cost(self, fig3_sequence):
        from repro.core.cost import shift_cost
        placement = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        rotated = rotate_placement(placement, 1)
        assert rotated.dbc_lists()[0] == ("e", "i", "c", "f")
        assert shift_cost(fig3_sequence, rotated) == \
            shift_cost(fig3_sequence, placement)

    def test_full_cycle_identity(self):
        placement = Placement([("a",), ("b",), ("c",)])
        assert rotate_placement(placement, 3) == placement

    def test_rotation_levels_wear_across_runs(self, fig3_trace, fig3_sequence):
        """Alternating the rotation between runs spreads the hot DBC."""
        from repro.rtm.geometry import RTMConfig
        from repro.rtm.sim import simulate
        config = RTMConfig(dbcs=2, domains_per_track=512)
        placement = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        r1 = simulate(fig3_trace, placement, config)
        r2 = simulate(fig3_trace, rotate_placement(placement, 1), config)
        combined = r1 + r2
        w_rotated = wear_report(combined)
        w_static = wear_report(r1 + r1)
        assert w_rotated.imbalance <= w_static.imbalance
