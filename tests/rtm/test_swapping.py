"""Unit tests for the online-swapping controller (related work [20])."""

import pytest

from repro.core.placement import Placement
from repro.errors import PlacementError, SimulationError
from repro.rtm.geometry import RTMConfig
from repro.rtm.swapping import SwappingController
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace


@pytest.fixture
def config():
    return RTMConfig(dbcs=2, domains_per_track=16)


def run(config, placement, accesses, **kw):
    seq = AccessSequence(accesses, variables=sorted(set(accesses)))
    # strip placement to the sequence's variables
    ctrl = SwappingController(config, placement, **kw)
    return ctrl.execute(MemoryTrace(seq))


class TestMigration:
    def test_hot_variable_migrates(self, config):
        # 'h' is accessed constantly but placed at slot 0, far from the
        # track centre; it should migrate inward after the threshold.
        placement = Placement([("h", "x1", "x2", "x3"), ()])
        seq = AccessSequence(["h"] * 20 + ["x3", "h"] * 3,
                             variables=["h", "x1", "x2", "x3"])
        ctrl = SwappingController(config, placement, threshold=4)
        report, stats = ctrl.execute(MemoryTrace(seq))
        assert stats.swaps >= 1
        new_dbc, new_slot = ctrl.location_of("h")
        assert new_dbc == 0
        assert new_slot > 0  # moved toward the centre (port home)

    def test_no_swaps_below_threshold(self, config):
        placement = Placement([("a", "b"), ()])
        seq = AccessSequence(["a", "b"], variables=["a", "b"])
        ctrl = SwappingController(config, placement, threshold=10)
        _, stats = ctrl.execute(MemoryTrace(seq))
        assert stats.swaps == 0

    def test_swap_costs_accounted(self, config):
        placement = Placement([("h", "x1", "x2", "x3"), ()])
        seq = AccessSequence(["h"] * 30, variables=["h", "x1", "x2", "x3"])
        ctrl = SwappingController(config, placement, threshold=2)
        report, stats = ctrl.execute(MemoryTrace(seq))
        # swap reads/writes priced into energy (beyond the trace's own)
        assert report.read_energy_pj > report.reads * 0  # smoke
        if stats.swaps:
            assert report.shifts >= stats.swap_shifts
            assert stats.swap_reads == stats.swap_writes == 2 * stats.swaps

    def test_counters_decay_at_saturation(self, config):
        placement = Placement([("a", "b"), ()])
        seq = AccessSequence(["a"] * 200, variables=["a", "b"])
        ctrl = SwappingController(config, placement, threshold=4, saturate=16)
        ctrl.execute(MemoryTrace(seq))
        assert ctrl._counters["a"] < 200  # decayed, not unbounded


class TestValidation:
    def test_bad_threshold(self, config):
        placement = Placement([("a",), ()])
        with pytest.raises(SimulationError):
            SwappingController(config, placement, threshold=0)
        with pytest.raises(SimulationError):
            SwappingController(config, placement, threshold=8, saturate=4)

    def test_capacity_enforced(self):
        tiny = RTMConfig(dbcs=1, domains_per_track=2)
        with pytest.raises(PlacementError):
            SwappingController(tiny, Placement([("a", "b", "c")]))

    def test_duplicate_rejected(self, config):
        class Fake:
            def dbc_lists(self):
                return [("a",), ("a",)]

        with pytest.raises(PlacementError):
            SwappingController(config, Fake())

    def test_unknown_variable_rejected(self, config):
        placement = Placement([("a",), ()])
        ctrl = SwappingController(config, placement)
        seq = AccessSequence(["z"], variables=["z"])
        with pytest.raises(SimulationError):
            ctrl.execute(MemoryTrace(seq))


class TestComparability:
    def test_swapping_helps_a_bad_static_placement(self, config):
        """On a hot-variable-at-the-edge layout, swapping recovers shifts."""
        from repro.rtm.sim import simulate
        variables = [f"x{i}" for i in range(8)] + ["h"]
        # 'h' interacts with x0 constantly but is placed at the far end.
        accesses = ["x0", "h"] * 60
        seq = AccessSequence(accesses, variables=variables)
        placement = Placement([tuple(variables), ()])
        static = simulate(MemoryTrace(seq), placement, config)
        ctrl = SwappingController(config, placement, threshold=3)
        dynamic, stats = ctrl.execute(MemoryTrace(seq))
        assert stats.swaps >= 1
        assert dynamic.shifts < static.shifts
