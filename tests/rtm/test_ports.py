"""Unit tests for port placement and selection."""

import pytest

from repro.errors import GeometryError
from repro.rtm.ports import PortPolicy, port_positions, select_port


class TestPortPositions:
    def test_single_port_centred(self):
        assert port_positions(64, 1) == (32,)

    def test_two_ports_quartiles(self):
        assert port_positions(64, 2) == (16, 48)

    def test_four_ports_even_spread(self):
        assert port_positions(64, 4) == (8, 24, 40, 56)

    def test_positions_within_track(self):
        for domains in (3, 7, 64, 512):
            for ports in (1, 2, 3):
                if ports <= domains:
                    for p in port_positions(domains, ports):
                        assert 0 <= p < domains

    def test_port_count_validation(self):
        with pytest.raises(GeometryError):
            port_positions(8, 0)
        with pytest.raises(GeometryError):
            port_positions(8, 9)
        with pytest.raises(GeometryError):
            port_positions(0, 1)

    def test_positions_strictly_increasing(self):
        for domains in (2, 5, 17, 64):
            for ports in (1, 2, min(domains, 4)):
                pos = port_positions(domains, ports)
                assert list(pos) == sorted(set(pos))


class TestSelectPort:
    def test_single_port_distance(self):
        (p,) = port_positions(64, 1)
        port, delta = select_port((p,), offset=0, location=40)
        assert port == 0
        assert delta == 40 - p

    def test_nearest_picks_closer_port(self):
        positions = (16, 48)
        port, delta = select_port(positions, offset=0, location=50)
        assert port == 1
        assert delta == 2

    def test_nearest_accounts_for_offset(self):
        positions = (16, 48)
        # offset +30: port0 aligned at 46, port1 at 78
        port, delta = select_port(positions, offset=30, location=47)
        assert port == 0
        assert delta == 1

    def test_static_always_port_zero(self):
        positions = (16, 48)
        port, delta = select_port(positions, 0, 50, PortPolicy.STATIC)
        assert port == 0
        assert delta == 34

    def test_alignment_invariant(self):
        """offset + position of chosen port always equals the location."""
        positions = port_positions(64, 4)
        offset = 0
        for loc in (0, 5, 63, 32, 31, 1):
            port, delta = select_port(positions, offset, loc)
            offset += delta
            assert positions[port] + offset == loc
