"""Ground-truth constants transcribed from the paper, shared by tests."""

#: The access sequence of Fig. 3-(b): 9 variables, 24 accesses.
FIG3_ACCESSES = list("ababcacaddaiefefgeghgihi")
FIG3_VARIABLES = list("abcdefghi")

#: Liveness table of Fig. 3-(e): variable -> (A_v, F_v, L_v).
FIG3_LIVENESS = {
    "a": (5, 1, 11),
    "b": (2, 2, 4),
    "c": (2, 5, 7),
    "d": (2, 9, 10),
    "e": (3, 13, 18),
    "f": (2, 14, 16),
    "g": (3, 17, 21),
    "h": (2, 20, 23),
    "i": (3, 12, 24),
}

#: Fig. 3-(c): the AFD assignment and its per-DBC/total shift costs.
FIG3_AFD_DBC0 = ("a", "g", "b", "d", "h")
FIG3_AFD_DBC1 = ("e", "i", "c", "f")
FIG3_AFD_COSTS = (24, 15)
FIG3_AFD_TOTAL = 39

#: Fig. 3-(d/e): the DMA disjoint set and its summed access frequency.
FIG3_VDJ = ("b", "c", "d", "e", "h")
FIG3_VDJ_FREQ_SUM = 11
#: Algorithm 1's literal output costs 10 (the figure's hand-ordered DBC1
#: costs 11); both reproduce the headline multi-x improvement.
FIG3_DMA_TOTAL = 10

#: Table I rows: dbcs -> (leakage mW, write pJ, read pJ, shift pJ,
#: read ns, write ns, shift ns, area mm2).
TABLE1 = {
    2: (3.39, 3.42, 2.26, 2.18, 0.81, 1.08, 0.99, 0.0159),
    4: (4.33, 3.65, 2.39, 2.03, 0.84, 1.14, 0.92, 0.0186),
    8: (6.56, 3.79, 2.47, 1.97, 0.86, 1.17, 0.86, 0.0226),
    16: (8.94, 3.94, 2.54, 1.86, 0.89, 1.20, 0.78, 0.0279),
}
