"""Unit tests for sparse placements and port-aware intra layouts."""

import numpy as np
import pytest

from repro.core.cost import shift_cost
from repro.core.intra import (
    port_aware_layout,
    port_spread_layout,
    pyramid_order,
    shifts_reduce_order,
)
from repro.core.placement import Placement
from repro.errors import PlacementError
from repro.rtm.geometry import RTMConfig
from repro.rtm.sim import simulate
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace


def bimodal_sequence(cluster: int = 6, length: int = 120, seed: int = 0):
    """Accesses alternating between two variable clusters."""
    rng = np.random.default_rng(seed)
    a = [f"a{i}" for i in range(cluster)]
    b = [f"b{i}" for i in range(cluster)]
    acc = []
    for _ in range(length // 2):
        acc.append(a[int(rng.integers(0, cluster))])
        acc.append(b[int(rng.integers(0, cluster))])
    return AccessSequence(acc, variables=a + b)


class TestSparsePlacement:
    def test_none_slots_are_holes(self):
        p = Placement([("a", None, "b")])
        assert p.location_of("a") == (0, 0)
        assert p.location_of("b") == (0, 2)
        assert p.variables == {"a", "b"}

    def test_hole_distance_counts_in_cost(self):
        seq = AccessSequence(list("abab"))
        dense = Placement([("a", "b")])
        sparse = Placement([("a", None, None, "b")])
        assert shift_cost(seq, dense) == 3
        assert shift_cost(seq, sparse) == 9

    def test_all_holes_rejected(self):
        with pytest.raises(PlacementError):
            Placement([(None, None)])

    def test_simulator_accepts_sparse(self):
        seq = AccessSequence(list("abab"))
        sparse = Placement([("a", None, "b")])
        config = RTMConfig(dbcs=1, domains_per_track=8)
        report = simulate(MemoryTrace(seq), sparse, config)
        assert report.shifts == shift_cost(seq, sparse)

    def test_with_intra_order_handles_holes(self):
        p = Placement([("a", None, "b")])
        q = p.with_intra_order(0, ("b", None, "a"))
        assert q.location_of("b") == (0, 0)

    def test_duplicate_across_holes_rejected(self):
        with pytest.raises(PlacementError):
            Placement([("a", None), (None, "a")])


class TestPortSpread:
    def test_layout_length_and_coverage(self):
        seq = bimodal_sequence()
        layout = port_spread_layout(seq, list(seq.variables), 64, 2)
        assert len(layout) == 64
        placed = [v for v in layout if v is not None]
        assert sorted(placed) == sorted(seq.variables)

    def test_single_port_falls_back_dense(self):
        seq = bimodal_sequence()
        layout = port_spread_layout(seq, list(seq.variables), 64, 1)
        assert None not in layout

    def test_no_room_falls_back_dense(self):
        seq = bimodal_sequence(cluster=4, length=40)
        layout = port_spread_layout(seq, list(seq.variables), 8, 2)
        assert len([v for v in layout if v is not None]) == 8

    def test_too_many_variables_rejected(self):
        seq = bimodal_sequence()
        with pytest.raises(PlacementError):
            port_spread_layout(seq, list(seq.variables), 8, 2)


class TestPortAware:
    def test_wins_on_bimodal_alternation(self):
        seq = bimodal_sequence()
        vs = list(seq.variables)
        dense = Placement([shifts_reduce_order(seq, vs)])
        aware = Placement([port_aware_layout(seq, vs, 64, 2)])
        d = shift_cost(seq, dense, ports=2, domains=64)
        a = shift_cost(seq, aware, ports=2, domains=64)
        assert a < d

    def test_never_worse_than_dense(self):
        from repro.trace.generators.synthetic import zipf_sequence
        for s in range(5):
            seq = zipf_sequence(20, 150, rng=s)
            vs = list(seq.variables)
            dense = Placement([shifts_reduce_order(seq, vs)])
            aware = Placement([port_aware_layout(seq, vs, 64, 4)])
            assert shift_cost(seq, aware, ports=4, domains=64) <= \
                shift_cost(seq, dense, ports=4, domains=64)

    def test_single_port_returns_dense_sr(self):
        seq = bimodal_sequence()
        vs = list(seq.variables)
        assert port_aware_layout(seq, vs, 64, 1) == shifts_reduce_order(seq, vs)


class TestPyramid:
    def test_hottest_in_the_middle(self):
        seq = AccessSequence(list("hhhhhmmmcc"))
        order = pyramid_order(seq, ["h", "m", "c"])
        assert order[1] == "h"

    def test_permutation(self, small_sequence):
        vs = list(small_sequence.variables)
        assert sorted(pyramid_order(small_sequence, vs)) == sorted(vs)

    def test_registered(self):
        from repro.core.intra import INTRA_HEURISTICS
        assert "Pyramid" in INTRA_HEURISTICS

    def test_single_variable(self, small_sequence):
        assert pyramid_order(small_sequence, ["v00"]) == ["v00"]
