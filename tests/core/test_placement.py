"""Unit tests for the Placement representation."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.errors import CapacityError, PlacementError
from repro.trace.sequence import AccessSequence


@pytest.fixture
def placement():
    return Placement([("a", "b"), ("c",), ()])


class TestConstruction:
    def test_basic(self, placement):
        assert placement.num_dbcs == 3
        assert placement.variables == {"a", "b", "c"}

    def test_empty_placement_rejected(self):
        with pytest.raises(PlacementError):
            Placement([])
        with pytest.raises(PlacementError):
            Placement([(), ()])

    def test_duplicate_variable_rejected(self):
        with pytest.raises(PlacementError, match="twice"):
            Placement([("a",), ("a",)])


class TestAccessors:
    def test_location_of(self, placement):
        assert placement.location_of("a") == (0, 0)
        assert placement.location_of("b") == (0, 1)
        assert placement.location_of("c") == (1, 0)

    def test_dbc_and_slot_shortcuts(self, placement):
        assert placement.dbc_of("b") == 0
        assert placement.slot_of("b") == 1

    def test_unknown_variable(self, placement):
        with pytest.raises(PlacementError):
            placement.location_of("zz")

    def test_equality_and_hash(self):
        a = Placement([("x",), ("y",)])
        b = Placement([("x",), ("y",)])
        c = Placement([("y",), ("x",)])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "something"

    def test_repr(self, placement):
        assert "3 vars" in repr(placement)


class TestValidation:
    def test_validate_for_matching_sequence(self, placement):
        seq = AccessSequence(["a", "b", "c"], variables=["a", "b", "c"])
        placement.validate_for(seq, num_dbcs=3, capacity=2)

    def test_missing_variable_detected(self, placement):
        seq = AccessSequence(["a"], variables=["a", "b", "c", "d"])
        with pytest.raises(PlacementError, match="missing"):
            placement.validate_for(seq)

    def test_extra_variable_detected(self, placement):
        seq = AccessSequence(["a", "b"], variables=["a", "b"])
        with pytest.raises(PlacementError, match="extra"):
            placement.validate_for(seq)

    def test_dbc_budget_enforced(self, placement):
        seq = AccessSequence(["a", "b", "c"], variables=["a", "b", "c"])
        with pytest.raises(CapacityError):
            placement.validate_for(seq, num_dbcs=2)

    def test_capacity_enforced(self, placement):
        seq = AccessSequence(["a", "b", "c"], variables=["a", "b", "c"])
        with pytest.raises(CapacityError):
            placement.validate_for(seq, capacity=1)


class TestConversions:
    def test_as_arrays(self, placement):
        seq = AccessSequence(["a", "c", "b"], variables=["a", "b", "c"])
        dbc_of, pos_of = placement.as_arrays(seq)
        np.testing.assert_array_equal(dbc_of, [0, 0, 1])
        np.testing.assert_array_equal(pos_of, [0, 1, 0])

    def test_as_arrays_requires_coverage(self, placement):
        seq = AccessSequence(["a", "z"], variables=["a", "z"])
        with pytest.raises(PlacementError, match="unplaced"):
            placement.as_arrays(seq)

    def test_as_arrays_ignores_extra_placed_vars(self, placement):
        seq = AccessSequence(["a"], variables=["a"])
        dbc_of, pos_of = placement.as_arrays(seq)
        assert dbc_of.shape == (1,)

    def test_padded(self, placement):
        wide = placement.padded(5)
        assert wide.num_dbcs == 5
        assert wide.dbc_lists()[3] == ()

    def test_padded_cannot_shrink(self, placement):
        with pytest.raises(PlacementError):
            placement.padded(2)

    def test_with_intra_order(self, placement):
        reordered = placement.with_intra_order(0, ["b", "a"])
        assert reordered.location_of("b") == (0, 0)
        assert placement.location_of("b") == (0, 1)  # original untouched

    def test_with_intra_order_must_be_permutation(self, placement):
        with pytest.raises(PlacementError):
            placement.with_intra_order(0, ["a", "c"])

    def test_with_intra_order_bad_index(self, placement):
        with pytest.raises(PlacementError):
            placement.with_intra_order(9, [])
