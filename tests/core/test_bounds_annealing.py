"""Unit tests for the cost lower bounds and the annealing optimizer."""

import pytest

from repro.core.bounds import (
    degree_lower_bound,
    edge_lower_bound,
    intra_lower_bound,
    placement_lower_bound,
    sampled_intra_upper_bound,
)
from repro.core.cost import shift_cost
from repro.core.intra import annealed_order, ofu_order, optimal_intra_cost
from repro.core.placement import Placement
from repro.errors import SolverError
from repro.trace.generators.synthetic import zipf_sequence
from repro.trace.sequence import AccessSequence


class TestBounds:
    def test_edge_bound_on_alternation(self):
        seq = AccessSequence(list("ababab"))
        assert edge_lower_bound(seq, ["a", "b"]) == 5

    def test_degree_bound_at_least_edge_bound(self):
        for s in range(6):
            seq = zipf_sequence(8, 60, rng=s)
            variables = list(seq.variables)
            assert degree_lower_bound(seq, variables) >= \
                edge_lower_bound(seq, variables)

    def test_bounds_below_optimal(self):
        """The whole point: LB <= exact optimum on every instance."""
        for s in range(8):
            seq = zipf_sequence(9, 70, alpha=1.1, locality=0.15, rng=s)
            variables = list(seq.variables)
            optimum = optimal_intra_cost(seq, variables)
            assert intra_lower_bound(seq, variables) <= optimum

    def test_star_graph_degree_bound(self):
        # hub h touched between every leaf: edges h-a, h-b, h-c, h-d (w=2 each)
        seq = AccessSequence(list("hahbhchd"))
        variables = list(seq.variables)
        lb = degree_lower_bound(seq, variables)
        # hub distances must be 1,1,2,2 for its four unit... each edge w edges
        assert lb > edge_lower_bound(seq, variables) - 1

    def test_single_variable_zero(self):
        seq = AccessSequence(["a"])
        assert intra_lower_bound(seq, ["a"]) == 0

    def test_placement_bound_sums_dbcs(self, fig3_sequence):
        placement = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        total = placement_lower_bound(fig3_sequence, placement.dbc_lists())
        per_dbc = sum(
            intra_lower_bound(fig3_sequence, list(d))
            for d in placement.dbc_lists()
        )
        assert total == per_dbc
        assert total <= shift_cost(fig3_sequence, placement)


class TestSampledUpperBound:
    def test_brackets_the_optimum(self):
        for s in range(4):
            seq = zipf_sequence(8, 60, rng=s)
            variables = list(seq.variables)
            optimum = optimal_intra_cost(seq, variables)
            ub = sampled_intra_upper_bound(seq, variables, samples=64, rng=s)
            assert intra_lower_bound(seq, variables) <= optimum <= ub

    def test_matches_scalar_scoring(self):
        seq = zipf_sequence(7, 50, rng=2)
        variables = list(seq.variables)
        ub = sampled_intra_upper_bound(seq, variables, samples=1, rng=5)
        # One sample == scoring that single random order the scalar way.
        import numpy as np
        from repro.util.rng import ensure_rng
        local = seq.restricted_to(variables)
        order = ensure_rng(5).permutation(local.num_variables)
        placement = Placement([[local.variables[int(c)]
                                for c in np.argsort(order)]])
        assert ub == shift_cost(local, placement)

    def test_more_samples_never_worse(self):
        seq = zipf_sequence(10, 90, rng=1)
        variables = list(seq.variables)
        few = sampled_intra_upper_bound(seq, variables, samples=4, rng=3)
        # Same stream extended: strictly more exploration.
        many = sampled_intra_upper_bound(seq, variables, samples=64, rng=3)
        assert many <= few

    def test_trivial_sizes(self):
        seq = AccessSequence(["a"])
        assert sampled_intra_upper_bound(seq, ["a"]) == 0


class TestAnnealing:
    def test_permutation(self, small_sequence):
        variables = list(small_sequence.variables)
        order = annealed_order(small_sequence, variables,
                               iterations=200, rng=0)
        assert sorted(order) == sorted(variables)

    def test_never_worse_than_ofu(self):
        for s in range(4):
            seq = zipf_sequence(12, 120, rng=s)
            variables = list(seq.variables)
            sa = annealed_order(seq, variables, iterations=600, rng=s)
            local = seq.restricted_to(variables)
            sa_cost = shift_cost(local, Placement([sa]))
            ofu_cost = shift_cost(
                local, Placement([ofu_order(seq, variables)])
            )
            assert sa_cost <= ofu_cost  # SA starts from OFU and keeps best

    def test_near_optimal_on_small_instances(self):
        seq = zipf_sequence(8, 80, alpha=1.3, locality=0.1, rng=3)
        variables = list(seq.variables)
        optimum = optimal_intra_cost(seq, variables)
        sa = annealed_order(seq, variables, iterations=3000, rng=1)
        local = seq.restricted_to(variables)
        assert shift_cost(local, Placement([sa])) <= max(optimum * 1.25, optimum + 2)

    def test_deterministic_for_seed(self, small_sequence):
        variables = list(small_sequence.variables)
        a = annealed_order(small_sequence, variables, iterations=150, rng=9)
        b = annealed_order(small_sequence, variables, iterations=150, rng=9)
        assert a == b

    def test_tiny_instances_shortcut(self):
        seq = AccessSequence(list("ab"))
        assert annealed_order(seq, ["a", "b"], rng=0) == ["a", "b"]

    def test_validation(self, small_sequence):
        with pytest.raises(SolverError):
            annealed_order(small_sequence, list(small_sequence.variables),
                           iterations=0)

    def test_registered_policy_runs(self, small_sequence):
        from repro.core.policies import get_policy
        placement = get_policy("DMA-SA").place(small_sequence, 4, 64)
        placement.validate_for(small_sequence, num_dbcs=4, capacity=64)
