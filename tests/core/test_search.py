"""Unit tests for the random-walk search and the exact solver."""

import pytest

from repro.core.cost import shift_cost
from repro.core.exact import exact_optimal_placement
from repro.core.ga import GAConfig, GeneticPlacer
from repro.core.random_walk import random_placement, random_walk_search
from repro.errors import SolverError
from repro.trace.sequence import AccessSequence


class TestRandomWalk:
    def test_best_of_iterations(self, fig3_sequence):
        result = random_walk_search(fig3_sequence, 2, 512, iterations=300, rng=4)
        assert result.cost == shift_cost(fig3_sequence, result.placement)
        assert result.iterations == 300

    def test_more_iterations_never_worse(self, fig3_sequence):
        short = random_walk_search(fig3_sequence, 2, 512, iterations=20, rng=9)
        # same stream extended: strictly more exploration
        long = random_walk_search(fig3_sequence, 2, 512, iterations=2000, rng=9)
        assert long.cost <= short.cost

    def test_deterministic(self, fig3_sequence):
        a = random_walk_search(fig3_sequence, 2, 512, iterations=50, rng=3)
        b = random_walk_search(fig3_sequence, 2, 512, iterations=50, rng=3)
        assert a.cost == b.cost and a.placement == b.placement

    def test_history_sampled(self, fig3_sequence):
        result = random_walk_search(
            fig3_sequence, 2, 512, iterations=500, rng=1, history_stride=100
        )
        assert len(result.history) == 5
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_zero_iterations_rejected(self, fig3_sequence):
        with pytest.raises(SolverError):
            random_walk_search(fig3_sequence, 2, 512, iterations=0)

    def test_random_placement_valid(self, fig3_sequence):
        p = random_placement(fig3_sequence, 3, 4, rng=2)
        p.validate_for(fig3_sequence, num_dbcs=3, capacity=4)


class TestExactSolver:
    def test_fig3_optimum_is_nine(self, fig3_sequence):
        placement, cost = exact_optimal_placement(fig3_sequence, 2, 512)
        assert cost == 9
        assert shift_cost(fig3_sequence, placement) == 9

    def test_exact_lower_bounds_heuristics(self, fig3_sequence):
        from repro.core.policies import get_policy
        _, optimum = exact_optimal_placement(fig3_sequence, 2, 512)
        for name in ("AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR"):
            p = get_policy(name).place(fig3_sequence, 2, 512)
            assert shift_cost(fig3_sequence, p) >= optimum

    def test_single_dbc_matches_intra_optimal(self):
        from repro.core.intra import optimal_intra_cost
        seq = AccessSequence(list("abcacbdadb"))
        _, cost = exact_optimal_placement(seq, 1, 10)
        assert cost == optimal_intra_cost(seq, list(seq.variables))

    def test_capacity_respected(self):
        seq = AccessSequence(list("aabbcc"))
        placement, _ = exact_optimal_placement(seq, 3, 1)
        assert all(len(d) <= 1 for d in placement.dbc_lists())

    def test_more_dbcs_never_hurt(self):
        seq = AccessSequence(list("abcabcab"))
        _, one = exact_optimal_placement(seq, 1, 8)
        _, two = exact_optimal_placement(seq, 2, 8)
        _, three = exact_optimal_placement(seq, 3, 8)
        assert three <= two <= one

    def test_size_guard(self, small_sequence):
        with pytest.raises(SolverError):
            exact_optimal_placement(small_sequence, 2, 64)

    def test_infeasible_rejected(self):
        seq = AccessSequence(list("abc"))
        with pytest.raises(SolverError):
            exact_optimal_placement(seq, 1, 2)

    def test_ga_reaches_exact_optimum_on_tiny_instances(self):
        seq = AccessSequence(list("abcacbddbeaecadeb"))
        _, optimum = exact_optimal_placement(seq, 2, 5)
        cfg = GAConfig(mu=30, lam=30, generations=60)
        result = GeneticPlacer(seq, 2, 5, cfg, rng=8).run()
        assert result.cost <= optimum * 1.1  # allow tiny slack for stochastics
