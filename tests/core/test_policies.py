"""Unit tests for the policy registry and the named pipelines."""

import pytest

from repro.core.cost import shift_cost
from repro.core.policies import (
    PAPER_POLICIES,
    available_policies,
    get_policy,
    intra_heuristic_names,
)
from repro.errors import SolverError


class TestRegistry:
    def test_paper_policies_registered(self):
        for name in PAPER_POLICIES:
            assert name in available_policies()

    def test_paper_policy_list_matches_sec4a(self):
        assert PAPER_POLICIES == (
            "AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR", "GA", "RW"
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(SolverError, match="unknown policy"):
            get_policy("DMA-Magic")

    def test_bad_options_rejected(self):
        with pytest.raises(SolverError, match="bad options"):
            get_policy("AFD-OFU", bogus=1)
        with pytest.raises(SolverError, match="bad options"):
            get_policy("GA", bogus=1)

    def test_ga_options_forwarded(self, fig3_sequence):
        fast = get_policy("GA", mu=8, lam=8, generations=2)
        placement = fast.place(fig3_sequence, 2, 512, rng=0)
        placement.validate_for(fig3_sequence, num_dbcs=2, capacity=512)

    def test_rw_options_forwarded(self, fig3_sequence):
        rw = get_policy("RW", iterations=10)
        placement = rw.place(fig3_sequence, 2, 512, rng=0)
        placement.validate_for(fig3_sequence, num_dbcs=2, capacity=512)

    def test_intra_names(self):
        assert {"OFU", "Chen", "SR"} <= set(intra_heuristic_names())


class TestPlacements:
    @pytest.mark.parametrize("name", sorted(
        {"AFD", "DMA", "AFD-OFU", "AFD-Chen", "AFD-SR", "DMA-OFU",
         "DMA-Chen", "DMA-SR", "DMA-TSP", "MDMA-OFU", "MDMA-SR"}
    ))
    def test_every_deterministic_policy_valid(self, name, small_sequence):
        policy = get_policy(name)
        placement = policy.place(small_sequence, 4, 64, rng=0)
        placement.validate_for(small_sequence, num_dbcs=4, capacity=64)

    @pytest.mark.parametrize("name", ["GA", "RW"])
    def test_stochastic_policies_valid(self, name, small_sequence):
        options = {"mu": 8, "lam": 8, "generations": 3} if name == "GA" else \
            {"iterations": 20}
        policy = get_policy(name, **options)
        placement = policy.place(small_sequence, 4, 64, rng=1)
        placement.validate_for(small_sequence, num_dbcs=4, capacity=64)

    def test_placements_padded_to_device_width(self, fig3_sequence):
        placement = get_policy("DMA-SR").place(fig3_sequence, 8, 64)
        assert placement.num_dbcs == 8

    def test_deterministic_policies_ignore_rng(self, small_sequence):
        policy = get_policy("DMA-SR")
        a = policy.place(small_sequence, 4, 64, rng=1)
        b = policy.place(small_sequence, 4, 64, rng=999)
        assert a == b

    def test_policy_flags(self):
        assert get_policy("DMA-SR").deterministic
        assert not get_policy("GA").deterministic
        assert not get_policy("RW").deterministic


class TestQualityRelations:
    """Suite-level relations the evaluation section depends on."""

    def test_dma_sr_at_least_as_good_as_dma_ofu(self, small_sequence):
        sr = get_policy("DMA-SR").place(small_sequence, 4, 64)
        ofu = get_policy("DMA-OFU").place(small_sequence, 4, 64)
        assert shift_cost(small_sequence, sr) <= shift_cost(small_sequence, ofu)

    def test_dma_beats_afd_on_staggered_trace(self, small_sequence):
        dma = get_policy("DMA-OFU").place(small_sequence, 4, 64)
        afd = get_policy("AFD-OFU").place(small_sequence, 4, 64)
        assert shift_cost(small_sequence, dma) <= shift_cost(small_sequence, afd)

    def test_ga_at_least_as_good_as_seeds(self, small_sequence):
        ga = get_policy("GA", mu=10, lam=10, generations=5)
        ga_cost = shift_cost(
            small_sequence, ga.place(small_sequence, 4, 64, rng=3)
        )
        for name in ("DMA-SR", "DMA-Chen", "DMA-OFU", "AFD-OFU"):
            heuristic = get_policy(name).place(small_sequence, 4, 64)
            assert ga_cost <= shift_cost(small_sequence, heuristic)
