"""Unit tests for the intra-DBC placement heuristics."""

import pytest

from repro.core.cost import shift_cost
from repro.core.intra import (
    INTRA_HEURISTICS,
    chen_order,
    local_sequence,
    ofu_order,
    optimal_order,
    random_order,
    shifts_reduce_order,
    tsp_order,
)
from repro.core.placement import Placement
from repro.trace.sequence import AccessSequence

HEURISTICS = [ofu_order, chen_order, shifts_reduce_order, tsp_order]


def intra_cost(seq, variables, order):
    local = seq.restricted_to(variables)
    return shift_cost(local, Placement([order]))


class TestCommonContract:
    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_returns_permutation(self, heuristic, fig3_sequence):
        variables = list(fig3_sequence.variables)
        order = heuristic(fig3_sequence, variables)
        assert sorted(order) == sorted(variables)

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_single_variable_identity(self, heuristic, fig3_sequence):
        assert heuristic(fig3_sequence, ["a"]) == ["a"]

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_empty_list_identity(self, heuristic, fig3_sequence):
        assert heuristic(fig3_sequence, []) == []

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_handles_unaccessed_variables(self, heuristic):
        seq = AccessSequence(list("abab"), variables=list("ab") + ["z0", "z1"])
        order = heuristic(seq, list(seq.variables))
        assert sorted(order) == ["a", "b", "z0", "z1"]

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_deterministic(self, heuristic, small_sequence):
        variables = list(small_sequence.variables)
        assert heuristic(small_sequence, variables) == heuristic(
            small_sequence, variables
        )

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_operates_on_local_subsequence(self, heuristic, fig3_sequence):
        """Placing a subset must ignore accesses to other variables."""
        subset = ["a", "b", "d"]
        order = heuristic(fig3_sequence, subset)
        assert sorted(order) == subset


class TestOFU:
    def test_first_use_order(self):
        seq = AccessSequence(list("cabcab"))
        assert ofu_order(seq, list("abc")) == ["c", "a", "b"]

    def test_local_first_use(self, fig3_sequence):
        # restricted to {e, i, c, f}: first uses are c, i, e, f
        assert ofu_order(fig3_sequence, ["e", "i", "c", "f"]) == ["c", "i", "e", "f"]

    def test_unaccessed_go_last(self):
        seq = AccessSequence(["b"], variables=["z", "b"])
        assert ofu_order(seq, ["z", "b"]) == ["b", "z"]


class TestQualityOrdering:
    """The suite-level quality relation the paper relies on (Sec. IV-B)."""

    def test_sr_beats_ofu_on_affinity_traces(self):
        """Where first-use order carries no signal (hot-variable
        alternation, the non-disjoint leftover traffic DMA hands to the
        intra heuristics), adjacency-driven SR must win in aggregate."""
        from repro.trace.generators.synthetic import zipf_sequence
        sr_total = ofu_total = 0
        for seed in range(10):
            seq = zipf_sequence(20, 200, alpha=1.3, locality=0.1, rng=seed)
            variables = list(seq.variables)
            sr_total += intra_cost(
                seq, variables, shifts_reduce_order(seq, variables)
            )
            ofu_total += intra_cost(seq, variables, ofu_order(seq, variables))
        assert sr_total < ofu_total

    def test_heuristics_beat_worst_case(self, small_sequence):
        variables = list(small_sequence.variables)
        worst = intra_cost(small_sequence, variables,
                           random_order(small_sequence, variables, rng=0))
        for h in (chen_order, shifts_reduce_order, tsp_order):
            assert intra_cost(small_sequence, variables,
                              h(small_sequence, variables)) <= worst * 1.2

    def test_optimal_is_lower_bound(self):
        seq = AccessSequence(list("abcacbdadbccdbaa"))
        variables = list(seq.variables)
        best = intra_cost(seq, variables, optimal_order(seq, variables))
        for h in HEURISTICS:
            assert best <= intra_cost(seq, variables, h(seq, variables))


class TestOptimalDP:
    def test_known_tiny_instance(self):
        # a-b alternation with c touched once: optimal keeps a,b adjacent
        seq = AccessSequence(list("abababc"))
        order = optimal_order(seq, list("abc"))
        pos = {v: i for i, v in enumerate(order)}
        assert abs(pos["a"] - pos["b"]) == 1

    def test_matches_brute_force(self):
        from itertools import permutations
        seq = AccessSequence(list("aebcadbcedaebb"))
        variables = list(seq.variables)
        brute = min(
            intra_cost(seq, variables, list(p))
            for p in permutations(variables)
        )
        assert intra_cost(
            seq, variables, optimal_order(seq, variables)
        ) == brute

    def test_size_guard(self, small_sequence):
        from repro.errors import SolverError
        with pytest.raises(SolverError):
            optimal_order(small_sequence, list(small_sequence.variables))

    def test_optimal_intra_cost_consistent(self):
        from repro.core.intra import optimal_intra_cost
        seq = AccessSequence(list("abcacbdadb"))
        variables = list(seq.variables)
        assert optimal_intra_cost(seq, variables) == intra_cost(
            seq, variables, optimal_order(seq, variables)
        )


class TestRandomOrder:
    def test_permutation_and_determinism(self, small_sequence):
        variables = list(small_sequence.variables)
        a = random_order(small_sequence, variables, rng=3)
        b = random_order(small_sequence, variables, rng=3)
        assert a == b
        assert sorted(a) == sorted(variables)


class TestRegistry:
    def test_registry_contains_paper_heuristics(self):
        assert {"OFU", "Chen", "SR"} <= set(INTRA_HEURISTICS)

    def test_local_sequence_none_for_unaccessed(self):
        seq = AccessSequence(["a"], variables=["a", "z"])
        assert local_sequence(seq, ["z"]) is None

    def test_local_sequence_restricts(self, fig3_sequence):
        local = local_sequence(fig3_sequence, ["a", "b"])
        assert set(local.accesses) == {"a", "b"}
