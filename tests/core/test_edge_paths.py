"""Edge-path coverage for corners the main suites do not reach."""

from repro.core.cost import shift_cost
from repro.core.ga import GAConfig, GeneticPlacer
from repro.core.placement import Placement
from repro.trace.sequence import AccessSequence


class TestColdStartAnalytic:
    def test_cold_start_charges_first_access(self):
        # two variables on a 2-slot DBC; port centred at slot 1.
        seq = AccessSequence(["a"], variables=["a", "b"])
        placement = Placement([("a", "b")])
        warm = shift_cost(seq, placement, first_access_free=True)
        cold = shift_cost(seq, placement, first_access_free=False)
        assert warm == 0
        assert cold >= warm

    def test_cold_start_multiport(self):
        seq = AccessSequence(list("ab"))
        placement = Placement([("a", "b")])
        cold = shift_cost(seq, placement, ports=2, domains=8,
                          first_access_free=False)
        warm = shift_cost(seq, placement, ports=2, domains=8,
                          first_access_free=True)
        assert cold >= warm


class TestGADegenerateInstances:
    def test_single_variable_sequence(self):
        seq = AccessSequence(["a", "a", "a"])
        result = GeneticPlacer(
            seq, 2, 4, GAConfig(mu=4, lam=4, generations=2), rng=0
        ).run()
        assert result.cost == 0

    def test_crossover_with_single_variable(self):
        seq = AccessSequence(["a"])
        placer = GeneticPlacer(
            seq, 2, 4, GAConfig(mu=4, lam=4, generations=1), rng=0
        )
        a, b = placer.random_individual(), placer.random_individual()
        for child in placer.crossover(a, b):
            placer.validate_individual(child)

    def test_single_dbc_device(self):
        seq = AccessSequence(list("abcab"))
        result = GeneticPlacer(
            seq, 1, 8, GAConfig(mu=6, lam=6, generations=3), rng=1
        ).run()
        result.placement.validate_for(seq, num_dbcs=1, capacity=8)

    def test_empty_sequence_with_variables(self):
        seq = AccessSequence([], variables=["a", "b"])
        result = GeneticPlacer(
            seq, 2, 2, GAConfig(mu=4, lam=4, generations=1), rng=2
        ).run()
        assert result.cost == 0


class TestPlacementEdge:
    def test_single_slot_dbcs(self):
        seq = AccessSequence(list("abab"))
        placement = Placement([("a",), ("b",)])
        assert shift_cost(seq, placement) == 0

    def test_very_sparse_layout_simulates(self):
        from repro.rtm.geometry import RTMConfig
        from repro.rtm.sim import simulate
        from repro.trace.trace import MemoryTrace
        seq = AccessSequence(list("ab" * 5))
        layout = ["a"] + [None] * 30 + ["b"]
        placement = Placement([layout])
        config = RTMConfig(dbcs=1, domains_per_track=32)
        report = simulate(MemoryTrace(seq), placement, config)
        assert report.shifts == shift_cost(seq, placement)
        assert report.shifts == 31 * 9  # 9 hops of distance 31


class TestExactPruning:
    def test_exact_handles_duplicate_heavy_sequences(self):
        from repro.core.exact import exact_optimal_placement
        seq = AccessSequence(list("aaaaabbbbb"))
        placement, cost = exact_optimal_placement(seq, 2, 2)
        assert cost == 0  # one variable per DBC: all transitions free...
        # (a->b transitions cross DBCs, which cost nothing)

    def test_exact_single_variable(self):
        from repro.core.exact import exact_optimal_placement
        seq = AccessSequence(["a"] * 4)
        placement, cost = exact_optimal_placement(seq, 2, 1)
        assert cost == 0


class TestReportingEdge:
    def test_render_without_paper_numbers(self):
        from repro.eval.experiments import ExperimentResult
        from repro.eval.reporting import render_experiment
        result = ExperimentResult(
            experiment_id="x", title="T", header=["a"], rows=[[1]],
            summary={"extra": 1.0},
        )
        text = render_experiment(result)
        assert "additional measurements" in text
        assert "paper vs measured" not in text

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "custom"))
        import importlib

        import repro.eval.reporting as reporting
        importlib.reload(reporting)
        try:
            from repro.eval.experiments import experiment_table1
            path = reporting.save_experiment(experiment_table1())
            assert str(tmp_path / "custom") in str(path)
        finally:
            monkeypatch.delenv("REPRO_RESULTS_DIR")
            importlib.reload(reporting)
