"""Unit tests for the genetic algorithm (Sec. III-C)."""

import pytest

from repro.core.cost import shift_cost
from repro.core.ga import GAConfig, GeneticPlacer
from repro.core.policies import get_policy
from repro.errors import CapacityError, SolverError


SMALL_GA = GAConfig(mu=10, lam=10, generations=8, patience=None)


@pytest.fixture
def placer(fig3_sequence):
    return GeneticPlacer(fig3_sequence, 2, 512, SMALL_GA, rng=42)


class TestConfig:
    def test_paper_defaults(self):
        cfg = GAConfig()
        assert cfg.mu == 100
        assert cfg.lam == 100
        assert cfg.generations == 200
        assert cfg.tournament_size == 4
        assert cfg.mutation_weights == (10.0, 10.0, 3.0)

    @pytest.mark.parametrize("kwargs", [
        {"mu": 0}, {"lam": 0}, {"generations": -1},
        {"tournament_size": 0}, {"mutation_rate": 1.5},
        {"mutation_weights": (1.0, 2.0)},
        {"mutation_weights": (0.0, 0.0, 0.0)},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(SolverError):
            GAConfig(**kwargs).validate()

    def test_capacity_checked_up_front(self, fig3_sequence):
        with pytest.raises(CapacityError):
            GeneticPlacer(fig3_sequence, 2, 2, SMALL_GA)


class TestOperators:
    def test_crossover_children_valid(self, placer):
        a = placer.random_individual()
        b = placer.random_individual()
        for child in placer.crossover(a, b):
            placer.validate_individual(child)

    def test_crossover_preserves_parent_union(self, placer):
        a = placer.random_individual()
        b = placer.random_individual()
        ca, cb = placer.crossover(a, b)
        flat = sorted(v for dbc in ca for v in dbc)
        assert flat == sorted(v for dbc in a for v in dbc)

    def test_crossover_does_not_mutate_parents(self, placer):
        a = placer.random_individual()
        b = placer.random_individual()
        a_copy = [list(d) for d in a]
        placer.crossover(a, b)
        assert a == a_copy

    def test_mutation_children_valid(self, placer):
        ind = placer.random_individual()
        for _ in range(50):
            ind = placer.mutate(ind)
            placer.validate_individual(ind)

    def test_mutation_reachability(self, placer):
        """Repeated mutations explore different configurations."""
        ind = placer.random_individual()
        seen = set()
        for _ in range(60):
            ind = placer.mutate(ind)
            seen.add(tuple(tuple(d) for d in ind))
        assert len(seen) > 10

    def test_repair_enforces_capacity(self, fig3_sequence):
        tight = GeneticPlacer(fig3_sequence, 3, 4, SMALL_GA, rng=0)
        for _ in range(30):
            a = tight.random_individual()
            b = tight.random_individual()
            for child in tight.crossover(a, b):
                tight.validate_individual(child)
                child = tight.mutate(child)
                tight.validate_individual(child)


class TestSeeding:
    def test_seeds_are_valid(self, placer):
        for seed in placer.seed_individuals():
            placer.validate_individual(seed)

    def test_seeded_run_at_least_matches_heuristics(self, fig3_sequence):
        ga = GeneticPlacer(fig3_sequence, 2, 512, SMALL_GA, rng=1)
        result = ga.run()
        dma_sr = get_policy("DMA-SR").place(fig3_sequence, 2, 512)
        assert result.cost <= shift_cost(fig3_sequence, dma_sr)


class TestRun:
    def test_result_consistency(self, fig3_sequence):
        result = GeneticPlacer(fig3_sequence, 2, 512, SMALL_GA, rng=7).run()
        assert result.cost == shift_cost(fig3_sequence, result.placement)
        assert result.generations_run == SMALL_GA.generations
        assert result.evaluations > 0

    def test_history_monotone_nonincreasing(self, fig3_sequence):
        result = GeneticPlacer(fig3_sequence, 2, 512, SMALL_GA, rng=7).run()
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_deterministic_for_seed(self, fig3_sequence):
        r1 = GeneticPlacer(fig3_sequence, 2, 512, SMALL_GA, rng=5).run()
        r2 = GeneticPlacer(fig3_sequence, 2, 512, SMALL_GA, rng=5).run()
        assert r1.cost == r2.cost
        assert r1.placement == r2.placement

    def test_patience_stops_early(self, fig3_sequence):
        cfg = GAConfig(mu=8, lam=8, generations=100, patience=3)
        result = GeneticPlacer(fig3_sequence, 2, 512, cfg, rng=3).run()
        assert result.generations_run < 100

    def test_zero_generations_returns_best_seed(self, fig3_sequence):
        cfg = GAConfig(mu=8, lam=8, generations=0)
        result = GeneticPlacer(fig3_sequence, 2, 512, cfg, rng=3).run()
        assert result.cost <= 39  # at least as good as raw AFD

    def test_finds_optimum_on_fig3(self, fig3_sequence):
        """The exact optimum for the running example is 9 shifts."""
        cfg = GAConfig(mu=30, lam=30, generations=40)
        result = GeneticPlacer(fig3_sequence, 2, 512, cfg, rng=1).run()
        assert result.cost == 9

    def test_placement_covers_all_variables(self, fig3_sequence):
        result = GeneticPlacer(fig3_sequence, 2, 512, SMALL_GA, rng=7).run()
        result.placement.validate_for(fig3_sequence, num_dbcs=2, capacity=512)

    def test_no_heuristic_seeding_still_works(self, fig3_sequence):
        cfg = GAConfig(mu=10, lam=10, generations=5, seed_with_heuristics=False)
        result = GeneticPlacer(fig3_sequence, 2, 512, cfg, rng=2).run()
        result.placement.validate_for(fig3_sequence, num_dbcs=2, capacity=512)
