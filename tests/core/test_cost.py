"""Unit tests for the analytic shift-cost model."""

import pytest

from repro.core.cost import cost_from_arrays, per_dbc_shift_costs, shift_cost
from repro.core.placement import Placement
from repro.errors import PlacementError
from repro.trace.sequence import AccessSequence


class TestSingleDBC:
    def test_alternation_cost(self):
        seq = AccessSequence(list("ababab"))
        assert shift_cost(seq, Placement([("a", "b")])) == 5

    def test_distance_scales_with_separation(self):
        seq = AccessSequence(list("abab"))
        assert shift_cost(seq, Placement([("a", "x", "b"), ()])) == 0 + 2 * 3
        # a@0, b@2: three transitions of distance 2... wait: a->b,b->a,a->b = 6

    def test_self_accesses_free(self):
        seq = AccessSequence(list("aaaa"))
        assert shift_cost(seq, Placement([("a",)])) == 0

    def test_first_access_free(self):
        seq = AccessSequence(["b"], variables=["a", "b"])
        assert shift_cost(seq, Placement([("a", "b")])) == 0

    def test_first_access_charged_when_cold(self):
        seq = AccessSequence(["b"], variables=["a", "b"])
        cost = shift_cost(seq, Placement([("a", "b")]), first_access_free=False)
        assert cost >= 0  # port at centre of a 2-slot track -> position 1

    def test_empty_sequence_costs_nothing(self):
        seq = AccessSequence([], variables=["a"])
        assert shift_cost(seq, Placement([("a",)])) == 0


class TestMultiDBC:
    def test_per_dbc_split(self, fig3_sequence):
        placement = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        assert per_dbc_shift_costs(fig3_sequence, placement) == [24, 15]

    def test_cross_dbc_transitions_free(self):
        seq = AccessSequence(list("abababab"))
        split = Placement([("a",), ("b",)])
        assert shift_cost(seq, split) == 0

    def test_empty_dbc_costs_zero(self, fig3_sequence):
        placement = Placement([tuple("abcdefghi"), ()])
        costs = per_dbc_shift_costs(fig3_sequence, placement)
        assert costs[1] == 0


class TestMultiPort:
    def test_needs_domains(self, fig3_sequence):
        placement = Placement([tuple("abcdefghi")])
        with pytest.raises(PlacementError, match="domains"):
            shift_cost(fig3_sequence, placement, ports=2)

    def test_multi_port_never_worse(self, small_sequence):
        placement = Placement([tuple(small_sequence.variables)])
        single = shift_cost(small_sequence, placement, ports=1)
        multi = shift_cost(small_sequence, placement, ports=4, domains=64)
        assert multi <= single

    def test_slot_outside_track_rejected(self):
        seq = AccessSequence(list("abc"))
        placement = Placement([("a", "b", "c")])  # slot 2 on a 2-domain track
        with pytest.raises(PlacementError):
            shift_cost(seq, placement, ports=2, domains=2)

    def test_ports_at_extremes(self):
        # two ports on a 64-track: 0<->63 ping-pong costs ~31 per hop pair
        seq = AccessSequence(list("ab" * 10))
        vars64 = ["a"] + [f"x{i}" for i in range(62)] + ["b"]
        seq = AccessSequence(list("ab" * 10), variables=vars64)
        placement = Placement([tuple(vars64)])
        single = shift_cost(seq, placement, ports=1)
        dual = shift_cost(seq, placement, ports=2, domains=64)
        assert dual < single


class TestColdStartGeometry:
    """With real geometry, analytic cold-start must equal the simulator."""

    @pytest.mark.parametrize("ports", [1, 2, 4])
    @pytest.mark.parametrize("domains", [16, 64])
    def test_cold_analytic_matches_simulator(self, small_sequence, ports,
                                             domains):
        from repro.core.policies import get_policy
        from repro.rtm.geometry import RTMConfig
        from repro.rtm.sim import simulate
        from repro.trace.trace import MemoryTrace
        placement = get_policy("DMA-SR").place(small_sequence, 4, domains)
        config = RTMConfig(dbcs=4, domains_per_track=domains,
                           ports_per_track=ports)
        report = simulate(MemoryTrace(small_sequence), placement, config,
                          warm_start=False)
        analytic = per_dbc_shift_costs(
            small_sequence, placement, ports=ports, domains=domains,
            first_access_free=False,
        )
        assert sum(analytic) == report.shifts
        assert tuple(analytic) == report.per_dbc_shifts

    def test_geometry_beats_fill_guess(self):
        # One variable at slot 0 of a 64-domain track: the simulator's
        # cold start pays the 32 shifts from the centred port; the
        # geometry-free legacy guess (track length = DBC fill of 1) pays 0.
        seq = AccessSequence(["a"])
        placement = Placement([("a",)])
        with_geometry = shift_cost(seq, placement, domains=64,
                                   first_access_free=False)
        legacy = shift_cost(seq, placement, first_access_free=False)
        assert with_geometry == 32
        assert legacy == 0

    def test_warm_cost_ignores_domains(self, fig3_sequence):
        placement = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        assert shift_cost(fig3_sequence, placement, domains=512) == \
            shift_cost(fig3_sequence, placement)

    def test_single_port_slot_validated_when_domains_given(self):
        seq = AccessSequence(list("abc"))
        placement = Placement([("a", "b", "c")])
        with pytest.raises(PlacementError):
            shift_cost(seq, placement, domains=2, first_access_free=False)


class TestCostFromArrays:
    def test_matches_shift_cost(self, fig3_sequence):
        placement = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        dbc_of, pos_of = placement.as_arrays(fig3_sequence)
        assert cost_from_arrays(
            fig3_sequence.codes, dbc_of, pos_of, 2
        ) == shift_cost(fig3_sequence, placement)

    def test_single_access_is_zero(self):
        seq = AccessSequence(["a"])
        placement = Placement([("a",)])
        dbc_of, pos_of = placement.as_arrays(seq)
        assert cost_from_arrays(seq.codes, dbc_of, pos_of, 1) == 0


class TestInvariance:
    def test_dbc_order_irrelevant(self, fig3_sequence):
        a = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        b = Placement([("e", "i", "c", "f"), ("a", "g", "b", "d", "h")])
        assert shift_cost(fig3_sequence, a) == shift_cost(fig3_sequence, b)

    def test_reversal_within_dbc_preserves_cost(self, fig3_sequence):
        a = Placement([("a", "g", "b", "d", "h"), ("e", "i", "c", "f")])
        b = Placement([("h", "d", "b", "g", "a"), ("e", "i", "c", "f")])
        assert shift_cost(fig3_sequence, a) == shift_cost(fig3_sequence, b)

    def test_unaccessed_variables_do_not_add_cost(self):
        seq = AccessSequence(list("abab"), variables=list("ab") + ["z"])
        with_z_far = Placement([("a", "b", "z")])
        assert shift_cost(seq, with_z_far) == 3
