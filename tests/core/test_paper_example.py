"""Locks the full Fig. 3 walk-through to the paper's published numbers.

This is the reproduction's keystone test: the AFD baseline must produce
the exact assignment and 39-shift cost of Fig. 3-(c), and Algorithm 1
must extract the exact disjoint set of Fig. 3-(d/e).
"""

from repro.core.cost import per_dbc_shift_costs, shift_cost
from repro.core.inter.afd import afd_order, afd_partition, afd_placement
from repro.core.inter.dma import dma_partition, dma_placement, dma_split
from repro.core.placement import Placement

from tests.paperdata import (
    FIG3_AFD_COSTS,
    FIG3_AFD_DBC0,
    FIG3_AFD_DBC1,
    FIG3_AFD_TOTAL,
    FIG3_DMA_TOTAL,
    FIG3_VDJ,
    FIG3_VDJ_FREQ_SUM,
)


class TestAFDExample:
    def test_afd_frequency_order(self, fig3_sequence):
        # descending frequency, stable by declaration: a(5), e,g,i(3), rest(2)
        assert afd_order(fig3_sequence) == list("aegibcdfh")

    def test_afd_assignment_matches_fig3c(self, fig3_sequence):
        dbcs = afd_partition(fig3_sequence, 2, 512)
        assert tuple(dbcs[0]) == FIG3_AFD_DBC0
        assert tuple(dbcs[1]) == FIG3_AFD_DBC1

    def test_afd_costs_match_fig3c(self, fig3_sequence):
        placement = afd_placement(fig3_sequence, 2, 512)
        costs = per_dbc_shift_costs(fig3_sequence, placement)
        assert tuple(costs) == FIG3_AFD_COSTS
        assert sum(costs) == FIG3_AFD_TOTAL


class TestDMAExample:
    def test_vdj_matches_fig3(self, fig3_sequence):
        split = dma_split(fig3_sequence)
        assert split.vdj == FIG3_VDJ

    def test_vdj_frequency_sum_is_11(self, fig3_sequence):
        split = dma_split(fig3_sequence)
        assert split.disjoint_frequency_sum == FIG3_VDJ_FREQ_SUM

    def test_vndj_holds_the_rest(self, fig3_sequence):
        split = dma_split(fig3_sequence)
        assert sorted(split.vndj) == ["a", "f", "g", "i"]

    def test_partition_reserves_one_dbc(self, fig3_sequence):
        dbcs, k = dma_partition(fig3_sequence, 2, 512)
        assert k == 1
        assert tuple(dbcs[0]) == FIG3_VDJ  # ascending first-occurrence order

    def test_vndj_dealt_by_descending_frequency(self, fig3_sequence):
        dbcs, _ = dma_partition(fig3_sequence, 2, 512)
        assert dbcs[1] == ["a", "g", "i", "f"]

    def test_dma_total_beats_afd_by_papers_margin(self, fig3_sequence):
        placement = dma_placement(fig3_sequence, 2, 512)
        total = shift_cost(fig3_sequence, placement)
        assert total == FIG3_DMA_TOTAL
        # Paper quotes 39 -> 11 (3.54x); the literal Algorithm 1 deal order
        # gives 10, one better than the figure's hand ordering.
        assert FIG3_AFD_TOTAL / total >= 3.54

    def test_figures_hand_ordering_costs_11(self, fig3_sequence):
        """The DBC1 order drawn in Fig. 3-(d) (a f g i) costs exactly 11."""
        figure = Placement([FIG3_VDJ, ("a", "f", "g", "i")])
        assert shift_cost(fig3_sequence, figure) == 11

    def test_disjoint_dbc_cost_bounded_by_size(self, fig3_sequence):
        """l disjoint variables in access order cost at most l-1 shifts."""
        placement = dma_placement(fig3_sequence, 2, 512)
        costs = per_dbc_shift_costs(fig3_sequence, placement)
        assert costs[0] <= len(FIG3_VDJ) - 1

    def test_fairness_guard_inactive_on_example(self, fig3_sequence):
        pure, k_pure = dma_partition(fig3_sequence, 2, 512, fairness_guard=False)
        guarded, k_guard = dma_partition(fig3_sequence, 2, 512, fairness_guard=True)
        assert pure == guarded
        assert k_pure == k_guard == 1


class TestScanSemantics:
    def test_a_rejected_by_nested_frequency_test(self, fig3_sequence):
        """Sec. III-B: A_a = 5 is not greater than A_b + A_c + A_d = 6."""
        split = dma_split(fig3_sequence)
        assert "a" not in split.vdj

    def test_e_accepted_over_nested_f(self, fig3_sequence):
        """When e is examined only f is nested in its lifespan (A_f = 2 < 3)."""
        split = dma_split(fig3_sequence)
        assert "e" in split.vdj
