"""Unit tests for the inter-DBC distribution strategies beyond Fig. 3."""

import pytest

from repro.core.inter.afd import afd_partition, afd_placement
from repro.core.inter.dma import dma_partition, dma_placement, dma_split
from repro.core.inter.multiset import (
    extract_disjoint_sets,
    multiset_dma_partition,
    multiset_dma_placement,
)
from repro.core.inter.random_inter import random_partition
from repro.core.cost import shift_cost
from repro.core.intra import shifts_reduce_order
from repro.errors import CapacityError
from repro.trace.liveness import Liveness
from repro.trace.sequence import AccessSequence


def partition_vars(dbcs):
    return sorted(v for dbc in dbcs for v in dbc)


class TestAFDGeneral:
    def test_all_variables_placed_once(self, small_sequence):
        dbcs = afd_partition(small_sequence, 4, 64)
        assert partition_vars(dbcs) == sorted(small_sequence.variables)

    def test_round_robin_balances(self, small_sequence):
        dbcs = afd_partition(small_sequence, 4, 64)
        sizes = [len(d) for d in dbcs]
        assert max(sizes) - min(sizes) <= 1

    def test_capacity_respected(self, small_sequence):
        n = small_sequence.num_variables
        capacity = n // 2  # forces both DBCs to fill completely
        dbcs = afd_partition(small_sequence, 2, capacity + 1)
        assert all(len(d) <= capacity + 1 for d in dbcs)

    def test_overflow_rejected(self, small_sequence):
        with pytest.raises(CapacityError):
            afd_partition(small_sequence, 2, 3)

    def test_zero_dbcs_rejected(self, small_sequence):
        with pytest.raises(CapacityError):
            afd_partition(small_sequence, 0)

    def test_single_dbc_is_frequency_order(self):
        seq = AccessSequence(list("abcbcc"))
        (dbc,) = afd_partition(seq, 1)
        assert dbc == ["c", "b", "a"]


class TestDMAGeneral:
    def test_all_variables_placed_once(self, small_sequence):
        dbcs, _ = dma_partition(small_sequence, 4, 64)
        assert partition_vars(dbcs) == sorted(small_sequence.variables)

    def test_vdj_is_pairwise_disjoint(self, small_sequence):
        split = dma_split(small_sequence)
        live = Liveness(small_sequence)
        assert live.pairwise_disjoint(list(split.vdj))

    def test_vdj_in_first_occurrence_order(self, small_sequence):
        split = dma_split(small_sequence)
        live = Liveness(small_sequence)
        firsts = [live.first(v) for v in split.vdj]
        assert firsts == sorted(firsts)

    def test_split_partitions_variables(self, small_sequence):
        split = dma_split(small_sequence)
        assert sorted(split.vdj + split.vndj) == sorted(small_sequence.variables)

    def test_capacity_error(self, small_sequence):
        with pytest.raises(CapacityError):
            dma_partition(small_sequence, 2, 2)

    def test_unaccessed_variables_stay_non_disjoint(self):
        seq = AccessSequence(list("aabb"), variables=list("ab") + ["zz"])
        split = dma_split(seq)
        assert "zz" in split.vndj

    def test_empty_sequence(self):
        seq = AccessSequence([], variables=["a", "b"])
        dbcs, k = dma_partition(seq, 2, 4)
        assert k == 0
        assert partition_vars(dbcs) == ["a", "b"]

    def test_k_scales_with_capacity(self):
        # 8 strictly disjoint variables, capacity 2 -> Vdj spans 4 DBCs
        seq = AccessSequence([v for v in "abcdefgh" for _ in range(3)])
        split = dma_split(seq)
        assert len(split.vdj) == 8
        dbcs, k = dma_partition(seq, 8, 2, fairness_guard=False)
        assert k == 4
        for i in range(k):
            assert len(dbcs[i]) == 2

    def test_round_robin_preserves_access_order_per_dbc(self):
        seq = AccessSequence([v for v in "abcdefgh" for _ in range(3)])
        dbcs, k = dma_partition(seq, 8, 2, fairness_guard=False)
        live = Liveness(seq)
        for i in range(k):
            firsts = [live.first(v) for v in dbcs[i]]
            assert firsts == sorted(firsts)

    def test_all_disjoint_no_vndj(self):
        seq = AccessSequence([v for v in "abcd" for _ in range(2)])
        dbcs, k = dma_partition(seq, 2, 4)
        assert partition_vars(dbcs) == list("abcd")

    def test_fairness_guard_degenerates_to_afd_when_no_benefit(self):
        # fully interleaved variables: no disjoint structure at all
        seq = AccessSequence(list("abcabcabcabc"))
        guarded = dma_placement(seq, 2, 512)
        afd = afd_placement(seq, 2, 512)
        assert shift_cost(seq, guarded) == shift_cost(seq, afd)

    def test_pure_mode_reserves_dbc_even_when_wasteful(self):
        seq = AccessSequence(list("abcabcabcabc") + ["z", "z"])
        _, k = dma_partition(seq, 2, 512, fairness_guard=False)
        assert k == 1  # z is disjoint from the tail -> gets a whole DBC

    def test_intra_only_applied_to_non_disjoint_dbcs(self, small_sequence):
        raw = dma_placement(small_sequence, 4, 64, intra=None)
        opt = dma_placement(small_sequence, 4, 64, intra=shifts_reduce_order)
        _, k = dma_partition(small_sequence, 4, 64)
        for i in range(k):
            assert raw.dbc_lists()[i] == opt.dbc_lists()[i]


class TestMultiset:
    def test_chains_are_disjoint(self, small_sequence):
        chains, _ = extract_disjoint_sets(small_sequence)
        live = Liveness(small_sequence)
        for chain in chains:
            assert live.pairwise_disjoint(chain)

    def test_chains_cover_no_variable_twice(self, small_sequence):
        chains, leftovers = extract_disjoint_sets(small_sequence)
        flat = [v for c in chains for v in c] + leftovers
        assert sorted(flat) == sorted(small_sequence.variables)

    def test_max_sets_cap(self, small_sequence):
        chains, _ = extract_disjoint_sets(small_sequence, max_sets=1)
        assert len(chains) <= 1

    def test_partition_covers_everything(self, small_sequence):
        dbcs, _ = multiset_dma_partition(small_sequence, 4, 64)
        assert partition_vars(dbcs) == sorted(small_sequence.variables)

    def test_capacity_error(self, small_sequence):
        with pytest.raises(CapacityError):
            multiset_dma_partition(small_sequence, 1, 4)

    def test_multiset_at_least_as_good_as_single_on_phased(self):
        from repro.trace.generators.synthetic import phased_sequence
        seq = phased_sequence(6, 4, 40, shared_vars=2, rng=11)
        single = dma_placement(seq, 4, 256, intra=shifts_reduce_order)
        multi = multiset_dma_placement(seq, 4, 256, intra=shifts_reduce_order)
        assert shift_cost(seq, multi) <= shift_cost(seq, single) * 1.5

    def test_placement_applies_intra_to_leftover_dbcs(self, small_sequence):
        placement = multiset_dma_placement(
            small_sequence, 4, 64, intra=shifts_reduce_order
        )
        placement.validate_for(small_sequence, num_dbcs=4, capacity=64)


class TestRandomPartition:
    def test_covers_all_variables(self, small_sequence, rng):
        dbcs = random_partition(small_sequence, 4, 64, rng)
        assert partition_vars(dbcs) == sorted(small_sequence.variables)

    def test_respects_capacity(self, small_sequence, rng):
        n = small_sequence.num_variables
        cap = (n + 3) // 4 + 1
        for _ in range(10):
            dbcs = random_partition(small_sequence, 4, cap, rng)
            assert all(len(d) <= cap for d in dbcs)

    def test_deterministic_for_seed(self, small_sequence):
        a = random_partition(small_sequence, 4, 64, 5)
        b = random_partition(small_sequence, 4, 64, 5)
        assert a == b

    def test_capacity_error(self, small_sequence):
        with pytest.raises(CapacityError):
            random_partition(small_sequence, 2, 2, 0)
