"""Unit tests for whole-program placement."""

import pytest

from repro.core.cost import shift_cost
from repro.core.program import (
    best_program_placement,
    evaluate_program,
    fuse_sequences,
    per_sequence_reference,
    place_program,
)
from repro.errors import CapacityError, PlacementError
from repro.trace.liveness import Liveness
from repro.trace.sequence import AccessSequence


@pytest.fixture
def procedures():
    """Three 'procedures' sharing the global 'g'."""
    return [
        AccessSequence(list("aabga"), variables=["a", "b", "g"], name="p0"),
        AccessSequence(list("ccgdd"), variables=["c", "d", "g"], name="p1"),
        AccessSequence(list("eegff"), variables=["e", "f", "g"], name="p2"),
    ]


class TestFusion:
    def test_shared_variables_fused_once(self, procedures):
        fused = fuse_sequences(procedures)
        assert fused.num_variables == 7  # a b g c d e f
        assert len(fused) == sum(len(s) for s in procedures)

    def test_private_locals_become_disjoint(self, procedures):
        fused = fuse_sequences(procedures)
        live = Liveness(fused)
        assert live.disjoint("a", "c")
        assert live.disjoint("b", "f")
        assert not live.disjoint("a", "g")  # the global spans everything

    def test_empty_rejected(self):
        with pytest.raises(PlacementError):
            fuse_sequences([])


class TestPlaceProgram:
    def test_single_layout_covers_all_sequences(self, procedures):
        result = place_program(procedures, 2, 8, policy="DMA-SR")
        for seq in procedures:
            # every sequence can be scored under the one placement
            assert shift_cost(seq, result.placement) >= 0
        assert set(result.per_sequence_costs) == {"p0", "p1", "p2"}

    def test_total_is_sum_of_parts(self, procedures):
        result = place_program(procedures, 2, 8)
        assert result.total_cost == sum(result.per_sequence_costs.values())

    def test_policy_object_accepted(self, procedures):
        from repro.core.policies import get_policy
        result = place_program(procedures, 2, 8, policy=get_policy("AFD-OFU"))
        assert result.total_cost >= 0

    def test_capacity_checked_on_union(self, procedures):
        with pytest.raises(CapacityError):
            place_program(procedures, 2, 3)  # union has 7 variables

    def test_shared_variable_has_one_location(self, procedures):
        result = place_program(procedures, 2, 8)
        dbc, slot = result.placement.location_of("g")
        assert 0 <= dbc < 2


class TestReferences:
    def test_program_cost_at_least_private_optimum(self, procedures):
        """One shared layout can never beat giving each sequence its own
        *optimal* private layout of the full device (heuristic private
        layouts can legitimately lose to a lucky shared one)."""
        from repro.core.exact import exact_optimal_placement
        shared = place_program(procedures, 2, 8, policy="DMA-SR")
        private_optimum = sum(
            exact_optimal_placement(seq, 2, 8)[1] for seq in procedures
        )
        assert shared.total_cost >= private_optimum

    def test_per_sequence_reference_runs(self, procedures):
        reference = per_sequence_reference(procedures, 2, 8, policy="DMA-SR")
        assert reference >= 0

    def test_best_program_placement_picks_minimum(self, procedures):
        name, best = best_program_placement(
            procedures, 2, 8, policies=("AFD-OFU", "DMA-SR")
        )
        for other in ("AFD-OFU", "DMA-SR"):
            candidate = place_program(procedures, 2, 8, policy=other)
            assert best.total_cost <= candidate.total_cost
        assert name in ("AFD-OFU", "DMA-SR")

    def test_best_requires_candidates(self, procedures):
        with pytest.raises(PlacementError):
            best_program_placement(procedures, 2, 8, policies=())


class TestEvaluate:
    def test_unnamed_sequences_get_keys(self):
        seqs = [AccessSequence(list("ab")), AccessSequence(list("ba"))]
        from repro.core.policies import get_policy
        placement = get_policy("DMA-SR").place(fuse_sequences(seqs), 1, 4)
        costs = evaluate_program(placement, seqs)
        assert len(costs) == 2

    def test_suite_program_end_to_end(self):
        from repro.trace.generators.offsetstone import load_benchmark
        bench = load_benchmark("dspstone", scale=0.2, seed=3)
        seqs = [t.sequence for t in bench.traces]
        result = place_program(seqs, 8, 128, policy="DMA-SR")
        assert result.total_cost >= 0
        assert len(result.per_sequence_costs) == len(seqs)
