"""SQLite schema of the persistent experiment store.

Four tables carry everything:

* ``cells`` — one row per computed matrix cell, keyed by the runner's
  content digest (:func:`repro.eval.runner._cell_key`). The payload is
  the JSON serialization of the :class:`~repro.eval.runner.CellResult`
  (see :mod:`repro.store.serde`); benchmark/policy/dbcs are denormalized
  for listing and GC without deserializing payloads.
* ``runs`` — one row per ``run_matrix`` invocation that touched the
  store: provenance (the full profile, backend, search scale, package
  and schema versions — the *manifest*), wall time and the hit/miss
  counters, so any stored cell can be traced back to how it was
  produced.
* ``queue`` — the claim-based work queue (:mod:`repro.store.queue`):
  one row per *pending or settled unit of work*, keyed by the same cell
  digest as ``cells`` so queue jobs and warm cells share one namespace.
  ``status`` walks ``open -> claimed -> done``/``failed``; ``owner`` and
  ``lease_expiry`` implement heartbeat leases (a claim whose lease
  expires becomes claimable again — crashed workers lose their cells,
  never the queue); ``attempts``/``max_attempts`` bound retries and
  quarantine repeat offenders as ``failed``; ``job`` is the JSON recipe
  a worker needs to recompute the cell from scratch; ``cost_hint``
  (resolved trace accesses) lets claims hand out expensive cells first.
* ``queue_errors`` — the persisted error log: one row per failed
  attempt, so quarantined cells keep their full failure history even
  after requeues.

``meta`` holds the schema version. Bumping :data:`SCHEMA_VERSION`
invalidates existing stores *cleanly*: opening a store written under an
unknown version drops and recreates all tables instead of trying to
read incompatible rows — except for versions listed in
:data:`UPGRADABLE_VERSIONS`, which migrate additively (version 1 stores
predate the queue tables but their ``cells``/``runs`` layout is
unchanged, so upgrading just creates the missing tables and every
stored cell stays warm).
"""

from __future__ import annotations

#: Bump when the table layout or the cell payload format changes
#: incompatibly; stores written under a version that is neither current
#: nor upgradable are discarded on open.
SCHEMA_VERSION = 2

#: Older versions whose tables are a strict subset of the current
#: layout: opening such a store creates the missing tables in place and
#: keeps every existing row (v1 -> v2 added only ``queue`` and
#: ``queue_errors``).
UPGRADABLE_VERSIONS = (1,)

#: All tables, indexes and names the store owns (dropped on migration).
TABLES = ("meta", "cells", "runs", "queue", "queue_errors")

CREATE_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS cells (
    key        TEXT PRIMARY KEY,
    benchmark  TEXT NOT NULL,
    policy     TEXT NOT NULL,
    dbcs       INTEGER NOT NULL,
    payload    TEXT NOT NULL,
    run_id     TEXT,
    created_at REAL NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_cells_triple
    ON cells (benchmark, policy, dbcs);

CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    status      TEXT NOT NULL,
    started_at  REAL NOT NULL,
    finished_at REAL,
    wall_time_s REAL,
    manifest    TEXT NOT NULL,
    cells_total INTEGER,
    hits_memory INTEGER,
    hits_store  INTEGER,
    computed    INTEGER
);

CREATE TABLE IF NOT EXISTS queue (
    key          TEXT PRIMARY KEY,
    benchmark    TEXT NOT NULL,
    policy       TEXT NOT NULL,
    dbcs         INTEGER NOT NULL,
    job          TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'open',
    owner        TEXT,
    lease_expiry REAL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    cost_hint    INTEGER NOT NULL DEFAULT 0,
    error        TEXT,
    submitted_at REAL NOT NULL,
    updated_at   REAL NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_queue_claim
    ON queue (status, lease_expiry);

CREATE INDEX IF NOT EXISTS idx_queue_open
    ON queue (status, cost_hint DESC, key);

CREATE TABLE IF NOT EXISTS queue_errors (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    key       TEXT NOT NULL,
    owner     TEXT,
    attempt   INTEGER NOT NULL,
    error     TEXT NOT NULL,
    logged_at REAL NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_queue_errors_key
    ON queue_errors (key);
"""
