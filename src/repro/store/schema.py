"""SQLite schema of the persistent experiment store.

Two tables carry everything:

* ``cells`` — one row per computed matrix cell, keyed by the runner's
  content digest (:func:`repro.eval.runner._cell_key`). The payload is
  the JSON serialization of the :class:`~repro.eval.runner.CellResult`
  (see :mod:`repro.store.serde`); benchmark/policy/dbcs are denormalized
  for listing and GC without deserializing payloads.
* ``runs`` — one row per ``run_matrix`` invocation that touched the
  store: provenance (the full profile, backend, search scale, package
  and schema versions — the *manifest*), wall time and the hit/miss
  counters, so any stored cell can be traced back to how it was
  produced.

``meta`` holds the schema version. Bumping :data:`SCHEMA_VERSION`
invalidates existing stores *cleanly*: opening a store written under a
different version drops and recreates all tables instead of trying to
read incompatible rows.
"""

from __future__ import annotations

#: Bump when the table layout or the cell payload format changes
#: incompatibly; stores written under a different version are discarded
#: on open.
SCHEMA_VERSION = 1

#: All tables, indexes and names the store owns (dropped on migration).
TABLES = ("meta", "cells", "runs")

CREATE_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS cells (
    key        TEXT PRIMARY KEY,
    benchmark  TEXT NOT NULL,
    policy     TEXT NOT NULL,
    dbcs       INTEGER NOT NULL,
    payload    TEXT NOT NULL,
    run_id     TEXT,
    created_at REAL NOT NULL
);

CREATE INDEX IF NOT EXISTS idx_cells_triple
    ON cells (benchmark, policy, dbcs);

CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    status      TEXT NOT NULL,
    started_at  REAL NOT NULL,
    finished_at REAL,
    wall_time_s REAL,
    manifest    TEXT NOT NULL,
    cells_total INTEGER,
    hits_memory INTEGER,
    hits_store  INTEGER,
    computed    INTEGER
);
"""
