"""The sqlite-backed, content-addressed experiment store.

One :class:`ExperimentStore` wraps one sqlite database file. Cells are
addressed by the matrix runner's content digest, so *what* was computed
is the key and identical inputs land on identical rows no matter which
process, shard or machine computed them — merging two shard stores is a
plain ``INSERT OR IGNORE`` copy.

Concurrency: sqlite's own file locking is the arbiter. The store opens
in WAL mode with a generous busy timeout, every write is one immediate
transaction, and cell rows are immutable once written (``INSERT OR
IGNORE``: under a content key, both writers hold the same value). Many
writer processes — e.g. ``--shard 0/2`` and ``--shard 1/2`` pointed at
one file — can therefore share a store safely. Only the parent process
of a matrix run ever writes; pool workers stay side-effect-free.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from collections.abc import Iterator
from pathlib import Path

from repro.errors import ExperimentError
from repro.store import schema
from repro.store.serde import cell_from_payload, cell_to_payload

#: Write-transaction retries after sqlite reports the file locked. The
#: busy timeout already absorbs ordinary contention; retries cover the
#: rarer case where the timeout itself expires (e.g. a sibling shard
#: holding the lock through a slow checkpoint on networked storage).
_LOCK_RETRIES = 5
#: First retry delay in seconds; doubles each attempt (bounded, ~1.5 s
#: total across all five retries).
_LOCK_BACKOFF_S = 0.05


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    msg = str(exc).lower()
    return "locked" in msg or "busy" in msg


class ExperimentStore:
    """Persistent cache of matrix cells plus run provenance manifests."""

    def __init__(self, path: str | Path, *, timeout: float = 30.0):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self._path, timeout=timeout)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._migrate()

    # -- lifecycle -----------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _migrate(self) -> None:
        """Create tables; migrate or discard stores written under another schema.

        Versions in :data:`schema.UPGRADABLE_VERSIONS` migrate *in
        place*: their tables are a strict subset of the current layout,
        so the missing ones are created and every existing row survives
        (a v1 store keeps all its cells warm when the queue tables
        arrive). Any other foreign version is dropped wholesale — cells
        are pure caches, so nothing is lost but compute time.
        """
        with self._conn:
            found = self._schema_version()
            if (found is not None and found != schema.SCHEMA_VERSION
                    and found not in schema.UPGRADABLE_VERSIONS):
                for table in schema.TABLES:
                    self._conn.execute(f"DROP TABLE IF EXISTS {table}")
            self._conn.executescript(schema.CREATE_SQL)
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(schema.SCHEMA_VERSION)),
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("created_at", repr(time.time())),
            )

    def _write_with_retry(self, what: str, write) -> None:
        """Run one write transaction, retrying when sqlite holds the lock.

        ``write`` is re-invoked from scratch on every attempt (each call
        is one self-contained ``with self._conn`` transaction, so a
        failed attempt leaves nothing behind). Backoff doubles per
        retry; exhaustion raises a pointed :class:`ExperimentError`
        instead of leaking the raw sqlite exception.
        """
        delay = _LOCK_BACKOFF_S
        for attempt in range(_LOCK_RETRIES + 1):
            try:
                write()
                return
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc) or attempt == _LOCK_RETRIES:
                    if _is_locked(exc):
                        raise ExperimentError(
                            f"store {self._path} stayed locked while "
                            f"writing {what} ({_LOCK_RETRIES + 1} attempts "
                            f"over ~{delay - _LOCK_BACKOFF_S:.2f}s): "
                            f"another long-lived writer holds it — point "
                            f"each shard at its own store file and merge "
                            f"them afterwards (repro-store merge)"
                        ) from exc
                    raise
                time.sleep(delay)
                delay *= 2

    def _schema_version(self) -> int | None:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError:  # no meta table yet: fresh file
            return None
        return int(row[0]) if row else None

    # -- cells ---------------------------------------------------------------

    def get_cell(self, key: str):
        """The stored cell under ``key``, or ``None``."""
        row = self._conn.execute(
            "SELECT payload FROM cells WHERE key = ?", (key,)
        ).fetchone()
        return cell_from_payload(row[0]) if row else None

    def has_cell(self, key: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM cells WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def put_cell(self, key: str, cell, run_id: str | None = None) -> None:
        """Persist one cell atomically; content keys make re-puts no-ops."""
        def write() -> None:
            with self._conn:
                self._conn.execute(
                    "INSERT OR IGNORE INTO cells "
                    "(key, benchmark, policy, dbcs, payload, run_id, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (key, cell.benchmark, cell.policy, cell.dbcs,
                     cell_to_payload(cell), run_id, time.time()),
                )

        self._write_with_retry(f"cell {key[:12]}", write)

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]

    def iter_cells(
        self, limit: int | None = None
    ) -> Iterator[tuple[str, str, str, int, str | None, float]]:
        """Yield ``(key, benchmark, policy, dbcs, run_id, created_at)`` rows."""
        sql = ("SELECT key, benchmark, policy, dbcs, run_id, created_at "
               "FROM cells ORDER BY benchmark, policy, dbcs, key")
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        yield from self._conn.execute(sql)

    # -- run manifests -------------------------------------------------------

    def begin_run(self, manifest: dict) -> str:
        """Open a provenance record; returns the new run id."""
        run_id = uuid.uuid4().hex

        def write() -> None:
            with self._conn:
                self._conn.execute(
                    "INSERT INTO runs (run_id, status, started_at, manifest) "
                    "VALUES (?, 'running', ?, ?)",
                    (run_id, time.time(), json.dumps(manifest, sort_keys=True)),
                )

        self._write_with_retry(f"run manifest {run_id[:12]}", write)
        return run_id

    def finish_run(
        self,
        run_id: str,
        *,
        status: str = "complete",
        wall_time_s: float | None = None,
        cells_total: int | None = None,
        hits_memory: int | None = None,
        hits_store: int | None = None,
        computed: int | None = None,
    ) -> None:
        def write() -> None:
            with self._conn:
                self._conn.execute(
                    "UPDATE runs SET status = ?, finished_at = ?, "
                    "wall_time_s = ?, cells_total = ?, hits_memory = ?, "
                    "hits_store = ?, computed = ? WHERE run_id = ?",
                    (status, time.time(), wall_time_s, cells_total,
                     hits_memory, hits_store, computed, run_id),
                )

        self._write_with_retry(f"run record {run_id[:12]}", write)

    def runs(self) -> list[dict]:
        """All run manifests, most recent first, as plain dicts."""
        rows = self._conn.execute(
            "SELECT run_id, status, started_at, finished_at, wall_time_s, "
            "manifest, cells_total, hits_memory, hits_store, computed "
            "FROM runs ORDER BY started_at DESC"
        ).fetchall()
        return [
            {
                "run_id": r[0], "status": r[1], "started_at": r[2],
                "finished_at": r[3], "wall_time_s": r[4],
                "manifest": json.loads(r[5]), "cells_total": r[6],
                "hits_memory": r[7], "hits_store": r[8], "computed": r[9],
            }
            for r in rows
        ]

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate store statistics (the ``repro-store stats`` payload)."""
        from repro.store.queue import WorkQueue

        by_policy = dict(self._conn.execute(
            "SELECT policy, COUNT(*) FROM cells GROUP BY policy ORDER BY policy"
        ).fetchall())
        benchmarks = self._conn.execute(
            "SELECT COUNT(DISTINCT benchmark) FROM cells"
        ).fetchone()[0]
        run_rows = dict(self._conn.execute(
            "SELECT status, COUNT(*) FROM runs GROUP BY status"
        ).fetchall())
        return {
            "path": str(self._path),
            "schema_version": schema.SCHEMA_VERSION,
            "cells": len(self),
            "benchmarks": benchmarks,
            "cells_by_policy": by_policy,
            "runs": run_rows,
            "queue": WorkQueue(self).stats(),
            "size_bytes": os.path.getsize(self._path),
        }

    def gc(self, older_than_s: float | None = None) -> dict:
        """Drop stale rows, reap queue debris, and compact the file.

        With ``older_than_s``, cells created more than that many seconds
        ago are removed, and then run records finished (or, if never
        finished, started) before the same horizon — but only runs no
        surviving cell still points at, so live cells never lose their
        provenance; settled queue rows (``done``/``failed``) older than
        the horizon go too. Regardless of horizon, stale leases are
        reaped (expired claims reopen, or quarantine when out of
        attempts) and error-log rows whose queue row no longer exists
        are dropped. Without a horizon only the queue reaping and
        compaction happen.
        """
        from repro.store.queue import WorkQueue

        removed = {"cells": 0, "runs": 0, "queue_rows": 0,
                   "orphaned_errors": 0, "leases_reopened": 0,
                   "leases_quarantined": 0}
        queue = WorkQueue(self)
        reaped = queue.requeue_expired()
        removed["leases_reopened"] = reaped["reopened"]
        removed["leases_quarantined"] = reaped["quarantined"]
        if older_than_s is not None:
            horizon = time.time() - older_than_s
            with self._conn:
                cur = self._conn.execute(
                    "DELETE FROM cells WHERE created_at < ?", (horizon,)
                )
                removed["cells"] = cur.rowcount
                cur = self._conn.execute(
                    "DELETE FROM runs WHERE COALESCE(finished_at, started_at) "
                    "< ? AND run_id NOT IN "
                    "(SELECT run_id FROM cells WHERE run_id IS NOT NULL)",
                    (horizon,),
                )
                removed["runs"] = cur.rowcount
                cur = self._conn.execute(
                    "DELETE FROM queue WHERE status IN ('done', 'failed') "
                    "AND updated_at < ?",
                    (horizon,),
                )
                removed["queue_rows"] = cur.rowcount
        with self._conn:
            cur = self._conn.execute(
                "DELETE FROM queue_errors WHERE key NOT IN "
                "(SELECT key FROM queue)"
            )
            removed["orphaned_errors"] = cur.rowcount
        self._conn.execute("VACUUM")
        return removed

    def export(self, fileobj) -> int:
        """Write every cell as one JSON line; returns the row count."""
        count = 0
        for key, benchmark, policy, dbcs, run_id, created_at, payload in \
                self._conn.execute(
                    "SELECT key, benchmark, policy, dbcs, run_id, created_at, "
                    "payload FROM cells ORDER BY benchmark, policy, dbcs, key"
                ):
            fileobj.write(json.dumps(
                {"key": key, "benchmark": benchmark, "policy": policy,
                 "dbcs": dbcs, "run_id": run_id, "created_at": created_at,
                 "cell": json.loads(payload)},
                sort_keys=True,
            ) + "\n")
            count += 1
        return count

    def merge_from(self, other: "ExperimentStore | str | Path") -> int:
        """Copy all cells (and run manifests) from another store.

        Content keys make the merge idempotent and order-independent:
        rows already present are left untouched. Returns the number of
        newly added cells — the heart of the shard workflow, where each
        shard fills its own store and the union regenerates reports.

        A source written under a foreign, non-upgradable schema version
        is refused: opening it normally would drop its tables, and a
        merge must not destroy its source. Upgradable versions are fine
        — opening them migrates additively, losing nothing.
        """
        if not isinstance(other, ExperimentStore):
            found = _peek_schema_version(Path(other))
            if (found is not None and found != schema.SCHEMA_VERSION
                    and found not in schema.UPGRADABLE_VERSIONS):
                raise ExperimentError(
                    f"cannot merge from {other}: written under schema "
                    f"version {found}, this build expects "
                    f"{schema.SCHEMA_VERSION} (recompute the source instead)"
                )
        src = other if isinstance(other, ExperimentStore) else ExperimentStore(other)
        owned = src is not other
        try:
            before = len(self)
            with self._conn:
                for row in src._conn.execute(
                    "SELECT key, benchmark, policy, dbcs, payload, run_id, "
                    "created_at FROM cells"
                ):
                    self._conn.execute(
                        "INSERT OR IGNORE INTO cells (key, benchmark, policy, "
                        "dbcs, payload, run_id, created_at) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?)", row,
                    )
                for row in src._conn.execute(
                    "SELECT run_id, status, started_at, finished_at, "
                    "wall_time_s, manifest, cells_total, hits_memory, "
                    "hits_store, computed FROM runs"
                ):
                    self._conn.execute(
                        "INSERT OR IGNORE INTO runs (run_id, status, "
                        "started_at, finished_at, wall_time_s, manifest, "
                        "cells_total, hits_memory, hits_store, computed) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)", row,
                    )
            return len(self) - before
        finally:
            if owned:
                src.close()


def _peek_schema_version(path: Path) -> int | None:
    """Read a store file's schema version without migrating (or creating) it."""
    if not path.exists():
        return None
    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
    except sqlite3.OperationalError:  # no meta table: nothing to destroy
        return None
    finally:
        conn.close()
    return int(row[0]) if row else None


def open_store(path: str | Path) -> ExperimentStore:
    """Open (creating if needed) the store at ``path``."""
    return ExperimentStore(path)


def store_from_env(var: str = "REPRO_STORE") -> ExperimentStore:
    """Open the store named by the environment, or fail with guidance."""
    path = os.environ.get(var)
    if not path:
        raise ExperimentError(
            f"no store configured: set {var} or pass an explicit path"
        )
    return ExperimentStore(path)
