"""``repro-store`` — inspect and maintain persistent experiment stores.

Subcommands:

* ``ls``      — list stored cells (benchmark, policy, DBCs, key prefix).
* ``stats``   — cell/run counts, per-policy breakdown, file size.
* ``runs``    — provenance manifests of the recorded matrix runs.
* ``gc``      — drop rows older than a horizon and compact the file.
* ``export``  — dump every cell as JSON lines (stdout or ``--out``).
* ``merge``   — copy cells from other stores into this one (the shard
  union step: disjoint shard stores merge into one that regenerates
  reports bit-identically).
* ``queue``   — list work-queue rows (status, owner, lease, attempts).
* ``requeue`` — reopen expired claims now (``--failed`` also
  un-quarantines failed cells with a fresh retry budget).
* ``errors``  — the queue's persisted per-attempt error log.

``stats`` includes the queue-state block (open/claimed/done/failed
counts, oldest lease, attempt histogram) and ``gc`` also reaps stale
leases and orphaned error-log rows.

The target store is ``--store PATH`` or the ``REPRO_STORE`` environment
variable, matching ``repro-experiment``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.errors import ExperimentError
from repro.store.store import ExperimentStore
from repro.util.tables import format_table


def _open(args: argparse.Namespace, must_exist: bool = True) -> ExperimentStore:
    path = args.store or os.environ.get("REPRO_STORE")
    if not path:
        raise ExperimentError(
            "no store given: pass --store PATH or set REPRO_STORE"
        )
    if must_exist and not Path(path).exists():
        raise ExperimentError(f"store {path!r} does not exist")
    return ExperimentStore(path)


def _cmd_ls(args: argparse.Namespace) -> int:
    with _open(args) as store:
        rows = [
            [bench, policy, dbcs, key[:12], run_id[:8] if run_id else "-"]
            for key, bench, policy, dbcs, run_id, _ in
            store.iter_cells(limit=args.limit)
        ]
        total = len(store)
    print(format_table(
        ["Benchmark", "Policy", "DBCs", "Key", "Run"], rows,
        title=f"{total} stored cell(s)",
    ))
    if args.limit is not None and total > args.limit:
        print(f"... ({total - args.limit} more; raise --limit)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _open(args) as store:
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    with _open(args) as store:
        print(json.dumps(store.runs(), indent=2, sort_keys=True))
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    with _open(args) as store:
        removed = store.gc(older_than_s=args.older_than)
    print(f"removed {removed['cells']} cell(s), {removed['runs']} run(s), "
          f"{removed['queue_rows']} settled queue row(s), "
          f"{removed['orphaned_errors']} orphaned error(s); "
          f"{removed['leases_reopened']} expired lease(s) reopened, "
          f"{removed['leases_quarantined']} quarantined; store compacted")
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    from repro.store.queue import WorkQueue

    with _open(args) as store:
        queue = WorkQueue(store)
        rows = queue.jobs(status=args.status, limit=args.limit)
        counts = queue.counts()
    table = [
        [r["key"][:12], r["benchmark"], r["policy"], r["dbcs"], r["status"],
         r["owner"] or "-", f"{r['attempts']}/{r['max_attempts']}",
         r["cost_hint"]]
        for r in rows
    ]
    total = sum(counts.values())
    print(format_table(
        ["Key", "Benchmark", "Policy", "DBCs", "Status", "Owner",
         "Attempts", "Cost"],
        table,
        title=(f"{total} queue row(s): {counts['open']} open, "
               f"{counts['claimed']} claimed, {counts['done']} done, "
               f"{counts['failed']} failed"),
    ))
    return 0


def _cmd_requeue(args: argparse.Namespace) -> int:
    from repro.store.queue import WorkQueue

    with _open(args) as store:
        queue = WorkQueue(store)
        result = queue.requeue_expired()
        retried = queue.retry_failed() if args.failed else 0
    line = (f"reopened {result['reopened']} expired claim(s), "
            f"quarantined {result['quarantined']}")
    if args.failed:
        line += f", retrying {retried} failed cell(s)"
    print(line)
    return 0


def _cmd_errors(args: argparse.Namespace) -> int:
    from repro.store.queue import WorkQueue

    with _open(args) as store:
        rows = WorkQueue(store).errors(key=args.key, limit=args.limit)
    print(json.dumps(rows, indent=2, sort_keys=True))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    with _open(args) as store:
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                count = store.export(fh)
            print(f"exported {count} cell(s) to {args.out}")
        else:
            store.export(sys.stdout)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    with _open(args, must_exist=False) as store:
        for source in args.sources:
            if not Path(source).exists():
                raise ExperimentError(f"source store {source!r} does not exist")
            added = store.merge_from(source)
            print(f"merged {source}: +{added} cell(s)")
        print(f"store now holds {len(store)} cell(s)")
    return 0


def main_store(argv: Sequence[str] | None = None) -> int:
    """Inspect and maintain persistent experiment stores."""
    parser = argparse.ArgumentParser(
        prog="repro-store", description=main_store.__doc__
    )
    parser.add_argument("--store", default=None,
                        help="store database path (default: REPRO_STORE)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_ls = sub.add_parser("ls", help="list stored cells")
    p_ls.add_argument("--limit", type=int, default=50,
                      help="max rows to print (default 50)")
    p_ls.set_defaults(func=_cmd_ls)

    p_stats = sub.add_parser("stats", help="store statistics as JSON")
    p_stats.set_defaults(func=_cmd_stats)

    p_runs = sub.add_parser("runs", help="run provenance manifests as JSON")
    p_runs.set_defaults(func=_cmd_runs)

    p_gc = sub.add_parser("gc", help="drop stale rows and compact")
    p_gc.add_argument("--older-than", type=float, default=None, metavar="S",
                      help="also remove cells/runs older than S seconds")
    p_gc.set_defaults(func=_cmd_gc)

    p_export = sub.add_parser("export", help="dump cells as JSON lines")
    p_export.add_argument("--out", default=None,
                          help="output file (default: stdout)")
    p_export.set_defaults(func=_cmd_export)

    p_merge = sub.add_parser("merge", help="copy cells from other stores")
    p_merge.add_argument("sources", nargs="+",
                         help="source store database path(s)")
    p_merge.set_defaults(func=_cmd_merge)

    p_queue = sub.add_parser("queue", help="list work-queue rows")
    p_queue.add_argument("--status", default=None,
                         choices=("open", "claimed", "done", "failed"),
                         help="only rows in this state")
    p_queue.add_argument("--limit", type=int, default=50,
                         help="max rows to print (default 50)")
    p_queue.set_defaults(func=_cmd_queue)

    p_requeue = sub.add_parser(
        "requeue", help="reopen expired claims (and optionally failed cells)"
    )
    p_requeue.add_argument("--failed", action="store_true",
                           help="also un-quarantine failed cells with a "
                                "fresh retry budget")
    p_requeue.set_defaults(func=_cmd_requeue)

    p_errors = sub.add_parser("errors", help="queue error log as JSON")
    p_errors.add_argument("--key", default=None,
                          help="only errors of this cell key")
    p_errors.add_argument("--limit", type=int, default=50,
                          help="max rows to print (default 50)")
    p_errors.set_defaults(func=_cmd_errors)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ExperimentError as exc:
        print(f"repro-store: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - manual dispatch helper
    sys.exit(main_store())
