"""Persistent experiment store: resumable, shardable, provenance-tracked.

The matrix runner's content-keyed cell cache, made durable. Cells are
persisted in a sqlite database under the same digest that keys the
in-process cache, together with a run-manifest table recording *how*
each batch of cells was produced (profile, backend, search scale,
package and schema versions, wall time). ``run_matrix`` consults the
store before computing, writes back atomically from the parent process,
and therefore resumes killed runs and shares work across shards and
machines — see ``docs/experiments.md``.

The store also carries the claim-based distributed work queue
(:mod:`repro.store.queue`): matrices can be *enqueued* instead of run,
and any number of ``repro-worker`` processes sharing the store file pull
open cells, compute them, and commit results into the same cache.
"""

from repro.store.queue import ClaimedCell, QueueJob, WorkQueue
from repro.store.schema import SCHEMA_VERSION
from repro.store.serde import cell_from_payload, cell_to_payload
from repro.store.store import ExperimentStore, open_store, store_from_env

__all__ = [
    "SCHEMA_VERSION",
    "ExperimentStore",
    "open_store",
    "store_from_env",
    "cell_from_payload",
    "cell_to_payload",
    "WorkQueue",
    "QueueJob",
    "ClaimedCell",
]
