"""JSON serialization of matrix cells.

The store's one invariant is *bit-exact round-tripping*: a
:class:`~repro.eval.runner.CellResult` read back from disk must compare
equal — floats included — to the freshly computed one, so warm-store
re-runs produce byte-identical reports. Python's ``json`` guarantees
exactly that for finite floats (``repr`` round-trips IEEE doubles), so
the payload is plain JSON with sorted keys and no float formatting.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.eval.runner import CellResult
from repro.rtm.report import SimReport


def cell_to_payload(cell: CellResult) -> str:
    """Serialize one cell to its canonical JSON payload."""
    data = asdict(cell)
    data["report"]["per_dbc_shifts"] = list(cell.report.per_dbc_shifts)
    data["report"]["drift_histogram"] = [
        list(pair) for pair in cell.report.drift_histogram
    ]
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def cell_from_payload(payload: str) -> CellResult:
    """Rebuild a cell from its JSON payload (inverse of ``cell_to_payload``)."""
    data = json.loads(payload)
    report = data.pop("report")
    report["per_dbc_shifts"] = tuple(report["per_dbc_shifts"])
    # ``.get``: payloads written before the fault axis carry no
    # histogram — SimReport's defaults cover the other fault fields.
    report["drift_histogram"] = tuple(
        (int(drift), int(count))
        for drift, count in report.get("drift_histogram", ())
    )
    return CellResult(report=SimReport(**report), **data)
