"""Claim-based work queue on top of the experiment store.

The store's ``queue`` table promotes the content-addressed cell cache
into a *pull* scheduler: any number of worker processes — on any number
of machines sharing one store file (or one file server) — repeatedly
claim batches of open cells, compute them through the ordinary
evaluation stack, and commit the results as normal ``cells`` rows. The
queue key *is* the cell key, so queue jobs, warm cells and in-flight
claims all live in one namespace: a matrix whose cells are already
stored enqueues nothing, and a report regeneration neither knows nor
cares which machine computed each cell.

Design points, in claim order:

* **Atomic batch claims.** :meth:`WorkQueue.claim` grabs up to ``limit``
  cells in one ``BEGIN IMMEDIATE`` transaction — one commit per batch,
  not per cell, which amortizes sqlite's commit latency across the
  batch and rides the store's lock-retry backoff under contention.
* **Work stealing via leases.** A claim holds a lease
  (``lease_expiry``); workers renew it by heartbeat while computing.
  Claims whose lease has expired are claimable again by anyone — a
  SIGKILLed worker silently returns its cells to the pool, no janitor
  required (though :meth:`requeue_expired` lets a dispatcher reap
  eagerly and observably).
* **Expensive cells first.** Open cells are handed out in descending
  ``cost_hint`` order (longest-processing-time-first): the big streamed
  workloads start immediately and the small kernels pack around them,
  which is what makes pull scheduling beat static ``--shard``
  partitioning on skewed matrices.
* **Bounded retries with a persisted error log.** Every failed attempt
  appends to ``queue_errors``; once ``attempts`` reaches
  ``max_attempts`` the cell is quarantined as ``failed`` and never
  claimed again (until :meth:`retry_failed` resets it).

Both claim queries are satisfied by covering indexes —
``idx_queue_claim (status, lease_expiry)`` for expired-lease stealing
and ``idx_queue_open (status, cost_hint DESC, key)`` for fresh work —
so claiming stays O(log n + batch) as queues grow to millions of cells.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.store.store import ExperimentStore

#: Default retry budget: a cell failing this many attempts is quarantined.
DEFAULT_MAX_ATTEMPTS = 3

#: Default claim lease in seconds; workers heartbeat well inside it.
DEFAULT_LEASE_S = 60.0


@dataclass(frozen=True)
class QueueJob:
    """One unit of work to submit: a cell key plus its recompute recipe."""

    key: str
    benchmark: str
    policy: str
    dbcs: int
    job: dict
    cost_hint: int = 0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS


@dataclass(frozen=True)
class ClaimedCell:
    """One claimed unit of work, as handed to a worker."""

    key: str
    benchmark: str
    policy: str
    dbcs: int
    job: dict
    attempts: int
    lease_expiry: float


class WorkQueue:
    """Claimable work table of one :class:`ExperimentStore`."""

    def __init__(self, store: ExperimentStore):
        self._store = store
        self._conn = store._conn

    # -- submission ----------------------------------------------------------

    def submit(self, jobs: Iterable[QueueJob]) -> dict:
        """Enqueue jobs in one transaction; content keys deduplicate.

        Returns ``{"submitted": n, "already_queued": n,
        "already_stored": n}``: keys with a stored cell are skipped
        outright (the work is done — the queue never re-opens a computed
        cell), keys already present in the queue are left untouched in
        whatever state they are (``INSERT OR IGNORE``; resubmitting a
        matrix mid-flight is a no-op, and quarantined cells stay
        quarantined until :meth:`retry_failed`).
        """
        jobs = list(jobs)
        counts = {"submitted": 0, "already_queued": 0, "already_stored": 0}

        def write() -> None:
            counts.update(submitted=0, already_queued=0, already_stored=0)
            now = time.time()
            with self._conn:
                for job in jobs:
                    stored = self._conn.execute(
                        "SELECT 1 FROM cells WHERE key = ?", (job.key,)
                    ).fetchone()
                    if stored is not None:
                        counts["already_stored"] += 1
                        continue
                    cur = self._conn.execute(
                        "INSERT OR IGNORE INTO queue (key, benchmark, policy, "
                        "dbcs, job, status, attempts, max_attempts, "
                        "cost_hint, submitted_at, updated_at) "
                        "VALUES (?, ?, ?, ?, ?, 'open', 0, ?, ?, ?, ?)",
                        (job.key, job.benchmark, job.policy, job.dbcs,
                         json.dumps(job.job, sort_keys=True),
                         int(job.max_attempts), int(job.cost_hint), now, now),
                    )
                    if cur.rowcount:
                        counts["submitted"] += 1
                    else:
                        counts["already_queued"] += 1

        self._store._write_with_retry(f"queue submit x{len(jobs)}", write)
        return counts

    # -- claiming ------------------------------------------------------------

    def claim(
        self, limit: int, owner: str, lease_s: float = DEFAULT_LEASE_S
    ) -> list[ClaimedCell]:
        """Atomically claim up to ``limit`` cells for ``owner``.

        One immediate transaction: expired claims are stolen first
        (oldest lease first — the longest-dead worker's cells return to
        the pool soonest), then open cells in descending ``cost_hint``
        order. Expired claims that are out of attempts are quarantined
        instead of re-handed out. Returns the claimed cells with their
        parsed job recipes; an empty list means nothing is claimable.
        """
        if limit < 1:
            raise ExperimentError(f"claim limit must be >= 1, got {limit}")
        if not owner:
            raise ExperimentError("claim needs a non-empty owner id")
        # Cheap read-only probe: idle workers polling an empty (or fully
        # claimed) queue must not take the write lock every poll tick.
        now = time.time()
        if not self._claimable_exists(now):
            return []
        claimed: list[ClaimedCell] = []

        def write() -> None:
            claimed.clear()
            now = time.time()
            conn = self._conn
            conn.execute("BEGIN IMMEDIATE")
            try:
                # Quarantine expired claims that are out of retry budget.
                for key, attempts in conn.execute(
                    "SELECT key, attempts FROM queue WHERE status = 'claimed' "
                    "AND lease_expiry <= ? AND attempts >= max_attempts",
                    (now,),
                ).fetchall():
                    self._log_error(
                        key, None, attempts,
                        "lease expired with retry budget exhausted", now,
                    )
                    conn.execute(
                        "UPDATE queue SET status = 'failed', owner = NULL, "
                        "lease_expiry = NULL, updated_at = ?, error = "
                        "COALESCE(error, 'lease expired; retries exhausted') "
                        "WHERE key = ?",
                        (now, key),
                    )
                rows = conn.execute(
                    "SELECT key FROM queue WHERE status = 'claimed' "
                    "AND lease_expiry <= ? ORDER BY lease_expiry LIMIT ?",
                    (now, limit),
                ).fetchall()
                need = limit - len(rows)
                if need > 0:
                    rows += conn.execute(
                        "SELECT key FROM queue WHERE status = 'open' "
                        "ORDER BY cost_hint DESC, key LIMIT ?",
                        (need,),
                    ).fetchall()
                expiry = now + lease_s
                for (key,) in rows:
                    conn.execute(
                        "UPDATE queue SET status = 'claimed', owner = ?, "
                        "lease_expiry = ?, attempts = attempts + 1, "
                        "updated_at = ? WHERE key = ?",
                        (owner, expiry, now, key),
                    )
                    row = conn.execute(
                        "SELECT benchmark, policy, dbcs, job, attempts "
                        "FROM queue WHERE key = ?",
                        (key,),
                    ).fetchone()
                    claimed.append(ClaimedCell(
                        key=key, benchmark=row[0], policy=row[1],
                        dbcs=row[2], job=json.loads(row[3]),
                        attempts=row[4], lease_expiry=expiry,
                    ))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

        self._store._write_with_retry(f"queue claim x{limit}", write)
        # Claim selection order is the work order: stolen leases first
        # (oldest expiry first), then fresh cells biggest-first.
        return claimed

    def _claimable_exists(self, now: float) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM queue WHERE status = 'open' "
            "OR (status = 'claimed' AND lease_expiry <= ?) LIMIT 1",
            (now,),
        ).fetchone()
        return row is not None

    # -- worker lifecycle ----------------------------------------------------

    def heartbeat(self, owner: str, lease_s: float = DEFAULT_LEASE_S) -> int:
        """Renew every lease ``owner`` currently holds; returns the count."""
        renewed = 0

        def write() -> None:
            nonlocal renewed
            now = time.time()
            with self._conn:
                cur = self._conn.execute(
                    "UPDATE queue SET lease_expiry = ?, updated_at = ? "
                    "WHERE owner = ? AND status = 'claimed'",
                    (now + lease_s, now, owner),
                )
                renewed = cur.rowcount

        self._store._write_with_retry(f"queue heartbeat {owner}", write)
        return renewed

    def complete(self, key: str, owner: str) -> bool:
        """Mark one claimed cell done. Returns ``False`` when the lease
        was lost (another worker stole the cell after expiry) — harmless,
        since both computed the identical content-keyed result."""
        done = False

        def write() -> None:
            nonlocal done
            with self._conn:
                cur = self._conn.execute(
                    "UPDATE queue SET status = 'done', lease_expiry = NULL, "
                    "error = NULL, updated_at = ? "
                    "WHERE key = ? AND status = 'claimed' AND owner = ?",
                    (time.time(), key, owner),
                )
                done = bool(cur.rowcount)

        self._store._write_with_retry(f"queue complete {key[:12]}", write)
        return done

    def fail(self, key: str, owner: str, error: str) -> str:
        """Record one failed attempt; requeue or quarantine.

        The error lands in the persisted ``queue_errors`` log either
        way. While attempts remain the cell reopens for any worker;
        once the budget is spent it is quarantined as ``failed``.
        Returns the resulting status (``open``/``failed``), or
        ``"lost"`` when the lease was already stolen (the error is
        still logged).
        """
        outcome = "lost"

        def write() -> None:
            nonlocal outcome
            now = time.time()
            conn = self._conn
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT attempts, max_attempts FROM queue "
                    "WHERE key = ? AND status = 'claimed' AND owner = ?",
                    (key, owner),
                ).fetchone()
                attempts = row[0] if row else None
                self._log_error(key, owner, attempts or 0, error, now)
                if row is None:
                    outcome = "lost"
                elif row[0] >= row[1]:
                    conn.execute(
                        "UPDATE queue SET status = 'failed', owner = NULL, "
                        "lease_expiry = NULL, error = ?, updated_at = ? "
                        "WHERE key = ?",
                        (error, now, key),
                    )
                    outcome = "failed"
                else:
                    conn.execute(
                        "UPDATE queue SET status = 'open', owner = NULL, "
                        "lease_expiry = NULL, error = ?, updated_at = ? "
                        "WHERE key = ?",
                        (error, now, key),
                    )
                    outcome = "open"
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

        self._store._write_with_retry(f"queue fail {key[:12]}", write)
        return outcome

    def release(self, owner: str) -> int:
        """Return every cell ``owner`` still claims to the open pool
        (graceful shutdown with unfinished claims); returns the count."""
        released = 0

        def write() -> None:
            nonlocal released
            with self._conn:
                cur = self._conn.execute(
                    "UPDATE queue SET status = 'open', owner = NULL, "
                    "lease_expiry = NULL, updated_at = ? "
                    "WHERE owner = ? AND status = 'claimed'",
                    (time.time(), owner),
                )
                released = cur.rowcount

        self._store._write_with_retry(f"queue release {owner}", write)
        return released

    # -- maintenance ---------------------------------------------------------

    def requeue_expired(self) -> dict:
        """Reap stale leases eagerly: expired claims reopen, and those
        out of retry budget are quarantined. Claims do this lazily
        anyway; a dispatcher calls this to make crashed workers visible
        before any claim happens to land on their cells. Returns
        ``{"reopened": n, "quarantined": n}``."""
        result = {"reopened": 0, "quarantined": 0}

        def write() -> None:
            now = time.time()
            conn = self._conn
            conn.execute("BEGIN IMMEDIATE")
            try:
                for key, attempts in conn.execute(
                    "SELECT key, attempts FROM queue WHERE status = 'claimed' "
                    "AND lease_expiry <= ? AND attempts >= max_attempts",
                    (now,),
                ).fetchall():
                    self._log_error(
                        key, None, attempts,
                        "lease expired with retry budget exhausted", now,
                    )
                    conn.execute(
                        "UPDATE queue SET status = 'failed', owner = NULL, "
                        "lease_expiry = NULL, updated_at = ?, error = "
                        "COALESCE(error, 'lease expired; retries exhausted') "
                        "WHERE key = ?",
                        (now, key),
                    )
                    result["quarantined"] += 1
                cur = conn.execute(
                    "UPDATE queue SET status = 'open', owner = NULL, "
                    "lease_expiry = NULL, updated_at = ? "
                    "WHERE status = 'claimed' AND lease_expiry <= ?",
                    (now, now),
                )
                result["reopened"] = cur.rowcount
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

        self._store._write_with_retry("queue requeue", write)
        return result

    def retry_failed(self) -> int:
        """Un-quarantine every failed cell with a fresh retry budget;
        the error log keeps the old failures. Returns the count."""
        retried = 0

        def write() -> None:
            nonlocal retried
            with self._conn:
                cur = self._conn.execute(
                    "UPDATE queue SET status = 'open', attempts = 0, "
                    "owner = NULL, lease_expiry = NULL, updated_at = ? "
                    "WHERE status = 'failed'",
                    (time.time(),),
                )
                retried = cur.rowcount

        self._store._write_with_retry("queue retry-failed", write)
        return retried

    def _log_error(
        self, key: str, owner: str | None, attempt: int, error: str,
        now: float,
    ) -> None:
        """Append to the error log (caller holds the transaction)."""
        self._conn.execute(
            "INSERT INTO queue_errors (key, owner, attempt, error, logged_at) "
            "VALUES (?, ?, ?, ?, ?)",
            (key, owner, attempt, error, now),
        )

    # -- observability -------------------------------------------------------

    def counts(self) -> dict:
        """Row count per status (absent statuses are 0)."""
        counts = {"open": 0, "claimed": 0, "done": 0, "failed": 0}
        counts.update(self._conn.execute(
            "SELECT status, COUNT(*) FROM queue GROUP BY status"
        ).fetchall())
        return counts

    def pending(self) -> int:
        """Cells not yet settled (open + claimed)."""
        counts = self.counts()
        return counts["open"] + counts["claimed"]

    def stats(self) -> dict:
        """Queue-state payload for ``repro-store stats``."""
        now = time.time()
        oldest = self._conn.execute(
            "SELECT MIN(lease_expiry) FROM queue WHERE status = 'claimed'"
        ).fetchone()[0]
        expired = self._conn.execute(
            "SELECT COUNT(*) FROM queue WHERE status = 'claimed' "
            "AND lease_expiry <= ?",
            (now,),
        ).fetchone()[0]
        attempts = {
            str(a): n for a, n in self._conn.execute(
                "SELECT attempts, COUNT(*) FROM queue GROUP BY attempts "
                "ORDER BY attempts"
            ).fetchall()
        }
        errors = self._conn.execute(
            "SELECT COUNT(*) FROM queue_errors"
        ).fetchone()[0]
        return {
            **self.counts(),
            "oldest_lease_expiry": oldest,
            "expired_leases": expired,
            "attempt_histogram": attempts,
            "error_log_rows": errors,
        }

    def done_among(self, keys: Sequence[str]) -> set[str]:
        """The subset of ``keys`` whose queue row is ``done`` — i.e.
        cells computed by queue workers rather than by a local run."""
        done: set[str] = set()
        keys = list(keys)
        for i in range(0, len(keys), 500):
            chunk = keys[i:i + 500]
            done.update(k for (k,) in self._conn.execute(
                f"SELECT key FROM queue WHERE status = 'done' AND key IN "
                f"({','.join('?' * len(chunk))})",
                chunk,
            ).fetchall())
        return done

    def jobs(
        self, status: str | None = None, limit: int | None = None
    ) -> list[dict]:
        """Queue rows (without the job payloads) for listing."""
        sql = ("SELECT key, benchmark, policy, dbcs, status, owner, "
               "lease_expiry, attempts, max_attempts, cost_hint, error, "
               "submitted_at, updated_at FROM queue")
        params: tuple = ()
        if status is not None:
            sql += " WHERE status = ?"
            params = (status,)
        sql += " ORDER BY submitted_at, key"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        names = ("key", "benchmark", "policy", "dbcs", "status", "owner",
                 "lease_expiry", "attempts", "max_attempts", "cost_hint",
                 "error", "submitted_at", "updated_at")
        return [dict(zip(names, row))
                for row in self._conn.execute(sql, params)]

    def errors(self, key: str | None = None, limit: int = 50) -> list[dict]:
        """The persisted error log, most recent first."""
        sql = ("SELECT key, owner, attempt, error, logged_at "
               "FROM queue_errors")
        params: tuple = ()
        if key is not None:
            sql += " WHERE key = ?"
            params = (key,)
        sql += f" ORDER BY id DESC LIMIT {int(limit)}"
        names = ("key", "owner", "attempt", "error", "logged_at")
        return [dict(zip(names, row))
                for row in self._conn.execute(sql, params)]
