"""Whole-program placement: one memory layout for many access sequences.

The offset-assignment methodology (and the paper's evaluation) places
every access sequence independently — each procedure gets the whole
memory. A real compiler must commit to *one* layout: variables shared
between sequences (globals, communication buffers) live at one location,
and every sequence pays its shifts under that common placement.

This module provides that program-level flow: sequences are fused into a
single phase-ordered super-sequence (which is exactly the structure the
DMA heuristic exploits — per-sequence locals become disjoint chains),
any registered policy places the fused sequence, and the result is
scored per sequence under the paper's cost conventions (each sequence
starts warm, no shifts are charged between sequences).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import shift_cost
from repro.core.placement import Placement
from repro.core.policies import Policy, get_policy
from repro.errors import CapacityError, PlacementError
from repro.trace.generators.synthetic import concat_sequences
from repro.trace.sequence import AccessSequence


@dataclass(frozen=True)
class ProgramPlacement:
    """A unified layout plus its per-sequence cost breakdown."""

    placement: Placement
    per_sequence_costs: dict[str, int] = field(default_factory=dict)

    @property
    def total_cost(self) -> int:
        return sum(self.per_sequence_costs.values())


def fuse_sequences(
    sequences: Sequence[AccessSequence], name: str = "program"
) -> AccessSequence:
    """Concatenate sequences into one phase-ordered super-sequence.

    Same-named variables are shared (they are the program's globals);
    distinct locals of different sequences appear in different phases of
    the fused sequence, so their lifespans are disjoint by construction
    and Algorithm 1 separates them automatically.
    """
    if not sequences:
        raise PlacementError("cannot fuse zero sequences")
    return concat_sequences(list(sequences), name=name)


def evaluate_program(
    placement: Placement,
    sequences: Sequence[AccessSequence],
) -> dict[str, int]:
    """Per-sequence shift cost of one common placement.

    Each sequence is charged independently (warm start per sequence,
    Fig. 3's convention); keys fall back to ``seq<i>`` for unnamed
    sequences.
    """
    costs: dict[str, int] = {}
    for i, seq in enumerate(sequences):
        key = seq.name or f"seq{i}"
        if key in costs:
            key = f"{key}#{i}"
        costs[key] = shift_cost(seq, placement)
    return costs


def place_program(
    sequences: Sequence[AccessSequence],
    num_dbcs: int,
    capacity: int,
    policy: Policy | str = "DMA-SR",
    rng: int | np.random.Generator | None = None,
) -> ProgramPlacement:
    """One layout for all sequences, scored per sequence.

    ``policy`` may be a registered policy name or a
    :class:`~repro.core.policies.Policy` instance.
    """
    if isinstance(policy, str):
        policy = get_policy(policy)
    fused = fuse_sequences(sequences)
    if fused.num_variables > num_dbcs * capacity:
        raise CapacityError(
            f"program needs {fused.num_variables} locations, device has "
            f"{num_dbcs} x {capacity}"
        )
    placement = policy.place(fused, num_dbcs, capacity, rng=rng)
    return ProgramPlacement(
        placement=placement,
        per_sequence_costs=evaluate_program(placement, sequences),
    )


def best_program_placement(
    sequences: Sequence[AccessSequence],
    num_dbcs: int,
    capacity: int,
    policies: Sequence[str] = ("AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR"),
    rng: int | np.random.Generator | None = None,
) -> tuple[str, ProgramPlacement]:
    """Try several policies on the fused program and keep the cheapest."""
    if not policies:
        raise PlacementError("need at least one candidate policy")
    best_name: str | None = None
    best: ProgramPlacement | None = None
    for name in policies:
        candidate = place_program(
            sequences, num_dbcs, capacity, policy=name, rng=rng
        )
        if best is None or candidate.total_cost < best.total_cost:
            best_name, best = name, candidate
    assert best_name is not None and best is not None
    return best_name, best


def per_sequence_reference(
    sequences: Sequence[AccessSequence],
    num_dbcs: int,
    capacity: int,
    policy: Policy | str = "DMA-SR",
    rng: int | np.random.Generator | None = None,
) -> int:
    """The (unrealizable) per-sequence total: every sequence gets its own
    private layout of the whole device. A lower-is-better reference for
    how much the single-layout constraint costs."""
    if isinstance(policy, str):
        policy = get_policy(policy)
    total = 0
    for seq in sequences:
        placement = policy.place(seq, num_dbcs, capacity, rng=rng)
        total += shift_cost(seq, placement)
    return total
