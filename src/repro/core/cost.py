"""Analytic shift-cost model (Sec. II-B, conventions fixed by Fig. 3).

The cost of a placement for an access sequence is the total number of RTM
shifts a minimal controller executes: the sequence splits into per-DBC
subsequences, and within a DBC the cost of consecutive accesses ``u, v``
is ``|loc(u) - loc(v)|``. The first access of each DBC is free (the port
starts aligned to it) — this is the convention under which Fig. 3's
39-vs-11 arithmetic holds, and it is applied to every policy alike.

With multiple ports per track the controller picks the nearest port; the
multi-port path mirrors :mod:`repro.rtm.device` exactly, so the analytic
model and the simulator agree by construction (tested).
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import Placement
from repro.errors import PlacementError
from repro.rtm.ports import PortPolicy, port_positions, select_port
from repro.trace.sequence import AccessSequence


def shift_cost(
    sequence: AccessSequence,
    placement: Placement,
    ports: int = 1,
    domains: int | None = None,
    first_access_free: bool = True,
) -> int:
    """Total shifts to serve ``sequence`` under ``placement``.

    ``ports``/``domains`` describe the track geometry; the single-port
    case needs no geometry (distances are position differences). For
    ``ports > 1``, ``domains`` (the track length) is required because port
    spacing depends on it.
    """
    return sum(
        per_dbc_shift_costs(
            sequence, placement, ports=ports, domains=domains,
            first_access_free=first_access_free,
        )
    )


def per_dbc_shift_costs(
    sequence: AccessSequence,
    placement: Placement,
    ports: int = 1,
    domains: int | None = None,
    first_access_free: bool = True,
) -> list[int]:
    """Per-DBC shift totals (the ``S0``/``S1`` split costs of Fig. 3)."""
    if ports == 1:
        return _single_port_costs(sequence, placement, first_access_free)
    if domains is None:
        raise PlacementError("multi-port cost needs the track length (domains)")
    return _multi_port_costs(sequence, placement, ports, domains, first_access_free)


def _single_port_costs(
    sequence: AccessSequence, placement: Placement, first_access_free: bool
) -> list[int]:
    dbc_of, pos_of = placement.as_arrays(sequence)
    codes = sequence.codes
    costs = [0] * placement.num_dbcs
    if codes.size == 0:
        return costs
    d = dbc_of[codes]
    p = pos_of[codes]
    order = np.argsort(d, kind="stable")
    ds = d[order]
    ps = p[order]
    if ds.size > 1:
        same = ds[1:] == ds[:-1]
        diffs = np.abs(np.diff(ps))
        per_dbc = np.bincount(
            ds[1:][same], weights=diffs[same], minlength=placement.num_dbcs
        )
    else:
        per_dbc = np.zeros(placement.num_dbcs)
    if not first_access_free:
        # Cold start: the single port sits at the track centre (see
        # repro.rtm.ports.port_positions); first access pays the distance.
        firsts = np.flatnonzero(np.r_[True, ds[1:] != ds[:-1]])
        for idx in firsts:
            dbc = int(ds[idx])
            centre = _centre_position(placement, dbc)
            per_dbc[dbc] += abs(int(ps[idx]) - centre)
    return [int(c) for c in per_dbc]


def _centre_position(placement: Placement, dbc: int) -> int:
    # Track length defaults to the DBC's fill when unknown; the cold-start
    # path that needs exact geometry goes through the simulator instead.
    fill = max(len(placement.dbc_lists()[dbc]), 1)
    return port_positions(fill, 1)[0]


def _multi_port_costs(
    sequence: AccessSequence,
    placement: Placement,
    ports: int,
    domains: int,
    first_access_free: bool,
) -> list[int]:
    dbc_of, pos_of = placement.as_arrays(sequence)
    codes = sequence.codes
    positions = port_positions(domains, ports)
    offsets = [0] * placement.num_dbcs
    aligned = [False] * placement.num_dbcs
    costs = [0] * placement.num_dbcs
    for c in codes:
        dbc = int(dbc_of[c])
        slot = int(pos_of[c])
        if slot >= domains:
            raise PlacementError(
                f"slot {slot} outside a {domains}-domain track"
            )
        _port, delta = select_port(
            positions, offsets[dbc], slot, PortPolicy.NEAREST
        )
        offsets[dbc] += delta
        if not aligned[dbc]:
            aligned[dbc] = True
            if first_access_free:
                delta = 0
        costs[dbc] += abs(delta)
    return costs


def cost_from_arrays(
    codes: np.ndarray,
    dbc_of: np.ndarray,
    pos_of: np.ndarray,
    num_dbcs: int,
) -> int:
    """Raw fast path used by the GA's fitness loop (single port, warm start).

    ``dbc_of``/``pos_of`` are indexed by variable code, as produced by
    :meth:`Placement.as_arrays`, but callers may build them directly from a
    mutable individual without constructing a :class:`Placement`.
    """
    if codes.size <= 1:
        return 0
    d = dbc_of[codes]
    p = pos_of[codes]
    order = np.argsort(d, kind="stable")
    ds = d[order]
    ps = p[order]
    same = ds[1:] == ds[:-1]
    return int(np.abs(np.diff(ps))[same].sum())
