"""Analytic shift-cost model (Sec. II-B, conventions fixed by Fig. 3).

The cost of a placement for an access sequence is the total number of RTM
shifts a minimal controller executes: the sequence splits into per-DBC
subsequences, and within a DBC the cost of consecutive accesses ``u, v``
is ``|loc(u) - loc(v)|``. The first access of each DBC is free (the port
starts aligned to it) — this is the convention under which Fig. 3's
39-vs-11 arithmetic holds, and it is applied to every policy alike.

The model and the trace-driven simulator are two views of the same
kernel: both delegate to :mod:`repro.engine`, so they agree by
construction rather than by parallel implementations. Pass ``domains``
(the track length) to evaluate against real geometry — required for
``ports > 1`` because port spacing depends on it, and required for the
cold-start charge (``first_access_free=False``) to match the simulator
exactly. Without ``domains``, the legacy geometry-free behaviour is
kept: warm-start costs are pure position differences, and the cold-start
charge guesses the track length from each DBC's fill.
"""

from __future__ import annotations

import numpy as np

from collections.abc import Sequence

from repro.core.placement import Placement
from repro.engine import (
    ShiftRequest,
    evaluate_batch,
    get_backend,
    port_positions,
    single_port_warm_total,
    stack_candidate_arrays,
)
from repro.engine.compile import compile_access_arrays
from repro.errors import PlacementError
from repro.trace.sequence import AccessSequence


def shift_cost(
    sequence: AccessSequence,
    placement: Placement,
    ports: int = 1,
    domains: int | None = None,
    first_access_free: bool = True,
    backend: object = None,
) -> int:
    """Total shifts to serve ``sequence`` under ``placement``.

    ``ports``/``domains`` describe the track geometry; the single-port
    warm-start case needs no geometry (distances are position
    differences). For ``ports > 1``, ``domains`` (the track length) is
    required because port spacing depends on it.
    """
    return sum(
        per_dbc_shift_costs(
            sequence, placement, ports=ports, domains=domains,
            first_access_free=first_access_free, backend=backend,
        )
    )


def per_dbc_shift_costs(
    sequence: AccessSequence,
    placement: Placement,
    ports: int = 1,
    domains: int | None = None,
    first_access_free: bool = True,
    backend: object = None,
) -> list[int]:
    """Per-DBC shift totals (the ``S0``/``S1`` split costs of Fig. 3)."""
    if ports > 1 and domains is None:
        raise PlacementError("multi-port cost needs the track length (domains)")
    num_dbcs = placement.num_dbcs
    if len(sequence) == 0:
        return [0] * num_dbcs
    dbc, slot = compile_access_arrays(sequence, placement)
    max_slot = int(slot.max())
    if domains is not None and max_slot >= domains:
        raise PlacementError(
            f"slot {max_slot} outside a {domains}-domain track"
        )
    # Without geometry the cold-start charge cannot know the real track
    # length; keep the legacy fill-based guess on that path only, and run
    # the engine warm (the guess is added on top).
    legacy_cold = domains is None and not first_access_free
    result = get_backend(backend).run(
        ShiftRequest(
            dbc=dbc,
            slot=slot,
            num_dbcs=num_dbcs,
            domains=domains if domains is not None else max_slot + 1,
            ports=ports,
            warm_start=first_access_free or legacy_cold,
        )
    )
    costs = [int(c) for c in result.per_dbc_shifts]
    if legacy_cold:
        for dbc_index, surcharge in _fill_cold_surcharges(placement, dbc, slot):
            costs[dbc_index] += surcharge
    return costs


def _fill_cold_surcharges(
    placement: Placement, dbc: np.ndarray, slot: np.ndarray
) -> list[tuple[int, int]]:
    """Legacy cold-start charges when the track length is unknown.

    Each accessed DBC pays the distance from a port guessed to sit at the
    centre of its *fill* (not the real track) to its first accessed slot.
    Kept only for geometry-free callers; pass ``domains`` for charges
    that match the simulator exactly.
    """
    order = np.argsort(dbc, kind="stable")
    ds = dbc[order]
    ss = slot[order]
    first = np.flatnonzero(np.r_[True, ds[1:] != ds[:-1]])
    charges = []
    for idx in first:
        dbc_index = int(ds[idx])
        fill = max(len(placement.dbc_lists()[dbc_index]), 1)
        centre = port_positions(fill, 1)[0]
        charges.append((dbc_index, abs(int(ss[idx]) - centre)))
    return charges


def cost_from_arrays(
    codes: np.ndarray,
    dbc_of: np.ndarray,
    pos_of: np.ndarray,
    num_dbcs: int,
) -> int:
    """Raw fast path for one candidate (single port, warm start).

    ``dbc_of``/``pos_of`` are indexed by variable code, as produced by
    :meth:`Placement.as_arrays`, but callers may build them directly from a
    mutable individual without constructing a :class:`Placement`. Scoring
    whole populations goes through :func:`repro.engine.evaluate_batch`
    (stack the candidates into ``(K, V)`` matrices) — see
    :func:`shift_costs_batch` for the :class:`Placement`-level wrapper.
    """
    if codes.size <= 1:
        return 0
    return single_port_warm_total(dbc_of[codes], pos_of[codes])


def stack_placement_lists(
    sequence: AccessSequence,
    candidates: Sequence[Sequence[Sequence[str]]],
) -> tuple[np.ndarray, np.ndarray]:
    """``(K, V)`` candidate matrices from per-DBC variable-*name* lists.

    The sequence-aware twin of
    :func:`repro.engine.stack_candidate_arrays`: each candidate is the
    searchers' list-of-lists shape with variable names instead of codes.
    """
    return stack_candidate_arrays(
        candidates, sequence.num_variables, code_of=sequence.index_of
    )


def shift_costs_batch(
    sequence: AccessSequence,
    placements: Sequence[Placement],
    ports: int = 1,
    domains: int | None = None,
    first_access_free: bool = True,
) -> np.ndarray:
    """Per-candidate totals for many placements of one sequence.

    The :class:`Placement`-level view of the engine's batched evaluator:
    stacks every candidate's code-indexed arrays and scores the whole
    population in one vectorized pass. All candidates must place every
    sequence variable. Cold start (``first_access_free=False``) requires
    ``domains``, matching the simulator's charge exactly (the legacy
    fill-based guess of :func:`per_dbc_shift_costs` is not replicated
    here).
    """
    placements = list(placements)
    if not placements:
        return np.zeros(0, dtype=np.int64)
    if not first_access_free and domains is None:
        raise PlacementError("cold-start batch cost needs the track length (domains)")
    num_dbcs = max(p.num_dbcs for p in placements)
    n = sequence.num_variables
    dbc_of = np.empty((len(placements), n), dtype=np.int64)
    pos_of = np.empty((len(placements), n), dtype=np.int64)
    for k, placement in enumerate(placements):
        dbc_of[k], pos_of[k] = placement.as_arrays(sequence)
    return evaluate_batch(
        sequence.codes, dbc_of, pos_of, num_dbcs=num_dbcs, domains=domains,
        ports=ports, warm_start=first_access_free,
    )
