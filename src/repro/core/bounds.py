"""Lower bounds on the intra-DBC shift cost.

The exact DP (:mod:`repro.core.intra.optimal`) certifies heuristic
quality only up to ~16 variables. These bounds hold for any size and let
the evaluation report provable optimality gaps on the real suite:

* **edge bound** — every access-graph edge costs at least its weight
  (adjacent placement is the best case, distance 1);
* **degree bound** — a vertex with ``d`` weighted neighbour slots must
  place its edges at distances 1, 1, 2, 2, 3, 3, ...; summing the
  cheapest assignment of each vertex's incident weight to those slots
  and halving (each edge counted at both ends) tightens the edge bound.

Both are classic minimum-linear-arrangement bounds, valid here because
single-port intra-DBC cost *is* a weighted linear arrangement
(DESIGN.md §6). :func:`sampled_intra_upper_bound` closes the bracket
from above: it scores a whole population of random intra orders in one
batched engine pass, so the reported ``[LB, UB]`` interval is cheap even
on DBCs far beyond the exact DP's reach.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.engine import evaluate_batch
from repro.trace.graph import AccessGraph
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng


def edge_lower_bound(sequence: AccessSequence, variables: Sequence[str]) -> int:
    """Sum of edge weights: every consecutive distinct pair shifts >= 1."""
    variables = list(variables)
    if len(variables) <= 1:
        return 0
    local = sequence.restricted_to(variables)
    return AccessGraph(local).total_weight()


def degree_lower_bound(sequence: AccessSequence, variables: Sequence[str]) -> int:
    """The degree (1,1,2,2,3,3,...) bound, at least as tight as the edge bound."""
    variables = list(variables)
    if len(variables) <= 1:
        return 0
    local = sequence.restricted_to(variables)
    graph = AccessGraph(local)
    total = 0.0
    for v in variables:
        weights = sorted(graph.neighbors(v).values(), reverse=True)
        # heaviest edges get the closest slots: distances 1,1,2,2,3,3,...
        for rank, w in enumerate(weights):
            distance = rank // 2 + 1
            total += w * distance
    return int(-(-total // 2))  # ceil of half (each edge counted twice)


def intra_lower_bound(sequence: AccessSequence, variables: Sequence[str]) -> int:
    """The best available lower bound for one DBC's shift cost."""
    return max(
        edge_lower_bound(sequence, variables),
        degree_lower_bound(sequence, variables),
    )


def sampled_intra_upper_bound(
    sequence: AccessSequence,
    variables: Sequence[str],
    samples: int = 128,
    rng: int | np.random.Generator | None = None,
) -> int:
    """Best shift cost among ``samples`` random intra orders of one DBC.

    An *upper* bound on the DBC's optimal intra cost, complementing the
    lower bounds above. The candidate permutations are enumerated as a
    ``(samples, |vars|)`` position matrix and scored in one batched
    engine pass — per-sample cost is one row of a gather, not a trace
    replay.
    """
    variables = list(variables)
    if len(variables) <= 1:
        return 0
    if samples < 1:
        samples = 1
    gen = ensure_rng(rng)
    local = sequence.restricted_to(variables)
    n = local.num_variables
    pos_of = np.empty((samples, n), dtype=np.int64)
    for k in range(samples):
        pos_of[k] = gen.permutation(n)
    costs = evaluate_batch(
        local.codes, np.zeros_like(pos_of), pos_of, num_dbcs=1
    )
    return int(costs.min())


def placement_lower_bound(sequence: AccessSequence, dbc_lists) -> int:
    """Lower bound for a *fixed partition*: sum of per-DBC bounds.

    Note this bounds the best intra order for the given inter split, not
    the globally optimal placement (a different split may do better or
    worse); it is the right yardstick for intra-heuristic quality.
    """
    total = 0
    for dbc in dbc_lists:
        if len(dbc) > 1:
            total += intra_lower_bound(sequence, list(dbc))
    return total
