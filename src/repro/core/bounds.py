"""Lower bounds on the intra-DBC shift cost.

The exact DP (:mod:`repro.core.intra.optimal`) certifies heuristic
quality only up to ~16 variables. These bounds hold for any size and let
the evaluation report provable optimality gaps on the real suite:

* **edge bound** — every access-graph edge costs at least its weight
  (adjacent placement is the best case, distance 1);
* **degree bound** — a vertex with ``d`` weighted neighbour slots must
  place its edges at distances 1, 1, 2, 2, 3, 3, ...; summing the
  cheapest assignment of each vertex's incident weight to those slots
  and halving (each edge counted at both ends) tightens the edge bound.

Both are classic minimum-linear-arrangement bounds, valid here because
single-port intra-DBC cost *is* a weighted linear arrangement
(DESIGN.md §6).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.trace.graph import AccessGraph
from repro.trace.sequence import AccessSequence


def edge_lower_bound(sequence: AccessSequence, variables: Sequence[str]) -> int:
    """Sum of edge weights: every consecutive distinct pair shifts >= 1."""
    variables = list(variables)
    if len(variables) <= 1:
        return 0
    local = sequence.restricted_to(variables)
    return AccessGraph(local).total_weight()


def degree_lower_bound(sequence: AccessSequence, variables: Sequence[str]) -> int:
    """The degree (1,1,2,2,3,3,...) bound, at least as tight as the edge bound."""
    variables = list(variables)
    if len(variables) <= 1:
        return 0
    local = sequence.restricted_to(variables)
    graph = AccessGraph(local)
    total = 0.0
    for v in variables:
        weights = sorted(graph.neighbors(v).values(), reverse=True)
        # heaviest edges get the closest slots: distances 1,1,2,2,3,3,...
        for rank, w in enumerate(weights):
            distance = rank // 2 + 1
            total += w * distance
    return int(-(-total // 2))  # ceil of half (each edge counted twice)


def intra_lower_bound(sequence: AccessSequence, variables: Sequence[str]) -> int:
    """The best available lower bound for one DBC's shift cost."""
    return max(
        edge_lower_bound(sequence, variables),
        degree_lower_bound(sequence, variables),
    )


def placement_lower_bound(sequence: AccessSequence, dbc_lists) -> int:
    """Lower bound for a *fixed partition*: sum of per-DBC bounds.

    Note this bounds the best intra order for the given inter split, not
    the globally optimal placement (a different split may do better or
    worse); it is the right yardstick for intra-heuristic quality.
    """
    total = 0
    for dbc in dbc_lists:
        if len(dbc) > 1:
            total += intra_lower_bound(sequence, list(dbc))
    return total
