"""ShiftsReduce [7] single-DBC placement (reimplementation).

ShiftsReduce (Khan et al., 2019) improves on Chen's chain growth by
growing the placement in *both* directions: the hottest vertex is seeded
in the middle and subsequent variables may attach to either end of the
current arrangement, whichever adjacency carries more consecutive-access
weight. Keeping hot variables near the centre also bounds the worst-case
travel of the access port. Reimplemented from the published description
(DESIGN.md §5).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.trace.graph import AccessGraph
from repro.trace.sequence import AccessSequence


def shifts_reduce_order(
    sequence: AccessSequence, variables: Sequence[str]
) -> list[str]:
    """Bidirectional greedy growth over the DBC-local access graph."""
    variables = list(variables)
    if len(variables) <= 1:
        return variables
    local = sequence.restricted_to(variables)
    graph = AccessGraph(local)
    freq = {v: local.frequency(v) for v in variables}
    decl = {v: i for i, v in enumerate(variables)}

    def seed_key(v: str) -> tuple:
        return (-graph.weighted_degree(v), -freq[v], decl[v])

    unplaced = set(variables)
    seed = min(unplaced, key=seed_key)
    arrangement: deque[str] = deque([seed])
    unplaced.remove(seed)
    while unplaced:
        left, right = arrangement[0], arrangement[-1]
        left_w = graph.neighbors(left)
        right_w = graph.neighbors(right)
        # Best (candidate, side) by adjacency weight to that side's end;
        # ties fall back to frequency then declaration order, preferring
        # the right side for determinism.
        best_v, best_side, best_key = None, "right", None
        for v in unplaced:
            for side, w in (("right", right_w.get(v, 0)), ("left", left_w.get(v, 0))):
                key = (-w, -freq[v], decl[v], 0 if side == "right" else 1)
                if best_key is None or key < best_key:
                    best_v, best_side, best_key = v, side, key
        assert best_v is not None
        if best_key is not None and best_key[0] == 0:
            # Nothing connects to either end: reseed with the best remaining
            # vertex on the lighter side (keeps hot variables central).
            best_v = min(unplaced, key=seed_key)
            best_side = "right" if len(arrangement) % 2 == 0 else "left"
        if best_side == "right":
            arrangement.append(best_v)
        else:
            arrangement.appendleft(best_v)
        unplaced.remove(best_v)
    return list(arrangement)
