"""Order of first use (OFU): the classic offset-assignment baseline.

Variables are placed in the order they are first accessed in the DBC's
local subsequence; never-accessed variables keep their relative order at
the end. The paper pairs OFU with both inter-DBC heuristics as the
cheapest intra-DBC strategy (AFD-OFU, DMA-OFU).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.trace.liveness import Liveness
from repro.trace.sequence import AccessSequence


def ofu_order(sequence: AccessSequence, variables: Sequence[str]) -> list[str]:
    """Place ``variables`` in order of first use in the local subsequence."""
    variables = list(variables)
    if len(variables) <= 1:
        return variables
    local = sequence.restricted_to(variables)
    live = Liveness(local)
    accessed = [v for v in variables if live.frequency(v) > 0]
    unaccessed = [v for v in variables if live.frequency(v) == 0]
    accessed.sort(key=live.first)
    return accessed + unaccessed
