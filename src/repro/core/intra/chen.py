"""Chen et al.'s single-DBC placement heuristic [2] (reimplementation).

Chen's TVLSI'16 heuristic greedily grows an arrangement over the access
graph: starting from the vertex with the highest weighted degree (the
most consecutive-access traffic), it repeatedly takes the unplaced
variable with the highest total affinity to the variables placed so far
and appends it at whichever end of the arrangement it is more strongly
connected to. ShiftsReduce [7] differs by selecting the candidate *and*
the side jointly from end-specific weights (see
:mod:`repro.core.intra.shifts_reduce`); that distinction — affinity to
the whole set vs to the growth fronts — is the documented design gap
between the two heuristics that the paper's DMA-Chen / DMA-SR pairings
exercise. Reimplemented from the published descriptions (DESIGN.md §5).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.trace.graph import AccessGraph
from repro.trace.sequence import AccessSequence


def chen_order(sequence: AccessSequence, variables: Sequence[str]) -> list[str]:
    """Set-affinity greedy growth over the DBC-local access graph."""
    variables = list(variables)
    if len(variables) <= 1:
        return variables
    local = sequence.restricted_to(variables)
    graph = AccessGraph(local)
    freq = {v: local.frequency(v) for v in variables}
    decl = {v: i for i, v in enumerate(variables)}

    unplaced = set(variables)
    seed = min(
        unplaced,
        key=lambda v: (-graph.weighted_degree(v), -freq[v], decl[v]),
    )
    arrangement: deque[str] = deque([seed])
    unplaced.remove(seed)
    affinity = {v: graph.weight(v, seed) for v in unplaced}
    while unplaced:
        best = min(unplaced, key=lambda v: (-affinity[v], -freq[v], decl[v]))
        w_left = graph.weight(best, arrangement[0])
        w_right = graph.weight(best, arrangement[-1])
        if w_left > w_right:
            arrangement.appendleft(best)
        else:
            arrangement.append(best)
        unplaced.remove(best)
        for v in unplaced:
            affinity[v] += graph.weight(v, best)
    return list(arrangement)
