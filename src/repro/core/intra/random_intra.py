"""Random intra-DBC order (building block of the RW baseline)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng


def random_order(
    sequence: AccessSequence,
    variables: Sequence[str],
    rng: int | np.random.Generator | None = None,
) -> list[str]:
    """A uniformly random permutation of ``variables``."""
    del sequence  # interface parity with the other heuristics
    gen = ensure_rng(rng)
    variables = list(variables)
    gen.shuffle(variables)
    return variables
