"""Exact optimal intra-DBC ordering via minimum-linear-arrangement DP.

For a single-port DBC the shift cost of an order equals
``sum_e w_e * |pos(u) - pos(v)|`` over access-graph edges — a weighted
minimum linear arrangement. Filling positions left to right, the cost of
a prefix set depends only on the set (each boundary contributes the cut
weight between prefix and remainder), giving an exact O(2^n * n) DP that
is feasible up to ~16 variables. Used to validate the heuristics and the
paper's near-optimality claims on small instances.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import SolverError
from repro.trace.graph import AccessGraph
from repro.trace.sequence import AccessSequence

#: Hard cap: 2^18 subsets is the largest table we allow by default.
MAX_EXACT_VARS = 18


def optimal_order(
    sequence: AccessSequence,
    variables: Sequence[str],
    max_vars: int = MAX_EXACT_VARS,
) -> list[str]:
    """Provably optimal single-port intra-DBC order (small instances)."""
    order, _cost = _solve(sequence, list(variables), max_vars)
    return order


def optimal_intra_cost(
    sequence: AccessSequence,
    variables: Sequence[str],
    max_vars: int = MAX_EXACT_VARS,
) -> int:
    """The optimal order's shift cost (cheaper than reconstructing it)."""
    _order, cost = _solve(sequence, list(variables), max_vars)
    return cost


def _solve(
    sequence: AccessSequence, variables: list[str], max_vars: int
) -> tuple[list[str], int]:
    if len(variables) > max_vars:
        raise SolverError(
            f"exact DP limited to {max_vars} variables, got {len(variables)}"
        )
    if len(variables) <= 1:
        return list(variables), 0
    local = sequence.restricted_to(variables)
    graph = AccessGraph(local)
    n = len(variables)
    index = {v: i for i, v in enumerate(variables)}
    weight = np.zeros((n, n), dtype=np.int64)
    for u, v, w in graph.edges():
        weight[index[u], index[v]] = w
        weight[index[v], index[u]] = w
    degree = weight.sum(axis=1)

    size = 1 << n
    inf = np.iinfo(np.int64).max
    best = np.full(size, inf, dtype=np.int64)
    cut = np.zeros(size, dtype=np.int64)
    choice = np.full(size, -1, dtype=np.int8)
    best[0] = 0
    # cut[S] = total edge weight crossing (S, V \ S); incremental update:
    # adding v flips its edges: cut(S+{v}) = cut(S) + deg(v) - 2 * w(v, S).
    for s in range(1, size):
        low = s & (-s)
        v = low.bit_length() - 1
        prev = s ^ low
        w_v_prev = 0
        rest = prev
        while rest:
            lb = rest & (-rest)
            u = lb.bit_length() - 1
            w_v_prev += weight[v, u]
            rest ^= lb
        cut[s] = cut[prev] + degree[v] - 2 * w_v_prev
    for s in range(1, size):
        c = cut[s]
        rest = s
        while rest:
            lb = rest & (-rest)
            v = lb.bit_length() - 1
            prior = best[s ^ lb]
            if prior != inf and prior + c < best[s]:
                best[s] = prior + c
                choice[s] = v
            rest ^= lb
    full = size - 1
    order_codes: list[int] = []
    s = full
    while s:
        v = int(choice[s])
        if v < 0:
            raise SolverError("DP reconstruction failed (internal error)")
        order_codes.append(v)
        s ^= 1 << v
    order_codes.reverse()
    return [variables[v] for v in order_codes], int(best[full])
