"""TSP-flavoured intra-DBC placement, after Jünger & Mallach [4].

Offset assignment is equivalent to finding a maximum-weight Hamiltonian
path in the access graph (adjacent placement saves one shift per unit of
edge weight). This heuristic builds that path greedily Kruskal-style —
take edges in descending weight, joining path fragments — and then
polishes the resulting order with 2-opt moves evaluated on the *true*
local shift cost (which also accounts for non-adjacent distances the
path abstraction ignores).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.engine import evaluate_batch
from repro.trace.graph import AccessGraph
from repro.trace.sequence import AccessSequence

#: 2-opt is skipped beyond these sizes to keep the heuristic fast.
_TWO_OPT_MAX_VARS = 48
_TWO_OPT_MAX_ACCESSES = 4000
_TWO_OPT_MAX_PASSES = 4


def tsp_order(
    sequence: AccessSequence,
    variables: Sequence[str],
    ports: int = 1,
    domains: int | None = None,
) -> list[str]:
    """Max-weight path construction followed by bounded 2-opt polishing.

    ``ports > 1`` polishes against the true multi-port cost (``domains``
    defaults to the number of variables, the dense track).
    """
    variables = list(variables)
    if len(variables) <= 1:
        return variables
    if ports > 1 and domains is None:
        domains = len(variables)
    local = sequence.restricted_to(variables)
    order = _max_weight_path(local, variables)
    if (
        len(variables) <= _TWO_OPT_MAX_VARS
        and len(local) <= _TWO_OPT_MAX_ACCESSES
    ):
        order = _two_opt(local, order, ports, domains)
    return order


def _max_weight_path(local: AccessSequence, variables: list[str]) -> list[str]:
    graph = AccessGraph(local)
    decl = {v: i for i, v in enumerate(variables)}
    edges = sorted(
        graph.edges(), key=lambda e: (-e[2], decl[e[0]], decl[e[1]])
    )
    # Union-find over path fragments; each vertex may gain at most 2 path
    # neighbours and joining two ends of the same fragment would close a cycle.
    parent = {v: v for v in variables}
    degree = {v: 0 for v in variables}
    adjacency: dict[str, list[str]] = {v: [] for v in variables}

    def find(v: str) -> str:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for u, v, _w in edges:
        if degree[u] >= 2 or degree[v] >= 2:
            continue
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        parent[ru] = rv
        degree[u] += 1
        degree[v] += 1
        adjacency[u].append(v)
        adjacency[v].append(u)
    # Walk each fragment from an endpoint; isolated vertices become
    # single-element fragments. Fragments are emitted in declaration order
    # of their smallest endpoint for determinism.
    visited: set[str] = set()
    fragments: list[list[str]] = []
    endpoints = sorted(
        (v for v in variables if degree[v] <= 1), key=lambda v: decl[v]
    )
    for start in endpoints:
        if start in visited:
            continue
        frag = [start]
        visited.add(start)
        prev, cur = None, start
        while True:
            nxt = next(
                (n for n in adjacency[cur] if n != prev and n not in visited), None
            )
            if nxt is None:
                break
            frag.append(nxt)
            visited.add(nxt)
            prev, cur = cur, nxt
        fragments.append(frag)
    ordered = [v for frag in fragments for v in frag]
    ordered += [v for v in variables if v not in visited]  # safety net
    return ordered


def _two_opt(
    local: AccessSequence,
    order: list[str],
    ports: int = 1,
    domains: int | None = None,
) -> list[str]:
    """First-improvement 2-opt, scoring whole candidate rows per batch.

    Semantically identical to evaluating each ``(i, j)`` reversal one at
    a time (candidates are rebuilt from the updated order after every
    accepted move), but all reversals sharing a cut point ``i`` are
    scored through one :func:`~repro.engine.evaluate_batch` call, so the
    per-candidate engine overhead is paid once per row, not per move.
    """
    n = len(order)
    codes = local.codes
    code_of = np.fromiter(
        (local.index_of(v) for v in order), dtype=np.int64, count=n
    )
    dbc_of = np.zeros((1, local.num_variables), dtype=np.int64)

    def positions(perm: np.ndarray) -> np.ndarray:
        pos = np.empty(local.num_variables, dtype=np.int64)
        pos[perm] = np.arange(n)
        return pos

    best = code_of.copy()
    best_cost = int(
        evaluate_batch(
            codes, dbc_of, positions(best)[None, :], num_dbcs=1,
            domains=domains, ports=ports,
        )[0]
    )
    # One reusable all-DBC-0 matrix for every batch in the inner loop.
    dbc_rows = np.zeros((max(n - 1, 1), local.num_variables), dtype=np.int64)
    for _ in range(_TWO_OPT_MAX_PASSES):
        improved = False
        for i in range(n - 1):
            j = i + 1
            while j < n:
                # Score every remaining reversal of this row against the
                # current order in one batch, then accept the first
                # improvement — exactly the sequential scan's choice.
                js = np.arange(j, n)
                # The scatter below writes every element (each row's cols
                # is a full permutation), so no initial fill is needed.
                pos = np.empty((js.size, n), dtype=np.int64)
                row = np.arange(js.size)[:, None]
                spans = np.arange(n)[None, :]
                rev = (spans >= i) & (spans <= js[:, None])
                cols = np.where(rev, i + js[:, None] - spans, spans)
                pos[row, best[cols]] = spans
                costs = evaluate_batch(
                    codes, dbc_rows[: js.size], pos, num_dbcs=1,
                    domains=domains, ports=ports,
                )
                better = np.flatnonzero(costs < best_cost)
                if better.size == 0:
                    break
                pick = int(better[0])
                jj = int(js[pick])
                best = np.concatenate(
                    [best[:i], best[i : jj + 1][::-1], best[jj + 1 :]]
                )
                best_cost = int(costs[pick])
                improved = True
                j = jj + 1
        if not improved:
            break
    variables = local.variables
    return [variables[c] for c in best]
