"""TSP-flavoured intra-DBC placement, after Jünger & Mallach [4].

Offset assignment is equivalent to finding a maximum-weight Hamiltonian
path in the access graph (adjacent placement saves one shift per unit of
edge weight). This heuristic builds that path greedily Kruskal-style —
take edges in descending weight, joining path fragments — and then
polishes the resulting order with 2-opt moves evaluated on the *true*
local shift cost (which also accounts for non-adjacent distances the
path abstraction ignores).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.placement import Placement
from repro.core.cost import shift_cost
from repro.trace.graph import AccessGraph
from repro.trace.sequence import AccessSequence

#: 2-opt is skipped beyond these sizes to keep the heuristic fast.
_TWO_OPT_MAX_VARS = 48
_TWO_OPT_MAX_ACCESSES = 4000
_TWO_OPT_MAX_PASSES = 4


def tsp_order(sequence: AccessSequence, variables: Sequence[str]) -> list[str]:
    """Max-weight path construction followed by bounded 2-opt polishing."""
    variables = list(variables)
    if len(variables) <= 1:
        return variables
    local = sequence.restricted_to(variables)
    order = _max_weight_path(local, variables)
    if (
        len(variables) <= _TWO_OPT_MAX_VARS
        and len(local) <= _TWO_OPT_MAX_ACCESSES
    ):
        order = _two_opt(local, order)
    return order


def _max_weight_path(local: AccessSequence, variables: list[str]) -> list[str]:
    graph = AccessGraph(local)
    decl = {v: i for i, v in enumerate(variables)}
    edges = sorted(
        graph.edges(), key=lambda e: (-e[2], decl[e[0]], decl[e[1]])
    )
    # Union-find over path fragments; each vertex may gain at most 2 path
    # neighbours and joining two ends of the same fragment would close a cycle.
    parent = {v: v for v in variables}
    degree = {v: 0 for v in variables}
    adjacency: dict[str, list[str]] = {v: [] for v in variables}

    def find(v: str) -> str:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for u, v, _w in edges:
        if degree[u] >= 2 or degree[v] >= 2:
            continue
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        parent[ru] = rv
        degree[u] += 1
        degree[v] += 1
        adjacency[u].append(v)
        adjacency[v].append(u)
    # Walk each fragment from an endpoint; isolated vertices become
    # single-element fragments. Fragments are emitted in declaration order
    # of their smallest endpoint for determinism.
    visited: set[str] = set()
    fragments: list[list[str]] = []
    endpoints = sorted(
        (v for v in variables if degree[v] <= 1), key=lambda v: decl[v]
    )
    for start in endpoints:
        if start in visited:
            continue
        frag = [start]
        visited.add(start)
        prev, cur = None, start
        while True:
            nxt = next(
                (n for n in adjacency[cur] if n != prev and n not in visited), None
            )
            if nxt is None:
                break
            frag.append(nxt)
            visited.add(nxt)
            prev, cur = cur, nxt
        fragments.append(frag)
    ordered = [v for frag in fragments for v in frag]
    ordered += [v for v in variables if v not in visited]  # safety net
    return ordered


def _two_opt(local: AccessSequence, order: list[str]) -> list[str]:
    def cost_of(o: list[str]) -> int:
        return shift_cost(local, Placement([o]))

    best = list(order)
    best_cost = cost_of(best)
    n = len(best)
    for _ in range(_TWO_OPT_MAX_PASSES):
        improved = False
        for i in range(n - 1):
            for j in range(i + 1, n):
                candidate = best[:i] + best[i : j + 1][::-1] + best[j + 1 :]
                c = cost_of(candidate)
                if c < best_cost:
                    best, best_cost = candidate, c
                    improved = True
        if not improved:
            break
    return best
