"""Port-aware sparse intra-DBC placement for multi-port tracks.

The adjacency heuristics (Chen, SR, TSP) pack a DBC's variables into a
dense block starting at location 0 — which is optimal for one port, but
wastes multi-port tracks: with ``p`` ports spaced ``K/p`` apart, a long
hop between two *clusters* of variables is nearly free when the clusters
sit one port-pitch apart (the controller just switches ports). This
heuristic exploits that: it orders variables with ShiftsReduce, splits
the order into ``p`` contiguous runs (balanced by access frequency), and
anchors run *j* centred on port *j* — leaving explicit holes between the
runs (sparse :class:`~repro.core.placement.Placement` support).

This extends the paper's "generalized for any port count" theme from the
inter-DBC level down to intra-DBC layouts.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.intra.shifts_reduce import shifts_reduce_order
from repro.errors import PlacementError
from repro.rtm.ports import port_positions
from repro.trace.sequence import AccessSequence


def port_spread_layout(
    sequence: AccessSequence,
    variables: Sequence[str],
    domains: int,
    ports: int,
) -> list[str | None]:
    """A sparse DBC layout anchoring frequency-balanced runs at the ports.

    Returns a list of length ``domains`` with ``None`` holes. With one
    port (or when the variables don't fit sparsely) this degenerates to
    the dense ShiftsReduce block.
    """
    variables = list(variables)
    n = len(variables)
    if n > domains:
        raise PlacementError(
            f"{n} variables cannot occupy a {domains}-domain track"
        )
    order = shifts_reduce_order(sequence, variables)
    if ports <= 1 or n == 0 or n > domains - ports + 1:
        return order  # dense fallback; nothing to gain / no room for holes
    local = sequence.restricted_to(variables) if n else None
    freq = {v: (local.frequency(v) if local else 0) for v in variables}
    total = sum(freq.values()) or 1
    positions = port_positions(domains, ports)

    # Split the SR order into `ports` contiguous runs of roughly equal
    # access mass, so each port serves a similar share of the traffic.
    runs: list[list[str]] = []
    run: list[str] = []
    mass = 0.0
    target = total / ports
    remaining_runs = ports
    for v in order:
        run.append(v)
        mass += freq[v]
        if mass >= target and len(runs) < ports - 1:
            runs.append(run)
            run = []
            mass = 0.0
            remaining_runs -= 1
    if run:
        runs.append(run)
    while len(runs) < ports:
        runs.append([])

    layout: list[str | None] = [None] * domains
    cursor = 0  # first free location (runs are placed left to right)
    for j, r in enumerate(runs):
        if not r:
            continue
        start = max(cursor, positions[j] - len(r) // 2)
        start = min(start, domains - _tail_size(runs, j))
        for v in r:
            layout[start] = v
            start += 1
        cursor = start
    placed = [v for v in layout if v is not None]
    if sorted(placed) != sorted(variables):  # pragma: no cover - invariant
        raise PlacementError("port spreading lost variables (internal error)")
    return layout


def _tail_size(runs: list[list[str]], j: int) -> int:
    """Locations needed for runs j..end (keeps later runs placeable)."""
    return sum(len(r) for r in runs[j:])


def port_aware_layout(
    sequence: AccessSequence,
    variables: Sequence[str],
    domains: int,
    ports: int,
) -> list[str | None]:
    """The better of dense ShiftsReduce and port-anchored spreading.

    Measured finding (kept honest in the ablation bench): a dense block
    already straddles several port regions on realistic fills, so
    spreading usually *loses* — it pays off only when the traffic
    alternates between a few hot clusters that can be pinned one
    port-pitch apart. This wrapper evaluates both candidates under the
    true multi-port cost and returns the cheaper, so it never does worse
    than the dense heuristic.
    """
    from repro.core.cost import shift_cost
    from repro.core.placement import Placement

    variables = list(variables)
    dense = shifts_reduce_order(sequence, variables)
    if ports <= 1 or len(variables) <= 1:
        return dense
    spread = port_spread_layout(sequence, variables, domains, ports)
    local = sequence.restricted_to(variables)
    dense_cost = shift_cost(
        local, Placement([dense]), ports=ports, domains=domains
    )
    spread_cost = shift_cost(
        local, Placement([spread]), ports=ports, domains=domains
    )
    return spread if spread_cost < dense_cost else dense
