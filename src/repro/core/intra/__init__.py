"""Intra-DBC placement heuristics (single-offset-assignment style).

Every heuristic shares one signature::

    order = heuristic(sequence, variables)

where ``sequence`` is the *full* access sequence and ``variables`` the
subset assigned to one DBC; the return value is those variables in their
intra-DBC location order. Heuristics see only the DBC-local subsequence,
exactly as the paper's two-stage decomposition prescribes (Sec. II-B).
"""

from repro.core.intra.ofu import ofu_order
from repro.core.intra.chen import chen_order
from repro.core.intra.shifts_reduce import shifts_reduce_order
from repro.core.intra.tsp import tsp_order
from repro.core.intra.optimal import optimal_order, optimal_intra_cost
from repro.core.intra.random_intra import random_order
from repro.core.intra.annealing import annealed_order
from repro.core.intra.pyramid import pyramid_order
from repro.core.intra.port_aware import port_aware_layout, port_spread_layout


def _default_annealed(sequence, variables):
    """Annealing with a fixed budget/seed, registry-signature compatible."""
    return annealed_order(sequence, variables, iterations=800, rng=0)


#: Registry of intra-DBC heuristics by the names used in policy strings.
INTRA_HEURISTICS = {
    "OFU": ofu_order,
    "Chen": chen_order,
    "SR": shifts_reduce_order,
    "TSP": tsp_order,
    "SA": _default_annealed,
    "Pyramid": pyramid_order,
    "Optimal": optimal_order,
}

__all__ = [
    "ofu_order",
    "chen_order",
    "shifts_reduce_order",
    "tsp_order",
    "optimal_order",
    "optimal_intra_cost",
    "random_order",
    "annealed_order",
    "pyramid_order",
    "port_aware_layout",
    "port_spread_layout",
    "INTRA_HEURISTICS",
    "local_sequence",
]


def local_sequence(sequence, variables):
    """The DBC-local subsequence seen by an intra-DBC heuristic.

    Separated here so all heuristics derive it identically (including the
    degenerate case of a DBC whose variables are never accessed, which
    yields no local accesses and makes any order optimal).
    """
    accessed = [v for v in variables if sequence.frequency(v) > 0]
    if not accessed:
        return None
    return sequence.restricted_to(variables)
