"""Frequency-pyramid intra-DBC placement (hot variables in the middle).

The earliest DWM placement proposals (TapeCache-era, Sun et al.) order
data purely by access count: the hottest variable sits at the centre of
the track — nearest the access port's home — and colder variables
alternate outwards. It ignores the access *order* entirely, which is
precisely the information the paper shows to matter (Sec. II-B), so it
serves as the adjacency-blind reference point between random order and
the graph-based heuristics in the ablations.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.trace.sequence import AccessSequence


def pyramid_order(sequence: AccessSequence, variables: Sequence[str]) -> list[str]:
    """Hottest variable in the middle, alternating left/right outwards."""
    variables = list(variables)
    if len(variables) <= 1:
        return variables
    local = sequence.restricted_to(variables)
    freq = {v: local.frequency(v) for v in variables}
    decl = {v: i for i, v in enumerate(variables)}
    ranked = sorted(variables, key=lambda v: (-freq[v], decl[v]))
    layout: deque[str] = deque()
    for i, v in enumerate(ranked):
        if i % 2 == 0:
            layout.append(v)
        else:
            layout.appendleft(v)
    return list(layout)
