"""Simulated-annealing intra-DBC optimizer.

A drop-in local-search alternative to the constructive heuristics: start
from the OFU order (a strong initialization on sequential traces) and
anneal with transposition moves evaluated on the true DBC-local shift
cost. Slower than Chen/SR but usually closer to the optimum — useful as
a tighter reference when the exact DP is out of reach, and as another
intra option for the ablation benches.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.cost import shift_cost
from repro.core.intra.ofu import ofu_order
from repro.core.placement import Placement
from repro.errors import SolverError
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng


def annealed_order(
    sequence: AccessSequence,
    variables: Sequence[str],
    iterations: int = 2000,
    start_temperature: float | None = None,
    rng: int | np.random.Generator | None = None,
) -> list[str]:
    """Simulated annealing over intra-DBC permutations.

    Geometric cooling; moves are random transpositions (the GA's second
    mutation). ``start_temperature`` defaults to a scale estimated from
    the trace (mean positional distance), which keeps acceptance rates
    sane across instance sizes.
    """
    if iterations < 1:
        raise SolverError(f"iterations must be >= 1, got {iterations}")
    variables = list(variables)
    if len(variables) <= 2:
        return ofu_order(sequence, variables)
    gen = ensure_rng(rng)
    local = sequence.restricted_to(variables)

    def cost_of(order: list[str]) -> int:
        return shift_cost(local, Placement([order]))

    current = ofu_order(sequence, variables)
    current_cost = cost_of(current)
    best, best_cost = list(current), current_cost
    n = len(variables)
    temperature = (
        start_temperature
        if start_temperature is not None
        else max(1.0, current_cost / max(len(local), 1) * n / 4)
    )
    cooling = (0.01 / temperature) ** (1.0 / iterations) if temperature > 0 else 1.0
    for _ in range(iterations):
        i, j = gen.choice(n, size=2, replace=False)
        current[i], current[j] = current[j], current[i]
        candidate_cost = cost_of(current)
        delta = candidate_cost - current_cost
        if delta <= 0 or gen.random() < np.exp(-delta / max(temperature, 1e-9)):
            current_cost = candidate_cost
            if current_cost < best_cost:
                best, best_cost = list(current), current_cost
        else:
            current[i], current[j] = current[j], current[i]  # revert
        temperature *= cooling
    return best
