"""Simulated-annealing intra-DBC optimizer.

A drop-in local-search alternative to the constructive heuristics: start
from the OFU order (a strong initialization on sequential traces) and
anneal with transposition moves. Moves are priced incrementally through
the engine's :class:`~repro.engine.batch.DeltaCost` evaluator — a
transposition re-prices only the access pairs touching the two swapped
variables, O(touched accesses) instead of O(trace) per move — with a
periodic full re-sync as a cheap invariant guard. Slower than Chen/SR
but usually closer to the optimum — useful as a tighter reference when
the exact DP is out of reach, and as another intra option for the
ablation benches.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.intra.ofu import ofu_order
from repro.engine import DeltaCost
from repro.errors import SolverError
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng

#: Accepted moves between full-cost re-syncs. The delta arithmetic is
#: exact integers, so this is a verification cadence, not drift control.
_RESYNC_EVERY = 1024


def annealed_order(
    sequence: AccessSequence,
    variables: Sequence[str],
    iterations: int = 2000,
    start_temperature: float | None = None,
    rng: int | np.random.Generator | None = None,
    ports: int = 1,
    domains: int | None = None,
) -> list[str]:
    """Simulated annealing over intra-DBC permutations.

    Geometric cooling; moves are random transpositions (the GA's second
    mutation). ``start_temperature`` defaults to a scale estimated from
    the trace (mean positional distance), which keeps acceptance rates
    sane across instance sizes. ``ports > 1`` anneals against the true
    multi-port cost (``domains`` defaults to the number of variables —
    the dense track — but should be the real track length): moves are
    then priced by :class:`DeltaCost`'s exact per-DBC recomposition.
    """
    if iterations < 1:
        raise SolverError(f"iterations must be >= 1, got {iterations}")
    variables = list(variables)
    if len(variables) <= 2:
        return ofu_order(sequence, variables)
    if ports > 1 and domains is None:
        domains = len(variables)
    gen = ensure_rng(rng)
    local = sequence.restricted_to(variables)

    current = ofu_order(sequence, variables)
    n = len(variables)
    code_of = {v: local.index_of(v) for v in variables}
    pos_of = np.empty(local.num_variables, dtype=np.int64)
    for slot, v in enumerate(current):
        pos_of[code_of[v]] = slot
    evaluator = DeltaCost(
        local.codes, np.zeros(local.num_variables, dtype=np.int64), pos_of,
        domains=domains, ports=ports,
    )
    current_cost = evaluator.cost
    best, best_cost = list(current), current_cost
    temperature = (
        start_temperature
        if start_temperature is not None
        else max(1.0, current_cost / max(len(local), 1) * n / 4)
    )
    cooling = (0.01 / temperature) ** (1.0 / iterations) if temperature > 0 else 1.0
    since_resync = 0
    for _ in range(iterations):
        i, j = gen.choice(n, size=2, replace=False)
        u, v = code_of[current[i]], code_of[current[j]]
        delta = evaluator.swap_delta(u, v)
        if delta <= 0 or gen.random() < np.exp(-delta / max(temperature, 1e-9)):
            current_cost = evaluator.swap(u, v, delta=delta)
            current[i], current[j] = current[j], current[i]
            if current_cost < best_cost:
                best, best_cost = list(current), current_cost
            since_resync += 1
            if since_resync >= _RESYNC_EVERY:
                current_cost = evaluator.resync()
                since_resync = 0
        temperature *= cooling
    return best
