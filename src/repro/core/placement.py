"""The placement representation shared by every algorithm in the library.

A :class:`Placement` is the paper's individual encoding (Sec. III-C): an
ordered list of DBC assignments, where each DBC assignment is the ordered
list of variables stored in that DBC — list position = intra-DBC location.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import cached_property

import numpy as np

from repro.errors import CapacityError, PlacementError
from repro.trace.sequence import AccessSequence


class Placement:
    """An immutable inter- plus intra-DBC variable placement.

    ``dbcs[i][k]`` is the variable at location ``k`` of DBC ``i``. Every
    variable appears exactly once across all DBCs. Entries may be
    ``None``: an explicitly empty location (sparse layouts anchor
    variable groups at specific track positions, e.g. around access
    ports — see :mod:`repro.core.intra.port_aware`).
    """

    __slots__ = ("_dbcs", "_loc", "__dict__")

    def __init__(self, dbcs: Iterable[Sequence[str | None]]) -> None:
        self._dbcs: tuple[tuple[str | None, ...], ...] = tuple(
            tuple(dbc) for dbc in dbcs
        )
        if not self._dbcs:
            raise PlacementError("a placement needs at least one DBC")
        loc: dict[str, tuple[int, int]] = {}
        for i, dbc in enumerate(self._dbcs):
            for k, v in enumerate(dbc):
                if v is None:
                    continue
                if v in loc:
                    raise PlacementError(f"variable {v!r} placed twice")
                loc[v] = (i, k)
        if not loc:
            raise PlacementError("a placement must place at least one variable")
        self._loc = loc

    # -- protocol --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return self._dbcs == other._dbcs

    def __hash__(self) -> int:
        return hash(self._dbcs)

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(d)) for d in self._dbcs)
        return f"<Placement: {len(self._loc)} vars over {len(self._dbcs)} DBCs [{sizes}]>"

    # -- accessors --------------------------------------------------------------

    def dbc_lists(self) -> tuple[tuple[str | None, ...], ...]:
        """Per-DBC ordered variable tuples (the controller's input).

        ``None`` entries are explicitly empty locations.
        """
        return self._dbcs

    @property
    def num_dbcs(self) -> int:
        return len(self._dbcs)

    @cached_property
    def variables(self) -> frozenset[str]:
        return frozenset(self._loc)

    def location_of(self, variable: str) -> tuple[int, int]:
        """``(dbc_index, slot)`` of a variable."""
        try:
            return self._loc[variable]
        except KeyError:
            raise PlacementError(f"variable {variable!r} is not placed") from None

    def dbc_of(self, variable: str) -> int:
        return self.location_of(variable)[0]

    def slot_of(self, variable: str) -> int:
        return self.location_of(variable)[1]

    # -- validation ---------------------------------------------------------------

    def validate_for(
        self,
        sequence: AccessSequence,
        num_dbcs: int | None = None,
        capacity: int | None = None,
    ) -> None:
        """Check this placement covers ``sequence`` and fits the geometry.

        Raises :class:`PlacementError` when the variable sets differ and
        :class:`CapacityError` when a DBC exceeds ``capacity`` slots or
        more than ``num_dbcs`` DBCs are used.
        """
        seq_vars = set(sequence.variables)
        placed = set(self._loc)
        if seq_vars != placed:
            missing = sorted(seq_vars - placed)[:5]
            extra = sorted(placed - seq_vars)[:5]
            raise PlacementError(
                f"placement/sequence variable mismatch (missing {missing}, "
                f"extra {extra})"
            )
        if num_dbcs is not None and self.num_dbcs > num_dbcs:
            raise CapacityError(
                f"placement uses {self.num_dbcs} DBCs, device has {num_dbcs}"
            )
        if capacity is not None:
            for i, dbc in enumerate(self._dbcs):
                if len(dbc) > capacity:
                    raise CapacityError(
                        f"DBC {i} holds {len(dbc)} variables, capacity is {capacity}"
                    )

    # -- conversions -----------------------------------------------------------------

    def as_arrays(self, sequence: AccessSequence) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized view: per-variable-code DBC index and slot arrays.

        Both arrays are indexed by the sequence's variable codes, ready for
        the numpy fast path of the cost model.
        """
        n = sequence.num_variables
        dbc_of = np.full(n, -1, dtype=np.int64)
        pos_of = np.full(n, -1, dtype=np.int64)
        for v, (i, k) in self._loc.items():
            if v in sequence:
                code = sequence.index_of(v)
                dbc_of[code] = i
                pos_of[code] = k
        if np.any(dbc_of < 0):
            missing = [
                sequence.variables[c] for c in np.flatnonzero(dbc_of < 0)[:5]
            ]
            raise PlacementError(f"unplaced sequence variables: {missing}")
        return dbc_of, pos_of

    def padded(self, num_dbcs: int) -> "Placement":
        """Extend with empty DBCs up to ``num_dbcs`` (device width)."""
        if num_dbcs < self.num_dbcs:
            raise PlacementError(
                f"cannot pad {self.num_dbcs} DBCs down to {num_dbcs}"
            )
        return Placement(self._dbcs + ((),) * (num_dbcs - self.num_dbcs))

    def with_intra_order(
        self, dbc_index: int, order: Sequence[str | None]
    ) -> "Placement":
        """Replace one DBC's intra order (must place the same variables)."""
        if not 0 <= dbc_index < self.num_dbcs:
            raise PlacementError(f"no DBC {dbc_index} in {self.num_dbcs}-DBC placement")
        current = sorted(v for v in self._dbcs[dbc_index] if v is not None)
        proposed = sorted(v for v in order if v is not None)
        if current != proposed:
            raise PlacementError(
                f"new order for DBC {dbc_index} is not a permutation of its contents"
            )
        dbcs = list(self._dbcs)
        dbcs[dbc_index] = tuple(order)
        return Placement(dbcs)
