"""Random-walk search baseline (Sec. III-C).

Generates independent uniformly random placements — random variable-to-
DBC assignment plus random permutations within every DBC — and keeps the
best. The paper runs it for 60000 iterations, the upper bound on the
number of individuals its GA evaluates, to put the GA results in
perspective (Fig. 4's ``RW`` series).

Candidates are scored in chunks through the engine's batched evaluator;
sampling and scoring are interleaved per chunk but the RNG stream only
feeds sampling, so results are bit-identical to scoring one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import stack_placement_lists
from repro.core.inter.random_inter import random_partition
from repro.core.placement import Placement
from repro.engine import evaluate_batch
from repro.errors import SolverError
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng

#: The paper's iteration budget (= GA's 200 generations x (mu + lambda)
#: evaluation upper bound, Sec. IV-A).
DEFAULT_ITERATIONS = 60_000

#: Candidates scored per batched engine pass. Sampling consumes the RNG
#: and scoring does not, so the chunk width never changes any result —
#: it only amortizes the per-call overhead across the population.
_SCORE_CHUNK = 512


@dataclass
class RandomWalkResult:
    placement: Placement
    cost: int
    iterations: int
    history: list[int]


def random_placement(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int,
    rng: int | np.random.Generator | None = None,
) -> Placement:
    """One uniformly random placement (partition + per-DBC order)."""
    return Placement(random_partition(sequence, num_dbcs, capacity, rng))


def random_walk_search(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int,
    iterations: int = DEFAULT_ITERATIONS,
    rng: int | np.random.Generator | None = None,
    history_stride: int = 1000,
    ports: int = 1,
    domains: int | None = None,
) -> RandomWalkResult:
    """Best of ``iterations`` random placements.

    ``history_stride`` controls how often the best-so-far cost is sampled
    into the result's history (for convergence plots). ``ports > 1``
    scores candidates under the real multi-port geometry (``domains``
    defaults to the DBC capacity, the track length in this library).
    """
    if iterations < 1:
        raise SolverError(f"iterations must be >= 1, got {iterations}")
    if ports > 1 and domains is None:
        domains = capacity
    gen = ensure_rng(rng)
    codes = sequence.codes
    best_cost: int | None = None
    best_lists: list[list[str]] | None = None
    history: list[int] = []
    it = 0
    while it < iterations:
        chunk = min(_SCORE_CHUNK, iterations - it)
        batch = [
            random_partition(sequence, num_dbcs, capacity, gen)
            for _ in range(chunk)
        ]
        dbc_of, pos_of = stack_placement_lists(sequence, batch)
        costs = evaluate_batch(
            codes, dbc_of, pos_of, num_dbcs=num_dbcs,
            domains=domains, ports=ports,
        )
        for k, cost in enumerate(costs):
            cost = int(cost)
            if best_cost is None or cost < best_cost:
                best_cost, best_lists = cost, batch[k]
            if (it + k + 1) % history_stride == 0:
                history.append(int(best_cost))
        it += chunk
    assert best_cost is not None and best_lists is not None
    return RandomWalkResult(
        placement=Placement(best_lists),
        cost=int(best_cost),
        iterations=iterations,
        history=history,
    )
