"""Exact optimal multi-DBC placement for tiny instances.

Finding the optimal placement is NP-complete [2]; the paper approximates
the optimum with a long GA run. For instances of up to ~8 variables this
module computes the true optimum by enumerating canonical set partitions
of the variables over the DBCs (first occupant of each DBC in ascending
variable order kills the DBC-permutation symmetry). Each distinct group
is ordered once by the exact minimum-linear-arrangement DP (groups recur
across thousands of partitions, so the orders are memoized), and the
complete candidate placements are then scored through the engine's
batched evaluator — one vectorized pass over the whole enumeration
instead of a per-partition cost loop. Used by the test-suite to certify
the heuristics' and GA's quality claims.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost import stack_placement_lists
from repro.core.intra.optimal import optimal_order
from repro.core.placement import Placement
from repro.engine import evaluate_batch
from repro.errors import SolverError
from repro.trace.sequence import AccessSequence

MAX_EXACT_TOTAL_VARS = 9

#: Candidate placements scored per batched engine pass (bounds the
#: K x accesses gather of one evaluate_batch call).
_SCORE_CHUNK = 4096


def exact_optimal_placement(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int,
    max_vars: int = MAX_EXACT_TOTAL_VARS,
) -> tuple[Placement, int]:
    """The provably cheapest placement and its cost (single-port model).

    Empty DBCs are allowed (using fewer DBCs is sometimes optimal). The
    search is exponential; ``max_vars`` guards against accidental misuse.
    """
    variables = list(sequence.variables)
    n = len(variables)
    if n > max_vars:
        raise SolverError(
            f"exact search limited to {max_vars} variables, got {n}"
        )
    if num_dbcs < 1 or capacity < 1:
        raise SolverError("num_dbcs and capacity must be >= 1")
    if n > num_dbcs * capacity:
        raise SolverError(
            f"{n} variables exceed {num_dbcs} DBCs x {capacity} locations"
        )

    # Canonical enumeration: variable i joins an existing group or opens
    # a new one, so each set partition appears exactly once.
    partitions: list[tuple[tuple[str, ...], ...]] = []
    groups: list[list[str]] = []

    def assign(i: int) -> None:
        if i == n:
            partitions.append(tuple(tuple(g) for g in groups))
            return
        v = variables[i]
        for g in groups:  # existing groups
            if len(g) < capacity:
                g.append(v)
                assign(i + 1)
                g.pop()
        if len(groups) < num_dbcs:  # open a fresh group (canonical order)
            groups.append([v])
            assign(i + 1)
            groups.pop()

    assign(0)
    if not partitions:
        raise SolverError("exact search found no feasible placement")

    # Groups recur across partitions; order each distinct one exactly once.
    order_of: dict[tuple[str, ...], list[str]] = {}

    def ordered(group: tuple[str, ...]) -> list[str]:
        if len(group) <= 1:
            return list(group)
        cached = order_of.get(group)
        if cached is None:
            cached = optimal_order(sequence.restricted_to(group), list(group))
            order_of[group] = cached
        return cached

    codes = sequence.codes
    best_cost: int | None = None
    best_index: int | None = None
    for start in range(0, len(partitions), _SCORE_CHUNK):
        chunk = partitions[start : start + _SCORE_CHUNK]
        dbc_of, pos_of = stack_placement_lists(
            sequence,
            [[ordered(g) for g in partition] for partition in chunk],
        )
        costs = evaluate_batch(codes, dbc_of, pos_of, num_dbcs=num_dbcs)
        k = int(np.argmin(costs)) if len(chunk) else 0
        if best_cost is None or int(costs[k]) < best_cost:
            best_cost = int(costs[k])
            best_index = start + k
    assert best_cost is not None and best_index is not None
    ordered_groups = [list(ordered(g)) for g in partitions[best_index]]
    while len(ordered_groups) < num_dbcs:
        ordered_groups.append([])
    return Placement(ordered_groups), best_cost
