"""Exact optimal multi-DBC placement for tiny instances.

Finding the optimal placement is NP-complete [2]; the paper approximates
the optimum with a long GA run. For instances of up to ~8 variables this
module computes the true optimum by enumerating canonical set partitions
of the variables over the DBCs (first occupant of each DBC in ascending
variable order kills the DBC-permutation symmetry) and solving each DBC's
intra-DBC ordering exactly with the minimum-linear-arrangement DP. Used
by the test-suite to certify the heuristics' and GA's quality claims.
"""

from __future__ import annotations

from repro.core.intra.optimal import optimal_order
from repro.core.cost import shift_cost
from repro.core.placement import Placement
from repro.errors import SolverError
from repro.trace.sequence import AccessSequence

MAX_EXACT_TOTAL_VARS = 9


def exact_optimal_placement(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int,
    max_vars: int = MAX_EXACT_TOTAL_VARS,
) -> tuple[Placement, int]:
    """The provably cheapest placement and its cost (single-port model).

    Empty DBCs are allowed (using fewer DBCs is sometimes optimal). The
    search is exponential; ``max_vars`` guards against accidental misuse.
    """
    variables = list(sequence.variables)
    n = len(variables)
    if n > max_vars:
        raise SolverError(
            f"exact search limited to {max_vars} variables, got {n}"
        )
    if num_dbcs < 1 or capacity < 1:
        raise SolverError("num_dbcs and capacity must be >= 1")
    if n > num_dbcs * capacity:
        raise SolverError(
            f"{n} variables exceed {num_dbcs} DBCs x {capacity} locations"
        )

    best_cost: int | None = None
    best_groups: list[list[str]] | None = None

    groups: list[list[str]] = []

    def assign(i: int) -> None:
        nonlocal best_cost, best_groups
        if i == n:
            cost = 0
            for group in groups:
                if len(group) > 1:
                    local = sequence.restricted_to(group)
                    order = optimal_order(local, group)
                    cost += shift_cost(local, Placement([order]))
                    if best_cost is not None and cost >= best_cost:
                        return
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_groups = [list(g) for g in groups]
            return
        v = variables[i]
        for g in groups:  # existing groups
            if len(g) < capacity:
                g.append(v)
                assign(i + 1)
                g.pop()
        if len(groups) < num_dbcs:  # open a fresh group (canonical order)
            groups.append([v])
            assign(i + 1)
            groups.pop()

    assign(0)
    if best_cost is None or best_groups is None:
        raise SolverError("exact search found no feasible placement")
    ordered = [
        optimal_order(sequence.restricted_to(g), g) if len(g) > 1 else g
        for g in best_groups
    ]
    while len(ordered) < num_dbcs:
        ordered.append([])
    placement = Placement(ordered)
    return placement, int(best_cost)
