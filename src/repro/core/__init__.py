"""Data-placement core: the paper's contribution and its baselines.

Exports the placement representation, the analytic shift-cost model, the
inter-/intra-DBC heuristics, the genetic algorithm and the named
end-to-end policies evaluated in the paper (AFD-OFU, DMA-OFU, DMA-Chen,
DMA-SR, GA, RW).
"""

from repro.core.placement import Placement
from repro.core.cost import shift_cost, per_dbc_shift_costs
from repro.core.inter.afd import afd_partition, afd_placement
from repro.core.inter.dma import dma_split, dma_partition, dma_placement, DMASplit
from repro.core.inter.multiset import multiset_dma_partition, extract_disjoint_sets
from repro.core.ga import GeneticPlacer, GAConfig
from repro.core.random_walk import random_walk_search, random_placement
from repro.core.exact import exact_optimal_placement
from repro.core.policies import (
    PAPER_POLICIES,
    Policy,
    available_policies,
    get_policy,
)
from repro.core.program import (
    ProgramPlacement,
    best_program_placement,
    evaluate_program,
    fuse_sequences,
    place_program,
    per_sequence_reference,
)
from repro.core.bounds import intra_lower_bound, placement_lower_bound

__all__ = [
    "Placement",
    "shift_cost",
    "per_dbc_shift_costs",
    "afd_partition",
    "afd_placement",
    "dma_split",
    "dma_partition",
    "dma_placement",
    "DMASplit",
    "multiset_dma_partition",
    "extract_disjoint_sets",
    "GeneticPlacer",
    "GAConfig",
    "random_walk_search",
    "random_placement",
    "exact_optimal_placement",
    "Policy",
    "get_policy",
    "available_policies",
    "PAPER_POLICIES",
    "ProgramPlacement",
    "place_program",
    "best_program_placement",
    "evaluate_program",
    "fuse_sequences",
    "per_sequence_reference",
    "intra_lower_bound",
    "placement_lower_bound",
]
