"""Genetic algorithm for complete RTM placements (Sec. III-C).

Individuals are complete placements — lists of per-DBC ordered variable
lists — evaluated by their analytic shift cost. The algorithm is a
(mu + lambda) evolution strategy with tournament selection (best of 4),
the paper's 2-fold crossover (swap the DBC membership of a contiguous
range of variables in first-appearance order, preserving the intra-DBC
order of everything else) and its three mutations (move a variable to
another DBC / transpose two variables in one DBC / randomly permute every
DBC), the destructive third skewed down 10 : 3. The initial population is
seeded with the heuristic placements, as Sec. VI describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.inter.afd import afd_partition
from repro.core.inter.dma import dma_partition
from repro.core.inter.random_inter import random_partition
from repro.core.intra import chen_order, ofu_order, shifts_reduce_order
from repro.core.placement import Placement
from repro.engine import evaluate_batch, stack_candidate_arrays
from repro.errors import CapacityError, SolverError
from repro.trace.liveness import Liveness
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng

Individual = list[list[int]]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters; defaults are the paper's (Sec. III-C / IV-A)."""

    mu: int = 100
    lam: int = 100
    generations: int = 200
    tournament_size: int = 4
    mutation_rate: float = 0.5
    mutation_weights: tuple[float, float, float] = (10.0, 10.0, 3.0)
    seed_with_heuristics: bool = True
    elitism: bool = True
    patience: int | None = None  # stop after N generations without improvement

    def validate(self) -> None:
        if self.mu < 1 or self.lam < 1:
            raise SolverError("mu and lam must be >= 1")
        if self.generations < 0:
            raise SolverError("generations must be >= 0")
        if self.tournament_size < 1:
            raise SolverError("tournament_size must be >= 1")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise SolverError("mutation_rate must be in [0, 1]")
        if len(self.mutation_weights) != 3 or min(self.mutation_weights) < 0 or \
                sum(self.mutation_weights) == 0:
            raise SolverError("mutation_weights must be 3 non-negative weights")


@dataclass
class GAResult:
    """Best placement plus convergence telemetry."""

    placement: Placement
    cost: int
    evaluations: int
    generations_run: int
    history: list[int] = field(default_factory=list)


class GeneticPlacer:
    """Runs the GA for one access sequence on a (q DBCs, N capacity) device."""

    def __init__(
        self,
        sequence: AccessSequence,
        num_dbcs: int,
        capacity: int,
        config: GAConfig | None = None,
        rng: int | np.random.Generator | None = None,
        ports: int = 1,
        domains: int | None = None,
    ) -> None:
        if sequence.num_variables > num_dbcs * capacity:
            raise CapacityError(
                f"{sequence.num_variables} variables exceed {num_dbcs} x "
                f"{capacity} locations"
            )
        self.sequence = sequence
        self.num_dbcs = num_dbcs
        self.capacity = capacity
        # Multi-port fitness: score against the real track geometry. The
        # track length defaults to the DBC capacity (they are the same
        # quantity in this library's geometry).
        self.ports = ports
        self.domains = domains if domains is not None else (
            capacity if ports > 1 else None
        )
        self.config = config or GAConfig()
        self.config.validate()
        self.rng = ensure_rng(rng)
        self._codes = sequence.codes
        # Crossover cut points index variables in first-appearance order.
        live = Liveness(sequence)
        self._xover_order = [sequence.index_of(v) for v in live.by_first_occurrence()]
        self.evaluations = 0

    # -- fitness ---------------------------------------------------------------

    def score_population(self, individuals: list[Individual]) -> list[int]:
        """Shift costs of a whole population in one batched engine pass."""
        if not individuals:
            return []
        dbc_of, pos_of = stack_candidate_arrays(
            individuals, self.sequence.num_variables
        )
        costs = evaluate_batch(
            self._codes, dbc_of, pos_of, num_dbcs=self.num_dbcs,
            domains=self.domains, ports=self.ports,
        )
        self.evaluations += len(individuals)
        return costs.tolist()

    def fitness(self, individual: Individual) -> int:
        """Shift cost of an individual (lower is better)."""
        return self.score_population([individual])[0]

    # -- individuals -------------------------------------------------------------

    def _to_individual(self, dbc_lists: list[list[str]]) -> Individual:
        index = self.sequence.index_of
        ind = [[index(v) for v in dbc] for dbc in dbc_lists]
        while len(ind) < self.num_dbcs:
            ind.append([])
        return ind

    def seed_individuals(self) -> list[Individual]:
        """Heuristic placements used to seed the initial population."""
        seq, q, cap = self.sequence, self.num_dbcs, self.capacity
        seeds: list[Individual] = []
        for intra in (shifts_reduce_order, chen_order, ofu_order, None):
            dbcs, k = dma_partition(seq, q, cap)
            if intra is not None:
                for i in range(k, len(dbcs)):
                    if len(dbcs[i]) > 1:
                        dbcs[i] = intra(seq, dbcs[i])
            seeds.append(self._to_individual(dbcs))
        seeds.append(self._to_individual(afd_partition(seq, q, cap)))
        return seeds

    def random_individual(self) -> Individual:
        dbcs = random_partition(self.sequence, self.num_dbcs, self.capacity, self.rng)
        return self._to_individual(dbcs)

    # -- genetic operators ---------------------------------------------------------

    def crossover(self, parent_a: Individual, parent_b: Individual
                  ) -> tuple[Individual, Individual]:
        """The paper's 2-fold crossover: swap a variable interval's DBCs."""
        n = len(self._xover_order)
        if n < 2:
            return [list(d) for d in parent_a], [list(d) for d in parent_b]
        first = int(self.rng.integers(0, n - 1))
        last = int(self.rng.integers(first + 1, n))
        swap = set(self._xover_order[first : last + 1])
        child_a = [list(d) for d in parent_a]
        child_b = [list(d) for d in parent_b]
        in_a = {v: i for i, dbc in enumerate(parent_a) for v in dbc}
        in_b = {v: i for i, dbc in enumerate(parent_b) for v in dbc}
        for v in swap:
            ra, rb = in_a[v], in_b[v]
            if ra == rb:
                continue
            child_a[ra].remove(v)
            child_a[rb].append(v)
            child_b[rb].remove(v)
            child_b[ra].append(v)
        self._repair(child_a)
        self._repair(child_b)
        return child_a, child_b

    def mutate(self, individual: Individual) -> Individual:
        """Apply one of the three mutations, skewed 10 : 10 : 3."""
        ind = [list(d) for d in individual]
        weights = np.asarray(self.config.mutation_weights, dtype=float)
        kind = int(self.rng.choice(3, p=weights / weights.sum()))
        if kind == 0:
            self._mutate_move(ind)
        elif kind == 1:
            self._mutate_transpose(ind)
        else:
            self._mutate_permute(ind)
        self._repair(ind)
        return ind

    def _mutate_move(self, ind: Individual) -> None:
        sources = [i for i, d in enumerate(ind) if d]
        if not sources or len(ind) < 2:
            return
        src = sources[int(self.rng.integers(0, len(sources)))]
        slot = int(self.rng.integers(0, len(ind[src])))
        v = ind[src].pop(slot)
        targets = [i for i in range(len(ind)) if i != src]
        dst = targets[int(self.rng.integers(0, len(targets)))]
        ind[dst].append(v)

    def _mutate_transpose(self, ind: Individual) -> None:
        eligible = [i for i, d in enumerate(ind) if len(d) >= 2]
        if not eligible:
            return
        i = eligible[int(self.rng.integers(0, len(eligible)))]
        a, b = self.rng.choice(len(ind[i]), size=2, replace=False)
        ind[i][a], ind[i][b] = ind[i][b], ind[i][a]

    def _mutate_permute(self, ind: Individual) -> None:
        for dbc in ind:
            if len(dbc) >= 2:
                perm = self.rng.permutation(len(dbc))
                dbc[:] = [dbc[int(p)] for p in perm]

    def _repair(self, ind: Individual) -> None:
        """Restore the capacity invariant after an operator (paper assumes
        ample room; iso-capacity sweeps can overflow a single DBC)."""
        cap = self.capacity
        for i, dbc in enumerate(ind):
            while len(dbc) > cap:
                v = dbc.pop()
                spaces = [j for j, d in enumerate(ind) if j != i and len(d) < cap]
                if not spaces:  # pragma: no cover - guarded by constructor
                    raise SolverError("repair failed: no free location")
                dst = spaces[int(self.rng.integers(0, len(spaces)))]
                ind[dst].append(v)

    def validate_individual(self, ind: Individual) -> None:
        """Invariant check used by the test-suite: a permutation of V."""
        seen = sorted(v for dbc in ind for v in dbc)
        if seen != list(range(self.sequence.num_variables)):
            raise SolverError("individual is not a permutation of the variables")
        if len(ind) != self.num_dbcs:
            raise SolverError(f"individual has {len(ind)} DBCs, want {self.num_dbcs}")
        if any(len(d) > self.capacity for d in ind):
            raise SolverError("individual violates DBC capacity")

    # -- main loop --------------------------------------------------------------------

    def _tournament(self, scored: list[tuple[int, Individual]]) -> Individual:
        k = min(self.config.tournament_size, len(scored))
        picks = self.rng.choice(len(scored), size=k, replace=False)
        best = min(picks, key=lambda i: scored[int(i)][0])
        return scored[int(best)][1]

    def run(self) -> GAResult:
        """Evolve for the configured number of generations."""
        cfg = self.config
        population: list[Individual] = []
        if cfg.seed_with_heuristics:
            population.extend(self.seed_individuals())
        while len(population) < cfg.mu:
            population.append(self.random_individual())
        population = population[: cfg.mu]
        scored = list(zip(self.score_population(population), population))
        best_cost, best = min(scored, key=lambda t: t[0])
        best = [list(d) for d in best]
        history = [best_cost]
        stale = 0
        generations_run = 0
        for _gen in range(cfg.generations):
            generations_run += 1
            # Generate the whole brood first (fitness consumes no RNG, so
            # deferring evaluation leaves the random stream untouched),
            # then score the generation in one batched engine pass.
            children: list[Individual] = []
            while len(children) < cfg.lam:
                pa = self._tournament(scored)
                pb = self._tournament(scored)
                for child in self.crossover(pa, pb):
                    if self.rng.random() < cfg.mutation_rate:
                        child = self.mutate(child)
                    children.append(child)
                    if len(children) >= cfg.lam:
                        break
            offspring = list(zip(self.score_population(children), children))
            pool = scored + offspring
            scored = [
                (c, [list(d) for d in ind])
                for c, ind in (
                    min(
                        (pool[int(i)] for i in self.rng.choice(
                            len(pool),
                            size=min(cfg.tournament_size, len(pool)),
                            replace=False,
                        )),
                        key=lambda t: t[0],
                    )
                    for _ in range(cfg.mu)
                )
            ]
            gen_best_cost, gen_best = min(pool, key=lambda t: t[0])
            if cfg.elitism:
                scored[0] = (gen_best_cost, [list(d) for d in gen_best])
            if gen_best_cost < best_cost:
                best_cost, best = gen_best_cost, [list(d) for d in gen_best]
                stale = 0
            else:
                stale += 1
            history.append(best_cost)
            if cfg.patience is not None and stale >= cfg.patience:
                break
        variables = self.sequence.variables
        placement = Placement([[variables[v] for v in dbc] for dbc in best])
        return GAResult(
            placement=placement,
            cost=best_cost,
            evaluations=self.evaluations,
            generations_run=generations_run,
            history=history,
        )
