"""Named end-to-end placement policies — the configurations of Sec. IV-A.

The paper evaluates six: ``AFD-OFU`` (baseline), ``DMA-OFU``, ``DMA-Chen``
and ``DMA-SR`` (the contribution paired with intra-DBC optimizers),
``GA`` and ``RW``. This registry adds the raw Fig. 3 variants and the
extension policies (TSP intra, multi-set DMA) used by the ablations.

Every policy maps ``(sequence, num_dbcs, capacity[, rng])`` to a
:class:`~repro.core.placement.Placement`; deterministic policies ignore
the rng.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.ga import GAConfig, GeneticPlacer
from repro.core.inter.afd import afd_partition, afd_placement
from repro.core.inter.dma import dma_placement
from repro.core.inter.multiset import multiset_dma_placement
from repro.core.intra import (
    INTRA_HEURISTICS,
    _default_annealed,
    chen_order,
    ofu_order,
    shifts_reduce_order,
    tsp_order,
)
from repro.core.placement import Placement
from repro.core.random_walk import DEFAULT_ITERATIONS, random_walk_search
from repro.errors import SolverError
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng

PlaceFn = Callable[
    [AccessSequence, int, int, np.random.Generator], Placement
]

#: The six configurations evaluated throughout Sec. IV.
PAPER_POLICIES: tuple[str, ...] = (
    "AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR", "GA", "RW",
)


@dataclass(frozen=True)
class Policy:
    """A named placement strategy."""

    name: str
    fn: PlaceFn
    deterministic: bool = True

    def place(
        self,
        sequence: AccessSequence,
        num_dbcs: int,
        capacity: int,
        rng: int | np.random.Generator | None = None,
    ) -> Placement:
        """Compute a placement; ``rng`` feeds the stochastic policies."""
        placement = self.fn(sequence, num_dbcs, capacity, ensure_rng(rng))
        return placement.padded(num_dbcs)


def _apply_intra(
    sequence: AccessSequence,
    dbcs: Sequence[Sequence[str]],
    intra: Callable[[AccessSequence, Sequence[str]], list[str]],
) -> Placement:
    return Placement(
        [intra(sequence, list(d)) if len(d) > 1 else list(d) for d in dbcs]
    )


def _afd_raw(seq, q, cap, _rng) -> Placement:
    return afd_placement(seq, q, cap)


def _afd_with(intra) -> PlaceFn:
    def fn(seq, q, cap, _rng) -> Placement:
        return _apply_intra(seq, afd_partition(seq, q, cap), intra)

    return fn


def _dma_raw(seq, q, cap, _rng) -> Placement:
    return dma_placement(seq, q, cap, intra=None)


def _dma_with(intra) -> PlaceFn:
    def fn(seq, q, cap, _rng) -> Placement:
        return dma_placement(seq, q, cap, intra=intra)

    return fn


def _mdma_with(intra) -> PlaceFn:
    def fn(seq, q, cap, _rng) -> Placement:
        return multiset_dma_placement(seq, q, cap, intra=intra)

    return fn


def _ga_policy(**options) -> PlaceFn:
    config = GAConfig(**options) if options else GAConfig()

    def fn(seq, q, cap, rng) -> Placement:
        return GeneticPlacer(seq, q, cap, config=config, rng=rng).run().placement

    return fn


def _rw_policy(iterations: int = DEFAULT_ITERATIONS) -> PlaceFn:
    def fn(seq, q, cap, rng) -> Placement:
        return random_walk_search(seq, q, cap, iterations=iterations, rng=rng).placement

    return fn


_BUILDERS: dict[str, Callable[..., tuple[PlaceFn, bool]]] = {
    # Paper's six configurations.
    "AFD-OFU": lambda: (_afd_with(ofu_order), True),
    "DMA-OFU": lambda: (_dma_with(ofu_order), True),
    "DMA-Chen": lambda: (_dma_with(chen_order), True),
    "DMA-SR": lambda: (_dma_with(shifts_reduce_order), True),
    "GA": lambda **kw: (_ga_policy(**kw), False),
    "RW": lambda **kw: (_rw_policy(**kw), False),
    # Raw Fig. 3 variants (no intra-DBC optimization).
    "AFD": lambda: (_afd_raw, True),
    "DMA": lambda: (_dma_raw, True),
    # Cross products and extensions for the ablation studies.
    "AFD-Chen": lambda: (_afd_with(chen_order), True),
    "AFD-SR": lambda: (_afd_with(shifts_reduce_order), True),
    "DMA-TSP": lambda: (_dma_with(tsp_order), True),
    "DMA-SA": lambda: (_dma_with(_default_annealed), True),
    "MDMA-OFU": lambda: (_mdma_with(ofu_order), True),
    "MDMA-SR": lambda: (_mdma_with(shifts_reduce_order), True),
}


def available_policies() -> tuple[str, ...]:
    """All registered policy names."""
    return tuple(_BUILDERS)


def get_policy(name: str, **options) -> Policy:
    """Instantiate a policy by name.

    ``GA`` accepts :class:`~repro.core.ga.GAConfig` fields as keyword
    options (e.g. ``generations=50``); ``RW`` accepts ``iterations``.
    Deterministic policies accept no options.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise SolverError(
            f"unknown policy {name!r}; available: {', '.join(_BUILDERS)}"
        ) from None
    try:
        fn, deterministic = builder(**options)
    except TypeError as exc:
        raise SolverError(f"bad options for policy {name!r}: {exc}") from exc
    return Policy(name=name, fn=fn, deterministic=deterministic)


def intra_heuristic_names() -> tuple[str, ...]:
    """Names of the standalone intra-DBC heuristics (for ablations)."""
    return tuple(INTRA_HEURISTICS)
