"""The paper's sequence-aware inter-DBC heuristic (Algorithm 1).

DMA (Disjoint Memory Accesses) scans variables in ascending first-
occurrence order and extracts a maximal chain ``Vdj`` of variables with
pairwise disjoint lifespans, keeping a variable only when its own access
frequency beats the combined frequency of the variables nested inside its
lifespan (line 10's test) — i.e. when dedicating the port to it wins more
self-accesses than it forfeits. ``Vdj`` is packed into the first
``K = ceil(|Vdj| / N)`` DBCs in access order (so serving it costs at most
``|Vdj| - 1`` shifts per DBC); the remaining variables go to the other
DBCs by descending frequency, where any single-DBC heuristic (OFU, Chen,
ShiftsReduce, ...) can then optimize each DBC independently.

On the paper's running example this reproduces Fig. 3-(d/e) exactly:
``Vdj = {b, c, d, e, h}`` with total frequency 11, and the final
placement costs 11 shifts against AFD's 39.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.placement import Placement
from repro.errors import CapacityError
from repro.trace.liveness import NEVER, Liveness
from repro.trace.sequence import AccessSequence

#: An intra-DBC heuristic: (full sequence, DBC variables) -> ordered variables.
IntraHeuristic = Callable[[AccessSequence, Sequence[str]], list[str]]


@dataclass(frozen=True)
class DMASplit:
    """Result of Algorithm 1's scan phase (lines 1-12).

    ``vdj`` is in ascending first-occurrence order (the order in which the
    disjoint variables are later laid out); ``vndj`` keeps the scan order
    of the remaining variables. ``disjoint_frequency_sum`` is the summed
    access frequency of ``vdj`` (11 on the paper's running example).
    """

    vdj: tuple[str, ...]
    vndj: tuple[str, ...]
    disjoint_frequency_sum: int = 0


def dma_split(sequence: AccessSequence) -> DMASplit:
    """Lines 1-12 of Algorithm 1: extract the disjoint-lifespan chain."""
    live = Liveness(sequence)
    first = live.first_occurrences
    last = live.last_occurrences
    freq = live.frequencies
    idx = sequence.index_of

    vndj: list[str] = live.by_first_occurrence()
    vdj: list[str] = []
    t_min = 0
    # Iterate over a snapshot in ascending F order; membership tests for
    # the nested-sum run against the *current* vndj, as in the pseudocode.
    remaining = set(vndj)
    for v in list(vndj):
        iv = idx(v)
        fv = int(first[iv])
        if fv == NEVER or fv <= t_min:
            continue
        lv = int(last[iv])
        nested_sum = sum(
            int(freq[idx(u)])
            for u in remaining
            if u != v
            and first[idx(u)] != NEVER
            and int(first[idx(u)]) > fv
            and int(last[idx(u)]) < lv
        )
        if int(freq[iv]) > nested_sum:
            vdj.append(v)
            remaining.discard(v)
            t_min = lv
    vndj = [v for v in vndj if v in remaining]
    return DMASplit(
        vdj=tuple(vdj),
        vndj=tuple(vndj),
        disjoint_frequency_sum=sum(int(freq[idx(v)]) for v in vdj),
    )


def dma_partition(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int,
    fairness_guard: bool = True,
) -> tuple[list[list[str]], int]:
    """Lines 13-21 of Algorithm 1: distribute both sets across DBCs.

    Returns ``(dbc_lists, K)`` where DBCs ``0..K-1`` hold the disjoint
    variables in access order and DBCs ``K..q-1`` hold the rest in
    descending access frequency (deal order).

    ``fairness_guard`` (on by default) caps ``K`` at the disjoint set's
    fair share of DBCs — ``round(q * max(variable share, access share))``.
    The pseudocode's ``K = ceil(|Vdj| / N)`` sizes ``K`` purely by
    capacity, which on weakly-disjoint traces parks a handful of variables
    in a whole DBC and crams everything else into the remaining ones,
    making DMA *worse* than AFD — contradicting the paper's observation
    that the heuristic "consistently performs well irrespective of the
    DBC count". The guard generalizes gracefully: with no worthwhile
    disjoint set (``K = 0``) the distribution degenerates to exactly AFD.
    On the paper's Fig. 3 example the guard leaves ``K = 1`` unchanged.
    Pass ``fairness_guard=False`` for the verbatim pseudocode behaviour.

    Deviation for robustness (the pseudocode assumes ample room): when the
    non-disjoint variables overflow their ``q - K`` DBCs, the overflow
    spills into the tail slots of the disjoint DBCs; when the disjoint set
    alone would claim every DBC while non-disjoint variables exist, ``K``
    is capped at ``q - 1`` and the excess (largest first occurrences)
    rejoins the non-disjoint set.
    """
    if num_dbcs < 1:
        raise CapacityError(f"need at least one DBC, got {num_dbcs}")
    if capacity < 1:
        raise CapacityError(f"capacity must be >= 1, got {capacity}")
    if sequence.num_variables > num_dbcs * capacity:
        raise CapacityError(
            f"{sequence.num_variables} variables exceed {num_dbcs} DBCs x "
            f"{capacity} locations"
        )
    split = dma_split(sequence)
    vdj = list(split.vdj)
    vndj = list(split.vndj)

    k = math.ceil(len(vdj) / capacity) if vdj else 0
    if fairness_guard and vdj:
        var_share = len(vdj) / sequence.num_variables
        total_accesses = max(len(sequence), 1)
        access_share = split.disjoint_frequency_sum / total_accesses
        fair = math.floor(num_dbcs * max(var_share, access_share) + 0.5)
        k = min(k, fair)
        if k == 0:
            vndj = vdj + vndj
            vdj = []
    if vndj and k >= num_dbcs:
        k = num_dbcs - 1
    if len(vdj) > k * capacity:  # trim to the DBCs actually granted
        keep = k * capacity
        vdj, overflow = vdj[:keep], vdj[keep:]
        vndj = overflow + vndj  # overflow keeps precedence by early F

    dbcs: list[list[str]] = [[] for _ in range(num_dbcs)]
    # Lines 14-17: deal Vdj round-robin over DBCs 0..K-1 in ascending F.
    for i, v in enumerate(vdj):
        dbcs[i % k].append(v)

    # Lines 18-21: deal Vndj over DBCs K..q-1 by descending frequency.
    freq = sequence.frequencies
    vndj.sort(key=lambda v: (-int(freq[sequence.index_of(v)]), sequence.index_of(v)))
    targets = list(range(k, num_dbcs)) or list(range(num_dbcs))
    cursor = 0
    spill: list[str] = []
    for v in vndj:
        placed = False
        for _ in range(len(targets)):
            dbc = dbcs[targets[cursor % len(targets)]]
            cursor += 1
            if len(dbc) < capacity:
                dbc.append(v)
                placed = True
                break
        if not placed:
            spill.append(v)
    # Spill into disjoint DBCs' remaining tail slots (documented deviation).
    for v in spill:
        for dbc in dbcs:
            if len(dbc) < capacity:
                dbc.append(v)
                break
        else:  # pragma: no cover - excluded by the capacity pre-check
            raise CapacityError("no free location left during DMA distribution")
    return dbcs, k


def dma_placement(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int,
    intra: IntraHeuristic | None = None,
    fairness_guard: bool = True,
) -> Placement:
    """Full Algorithm 1: distribution plus optional intra-DBC optimization.

    Lines 22-23 apply a single-DBC heuristic to the *non-disjoint* DBCs
    only — the disjoint DBCs must keep their access order, which is what
    makes them cheap. ``intra=None`` yields the raw DMA placement of
    Fig. 3-(d) (non-disjoint DBCs in frequency deal order).
    """
    dbcs, k = dma_partition(
        sequence, num_dbcs, capacity, fairness_guard=fairness_guard
    )
    if intra is not None:
        for i in range(k, len(dbcs)):
            if len(dbcs[i]) > 1:
                dbcs[i] = intra(sequence, dbcs[i])
    return Placement(dbcs)
