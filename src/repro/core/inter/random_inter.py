"""Uniformly random inter-DBC partitioning (RW building block)."""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng


def random_partition(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int,
    rng: int | np.random.Generator | None = None,
) -> list[list[str]]:
    """Assign each variable to a uniformly random non-full DBC.

    Variables are processed in a random order and each picks uniformly
    among DBCs with free locations, so both the partition and the
    resulting intra-DBC insertion orders are random.
    """
    if num_dbcs < 1:
        raise CapacityError(f"need at least one DBC, got {num_dbcs}")
    if capacity < 1:
        raise CapacityError(f"capacity must be >= 1, got {capacity}")
    if sequence.num_variables > num_dbcs * capacity:
        raise CapacityError(
            f"{sequence.num_variables} variables exceed {num_dbcs} DBCs x "
            f"{capacity} locations"
        )
    gen = ensure_rng(rng)
    variables = list(sequence.variables)
    gen.shuffle(variables)
    dbcs: list[list[str]] = [[] for _ in range(num_dbcs)]
    open_dbcs = list(range(num_dbcs))
    for v in variables:
        pick = int(gen.integers(0, len(open_dbcs)))
        dbc_index = open_dbcs[pick]
        dbcs[dbc_index].append(v)
        if len(dbcs[dbc_index]) >= capacity:
            open_dbcs.pop(pick)
    return dbcs
