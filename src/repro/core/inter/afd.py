"""Access Frequency based Distribution (AFD), the state-of-the-art
inter-DBC baseline from Chen et al. [2] (Sec. III-A).

AFD sorts variables by descending access frequency (stable with respect
to declaration order) and deals them to DBCs round-robin, so the hottest
variables end up spread across DBCs at small intra-DBC offsets. The
intra-DBC order of the raw AFD placement is the deal order itself, which
reproduces Fig. 3-(c) exactly: DBC0 = (a, g, b, d, h), DBC1 = (e, i, c, f),
39 shifts in total.
"""

from __future__ import annotations

from repro.core.placement import Placement
from repro.errors import CapacityError
from repro.trace.sequence import AccessSequence


def afd_order(sequence: AccessSequence) -> list[str]:
    """Variables by descending access frequency, stable by declaration."""
    freq = sequence.frequencies
    return sorted(
        sequence.variables,
        key=lambda v: (-int(freq[sequence.index_of(v)]), sequence.index_of(v)),
    )


def afd_partition(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int | None = None,
) -> list[list[str]]:
    """Round-robin deal of the frequency-sorted variables to DBCs.

    Full DBCs are skipped; a :class:`CapacityError` is raised when the
    variables cannot fit at all.
    """
    if num_dbcs < 1:
        raise CapacityError(f"need at least one DBC, got {num_dbcs}")
    variables = afd_order(sequence)
    if capacity is not None and len(variables) > num_dbcs * capacity:
        raise CapacityError(
            f"{len(variables)} variables exceed {num_dbcs} DBCs x "
            f"{capacity} locations"
        )
    dbcs: list[list[str]] = [[] for _ in range(num_dbcs)]
    cursor = 0
    for v in variables:
        for _ in range(num_dbcs):
            dbc = dbcs[cursor % num_dbcs]
            cursor += 1
            if capacity is None or len(dbc) < capacity:
                dbc.append(v)
                break
        else:  # pragma: no cover - excluded by the capacity pre-check
            raise CapacityError("all DBCs full during AFD distribution")
    return dbcs


def afd_placement(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int | None = None,
) -> Placement:
    """The raw AFD placement (deal order doubles as intra-DBC order)."""
    return Placement(afd_partition(sequence, num_dbcs, capacity))
