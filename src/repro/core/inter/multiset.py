"""Multi-set DMA: the paper's future-work extension (Sec. VI).

The outlook proposes placing *more than one* set of disjoint variables —
in the same DBC and in different DBCs — instead of the single chain
Algorithm 1 extracts. This module implements that: it repeatedly runs the
DMA scan on the still-unassigned variables, harvesting successive
disjoint chains, then packs the chains into DBCs (each chain keeps its
access order; chains stacked in one DBC are separated naturally by their
ordering) and deals whatever remains by frequency.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.inter.dma import dma_split
from repro.core.placement import Placement
from repro.errors import CapacityError
from repro.trace.liveness import Liveness
from repro.trace.sequence import AccessSequence

IntraHeuristic = Callable[[AccessSequence, Sequence[str]], list[str]]


def extract_disjoint_sets(
    sequence: AccessSequence,
    max_sets: int | None = None,
) -> tuple[list[list[str]], list[str]]:
    """Harvest successive disjoint-lifespan chains via repeated DMA scans.

    Returns ``(chains, leftovers)``. Each chain is in access order and
    pairwise disjoint; chains are extracted greedily, so the first is
    Algorithm 1's ``Vdj`` and later ones are chains over the remainder.
    Extraction stops when a scan yields a chain of fewer than two
    variables (a singleton chain carries no self-access benefit).
    """
    remaining = list(sequence.variables)
    chains: list[list[str]] = []
    while remaining and (max_sets is None or len(chains) < max_sets):
        local = sequence.restricted_to(remaining)
        split = dma_split(local)
        if len(split.vdj) < 2:
            break
        chains.append(list(split.vdj))
        taken = set(split.vdj)
        remaining = [v for v in remaining if v not in taken]
    return chains, remaining


def multiset_dma_partition(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int,
    max_sets: int | None = None,
) -> tuple[list[list[str]], int]:
    """Pack multiple disjoint chains, then deal the rest by frequency.

    Chain acceptance follows the same *fairness budgeting* as single-set
    DMA: chains claim DBCs only in proportion to the access share they
    take off the table — ``floor(q * cumulative_access_share + 0.5)`` —
    so low-traffic chains never squeeze the hot overlapping variables
    into too few DBCs (the failure mode of naive multi-set packing).
    Chains sharing a DBC are merged in first-occurrence order; a chain
    longer than the capacity wraps round-robin over the DBCs it needs,
    like Algorithm 1 does for ``Vdj``. Returns ``(dbc_lists,
    num_chain_dbcs)``.
    """
    if num_dbcs < 1:
        raise CapacityError(f"need at least one DBC, got {num_dbcs}")
    if capacity < 1:
        raise CapacityError(f"capacity must be >= 1, got {capacity}")
    if sequence.num_variables > num_dbcs * capacity:
        raise CapacityError(
            f"{sequence.num_variables} variables exceed {num_dbcs} DBCs x "
            f"{capacity} locations"
        )
    chains, leftovers = extract_disjoint_sets(sequence, max_sets=max_sets)
    freq = sequence.frequencies
    total_accesses = max(len(sequence), 1)

    def chain_accesses(chain: list[str]) -> int:
        return sum(int(freq[sequence.index_of(v)]) for v in chain)

    dbcs: list[list[str]] = [[] for _ in range(num_dbcs)]
    used = 0
    merged: set[int] = set()
    accepted_accesses = 0
    for chain in chains:
        # Keep at least one DBC for leftovers when any exist.
        chain_dbc_limit = num_dbcs - (1 if leftovers else 0)
        share = (accepted_accesses + chain_accesses(chain)) / total_accesses
        budget = min(int(num_dbcs * share + 0.5), chain_dbc_limit)
        needed = -(-len(chain) // capacity)  # ceil division
        if used + needed <= budget:
            # Preferred: the chain gets its own DBC(s) — 'in different
            # DBCs' per the outlook — so serving it costs at most
            # len(chain) - 1 shifts.
            for i, v in enumerate(chain):
                dbcs[used + (i % needed)].append(v)
            used += needed
            accepted_accesses += chain_accesses(chain)
            continue
        # Budget exhausted: merge into the emptiest chain DBC with room
        # ('more than one set in the same DBC'), else give the chain up.
        candidates = [
            i for i in range(used) if len(dbcs[i]) + len(chain) <= capacity
        ]
        if candidates:
            target = min(candidates, key=lambda i: len(dbcs[i]))
            dbcs[target].extend(chain)
            merged.add(target)
            accepted_accesses += chain_accesses(chain)
        else:
            leftovers = chain + leftovers
    # DBCs holding several chains are re-merged into global access order:
    # stacking chains back to back would interleave temporally-adjacent
    # accesses across distant locations, which is exactly what the
    # disjoint layout is meant to avoid.
    if merged:
        live = Liveness(sequence)
        for i in merged:
            dbcs[i].sort(key=live.first)

    leftovers = sorted(
        dict.fromkeys(leftovers),
        key=lambda v: (-int(freq[sequence.index_of(v)]), sequence.index_of(v)),
    )
    targets = list(range(used, num_dbcs)) or list(range(num_dbcs))
    cursor = 0
    spill: list[str] = []
    for v in leftovers:
        placed = False
        for _ in range(len(targets)):
            dbc = dbcs[targets[cursor % len(targets)]]
            cursor += 1
            if len(dbc) < capacity:
                dbc.append(v)
                placed = True
                break
        if not placed:
            spill.append(v)
    for v in spill:
        for dbc in dbcs:
            if len(dbc) < capacity:
                dbc.append(v)
                break
        else:  # pragma: no cover - excluded by the capacity pre-check
            raise CapacityError("no free location left during multi-set DMA")
    return dbcs, used


def multiset_dma_placement(
    sequence: AccessSequence,
    num_dbcs: int,
    capacity: int,
    intra: IntraHeuristic | None = None,
    max_sets: int | None = None,
) -> Placement:
    """Multi-set partition plus intra optimization of the leftover DBCs."""
    dbcs, used = multiset_dma_partition(
        sequence, num_dbcs, capacity, max_sets=max_sets
    )
    if intra is not None:
        for i in range(used, len(dbcs)):
            if len(dbcs[i]) > 1:
                dbcs[i] = intra(sequence, dbcs[i])
    return Placement(dbcs)
