"""Inter-DBC distribution strategies: the AFD baseline [2], the paper's
DMA heuristic (Algorithm 1) and the future-work multi-set extension."""

from repro.core.inter.afd import afd_order, afd_partition, afd_placement
from repro.core.inter.dma import DMASplit, dma_split, dma_partition, dma_placement
from repro.core.inter.multiset import extract_disjoint_sets, multiset_dma_partition
from repro.core.inter.random_inter import random_partition

__all__ = [
    "afd_order",
    "afd_partition",
    "afd_placement",
    "DMASplit",
    "dma_split",
    "dma_partition",
    "dma_placement",
    "extract_disjoint_sets",
    "multiset_dma_partition",
    "random_partition",
]
