"""Deterministic random-number-generator helpers.

All stochastic components of the library (trace generators, the genetic
algorithm, the random-walk search) accept either a seed or an existing
:class:`numpy.random.Generator`. These helpers make that convention
uniform so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a generator seeded from entropy, an ``int`` seeds a new
    generator, and an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected seed, Generator or None, got {type(rng).__name__}")


def spawn_seeds(rng: np.random.Generator, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from ``rng``.

    ``ensure_rng(seed)`` on each yields exactly the generators
    :func:`spawn_rng` would hand out, so seeds can cross process
    boundaries (the parallel matrix runner) while staying bit-identical
    to in-process streams.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used to hand each benchmark / GA island its own stream so that running
    subsets of an experiment matrix yields the same per-cell results as
    running the full matrix.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, count)]
