"""Numeric helpers shared by the evaluation harness and benchmarks."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np


def safe_div(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Divide, returning ``default`` when the denominator is zero."""
    if denominator == 0:
        return default
    return numerator / denominator


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; zeros are clamped to a tiny epsilon.

    The paper reports shift improvements as geometric means over all
    benchmarks (Sec. IV-B). Traces with zero shifts (single-variable
    sequences) would zero out the product, so they are clamped rather than
    dropped; this matches how normalized-to-best ratios are customarily
    aggregated.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr < 0):
        raise ValueError("geometric_mean requires non-negative values")
    clamped = np.maximum(arr, 1e-12)
    return float(np.exp(np.mean(np.log(clamped))))


def normalize_to(values: Mapping[str, float], reference_key: str) -> dict[str, float]:
    """Normalize a mapping of metric values to one of its entries.

    Fig. 4 normalizes every policy's shift cost to the GA result; Fig. 5
    normalizes energy to AFD-OFU. A zero reference maps everything to 0
    (all-zero rows arise for degenerate single-access traces).
    """
    if reference_key not in values:
        raise KeyError(f"reference {reference_key!r} missing from {sorted(values)}")
    ref = values[reference_key]
    return {k: safe_div(v, ref, default=0.0) for k, v in values.items()}


def improvement_factor(baseline: float, improved: float) -> float:
    """How many times smaller ``improved`` is than ``baseline`` (e.g. 3.54x).

    Both costs zero counts as parity (1.0); an improved cost of zero with a
    non-zero baseline is reported as infinity.
    """
    if baseline == 0 and improved == 0:
        return 1.0
    if improved == 0:
        return float("inf")
    return baseline / improved


def percent_improvement(baseline: float, improved: float) -> float:
    """Relative reduction in percent, as quoted in Sec. IV-C (e.g. 50.3%)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
