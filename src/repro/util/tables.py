"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables and figures
report; these helpers keep that output aligned and diff-friendly without
pulling in a formatting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object, width: int, numeric: bool) -> str:
    text = value if isinstance(value, str) else _render(value)
    return text.rjust(width) if numeric else text.ljust(width)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _column_widths(header: Sequence[str], rows: Sequence[Sequence[object]]) -> list[int]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(_render(value)))
    return widths


def _numeric_columns(rows: Sequence[Sequence[object]]) -> list[bool]:
    if not rows:
        return []
    flags = [True] * len(rows[0])
    for row in rows:
        for i, value in enumerate(row):
            if isinstance(value, str):
                flags[i] = False
    return flags


def format_table(
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width table with an optional title line."""
    rows = [list(r) for r in rows]
    for row in rows:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} cells but header has {len(header)}: {row!r}"
            )
    widths = _column_widths(header, rows)
    numeric = _numeric_columns(rows) or [False] * len(header)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _cell(v, w, num) for v, w, num in zip(row, widths, numeric)
            )
        )
    return "\n".join(lines)


def format_markdown_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    out = ["| " + " | ".join(header) + " |"]
    out.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} cells but header has {len(header)}: {row!r}"
            )
        out.append("| " + " | ".join(_render(v) for v in row) + " |")
    return "\n".join(out)
