"""Small shared utilities: seeded RNG handling, math helpers, tables."""

from repro.util.mathx import (
    geometric_mean,
    improvement_factor,
    normalize_to,
    percent_improvement,
    safe_div,
)
from repro.util.rng import ensure_rng, spawn_rng, spawn_seeds
from repro.util.tables import format_table, format_markdown_table

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "spawn_seeds",
    "geometric_mean",
    "improvement_factor",
    "normalize_to",
    "percent_improvement",
    "safe_div",
    "format_table",
    "format_markdown_table",
]
