"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
mistakes such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TraceError(ReproError):
    """A memory trace or access sequence is malformed."""


class TraceFormatError(TraceError):
    """A trace file could not be parsed."""


class WorkloadError(TraceError):
    """A workload spec is malformed or cannot be resolved."""


class GeometryError(ReproError):
    """An RTM configuration is inconsistent or physically impossible."""


class PlacementError(ReproError):
    """A placement is invalid for the given variables and geometry."""


class CapacityError(PlacementError):
    """The variables of a trace do not fit into the configured RTM."""


class SimulationError(ReproError):
    """The trace-driven simulator hit an inconsistent state."""


class SolverError(ReproError):
    """An optimization routine failed or was configured inconsistently."""


class ExperimentError(ReproError):
    """An experiment definition or its execution is inconsistent."""
