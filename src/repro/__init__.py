"""repro — reproduction of *Generalized Data Placement Strategies for
Racetrack Memories* (Khan, Goens, Hameed, Castrillon — DATE 2020).

The package provides, from scratch:

* :mod:`repro.trace` — access sequences, access graphs, liveness analysis
  and the OffsetStone-like benchmark suite;
* :mod:`repro.engine` — the shift engine: one vectorizable kernel for
  shift semantics with interchangeable (reference / batched numpy)
  backends, shared by the simulator and the analytic cost model;
* :mod:`repro.rtm` — the RTM architecture model, Table-I-calibrated
  latency/energy/area parameters and a trace-driven simulator;
* :mod:`repro.core` — the placement algorithms: the DMA heuristic
  (Algorithm 1), the genetic algorithm, the AFD baseline and the
  intra-DBC heuristics (OFU, Chen, ShiftsReduce, TSP, exact DP);
* :mod:`repro.workloads` — the pluggable workload layer: declarative
  specs resolved through a source registry (synthetic generator
  families plus external trace ingestion) and composable scenario
  transforms;
* :mod:`repro.eval` — the experiment harness regenerating every table
  and figure of the paper's evaluation, over any registered workload.

Quickstart::

    from repro import AccessSequence, get_policy, shift_cost

    seq = AccessSequence(list("ababcacaddaiefefgeghgihi"),
                         variables=list("abcdefghi"))
    placement = get_policy("DMA-SR").place(seq, num_dbcs=2, capacity=512)
    print(shift_cost(seq, placement))
"""

from repro.engine import available_backends, get_backend
from repro.core import (
    GAConfig,
    GeneticPlacer,
    PAPER_POLICIES,
    Placement,
    available_policies,
    dma_placement,
    dma_split,
    exact_optimal_placement,
    get_policy,
    per_dbc_shift_costs,
    random_walk_search,
    shift_cost,
)
from repro.rtm import (
    MemoryParams,
    RTMConfig,
    SimReport,
    destiny_params,
    iso_capacity_sweep,
    simulate,
)
from repro.trace import (
    AccessGraph,
    AccessSequence,
    Liveness,
    MemoryTrace,
    read_traces,
    write_traces,
)
from repro.workloads import (
    WorkloadContext,
    WorkloadSpec,
    parse_workload_spec,
    resolve_workload,
    resolve_workloads,
)

__version__ = "1.9.0"

__all__ = [
    "__version__",
    # engine
    "available_backends",
    "get_backend",
    # core
    "Placement",
    "shift_cost",
    "per_dbc_shift_costs",
    "dma_split",
    "dma_placement",
    "GeneticPlacer",
    "GAConfig",
    "random_walk_search",
    "exact_optimal_placement",
    "get_policy",
    "available_policies",
    "PAPER_POLICIES",
    # rtm
    "RTMConfig",
    "MemoryParams",
    "SimReport",
    "destiny_params",
    "iso_capacity_sweep",
    "simulate",
    # trace
    "AccessSequence",
    "MemoryTrace",
    "AccessGraph",
    "Liveness",
    "read_traces",
    "write_traces",
    # workloads
    "WorkloadContext",
    "WorkloadSpec",
    "parse_workload_spec",
    "resolve_workload",
    "resolve_workloads",
]
