"""Online data swapping — the runtime alternative to static placement.

Sun et al. (DAC'13, [20] in the paper) mitigate shift overhead by
*swapping* frequently accessed data toward the access port at runtime.
The paper argues static placement achieves its gains "with no hardware
overhead"; this module implements the swapping controller so the claim
can be tested: it extends the trace-driven simulator with a counter-based
migration policy and charges the real cost of each swap (two reads, two
writes and the shifts to reach both locations).

The controller keeps, per variable, a saturating access counter. When a
variable's counter exceeds ``threshold`` and it sits further from the
port's home position than some variable with a colder counter, the two
trade places. This reproduces the behaviour class of hardware swapping
schemes while staying policy-agnostic about the initial placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlacementError, SimulationError
from repro.rtm.device import DBCState
from repro.rtm.geometry import RTMConfig
from repro.rtm.ports import PortPolicy
from repro.rtm.report import SimReport
from repro.rtm.timing import MemoryParams, params_for
from repro.trace.trace import MemoryTrace


@dataclass(frozen=True)
class SwapStats:
    """Bookkeeping of the swapping controller's extra work."""

    swaps: int
    swap_shifts: int
    swap_reads: int
    swap_writes: int


class SwappingController:
    """Trace executor with counter-based online variable migration.

    Parameters mirror :class:`repro.rtm.controller.RTMController`;
    ``threshold`` is the access count that makes a variable eligible to
    move inward, ``decay`` halves all counters whenever any counter
    saturates at ``saturate`` (keeps the policy adaptive on phased
    traces).
    """

    def __init__(
        self,
        config: RTMConfig,
        placement,
        params: MemoryParams | None = None,
        threshold: int = 4,
        saturate: int = 64,
        warm_start: bool = True,
    ) -> None:
        if threshold < 1:
            raise SimulationError(f"threshold must be >= 1, got {threshold}")
        if saturate < threshold:
            raise SimulationError("saturate must be >= threshold")
        dbc_lists = [list(d) for d in placement.dbc_lists()]
        if len(dbc_lists) > config.dbcs:
            raise PlacementError(
                f"placement uses {len(dbc_lists)} DBCs, device has {config.dbcs}"
            )
        self.config = config
        self.params = params or params_for(config)
        self.threshold = threshold
        self.saturate = saturate
        self.warm_start = warm_start
        # slot maps are mutable: swapping rewrites them during execution
        self._slots: list[list[str | None]] = []
        self._location: dict[str, tuple[int, int]] = {}
        for dbc_index, variables in enumerate(dbc_lists):
            if len(variables) > config.locations_per_dbc:
                raise PlacementError(
                    f"DBC {dbc_index} over capacity "
                    f"({len(variables)} > {config.locations_per_dbc})"
                )
            self._slots.append(list(variables))
            for slot, name in enumerate(variables):
                if name is None:  # explicitly empty location
                    continue
                if name in self._location:
                    raise PlacementError(f"variable {name!r} placed twice")
                self._location[name] = (dbc_index, slot)
        while len(self._slots) < config.dbcs:
            self._slots.append([])
        self._dbcs = [
            DBCState(config.domains_per_track, config.ports_per_track)
            for _ in range(config.dbcs)
        ]
        self._counters: dict[str, int] = {v: 0 for v in self._location}
        self._home = config.domains_per_track // 2
        self.swaps = 0
        self.swap_shifts = 0

    # -- execution ---------------------------------------------------------

    def location_of(self, variable: str) -> tuple[int, int]:
        try:
            return self._location[variable]
        except KeyError:
            raise SimulationError(f"variable {variable!r} has no location") from None

    def _bump(self, variable: str) -> None:
        self._counters[variable] += 1
        if self._counters[variable] >= self.saturate:
            for v in self._counters:
                self._counters[v] //= 2

    def _maybe_swap(self, variable: str) -> tuple[int, int, int]:
        """Swap ``variable`` one slot toward the port home if it is hotter
        than its inward neighbour. Returns (swaps, extra_shifts, moves)."""
        if self._counters[variable] < self.threshold:
            return 0, 0, 0
        dbc_index, slot = self._location[variable]
        slots = self._slots[dbc_index]
        target = slot - 1 if slot > self._home else slot + 1
        if not 0 <= target < len(slots) or target == slot:
            return 0, 0, 0
        neighbour = slots[target]
        if neighbour is not None and (
            self._counters.get(neighbour, 0) >= self._counters[variable]
        ):
            return 0, 0, 0
        # Perform the swap: both words are read and rewritten; the track
        # is already aligned at `slot`, reaching `target` costs |delta|.
        extra_shifts = self._dbcs[dbc_index].access(target)
        slots[slot], slots[target] = slots[target], slots[slot]
        self._location[variable] = (dbc_index, target)
        if neighbour is not None:
            self._location[neighbour] = (dbc_index, slot)
        return 1, extra_shifts, 2

    def execute(self, trace: MemoryTrace) -> tuple[SimReport, SwapStats]:
        """Run the trace; returns the usual report plus swap statistics.

        Swap costs are folded into the report (shift counters, read/write
        energy and latency), so reports are directly comparable with the
        static controller's.
        """
        p = self.params
        reads = writes = shifts = 0
        swaps = swap_shifts = swap_moves = 0
        runtime = 0.0
        for name, is_write in trace.operations():
            dbc_index, slot = self.location_of(name)
            moved = self._dbcs[dbc_index].access(
                slot, policy=PortPolicy.NEAREST, warm_start=self.warm_start
            )
            shifts += moved
            runtime += moved * p.shift_latency_ns
            if is_write:
                writes += 1
                runtime += p.write_latency_ns
            else:
                reads += 1
                runtime += p.read_latency_ns
            self._bump(name)
            did, extra, moves = self._maybe_swap(name)
            swaps += did
            swap_shifts += extra
            swap_moves += moves
            if did:
                # each moved word is read at its old slot, written at the new
                runtime += moves * (p.read_latency_ns + p.write_latency_ns)
                runtime += extra * p.shift_latency_ns
        total_shifts = shifts + swap_shifts
        total_reads = reads + swap_moves
        total_writes = writes + swap_moves
        report = SimReport(
            dbcs=self.config.dbcs,
            accesses=reads + writes,
            reads=reads,
            writes=writes,
            shifts=total_shifts,
            runtime_ns=runtime,
            read_energy_pj=total_reads * p.read_energy_pj,
            write_energy_pj=total_writes * p.write_energy_pj,
            shift_energy_pj=total_shifts * p.shift_energy_pj,
            leakage_energy_pj=p.leakage_mw * runtime,
            area_mm2=p.area_mm2,
            per_dbc_shifts=tuple(d.shifts for d in self._dbcs),
        )
        stats = SwapStats(
            swaps=swaps,
            swap_shifts=swap_shifts,
            swap_reads=swap_moves,
            swap_writes=swap_moves,
        )
        self.swaps = swaps
        self.swap_shifts = swap_shifts
        return report, stats
