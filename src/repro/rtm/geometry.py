"""RTM geometry: banks -> subarrays -> DBCs -> tracks -> domains.

The evaluation uses iso-capacity 4 KiB subarrays with 32 tracks per DBC
(Table I): 2/4/8/16 DBCs with 512/256/128/64 domains per track. A memory
object (program variable) is bit-interleaved over the ``T`` tracks of a
DBC, so each variable occupies exactly one *location* (domain index) and
a DBC offers ``domains_per_track`` variable slots.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import GeometryError

#: The DBC counts evaluated throughout the paper (Table I, Figs. 4-6).
TABLE1_DBC_COUNTS: tuple[int, ...] = (2, 4, 8, 16)


@dataclass(frozen=True)
class RTMConfig:
    """Geometry of one RTM subarray (the unit the paper evaluates).

    Attributes
    ----------
    dbcs:
        Number of domain block clusters, ``q`` in Algorithm 1.
    tracks_per_dbc:
        Nanotracks grouped per DBC (``T``); one bit of a variable per track.
    domains_per_track:
        Domains (bits) per nanotrack (``K``); equals the variable capacity
        ``N`` of a DBC.
    ports_per_track:
        Access ports per track. The paper's generalized heuristics work
        for any count; Chen's original multi-DBC heuristic assumed >= 2.
    banks / subarrays:
        Higher organisational levels; kept for capacity accounting.
    """

    dbcs: int
    tracks_per_dbc: int = 32
    domains_per_track: int = 64
    ports_per_track: int = 1
    banks: int = 1
    subarrays: int = 1

    def __post_init__(self) -> None:
        for field in ("dbcs", "tracks_per_dbc", "domains_per_track",
                      "ports_per_track", "banks", "subarrays"):
            value = getattr(self, field)
            if not isinstance(value, int) or value < 1:
                raise GeometryError(f"{field} must be a positive int, got {value!r}")
        if self.ports_per_track > self.domains_per_track:
            raise GeometryError(
                f"{self.ports_per_track} ports cannot serve only "
                f"{self.domains_per_track} domains per track"
            )

    # -- capacity ------------------------------------------------------------

    @property
    def locations_per_dbc(self) -> int:
        """Variable slots per DBC (= N in Algorithm 1)."""
        return self.domains_per_track

    @property
    def total_locations(self) -> int:
        """Variable slots in one subarray (= q * N)."""
        return self.dbcs * self.domains_per_track

    @property
    def bits_per_subarray(self) -> int:
        return self.dbcs * self.tracks_per_dbc * self.domains_per_track

    @property
    def capacity_bytes(self) -> int:
        """Total capacity over all banks and subarrays."""
        bits = self.bits_per_subarray * self.subarrays * self.banks
        return bits // 8

    @property
    def word_bytes(self) -> int:
        """Bytes per variable location (one bit per track)."""
        return self.tracks_per_dbc // 8 if self.tracks_per_dbc % 8 == 0 else 0

    # -- derived -------------------------------------------------------------

    @property
    def max_shift_distance(self) -> int:
        """Worst-case shifts for a single access (single-port track)."""
        return self.domains_per_track - 1

    def with_ports(self, ports_per_track: int) -> "RTMConfig":
        return replace(self, ports_per_track=ports_per_track)

    def describe(self) -> str:
        return (
            f"{self.dbcs} DBCs x {self.tracks_per_dbc} tracks x "
            f"{self.domains_per_track} domains, {self.ports_per_track} port(s)/track "
            f"({self.capacity_bytes} B)"
        )


def iso_capacity_sweep(
    capacity_bytes: int = 4096,
    tracks_per_dbc: int = 32,
    dbc_counts: tuple[int, ...] = TABLE1_DBC_COUNTS,
    ports_per_track: int = 1,
) -> list[RTMConfig]:
    """Build the iso-capacity configuration sweep of Table I.

    For each DBC count, domains per track are chosen so that total capacity
    stays constant: 4 KiB with 32 tracks/DBC gives 512/256/128/64 domains
    for 2/4/8/16 DBCs, exactly Table I's first two rows.
    """
    total_bits = capacity_bytes * 8
    configs = []
    for q in dbc_counts:
        per_track = total_bits // (q * tracks_per_dbc)
        if per_track * q * tracks_per_dbc != total_bits:
            raise GeometryError(
                f"capacity {capacity_bytes} B does not divide evenly into "
                f"{q} DBCs x {tracks_per_dbc} tracks"
            )
        if per_track < 1:
            raise GeometryError(
                f"capacity {capacity_bytes} B too small for {q} DBCs x "
                f"{tracks_per_dbc} tracks"
            )
        configs.append(
            RTMConfig(
                dbcs=q,
                tracks_per_dbc=tracks_per_dbc,
                domains_per_track=per_track,
                ports_per_track=ports_per_track,
            )
        )
    return configs
