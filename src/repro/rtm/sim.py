"""Top-level simulation entry points (the RTSim role in the paper's flow).

``simulate`` runs one trace under one placement; ``simulate_program`` runs
a whole benchmark program (each access sequence independently, as in the
offset-assignment methodology) and sums the reports. Both accept a
``backend`` selecting the shift-engine implementation (vectorized numpy
by default; ``"reference"`` for the per-access oracle loop).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.engine import FaultModel
from repro.rtm.controller import RTMController
from repro.rtm.geometry import RTMConfig
from repro.rtm.ports import PortPolicy
from repro.rtm.report import SimReport
from repro.rtm.timing import MemoryParams
from repro.trace.trace import MemoryTrace


def simulate(
    trace: MemoryTrace,
    placement,
    config: RTMConfig,
    params: MemoryParams | None = None,
    port_policy: PortPolicy = PortPolicy.NEAREST,
    warm_start: bool = True,
    backend: object = None,
    fault: FaultModel | None = None,
    scrub_interval: int | None = None,
) -> SimReport:
    """Simulate a single trace; see :class:`RTMController` for semantics."""
    controller = RTMController(
        config, placement, params=params, port_policy=port_policy,
        warm_start=warm_start, backend=backend, fault=fault,
        scrub_interval=scrub_interval,
    )
    return controller.execute(trace)


def simulate_program(
    pairs: Iterable[tuple[MemoryTrace, object]],
    config: RTMConfig,
    params: MemoryParams | None = None,
    port_policy: PortPolicy = PortPolicy.NEAREST,
    warm_start: bool = True,
    backend: object = None,
    fault: FaultModel | None = None,
    scrub_interval: int | None = None,
) -> SimReport:
    """Simulate ``(trace, placement)`` pairs independently and sum reports.

    Each sequence gets the whole subarray (fresh controller), matching how
    the paper evaluates OffsetStone programs: per-procedure sequences are
    placed and measured in isolation and program metrics are sums.
    """
    total: SimReport | None = None
    for trace, placement in pairs:
        report = simulate(
            trace, placement, config, params=params,
            port_policy=port_policy, warm_start=warm_start, backend=backend,
            fault=fault, scrub_interval=scrub_interval,
        )
        total = report if total is None else total + report
    if total is None:
        raise ValueError("simulate_program needs at least one (trace, placement)")
    return total
