"""Proactive alignment (pre-shifting) — hiding shifts in idle time.

Several works the paper cites ([1], [12], [20], [21]) proactively align
the likely-next domain under the port while the DBC is idle, trading
extra shift *energy* for lower access *latency* (the idle shifts overlap
with other work and leave the critical path). This module implements the
policy class on top of the device model:

* ``centre``  — after each access return the track toward the middle of
  its occupied region, bounding the worst-case next distance;
* ``stride``  — predict the next location by repeating the last stride
  (captures streaming sweeps);
* ``none``    — plain demand shifting (the baseline).

The simulator reports demand shifts (latency-bearing) and idle shifts
(energy-bearing) separately so the latency/energy trade-off is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import PlacementError, SimulationError
from repro.rtm.device import DBCState
from repro.rtm.geometry import RTMConfig
from repro.rtm.ports import PortPolicy
from repro.rtm.timing import MemoryParams, params_for
from repro.trace.trace import MemoryTrace


class PreshiftPolicy(str, Enum):
    NONE = "none"
    CENTRE = "centre"
    STRIDE = "stride"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PreshiftReport:
    """Latency-bearing vs hidden shift work under a pre-shift policy."""

    demand_shifts: int
    idle_shifts: int
    accesses: int
    latency_ns: float
    shift_energy_pj: float

    @property
    def total_shifts(self) -> int:
        return self.demand_shifts + self.idle_shifts


class PreshiftController:
    """Trace executor with an idle-time alignment policy."""

    def __init__(
        self,
        config: RTMConfig,
        placement,
        policy: PreshiftPolicy = PreshiftPolicy.NONE,
        params: MemoryParams | None = None,
        warm_start: bool = True,
    ) -> None:
        self.config = config
        self.params = params or params_for(config)
        self.policy = PreshiftPolicy(policy)
        self.warm_start = warm_start
        self._location: dict[str, tuple[int, int]] = {}
        self._fill: list[int] = []
        dbc_lists = [list(d) for d in placement.dbc_lists()]
        if len(dbc_lists) > config.dbcs:
            raise PlacementError(
                f"placement uses {len(dbc_lists)} DBCs, device has {config.dbcs}"
            )
        for dbc_index, variables in enumerate(dbc_lists):
            if len(variables) > config.locations_per_dbc:
                raise PlacementError(f"DBC {dbc_index} over capacity")
            self._fill.append(len(variables))
            for slot, name in enumerate(variables):
                if name is None:  # explicitly empty location
                    continue
                if name in self._location:
                    raise PlacementError(f"variable {name!r} placed twice")
                self._location[name] = (dbc_index, slot)
        while len(self._fill) < config.dbcs:
            self._fill.append(0)
        self._dbcs = [
            DBCState(config.domains_per_track, config.ports_per_track)
            for _ in range(config.dbcs)
        ]
        self._last_slot: list[int | None] = [None] * config.dbcs
        self._last_stride: list[int] = [0] * config.dbcs

    def _predict(self, dbc_index: int) -> int | None:
        """Predicted next location for a DBC, or None to stay put."""
        if self.policy is PreshiftPolicy.NONE:
            return None
        if self.policy is PreshiftPolicy.CENTRE:
            fill = self._fill[dbc_index]
            return fill // 2 if fill else None
        last = self._last_slot[dbc_index]
        if last is None:
            return None
        predicted = last + self._last_stride[dbc_index]
        return max(0, min(predicted, self.config.domains_per_track - 1))

    def execute(self, trace: MemoryTrace) -> PreshiftReport:
        p = self.params
        demand = idle = 0
        latency = 0.0
        for name, is_write in trace.operations():
            dbc_index, slot = self._location.get(name, (None, None))
            if dbc_index is None:
                raise SimulationError(f"variable {name!r} has no location")
            dbc = self._dbcs[dbc_index]
            moved = dbc.access(slot, warm_start=self.warm_start)
            demand += moved
            latency += moved * p.shift_latency_ns
            latency += p.write_latency_ns if is_write else p.read_latency_ns
            last = self._last_slot[dbc_index]
            self._last_stride[dbc_index] = 0 if last is None else slot - last
            self._last_slot[dbc_index] = slot
            target = self._predict(dbc_index)
            if target is not None and target != slot:
                # idle-time alignment: energy, no latency contribution
                idle += dbc.access(target, policy=PortPolicy.NEAREST)
        return PreshiftReport(
            demand_shifts=demand,
            idle_shifts=idle,
            accesses=len(trace),
            latency_ns=latency,
            shift_energy_pj=(demand + idle) * p.shift_energy_pj,
        )
