"""The RTM controller: maps variables to physical locations and executes
accesses against per-DBC device state.

This is the piece RTSim plays in the paper's flow: it receives a memory
trace and a placement, drives the shift machinery, and accounts latency
and energy using the DESTINY-calibrated parameters. Since the shift-
engine refactor it no longer walks traces one access at a time: a trace
is compiled to flat ``(dbc, slot)`` arrays once and handed to an engine
backend (vectorized numpy by default, the per-access reference loop on
request), with the per-DBC shift state carried between ``execute`` calls
exactly as the old per-access device loop did.
"""

from __future__ import annotations

import numpy as np

from repro.engine import FaultModel, ShiftRequest, get_backend
from repro.engine.cursor import ShiftCursor
from repro.errors import PlacementError, SimulationError
from repro.rtm.geometry import RTMConfig
from repro.rtm.ports import PortPolicy
from repro.rtm.report import SimReport
from repro.rtm.timing import MemoryParams, params_for
from repro.trace.trace import MemoryTrace


class RTMController:
    """Executes traces against an RTM configuration under a placement.

    Parameters
    ----------
    config:
        The RTM geometry.
    placement:
        Anything exposing ``dbc_lists() -> sequence of ordered variable
        name lists`` (one per DBC, slot order = list order); the core
        package's ``Placement`` satisfies this.
    params:
        Calibrated parameters; derived from ``config`` when omitted.
    port_policy:
        Port selection behaviour (nearest by default).
    warm_start:
        Whether each DBC's first access aligns for free (the paper's cost
        convention; see DESIGN.md §6).
    backend:
        Engine backend name or instance; defaults to the process-wide
        default (``REPRO_BACKEND`` or vectorized numpy).
    fault:
        Optional :class:`~repro.engine.FaultModel` injecting
        seed-deterministic off-by-one shift faults; the controller then
        tracks per-DBC position drift, misaligned accesses and the
        undetected-corruption flag across ``execute`` calls. A null
        model (rate 0) is normalized away and runs the clean path.
    scrub_interval:
        Optional scrubbing cadence S (requires ``fault``): after every
        S accesses — counted across the controller's lifetime, so the
        cadence is invariant to how traces are chunked — drifted tracks
        are realigned, charging the corrective shifts as explicit scrub
        traffic (priced into runtime and shift energy, reported apart
        from placement shifts).
    """

    def __init__(
        self,
        config: RTMConfig,
        placement,
        params: MemoryParams | None = None,
        port_policy: PortPolicy = PortPolicy.NEAREST,
        warm_start: bool = True,
        backend: object = None,
        fault: FaultModel | None = None,
        scrub_interval: int | None = None,
    ) -> None:
        dbc_lists = [list(d) for d in placement.dbc_lists()]
        if len(dbc_lists) > config.dbcs:
            raise PlacementError(
                f"placement uses {len(dbc_lists)} DBCs but the device has "
                f"{config.dbcs}"
            )
        self._location: dict[str, tuple[int, int]] = {}
        for dbc_index, variables in enumerate(dbc_lists):
            if len(variables) > config.locations_per_dbc:
                raise PlacementError(
                    f"DBC {dbc_index} holds {len(variables)} variables but has "
                    f"only {config.locations_per_dbc} locations"
                )
            for slot, name in enumerate(variables):
                if name is None:  # explicitly empty location
                    continue
                if name in self._location:
                    raise PlacementError(f"variable {name!r} placed twice")
                self._location[name] = (dbc_index, slot)
        self.config = config
        self.params = params or params_for(config)
        self.port_policy = port_policy
        self.warm_start = warm_start
        self._backend = get_backend(backend)
        if fault is not None and fault.is_null:
            fault = None  # rate 0 is the clean path (zero-cost-when-off)
        self.fault = fault
        if scrub_interval is not None:
            if fault is None:
                raise SimulationError(
                    "scrub_interval requires a fault model: scrubbing a "
                    "clean controller would only charge useless shifts"
                )
            if int(scrub_interval) < 1:
                raise SimulationError(
                    f"scrub_interval must be >= 1, got {scrub_interval}"
                )
            scrub_interval = int(scrub_interval)
        self.scrub_interval = scrub_interval
        self._offsets = np.zeros(config.dbcs, dtype=np.int64)
        self._aligned = np.zeros(config.dbcs, dtype=bool)
        self._per_dbc_shifts = np.zeros(config.dbcs, dtype=np.int64)
        self._drifts = np.zeros(config.dbcs, dtype=np.int64)
        self._corrupted = False
        self._accesses_done = 0

    # -- execution -----------------------------------------------------------

    def location_of(self, variable: str) -> tuple[int, int]:
        """Physical ``(dbc, slot)`` of a variable."""
        try:
            return self._location[variable]
        except KeyError:
            raise SimulationError(f"variable {variable!r} has no location") from None

    def _variable_luts(self, variables) -> tuple[np.ndarray, np.ndarray]:
        """Code-indexed ``(dbc, slot)`` lookup tables (-1 for unplaced)."""
        var_dbc = np.full(len(variables), -1, dtype=np.int64)
        var_slot = np.full(len(variables), -1, dtype=np.int64)
        for code, name in enumerate(variables):
            loc = self._location.get(name)
            if loc is not None:
                var_dbc[code], var_slot[code] = loc
        return var_dbc, var_slot

    def _compile(self, trace: MemoryTrace) -> tuple[np.ndarray, np.ndarray]:
        """Per-access ``(dbc, slot)`` arrays for a trace under this mapping."""
        seq = trace.sequence
        var_dbc, var_slot = self._variable_luts(seq.variables)
        codes = seq.codes
        if codes.size:
            used = np.unique(codes)
            missing = used[var_dbc[used] < 0]
            if missing.size:
                name = seq.variables[int(missing[0])]
                raise SimulationError(f"variable {name!r} has no location")
        return var_dbc[codes], var_slot[codes]

    def _report(
        self,
        reads: int,
        writes: int,
        shifts: int,
        *,
        scrub_shifts: int = 0,
        scrub_events: int = 0,
        fault_injected: int = 0,
        fault_misaligned: int = 0,
    ) -> SimReport:
        """Price integer access/shift totals into one :class:`SimReport`.

        Shared by the monolithic and streaming paths; building the
        report once from accumulated *integer* counters (instead of
        summing per-chunk float reports) is what keeps streamed reports
        float-bit-identical to monolithic ones. Scrub shifts are real
        device shifts — they pay latency and shift energy like any
        other — but stay out of ``shifts``/``per_dbc_shifts`` so
        placement traffic remains comparable across fault settings.
        """
        p = self.params
        device_shifts = shifts + scrub_shifts
        runtime = (
            device_shifts * p.shift_latency_ns
            + reads * p.read_latency_ns
            + writes * p.write_latency_ns
        )
        histogram: tuple[tuple[int, int], ...] = ()
        if self.fault is not None:
            drifts = self._drifts[self._drifts != 0]
            values, counts = np.unique(drifts, return_counts=True)
            histogram = tuple(
                (int(v), int(c)) for v, c in zip(values, counts)
            )
        return SimReport(
            dbcs=self.config.dbcs,
            accesses=reads + writes,
            reads=reads,
            writes=writes,
            shifts=shifts,
            runtime_ns=runtime,
            read_energy_pj=reads * p.read_energy_pj,
            write_energy_pj=writes * p.write_energy_pj,
            shift_energy_pj=device_shifts * p.shift_energy_pj,
            leakage_energy_pj=p.leakage_mw * runtime,
            area_mm2=p.area_mm2,
            per_dbc_shifts=tuple(int(s) for s in self._per_dbc_shifts),
            fault_injected=fault_injected,
            fault_misaligned=fault_misaligned,
            fault_corrupted=self._corrupted,
            scrub_shifts=scrub_shifts,
            scrub_events=scrub_events,
            drift_histogram=histogram,
        )

    def _make_cursor(self) -> ShiftCursor:
        """A cursor seeded with the controller's full carried state."""
        return ShiftCursor(
            num_dbcs=self.config.dbcs,
            domains=self.config.domains_per_track,
            ports=self.config.ports_per_track,
            policy=self.port_policy,
            warm_start=self.warm_start,
            backend=self._backend,
            init_offsets=self._offsets,
            init_aligned=self._aligned,
            fault=self.fault,
            access_base=self._accesses_done,
            init_drifts=self._drifts if self.fault is not None else None,
        )

    def _replay_scrubbed(
        self, cursor: ShiftCursor, dbc: np.ndarray, slot: np.ndarray
    ) -> None:
        """Replay one compiled chunk, scrubbing at absolute S-boundaries.

        The cadence counts *lifetime* accesses (``cursor.access_base +
        cursor.accesses``), so splitting a trace into chunks — or across
        ``execute`` calls — scrubs at exactly the same access indices as
        one monolithic run: the scrubbed replay stays chunk-size
        invariant like everything else in the engine.
        """
        interval = self.scrub_interval
        if interval is None:
            cursor.replay_chunk(dbc, slot)
            return
        n = int(dbc.size)
        pos = 0
        while pos < n:
            done = cursor.access_base + cursor.accesses
            take = min(n - pos, interval - done % interval)
            cursor.replay_chunk(dbc[pos:pos + take], slot[pos:pos + take])
            pos += take
            if (cursor.access_base + cursor.accesses) % interval == 0:
                cursor.scrub()

    def _absorb_cursor(self, cursor: ShiftCursor) -> None:
        """Carry a finished cursor's state back into the controller."""
        self._offsets = cursor.offsets
        self._aligned = cursor.aligned
        self._per_dbc_shifts += cursor.per_dbc_shifts
        self._accesses_done += cursor.accesses
        if self.fault is not None:
            self._drifts = np.asarray(cursor.drifts, dtype=np.int64)
            self._corrupted = self._corrupted or cursor.corrupted

    def execute(self, trace: MemoryTrace) -> SimReport:
        """Run one trace to completion and report counters and energy.

        Streaming traces (anything exposing ``chunks()``) dispatch to
        :meth:`execute_stream` — same counters, bounded memory.
        """
        if hasattr(trace, "chunks"):
            return self.execute_stream(trace)
        dbc, slot = self._compile(trace)
        writes = trace.num_writes
        reads = len(trace) - writes
        if self.fault is not None:
            # Faulted replay routes through a cursor so the scrubbing
            # cadence (and the drift carry) is identical to streaming.
            cursor = self._make_cursor()
            self._replay_scrubbed(cursor, dbc, slot)
            self._absorb_cursor(cursor)
            return self._report(
                reads, writes, cursor.shifts,
                scrub_shifts=cursor.scrub_shifts,
                scrub_events=cursor.scrub_events,
                fault_injected=cursor.fault_injected,
                fault_misaligned=cursor.fault_misaligned,
            )
        result = self._backend.run(
            ShiftRequest(
                dbc=dbc,
                slot=slot,
                num_dbcs=self.config.dbcs,
                domains=self.config.domains_per_track,
                ports=self.config.ports_per_track,
                policy=self.port_policy,
                warm_start=self.warm_start,
                init_offsets=self._offsets,
                init_aligned=self._aligned,
            )
        )
        self._offsets = result.final_offsets
        self._aligned = result.final_aligned
        self._per_dbc_shifts += np.asarray(result.per_dbc_shifts, dtype=np.int64)
        self._accesses_done += result.accesses
        return self._report(reads, writes, result.shifts)

    def execute_stream(self, trace, chunk_hooks=()) -> SimReport:
        """Run a streaming trace chunk by chunk in bounded memory.

        ``trace`` is anything yielding
        :class:`~repro.trace.streaming.TraceChunk`-shaped objects from
        ``chunks()`` with a ``sequence`` carrying the variable universe
        (e.g. :class:`~repro.trace.streaming.StreamingTrace`). A
        :class:`~repro.engine.ShiftCursor` seeded with the controller's
        carried shift state advances over the chunks, so chained
        ``execute`` calls keep their semantics; by the cursor's
        associativity contract the resulting report is bit-identical —
        integer counters *and* derived floats — to :meth:`execute` over
        the materialized trace, for any chunk size.

        ``chunk_hooks`` are called as ``hook(chunk, dbc, slot)`` after
        each chunk is compiled, letting callers ride along the single
        pass (the matrix runner advances its analytic single-port
        observer cursor this way instead of re-reading the trace).

        Streamed variable universes contain accessed variables only
        (the census keeps nothing else), so placement coverage is
        checked once up front rather than per chunk.
        """
        info = trace.sequence
        var_dbc, var_slot = self._variable_luts(info.variables)
        missing = np.flatnonzero(var_dbc < 0)
        if missing.size:
            name = info.variables[int(missing[0])]
            raise SimulationError(f"variable {name!r} has no location")
        cursor = self._make_cursor()
        reads = writes = 0
        for chunk in trace.chunks():
            codes = chunk.codes
            dbc, slot = var_dbc[codes], var_slot[codes]
            self._replay_scrubbed(cursor, dbc, slot)
            w = int(np.count_nonzero(chunk.writes))
            writes += w
            reads += int(codes.size) - w
            for hook in chunk_hooks:
                hook(chunk, dbc, slot)
        self._absorb_cursor(cursor)
        return self._report(
            reads, writes, cursor.shifts,
            scrub_shifts=cursor.scrub_shifts,
            scrub_events=cursor.scrub_events,
            fault_injected=cursor.fault_injected,
            fault_misaligned=cursor.fault_misaligned,
        )

    def reset(self) -> None:
        """Return all DBCs to the unaligned initial state."""
        self._offsets = np.zeros(self.config.dbcs, dtype=np.int64)
        self._aligned = np.zeros(self.config.dbcs, dtype=bool)
        self._per_dbc_shifts = np.zeros(self.config.dbcs, dtype=np.int64)
        self._drifts = np.zeros(self.config.dbcs, dtype=np.int64)
        self._corrupted = False
        self._accesses_done = 0

    @property
    def total_shifts(self) -> int:
        return int(self._per_dbc_shifts.sum())
