"""The RTM controller: maps variables to physical locations and executes
accesses against per-DBC device state.

This is the piece RTSim plays in the paper's flow: it receives a memory
trace and a placement, drives the shift machinery, and accounts latency
and energy using the DESTINY-calibrated parameters. Since the shift-
engine refactor it no longer walks traces one access at a time: a trace
is compiled to flat ``(dbc, slot)`` arrays once and handed to an engine
backend (vectorized numpy by default, the per-access reference loop on
request), with the per-DBC shift state carried between ``execute`` calls
exactly as the old per-access device loop did.
"""

from __future__ import annotations

import numpy as np

from repro.engine import ShiftRequest, get_backend
from repro.errors import PlacementError, SimulationError
from repro.rtm.geometry import RTMConfig
from repro.rtm.ports import PortPolicy
from repro.rtm.report import SimReport
from repro.rtm.timing import MemoryParams, params_for
from repro.trace.trace import MemoryTrace


class RTMController:
    """Executes traces against an RTM configuration under a placement.

    Parameters
    ----------
    config:
        The RTM geometry.
    placement:
        Anything exposing ``dbc_lists() -> sequence of ordered variable
        name lists`` (one per DBC, slot order = list order); the core
        package's ``Placement`` satisfies this.
    params:
        Calibrated parameters; derived from ``config`` when omitted.
    port_policy:
        Port selection behaviour (nearest by default).
    warm_start:
        Whether each DBC's first access aligns for free (the paper's cost
        convention; see DESIGN.md §6).
    backend:
        Engine backend name or instance; defaults to the process-wide
        default (``REPRO_BACKEND`` or vectorized numpy).
    """

    def __init__(
        self,
        config: RTMConfig,
        placement,
        params: MemoryParams | None = None,
        port_policy: PortPolicy = PortPolicy.NEAREST,
        warm_start: bool = True,
        backend: object = None,
    ) -> None:
        dbc_lists = [list(d) for d in placement.dbc_lists()]
        if len(dbc_lists) > config.dbcs:
            raise PlacementError(
                f"placement uses {len(dbc_lists)} DBCs but the device has "
                f"{config.dbcs}"
            )
        self._location: dict[str, tuple[int, int]] = {}
        for dbc_index, variables in enumerate(dbc_lists):
            if len(variables) > config.locations_per_dbc:
                raise PlacementError(
                    f"DBC {dbc_index} holds {len(variables)} variables but has "
                    f"only {config.locations_per_dbc} locations"
                )
            for slot, name in enumerate(variables):
                if name is None:  # explicitly empty location
                    continue
                if name in self._location:
                    raise PlacementError(f"variable {name!r} placed twice")
                self._location[name] = (dbc_index, slot)
        self.config = config
        self.params = params or params_for(config)
        self.port_policy = port_policy
        self.warm_start = warm_start
        self._backend = get_backend(backend)
        self._offsets = np.zeros(config.dbcs, dtype=np.int64)
        self._aligned = np.zeros(config.dbcs, dtype=bool)
        self._per_dbc_shifts = np.zeros(config.dbcs, dtype=np.int64)

    # -- execution -----------------------------------------------------------

    def location_of(self, variable: str) -> tuple[int, int]:
        """Physical ``(dbc, slot)`` of a variable."""
        try:
            return self._location[variable]
        except KeyError:
            raise SimulationError(f"variable {variable!r} has no location") from None

    def _compile(self, trace: MemoryTrace) -> tuple[np.ndarray, np.ndarray]:
        """Per-access ``(dbc, slot)`` arrays for a trace under this mapping."""
        seq = trace.sequence
        var_dbc = np.full(seq.num_variables, -1, dtype=np.int64)
        var_slot = np.full(seq.num_variables, -1, dtype=np.int64)
        for code, name in enumerate(seq.variables):
            loc = self._location.get(name)
            if loc is not None:
                var_dbc[code], var_slot[code] = loc
        codes = seq.codes
        if codes.size:
            used = np.unique(codes)
            missing = used[var_dbc[used] < 0]
            if missing.size:
                name = seq.variables[int(missing[0])]
                raise SimulationError(f"variable {name!r} has no location")
        return var_dbc[codes], var_slot[codes]

    def execute(self, trace: MemoryTrace) -> SimReport:
        """Run one trace to completion and report counters and energy."""
        p = self.params
        dbc, slot = self._compile(trace)
        result = self._backend.run(
            ShiftRequest(
                dbc=dbc,
                slot=slot,
                num_dbcs=self.config.dbcs,
                domains=self.config.domains_per_track,
                ports=self.config.ports_per_track,
                policy=self.port_policy,
                warm_start=self.warm_start,
                init_offsets=self._offsets,
                init_aligned=self._aligned,
            )
        )
        self._offsets = result.final_offsets
        self._aligned = result.final_aligned
        self._per_dbc_shifts += np.asarray(result.per_dbc_shifts, dtype=np.int64)
        writes = trace.num_writes
        reads = len(trace) - writes
        shifts = result.shifts
        runtime = (
            shifts * p.shift_latency_ns
            + reads * p.read_latency_ns
            + writes * p.write_latency_ns
        )
        return SimReport(
            dbcs=self.config.dbcs,
            accesses=reads + writes,
            reads=reads,
            writes=writes,
            shifts=shifts,
            runtime_ns=runtime,
            read_energy_pj=reads * p.read_energy_pj,
            write_energy_pj=writes * p.write_energy_pj,
            shift_energy_pj=shifts * p.shift_energy_pj,
            leakage_energy_pj=p.leakage_mw * runtime,
            area_mm2=p.area_mm2,
            per_dbc_shifts=tuple(int(s) for s in self._per_dbc_shifts),
        )

    def reset(self) -> None:
        """Return all DBCs to the unaligned initial state."""
        self._offsets = np.zeros(self.config.dbcs, dtype=np.int64)
        self._aligned = np.zeros(self.config.dbcs, dtype=bool)
        self._per_dbc_shifts = np.zeros(self.config.dbcs, dtype=np.int64)

    @property
    def total_shifts(self) -> int:
        return int(self._per_dbc_shifts.sum())
