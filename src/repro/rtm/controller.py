"""The RTM controller: maps variables to physical locations and executes
accesses against per-DBC device state.

This is the piece RTSim plays in the paper's flow: it receives a memory
trace and a placement, drives the shift machinery, and accounts latency
and energy using the DESTINY-calibrated parameters.
"""

from __future__ import annotations

from repro.errors import PlacementError, SimulationError
from repro.rtm.device import DBCState
from repro.rtm.geometry import RTMConfig
from repro.rtm.ports import PortPolicy
from repro.rtm.report import SimReport
from repro.rtm.timing import MemoryParams, params_for
from repro.trace.trace import MemoryTrace


class RTMController:
    """Executes traces against an RTM configuration under a placement.

    Parameters
    ----------
    config:
        The RTM geometry.
    placement:
        Anything exposing ``dbc_lists() -> sequence of ordered variable
        name lists`` (one per DBC, slot order = list order); the core
        package's ``Placement`` satisfies this.
    params:
        Calibrated parameters; derived from ``config`` when omitted.
    port_policy:
        Port selection behaviour (nearest by default).
    warm_start:
        Whether each DBC's first access aligns for free (the paper's cost
        convention; see DESIGN.md §6).
    """

    def __init__(
        self,
        config: RTMConfig,
        placement,
        params: MemoryParams | None = None,
        port_policy: PortPolicy = PortPolicy.NEAREST,
        warm_start: bool = True,
    ) -> None:
        dbc_lists = [list(d) for d in placement.dbc_lists()]
        if len(dbc_lists) > config.dbcs:
            raise PlacementError(
                f"placement uses {len(dbc_lists)} DBCs but the device has "
                f"{config.dbcs}"
            )
        self._location: dict[str, tuple[int, int]] = {}
        for dbc_index, variables in enumerate(dbc_lists):
            if len(variables) > config.locations_per_dbc:
                raise PlacementError(
                    f"DBC {dbc_index} holds {len(variables)} variables but has "
                    f"only {config.locations_per_dbc} locations"
                )
            for slot, name in enumerate(variables):
                if name is None:  # explicitly empty location
                    continue
                if name in self._location:
                    raise PlacementError(f"variable {name!r} placed twice")
                self._location[name] = (dbc_index, slot)
        self.config = config
        self.params = params or params_for(config)
        self.port_policy = port_policy
        self.warm_start = warm_start
        self._dbcs = [
            DBCState(config.domains_per_track, config.ports_per_track)
            for _ in range(config.dbcs)
        ]

    # -- execution -----------------------------------------------------------

    def location_of(self, variable: str) -> tuple[int, int]:
        """Physical ``(dbc, slot)`` of a variable."""
        try:
            return self._location[variable]
        except KeyError:
            raise SimulationError(f"variable {variable!r} has no location") from None

    def execute(self, trace: MemoryTrace) -> SimReport:
        """Run one trace to completion and report counters and energy."""
        p = self.params
        reads = writes = shifts = 0
        runtime = 0.0
        for name, is_write in trace.operations():
            dbc_index, slot = self.location_of(name)
            moved = self._dbcs[dbc_index].access(
                slot, policy=self.port_policy, warm_start=self.warm_start
            )
            shifts += moved
            runtime += moved * p.shift_latency_ns
            if is_write:
                writes += 1
                runtime += p.write_latency_ns
            else:
                reads += 1
                runtime += p.read_latency_ns
        return SimReport(
            dbcs=self.config.dbcs,
            accesses=reads + writes,
            reads=reads,
            writes=writes,
            shifts=shifts,
            runtime_ns=runtime,
            read_energy_pj=reads * p.read_energy_pj,
            write_energy_pj=writes * p.write_energy_pj,
            shift_energy_pj=shifts * p.shift_energy_pj,
            leakage_energy_pj=p.leakage_mw * runtime,
            area_mm2=p.area_mm2,
            per_dbc_shifts=tuple(d.shifts for d in self._dbcs),
        )

    def reset(self) -> None:
        """Return all DBCs to the unaligned initial state."""
        for d in self._dbcs:
            d.reset()

    @property
    def total_shifts(self) -> int:
        return sum(d.shifts for d in self._dbcs)
