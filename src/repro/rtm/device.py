"""Per-DBC device state: track alignment and shift execution.

All ``T`` tracks of a DBC shift in lock-step, so one offset models the
whole cluster. The offset is bounded: a track of ``K`` domains with a
port at position ``P`` can align locations ``0..K-1``, so the offset
stays within ``[-(K-1), K-1]`` — the engine's scalar step enforces this
physically sensible envelope and flags violations as simulation bugs.

:class:`DBCState` is the stateful per-access view of the shift engine's
semantics: every ``access`` is exactly one :func:`repro.engine.semantics
.step`, which makes it the natural building block for controllers that
interleave accesses with other machinery (swapping, pre-shifting). Batch
execution of whole traces goes through the engine backends instead.
"""

from __future__ import annotations

from repro.engine.semantics import PortPolicy, port_positions, step


class DBCState:
    """Mutable shift state of one DBC during simulation."""

    __slots__ = ("domains", "positions", "offset", "aligned", "shifts",
                 "accesses", "max_excursion")

    def __init__(self, domains: int, ports: int = 1) -> None:
        self.domains = domains
        self.positions = port_positions(domains, ports)
        self.offset = 0
        #: False until the first access (supports the paper's cost
        #: convention that the port starts aligned with the first access).
        self.aligned = False
        self.shifts = 0
        self.accesses = 0
        self.max_excursion = 0

    def access(
        self,
        location: int,
        policy: PortPolicy = PortPolicy.NEAREST,
        warm_start: bool = True,
    ) -> int:
        """Shift ``location`` under a port; returns the shifts performed.

        With ``warm_start`` the very first access aligns for free, which is
        the cost convention fixed by the paper's Fig. 3 arithmetic; without
        it the initial alignment from offset 0 is charged like any other.
        """
        self.offset, cost = step(
            self.positions, self.domains, self.offset, self.aligned,
            location, policy, warm_start,
        )
        self.aligned = True
        self.shifts += cost
        self.accesses += 1
        self.max_excursion = max(self.max_excursion, abs(self.offset))
        return cost

    def reset(self) -> None:
        self.offset = 0
        self.aligned = False
        self.shifts = 0
        self.accesses = 0
        self.max_excursion = 0
