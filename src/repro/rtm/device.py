"""Per-DBC device state: track alignment and shift execution.

All ``T`` tracks of a DBC shift in lock-step, so one offset models the
whole cluster. The offset is bounded: a track of ``K`` domains with a
port at position ``P`` can align locations ``0..K-1``, so the offset
stays within ``[-(K-1), K-1]`` — the device enforces this physically
sensible envelope and flags violations as simulation bugs.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.rtm.ports import PortPolicy, port_positions, select_port


class DBCState:
    """Mutable shift state of one DBC during simulation."""

    __slots__ = ("domains", "positions", "offset", "aligned", "shifts",
                 "accesses", "max_excursion")

    def __init__(self, domains: int, ports: int = 1) -> None:
        self.domains = domains
        self.positions = port_positions(domains, ports)
        self.offset = 0
        #: False until the first access (supports the paper's cost
        #: convention that the port starts aligned with the first access).
        self.aligned = False
        self.shifts = 0
        self.accesses = 0
        self.max_excursion = 0

    def access(
        self,
        location: int,
        policy: PortPolicy = PortPolicy.NEAREST,
        warm_start: bool = True,
    ) -> int:
        """Shift ``location`` under a port; returns the shifts performed.

        With ``warm_start`` the very first access aligns for free, which is
        the cost convention fixed by the paper's Fig. 3 arithmetic; without
        it the initial alignment from offset 0 is charged like any other.
        """
        if not 0 <= location < self.domains:
            raise SimulationError(
                f"location {location} outside track of {self.domains} domains"
            )
        first = not self.aligned
        _port, delta = select_port(self.positions, self.offset, location, policy)
        self.offset += delta
        if first and warm_start:
            delta = 0  # track is modelled as pre-positioned: free alignment
        self.aligned = True
        cost = abs(delta)
        self.shifts += cost
        self.accesses += 1
        self.max_excursion = max(self.max_excursion, abs(self.offset))
        self._check_envelope()
        return cost

    def _check_envelope(self) -> None:
        # offset = location - port_position with both in [0, K-1], so any
        # reachable state satisfies |offset| <= K-1.
        if abs(self.offset) > self.domains - 1:
            raise SimulationError(
                f"track offset {self.offset} exceeds physical envelope "
                f"for {self.domains} domains"
            )

    def reset(self) -> None:
        self.offset = 0
        self.aligned = False
        self.shifts = 0
        self.accesses = 0
        self.max_excursion = 0
