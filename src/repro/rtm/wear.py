"""Shift-induced wear accounting and imbalance metrics.

Every RTM shift pushes current through a nanowire; wear concentrates on
the DBCs that shift most. Placement changes not only *how many* shifts
happen but *where*: a layout that funnels all traffic through one DBC
ages it first even if total shifts are low. This module summarizes the
per-DBC shift distribution of a simulation into standard imbalance
metrics (max/mean ratio, coefficient of variation, Gini) and estimates
lifetime under a per-DBC shift endurance budget, so the evaluation can
compare policies on endurance as well as energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.rtm.report import SimReport


@dataclass(frozen=True)
class WearReport:
    """Wear summary derived from a simulation's per-DBC shift counts."""

    per_dbc_shifts: tuple[int, ...]
    total_shifts: int
    max_shifts: int
    mean_shifts: float
    #: max / mean — 1.0 is perfectly level, q is worst (all in one DBC).
    imbalance: float
    #: standard deviation / mean (0 when level).
    coefficient_of_variation: float
    #: Gini coefficient of the distribution (0 level .. ~1 concentrated).
    gini: float

    def lifetime_fraction(self, endurance_shifts: int) -> float:
        """Fraction of the endurance budget left on the most-worn DBC.

        With a per-DBC budget of ``endurance_shifts``, the array fails
        when its busiest DBC does; a perfectly levelled layout would
        survive ``imbalance`` times longer at the same total traffic.
        """
        if endurance_shifts <= 0:
            raise SimulationError("endurance budget must be positive")
        return max(0.0, 1.0 - self.max_shifts / endurance_shifts)


def wear_report(report: SimReport) -> WearReport:
    """Summarize a simulation's per-DBC shift distribution."""
    per_dbc = report.per_dbc_shifts
    if not per_dbc:
        raise SimulationError(
            "report carries no per-DBC shift counts (was it combined from "
            "incompatible reports?)"
        )
    counts = np.asarray(per_dbc, dtype=float)
    total = float(counts.sum())
    mean = float(counts.mean())
    if total == 0:
        return WearReport(
            per_dbc_shifts=tuple(per_dbc),
            total_shifts=0,
            max_shifts=0,
            mean_shifts=0.0,
            imbalance=1.0,
            coefficient_of_variation=0.0,
            gini=0.0,
        )
    return WearReport(
        per_dbc_shifts=tuple(per_dbc),
        total_shifts=int(total),
        max_shifts=int(counts.max()),
        mean_shifts=mean,
        imbalance=float(counts.max() / mean),
        coefficient_of_variation=float(counts.std() / mean),
        gini=_gini(counts),
    )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution."""
    if np.any(values < 0):
        raise SimulationError("wear counts cannot be negative")
    total = values.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(values)
    n = values.size
    ranks = np.arange(1, n + 1)
    return float(
        (2.0 * np.sum(ranks * sorted_values) / (n * total)) - (n + 1) / n
    )


def rotate_placement(placement, turns: int = 1):
    """Wear-levelling rotation: shift the DBC role assignment cyclically.

    Running successive sequences with rotated DBC roles spreads the hot
    DBC's traffic across the array over time without touching the
    intra-DBC orders (the cost is unchanged — DBC identity is
    cost-irrelevant, which the cost model's permutation-invariance
    property guarantees).
    """
    from repro.core.placement import Placement

    lists = list(placement.dbc_lists())
    if not lists:
        return placement
    turns %= len(lists)
    rotated = lists[turns:] + lists[:turns]
    return Placement(rotated)
