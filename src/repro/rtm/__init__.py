"""Racetrack-memory architecture substrate (RTSim/DESTINY stand-in).

Models the RTM organisation of Sec. II-A — banks of subarrays of DBCs,
each DBC grouping ``T`` nanotracks of ``K`` domains with ``p`` access
ports — plus the circuit-level latency/energy/area parameters of Table I
and a trace-driven simulator that turns (trace, placement) into shift
counts, runtime and an energy breakdown.
"""

from repro.rtm.geometry import RTMConfig, iso_capacity_sweep, TABLE1_DBC_COUNTS
from repro.rtm.timing import MemoryParams, destiny_params, table1_rows
from repro.rtm.ports import port_positions, PortPolicy
from repro.rtm.device import DBCState
from repro.rtm.controller import RTMController
from repro.rtm.report import SimReport
from repro.rtm.sim import simulate, simulate_program
from repro.rtm.swapping import SwappingController, SwapStats
from repro.rtm.preshift import PreshiftController, PreshiftPolicy, PreshiftReport
from repro.rtm.wear import WearReport, rotate_placement, wear_report

__all__ = [
    "SwappingController",
    "SwapStats",
    "PreshiftController",
    "PreshiftPolicy",
    "PreshiftReport",
    "WearReport",
    "wear_report",
    "rotate_placement",
    "RTMConfig",
    "iso_capacity_sweep",
    "TABLE1_DBC_COUNTS",
    "MemoryParams",
    "destiny_params",
    "table1_rows",
    "port_positions",
    "PortPolicy",
    "DBCState",
    "RTMController",
    "SimReport",
    "simulate",
    "simulate_program",
]
