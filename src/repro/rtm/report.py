"""Simulation reports: shift counts, runtime and the energy breakdown.

Fig. 5 of the paper splits total energy into leakage, read/write and
shift components; :class:`SimReport` carries exactly that decomposition,
plus the area of the simulated configuration (Fig. 6) and enough raw
counters to recompute everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimReport:
    """Outcome of simulating one or more traces on an RTM configuration.

    Energies are in pJ, latencies in ns, area in mm^2 (Table I units).
    Reports for independent traces on the same configuration can be summed
    with ``+``; energy/latency totals are additive, area is not (same
    physical array) and must agree.
    """

    dbcs: int
    accesses: int = 0
    reads: int = 0
    writes: int = 0
    shifts: int = 0
    runtime_ns: float = 0.0
    read_energy_pj: float = 0.0
    write_energy_pj: float = 0.0
    shift_energy_pj: float = 0.0
    leakage_energy_pj: float = 0.0
    area_mm2: float = 0.0
    per_dbc_shifts: tuple[int, ...] = field(default=())
    # Fault observability (all zero/empty for clean simulation, so old
    # store payloads and existing constructors keep working unchanged).
    fault_injected: int = 0
    fault_misaligned: int = 0
    fault_corrupted: bool = False
    scrub_shifts: int = 0
    scrub_events: int = 0
    drift_histogram: tuple[tuple[int, int], ...] = field(default=())

    # -- derived -------------------------------------------------------------

    @property
    def rw_energy_pj(self) -> float:
        """Combined read/write energy, the middle bar segment of Fig. 5."""
        return self.read_energy_pj + self.write_energy_pj

    @property
    def total_energy_pj(self) -> float:
        return self.rw_energy_pj + self.shift_energy_pj + self.leakage_energy_pj

    @property
    def shifts_per_access(self) -> float:
        return self.shifts / self.accesses if self.accesses else 0.0

    @property
    def misaligned_fraction(self) -> float:
        """Fraction of accesses served with a nonzero position drift."""
        return self.fault_misaligned / self.accesses if self.accesses else 0.0

    def energy_breakdown(self) -> dict[str, float]:
        """Named components as plotted in Fig. 5."""
        return {
            "leakage": self.leakage_energy_pj,
            "read_write": self.rw_energy_pj,
            "shift": self.shift_energy_pj,
        }

    def __add__(self, other: "SimReport") -> "SimReport":
        if not isinstance(other, SimReport):
            return NotImplemented
        if self.dbcs != other.dbcs:
            raise ValueError(
                f"cannot combine reports for {self.dbcs} and {other.dbcs} DBCs"
            )
        if self.area_mm2 and other.area_mm2 and self.area_mm2 != other.area_mm2:
            raise ValueError("cannot combine reports with different areas")
        per_dbc: tuple[int, ...] = ()
        if self.per_dbc_shifts and other.per_dbc_shifts:
            per_dbc = tuple(
                a + b for a, b in zip(self.per_dbc_shifts, other.per_dbc_shifts)
            )
        histogram: tuple[tuple[int, int], ...] = ()
        if self.drift_histogram or other.drift_histogram:
            merged: dict[int, int] = {}
            for drift, count in self.drift_histogram + other.drift_histogram:
                merged[drift] = merged.get(drift, 0) + count
            histogram = tuple(sorted(merged.items()))
        return SimReport(
            dbcs=self.dbcs,
            accesses=self.accesses + other.accesses,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            shifts=self.shifts + other.shifts,
            runtime_ns=self.runtime_ns + other.runtime_ns,
            read_energy_pj=self.read_energy_pj + other.read_energy_pj,
            write_energy_pj=self.write_energy_pj + other.write_energy_pj,
            shift_energy_pj=self.shift_energy_pj + other.shift_energy_pj,
            leakage_energy_pj=self.leakage_energy_pj + other.leakage_energy_pj,
            area_mm2=self.area_mm2 or other.area_mm2,
            per_dbc_shifts=per_dbc,
            fault_injected=self.fault_injected + other.fault_injected,
            fault_misaligned=self.fault_misaligned + other.fault_misaligned,
            fault_corrupted=self.fault_corrupted or other.fault_corrupted,
            scrub_shifts=self.scrub_shifts + other.scrub_shifts,
            scrub_events=self.scrub_events + other.scrub_events,
            drift_histogram=histogram,
        )

    def __radd__(self, other: object) -> "SimReport":
        if other == 0:  # so reports work with sum()
            return self
        return self.__add__(other)  # type: ignore[arg-type]

    def summary(self) -> str:
        text = (
            f"{self.accesses} accesses ({self.reads} R / {self.writes} W), "
            f"{self.shifts} shifts, {self.runtime_ns:.1f} ns, "
            f"{self.total_energy_pj:.1f} pJ "
            f"(leak {self.leakage_energy_pj:.1f} / rw {self.rw_energy_pj:.1f} / "
            f"shift {self.shift_energy_pj:.1f})"
        )
        if self.fault_injected or self.fault_misaligned or self.scrub_events:
            text += (
                f"; faults: {self.fault_injected} injected, "
                f"{self.fault_misaligned} misaligned "
                f"({self.misaligned_fraction:.1%}), "
                f"{self.scrub_events} scrubs (+{self.scrub_shifts} shifts)"
            )
            if self.fault_corrupted:
                text += ", CORRUPTED"
        return text
