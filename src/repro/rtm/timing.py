"""Circuit-level RTM parameters, calibrated to the paper's Table I.

The paper obtains latency, energy and area from the DESTINY circuit
simulator for a 4 KiB, 32 nm RTM with 32 tracks per DBC (Table I). DESTINY
is a C++ circuit tool we cannot run here, so this module *is* the
substitution: the published Table I values are embedded as calibration
anchors and reproduced digit-for-digit; other DBC counts are served by
log-log interpolation between anchors (all Table I columns are smooth,
monotone functions of the DBC count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.rtm.geometry import RTMConfig, TABLE1_DBC_COUNTS


@dataclass(frozen=True)
class MemoryParams:
    """Latency / energy / area parameters of one RTM configuration.

    Units follow Table I: mW, pJ, ns, mm^2. ``leakage_mw * runtime_ns``
    conveniently yields pJ (1 mW * 1 ns = 1 pJ).
    """

    dbcs: int
    domains_per_dbc: int
    leakage_mw: float
    write_energy_pj: float
    read_energy_pj: float
    shift_energy_pj: float
    read_latency_ns: float
    write_latency_ns: float
    shift_latency_ns: float
    area_mm2: float

    def validate(self) -> None:
        for name in (
            "leakage_mw", "write_energy_pj", "read_energy_pj", "shift_energy_pj",
            "read_latency_ns", "write_latency_ns", "shift_latency_ns", "area_mm2",
        ):
            if getattr(self, name) <= 0:
                raise GeometryError(f"{name} must be positive")


#: Table I, verbatim: 4 KiB RTM, 32 nm technology, 32 tracks per DBC.
_TABLE1: dict[int, MemoryParams] = {
    2: MemoryParams(2, 512, 3.39, 3.42, 2.26, 2.18, 0.81, 1.08, 0.99, 0.0159),
    4: MemoryParams(4, 256, 4.33, 3.65, 2.39, 2.03, 0.84, 1.14, 0.92, 0.0186),
    8: MemoryParams(8, 128, 6.56, 3.79, 2.47, 1.97, 0.86, 1.17, 0.86, 0.0226),
    16: MemoryParams(16, 64, 8.94, 3.94, 2.54, 1.86, 0.89, 1.20, 0.78, 0.0279),
}

_FIELDS = (
    "leakage_mw", "write_energy_pj", "read_energy_pj", "shift_energy_pj",
    "read_latency_ns", "write_latency_ns", "shift_latency_ns", "area_mm2",
)


def destiny_params(dbcs: int, capacity_bytes: int = 4096,
                   tracks_per_dbc: int = 32) -> MemoryParams:
    """Parameters for a DBC count, exact at Table I anchors.

    Non-tabulated counts between 2 and 16 are log-log interpolated
    (each column is smooth in ``log(dbcs)``); counts outside that range
    are extrapolated from the nearest anchor pair. Only the tabulated
    4 KiB / 32-track geometry is supported, because the anchors are
    specific to it.
    """
    if capacity_bytes != 4096 or tracks_per_dbc != 32:
        raise GeometryError(
            "calibrated parameters exist only for the Table I geometry "
            "(4096 B, 32 tracks/DBC); requested "
            f"{capacity_bytes} B, {tracks_per_dbc} tracks"
        )
    if dbcs < 1:
        raise GeometryError(f"dbcs must be >= 1, got {dbcs}")
    if dbcs in _TABLE1:
        return _TABLE1[dbcs]
    anchors = sorted(_TABLE1)
    lo = max((a for a in anchors if a < dbcs), default=anchors[0])
    hi = min((a for a in anchors if a > dbcs), default=anchors[-1])
    if lo == hi:  # outside the anchor range: extrapolate from the edge pair
        lo, hi = (anchors[0], anchors[1]) if dbcs < anchors[0] else (anchors[-2], anchors[-1])
    t = (math.log(dbcs) - math.log(lo)) / (math.log(hi) - math.log(lo))
    plo, phi = _TABLE1[lo], _TABLE1[hi]
    values = {
        f: math.exp(
            (1 - t) * math.log(getattr(plo, f)) + t * math.log(getattr(phi, f))
        )
        for f in _FIELDS
    }
    domains = (capacity_bytes * 8) // (dbcs * tracks_per_dbc)
    return MemoryParams(dbcs=dbcs, domains_per_dbc=domains, **values)


def params_for(config: RTMConfig, strict: bool = False) -> MemoryParams:
    """Parameters for an :class:`RTMConfig`.

    For the Table I geometry (4 KiB, 32 tracks/DBC) this is exact. Other
    geometries reuse the (interpolated) parameters of the same DBC count —
    per-access energies and latencies are dominated by the peripheral
    circuitry that scales with the DBC/port count, so this is the honest
    first-order approximation available without running DESTINY. Pass
    ``strict=True`` to reject non-calibrated geometries instead.
    """
    capacity = config.bits_per_subarray // 8
    if strict or (capacity == 4096 and config.tracks_per_dbc == 32):
        return destiny_params(config.dbcs, capacity_bytes=capacity,
                              tracks_per_dbc=config.tracks_per_dbc)
    return destiny_params(config.dbcs)


def table1_rows() -> list[tuple[str, list[float]]]:
    """Table I in row-major form: (row label, values for 2/4/8/16 DBCs)."""
    cols = [destiny_params(q) for q in TABLE1_DBC_COUNTS]
    return [
        ("Number of domains in a DBC", [c.domains_per_dbc for c in cols]),
        ("Leakage power [mW]", [c.leakage_mw for c in cols]),
        ("Write energy [pJ]", [c.write_energy_pj for c in cols]),
        ("Read energy [pJ]", [c.read_energy_pj for c in cols]),
        ("Shift energy [pJ]", [c.shift_energy_pj for c in cols]),
        ("Read latency [ns]", [c.read_latency_ns for c in cols]),
        ("Write latency [ns]", [c.write_latency_ns for c in cols]),
        ("Shift latency [ns]", [c.shift_latency_ns for c in cols]),
        ("Area [mm2]", [c.area_mm2 for c in cols]),
    ]
