"""Access-port placement and selection policies.

A nanotrack with ``p`` ports has them spread evenly along its ``K``
domains; all tracks of a DBC shift in lock-step (Sec. II-A), so port
geometry is a per-DBC property. The *selection policy* decides which port
serves an access; the paper's generalized placement works for any count,
and the simulator's ``nearest`` policy is the standard minimal-shift
controller behaviour (as in RTSim).
"""

from __future__ import annotations

from enum import Enum

from repro.errors import GeometryError


class PortPolicy(str, Enum):
    """How the controller picks a port for an access."""

    #: Use whichever port needs the fewest shifts (RTSim default).
    NEAREST = "nearest"
    #: Always use port 0 (pessimistic single-port-equivalent behaviour).
    STATIC = "static"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def port_positions(domains: int, ports: int) -> tuple[int, ...]:
    """Domain indices of ``ports`` evenly spread ports on a ``domains`` track.

    Ports sit at the centres of equal-length segments: one port on a
    64-domain track sits at 32; two ports at 16 and 48. This mirrors the
    overlapped-region layout of multi-port RTM proposals.
    """
    if domains < 1:
        raise GeometryError(f"domains must be >= 1, got {domains}")
    if not 1 <= ports <= domains:
        raise GeometryError(
            f"ports must be in [1, {domains}], got {ports}"
        )
    positions = []
    for j in range(ports):
        pos = (2 * j + 1) * domains // (2 * ports)
        positions.append(min(pos, domains - 1))
    if len(set(positions)) != len(positions):
        raise GeometryError(
            f"{ports} ports on {domains} domains collide at {positions}"
        )
    return tuple(positions)


def select_port(
    positions: tuple[int, ...],
    offset: int,
    location: int,
    policy: PortPolicy = PortPolicy.NEAREST,
) -> tuple[int, int]:
    """Choose a port for accessing ``location`` given the track ``offset``.

    The track's current shift offset ``offset`` means the domain under
    port ``j`` is ``positions[j] + offset``. Returns ``(port_index,
    signed_shift)`` where ``signed_shift`` is added to the offset to align
    ``location`` under the chosen port (its absolute value is the shift
    count).
    """
    if policy is PortPolicy.STATIC:
        return 0, location - positions[0] - offset
    best_j, best_delta = 0, location - positions[0] - offset
    for j in range(1, len(positions)):
        delta = location - positions[j] - offset
        if abs(delta) < abs(best_delta):
            best_j, best_delta = j, delta
    return best_j, best_delta
