"""Access-port placement and selection policies.

The definitions live in :mod:`repro.engine.semantics` — the engine is the
single source of truth for shift semantics — and are re-exported here
because port geometry is naturally part of the architecture-model
vocabulary (``repro.rtm``) and this was their historical home.
"""

from __future__ import annotations

from repro.engine.semantics import PortPolicy, port_positions, select_port

__all__ = ["PortPolicy", "port_positions", "select_port"]
