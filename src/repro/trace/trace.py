"""Memory traces: access sequences annotated with read/write direction.

The placement algorithms only need the access *order*; the RTM simulator
additionally needs to know which accesses are writes to price read vs
write energy and latency (Table I differentiates the two).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng


class MemoryTrace:
    """An :class:`AccessSequence` plus a per-access write flag.

    The default construction marks the *first* access of every variable as
    a write (a value must be produced before it can be consumed) and all
    subsequent accesses as reads; generators can override this with an
    explicit mask or a stochastic write ratio.
    """

    __slots__ = ("_seq", "_writes")

    def __init__(
        self,
        sequence: AccessSequence,
        writes: Sequence[bool] | np.ndarray | None = None,
    ) -> None:
        if writes is None:
            writes = _first_access_writes(sequence)
        writes = np.asarray(writes, dtype=bool)
        if writes.shape != (len(sequence),):
            raise TraceError(
                f"writes mask has shape {writes.shape}, expected ({len(sequence)},)"
            )
        if writes.flags.writeable:
            # Freeze by copy so later caller mutations cannot leak in.
            # Already-read-only masks (shared-memory views rehydrated by
            # the arena, another trace's mask) are adopted zero-copy.
            writes = writes.copy()
            writes.setflags(write=False)
        self._seq = sequence
        self._writes = writes

    @classmethod
    def from_accesses(
        cls,
        accesses: Sequence[str],
        variables: Sequence[str] | None = None,
        writes: Sequence[bool] | None = None,
        name: str = "",
    ) -> "MemoryTrace":
        return cls(AccessSequence(accesses, variables=variables, name=name), writes)

    @classmethod
    def with_write_ratio(
        cls,
        sequence: AccessSequence,
        write_ratio: float,
        rng: int | np.random.Generator | None = None,
    ) -> "MemoryTrace":
        """Mark first accesses as writes plus a random fraction of the rest."""
        if not 0.0 <= write_ratio <= 1.0:
            raise TraceError(f"write_ratio must be in [0, 1], got {write_ratio}")
        gen = ensure_rng(rng)
        writes = _first_access_writes(sequence)
        rest = ~writes
        writes[rest] = gen.random(int(rest.sum())) < write_ratio
        return cls(sequence, writes)

    # -- protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._seq)

    def __repr__(self) -> str:
        return (
            f"<MemoryTrace {self._seq.name!r}: {len(self)} accesses, "
            f"{self.num_writes} writes>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryTrace):
            return NotImplemented
        return self._seq == other._seq and np.array_equal(self._writes, other._writes)

    def __hash__(self) -> int:
        # Immutable (frozen mask, immutable sequence), so hashing by
        # content is sound; lets traces key the engine's compile caches.
        return hash((self._seq, self._writes.tobytes()))

    # -- accessors -----------------------------------------------------------

    @property
    def sequence(self) -> AccessSequence:
        return self._seq

    @property
    def name(self) -> str:
        return self._seq.name

    @property
    def variables(self) -> tuple[str, ...]:
        return self._seq.variables

    @property
    def writes(self) -> np.ndarray:
        """Boolean mask, True where the access is a write."""
        return self._writes

    @property
    def num_writes(self) -> int:
        return int(self._writes.sum())

    @property
    def num_reads(self) -> int:
        return len(self) - self.num_writes

    def operations(self) -> Iterable[tuple[str, bool]]:
        """Yield ``(variable, is_write)`` per access, in order."""
        for name, w in zip(self._seq, self._writes):
            yield name, bool(w)


def _first_access_writes(sequence: AccessSequence) -> np.ndarray:
    writes = np.zeros(len(sequence), dtype=bool)
    seen: set[int] = set()
    for i, code in enumerate(sequence.codes):
        c = int(code)
        if c not in seen:
            seen.add(c)
            writes[i] = True
    return writes
