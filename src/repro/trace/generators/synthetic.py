"""Synthetic access-sequence generators.

These model the statistical structure of the traces the paper evaluates
on, most importantly *phase behaviour*: real programs touch rotating
working sets, which is exactly the disjoint-lifespan structure the DMA
heuristic exploits (Sec. III-B). Control-dominated programs are modelled
with Zipf-weighted Markov reuse; loop-dominated DSP code with repeated
sub-patterns.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng


def _var_names(count: int, prefix: str = "v") -> list[str]:
    width = max(2, len(str(max(count - 1, 0))))
    return [f"{prefix}{i:0{width}d}" for i in range(count)]


def uniform_random_sequence(
    num_vars: int,
    length: int,
    rng: int | np.random.Generator | None = None,
    name: str = "uniform",
) -> AccessSequence:
    """Accesses drawn uniformly at random — the least structured baseline."""
    _check(num_vars, length)
    gen = ensure_rng(rng)
    variables = _var_names(num_vars)
    codes = gen.integers(0, num_vars, size=length)
    return AccessSequence([variables[c] for c in codes], variables, name=name)


def zipf_sequence(
    num_vars: int,
    length: int,
    alpha: float = 1.2,
    locality: float = 0.3,
    rng: int | np.random.Generator | None = None,
    name: str = "zipf",
) -> AccessSequence:
    """Zipf-weighted accesses with a tunable self-repeat probability.

    ``alpha`` shapes the frequency skew (a few hot variables); ``locality``
    is the probability that an access repeats the previous variable, which
    controls how many free self-transitions the trace contains.
    """
    _check(num_vars, length)
    if alpha <= 0:
        raise TraceError(f"alpha must be positive, got {alpha}")
    if not 0.0 <= locality < 1.0:
        raise TraceError(f"locality must be in [0, 1), got {locality}")
    gen = ensure_rng(rng)
    variables = _var_names(num_vars)
    weights = 1.0 / np.arange(1, num_vars + 1, dtype=float) ** alpha
    weights /= weights.sum()
    # Shuffle so that hotness is uncorrelated with declaration order.
    hot_order = gen.permutation(num_vars)
    accesses: list[str] = []
    prev = -1
    for _ in range(length):
        if prev >= 0 and gen.random() < locality:
            code = prev
        else:
            code = int(hot_order[gen.choice(num_vars, p=weights)])
        accesses.append(variables[code])
        prev = code
    return AccessSequence(accesses, variables, name=name)


def markov_sequence(
    num_vars: int,
    length: int,
    reuse: float = 0.6,
    window: int = 4,
    rng: int | np.random.Generator | None = None,
    name: str = "markov",
) -> AccessSequence:
    """Temporal-locality model: with probability ``reuse`` re-access one of
    the ``window`` most recently used variables, otherwise a fresh one."""
    _check(num_vars, length)
    if not 0.0 <= reuse < 1.0:
        raise TraceError(f"reuse must be in [0, 1), got {reuse}")
    if window < 1:
        raise TraceError(f"window must be >= 1, got {window}")
    gen = ensure_rng(rng)
    variables = _var_names(num_vars)
    recent: list[int] = []
    accesses: list[str] = []
    for _ in range(length):
        if recent and gen.random() < reuse:
            code = recent[int(gen.integers(0, len(recent)))]
        else:
            code = int(gen.integers(0, num_vars))
        accesses.append(variables[code])
        if code in recent:
            recent.remove(code)
        recent.append(code)
        if len(recent) > window:
            recent.pop(0)
    return AccessSequence(accesses, variables, name=name)


def phased_sequence(
    num_phases: int,
    vars_per_phase: int,
    accesses_per_phase: int,
    shared_vars: int = 0,
    shared_ratio: float = 0.2,
    alpha: float = 1.1,
    rng: int | np.random.Generator | None = None,
    name: str = "phased",
) -> AccessSequence:
    """Rotating working sets: the structure the DMA heuristic exploits.

    Each phase accesses its private variables (whose lifespans are
    therefore disjoint from other phases' variables) plus, with
    probability ``shared_ratio`` per access, one of ``shared_vars``
    globally live variables (whose lifespans span the whole trace).
    """
    if num_phases < 1 or vars_per_phase < 1 or accesses_per_phase < 1:
        raise TraceError("phases, vars_per_phase and accesses_per_phase must be >= 1")
    if shared_vars < 0:
        raise TraceError(f"shared_vars must be >= 0, got {shared_vars}")
    if shared_vars > 0 and not 0.0 <= shared_ratio < 1.0:
        raise TraceError(f"shared_ratio must be in [0, 1), got {shared_ratio}")
    gen = ensure_rng(rng)
    shared = _var_names(shared_vars, prefix="g")
    phase_vars = [
        _var_names(vars_per_phase, prefix=f"p{p}_") for p in range(num_phases)
    ]
    variables = shared + [v for grp in phase_vars for v in grp]
    weights = 1.0 / np.arange(1, vars_per_phase + 1, dtype=float) ** alpha
    weights /= weights.sum()
    accesses: list[str] = []
    for p in range(num_phases):
        local = phase_vars[p]
        for _ in range(accesses_per_phase):
            if shared and gen.random() < shared_ratio:
                accesses.append(shared[int(gen.integers(0, len(shared)))])
            else:
                accesses.append(local[int(gen.choice(vars_per_phase, p=weights))])
    return AccessSequence(accesses, variables, name=name)


def looped_sequence(
    num_patterns: int,
    pattern_length: int,
    repeats: int,
    vars_per_pattern: int,
    rng: int | np.random.Generator | None = None,
    name: str = "looped",
) -> AccessSequence:
    """DSP-style loops: random body patterns, each repeated ``repeats`` times.

    Consecutive loop nests use distinct variable groups, so this combines
    heavy intra-pattern regularity with inter-pattern disjointness.
    """
    if min(num_patterns, pattern_length, repeats, vars_per_pattern) < 1:
        raise TraceError("all looped_sequence parameters must be >= 1")
    gen = ensure_rng(rng)
    groups = [
        _var_names(vars_per_pattern, prefix=f"l{p}_") for p in range(num_patterns)
    ]
    variables = [v for grp in groups for v in grp]
    accesses: list[str] = []
    for p in range(num_patterns):
        grp = groups[p]
        body = [grp[int(gen.integers(0, vars_per_pattern))] for _ in range(pattern_length)]
        for _ in range(repeats):
            accesses.extend(body)
    return AccessSequence(accesses, variables, name=name)


def sliding_window_sequence(
    num_vars: int,
    length: int,
    window: int = 4,
    locality: float = 0.45,
    shared_vars: int = 0,
    shared_ratio: float = 0.15,
    revisit: float = 0.0,
    rng: int | np.random.Generator | None = None,
    name: str = "sliding",
) -> AccessSequence:
    """Statement-level access pattern: a working window sliding over V.

    Sequential code (the regime OffsetStone captures) touches each local
    variable in a short burst of nearby statements: live ranges are short
    and staggered, so far-apart variables are disjoint — the structure
    Algorithm 1 harvests. The model: a ``window`` of consecutive variables
    is active at any time and slides uniformly across the variable list;
    each access repeats the previous variable with probability
    ``locality`` (self-transitions), otherwise draws from the window.
    ``shared_vars`` long-lived variables (loop counters, state) are hit
    with probability ``shared_ratio`` throughout, and with probability
    ``revisit`` an access loops back to an already-retired window position
    (loop structure; this is what makes plain first-use ordering
    suboptimal, as in real code).
    """
    _check(num_vars, length)
    if window < 1:
        raise TraceError(f"window must be >= 1, got {window}")
    if not 0.0 <= locality < 1.0:
        raise TraceError(f"locality must be in [0, 1), got {locality}")
    if shared_vars < 0:
        raise TraceError(f"shared_vars must be >= 0, got {shared_vars}")
    if shared_vars > 0 and not 0.0 <= shared_ratio < 1.0:
        raise TraceError(f"shared_ratio must be in [0, 1), got {shared_ratio}")
    if not 0.0 <= revisit < 1.0:
        raise TraceError(f"revisit must be in [0, 1), got {revisit}")
    gen = ensure_rng(rng)
    window = min(window, num_vars)
    local = _var_names(num_vars)
    shared = _var_names(shared_vars, prefix="g")
    accesses: list[str] = []
    prev: str | None = None
    span = max(1, num_vars - window)
    for i in range(length):
        if shared and gen.random() < shared_ratio:
            accesses.append(shared[int(gen.integers(0, len(shared)))])
            continue
        if prev is not None and gen.random() < locality:
            accesses.append(prev)
            continue
        start = min(span - 1, int(i / length * span)) if span > 1 else 0
        if revisit and start > 0 and gen.random() < revisit:
            start = int(gen.integers(0, start))  # jump back into older code
        j = min(start + int(gen.integers(0, window)), num_vars - 1)
        prev = local[j]
        accesses.append(prev)
    return AccessSequence(accesses, shared + local, name=name)


def concat_sequences(
    sequences: Sequence[AccessSequence],
    name: str = "concat",
) -> AccessSequence:
    """Concatenate sequences; same-named variables are shared.

    The variable universe is the union in first-sequence-first order, so
    concatenating phase-local sequences preserves their disjointness.
    """
    if not sequences:
        raise TraceError("cannot concatenate zero sequences")
    variables: list[str] = []
    seen: set[str] = set()
    accesses: list[str] = []
    for seq in sequences:
        for v in seq.variables:
            if v not in seen:
                seen.add(v)
                variables.append(v)
        accesses.extend(seq.accesses)
    return AccessSequence(accesses, variables, name=name)


def _check(num_vars: int, length: int) -> None:
    if num_vars < 1:
        raise TraceError(f"num_vars must be >= 1, got {num_vars}")
    if length < 1:
        raise TraceError(f"length must be >= 1, got {length}")
