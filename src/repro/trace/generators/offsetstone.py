"""The OffsetStone-like named benchmark suite (Fig. 4's x-axis).

OffsetStone itself (Leupers, CC'03) is not redistributable, so this module
generates a deterministic stand-in per program name with the published
characterisation: varying numbers of access sequences per program,
variable counts from a handful up to ~1000 (capped at the 4 KiB RTM's
1024-word capacity so every sequence is placeable) and sequence lengths
up to 3640 accesses. Each program draws from generators matching its
application domain — control-dominated tools get statement-level sliding
working sets with loop-back revisits, DSP programs get pipelines of loop
nests (setup code + repeated bodies), media programs get wider per-block
working sets, compressors get hot global tables over streaming state —
because the *relative* behaviour of the placement policies derives from
this structure. See DESIGN.md §5 for the full substitution rationale.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.generators import kernels as k
from repro.trace.generators.synthetic import (
    concat_sequences,
    looped_sequence,
    phased_sequence,
    sliding_window_sequence,
)
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace
from repro.util.rng import ensure_rng

#: Maximum variables per sequence: the 4 KiB / 32-track RTM of Table I has
#: dbcs * domains_per_dbc = 1024 single-word locations in every configuration.
MAX_VARS = 1000


@dataclass(frozen=True)
class SuiteProfile:
    """Static characterisation of one named benchmark program."""

    name: str
    domain: str  # control | dsp | media | compression | scientific
    num_sequences: int
    vars_range: tuple[int, int]
    length_range: tuple[int, int]


@dataclass(frozen=True)
class BenchmarkProgram:
    """A named program: a bag of independent access traces.

    As in the offset-assignment literature, each access sequence (one per
    procedure) is placed and evaluated independently; program-level
    metrics are sums over sequences.
    """

    name: str
    domain: str
    traces: tuple[MemoryTrace, ...]

    @property
    def num_sequences(self) -> int:
        return len(self.traces)

    @property
    def total_accesses(self) -> int:
        return sum(len(t) for t in self.traces)

    @property
    def max_variables(self) -> int:
        return max(t.sequence.num_variables for t in self.traces)

    @property
    def max_length(self) -> int:
        return max(len(t) for t in self.traces)


_P = SuiteProfile

#: One profile per program name appearing in Fig. 4.
_PROFILES: dict[str, SuiteProfile] = {
    p.name: p
    for p in [
        _P("8051", "control", 10, (4, 60), (8, 220)),
        _P("adpcm", "dsp", 4, (8, 40), (60, 400)),
        _P("anagram", "control", 5, (6, 48), (16, 260)),
        _P("anthr", "control", 8, (4, 90), (12, 300)),
        _P("bdd", "control", 8, (8, 140), (20, 420)),
        _P("bison", "control", 10, (6, 200), (16, 600)),
        _P("cavity", "media", 5, (12, 160), (60, 700)),
        _P("cc65", "control", 12, (4, 240), (12, 520)),
        _P("codecs", "media", 8, (10, 180), (40, 640)),
        _P("cpp", "control", 10, (6, 260), (16, 560)),
        _P("dct", "dsp", 4, (12, 64), (80, 520)),
        _P("dspstone", "dsp", 10, (4, 48), (24, 360)),
        _P("eqntott", "control", 6, (8, 120), (20, 380)),
        _P("f2c", "control", 12, (6, 300), (14, 640)),
        _P("fft", "dsp", 4, (16, 72), (100, 680)),
        _P("flex", "control", 10, (8, 280), (18, 620)),
        _P("fuzzy", "control", 5, (6, 56), (20, 260)),
        _P("gif2asc", "media", 5, (8, 100), (30, 380)),
        _P("gsm", "dsp", 8, (10, 90), (60, 760)),
        _P("gzip", "compression", 8, (8, 200), (30, 900)),
        _P("h263", "media", 8, (12, 240), (60, 880)),
        _P("hmm", "scientific", 6, (10, 130), (40, 560)),
        _P("jpeg", "media", 10, (10, 280), (40, 820)),
        _P("klt", "media", 5, (12, 150), (50, 600)),
        _P("lpsolve", "scientific", 8, (8, 320), (24, 700)),
        _P("motion", "media", 4, (10, 110), (60, 620)),
        _P("mp3", "media", 8, (12, 340), (60, 3640)),
        _P("mpeg2", "media", 10, (12, 330), (50, 1000)),
        _P("sparse", "scientific", 6, (8, 260), (24, 640)),
        _P("triangle", "scientific", 5, (8, 140), (24, 460)),
        _P("viterbi", "dsp", 4, (10, 80), (80, 640)),
    ]
}

OFFSETSTONE_NAMES: tuple[str, ...] = tuple(_PROFILES)

#: The program holding the suite's longest access sequence (Sec. IV-B runs
#: the GA for 2000 generations on this one).
_LARGEST = "mp3"


def benchmark_profile(name: str) -> SuiteProfile:
    """Return the static profile of a named benchmark."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise TraceError(
            f"unknown benchmark {name!r}; known: {', '.join(OFFSETSTONE_NAMES)}"
        ) from None


def largest_sequence_benchmark() -> str:
    """Name of the program with the longest access sequence in the suite."""
    return _LARGEST


def load_benchmark(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    write_ratio: float = 0.25,
) -> BenchmarkProgram:
    """Generate one named program deterministically.

    ``scale`` in (0, 1] shrinks sequence counts and lengths proportionally
    (used by the quick evaluation profile); ``seed`` perturbs the whole
    suite while keeping per-name determinism.
    """
    profile = benchmark_profile(name)
    if not 0.0 < scale <= 1.0:
        raise TraceError(f"scale must be in (0, 1], got {scale}")
    rng = ensure_rng(zlib.crc32(name.encode()) ^ (seed * 0x9E3779B1 & 0xFFFFFFFF))
    num_seqs = max(2, round(profile.num_sequences * scale))
    traces: list[MemoryTrace] = []
    for i in range(num_seqs):
        seq = _make_sequence(profile, i, scale, rng)
        traces.append(MemoryTrace.with_write_ratio(seq, write_ratio, rng))
    return BenchmarkProgram(name=name, domain=profile.domain, traces=tuple(traces))


def offsetstone_suite(
    scale: float = 1.0,
    seed: int = 0,
    names: tuple[str, ...] | None = None,
) -> list[BenchmarkProgram]:
    """Generate the full 31-program suite (or a named subset)."""
    return [load_benchmark(n, scale=scale, seed=seed) for n in names or OFFSETSTONE_NAMES]


# -- per-domain sequence construction ---------------------------------------


def _pick(rng: np.random.Generator, lo: int, hi: int, top: bool = False) -> int:
    """Log-uniform draw in [lo, hi], mimicking OffsetStone's long-tailed
    size distribution (many small, a few large sequences). ``top`` pins
    the draw to the upper end (each program's dominating sequence)."""
    hi = max(lo, hi)
    if top:
        return hi
    return round(float(np.exp(rng.uniform(np.log(lo), np.log(hi)))))


def _make_sequence(
    profile: SuiteProfile, index: int, scale: float, rng: np.random.Generator
) -> AccessSequence:
    # Lengths scale with the profile; variable counts shrink more gently
    # (sqrt) so the placement problem stays non-degenerate (well above the
    # largest DBC count) even in the quick evaluation profile.
    var_scale = min(1.0, max(scale ** 0.5, 0.35))
    vars_lo, vars_hi = profile.vars_range
    vars_hi = max(vars_lo, round(vars_hi * var_scale))
    len_lo, len_hi = profile.length_range
    len_hi = max(len_lo, round(len_hi * scale))
    # Sequence 0 is each program's dominating large sequence; the rest
    # follow the long-tailed distribution.
    n_vars = min(MAX_VARS, _pick(rng, vars_lo, vars_hi, top=index == 0))
    length = _pick(rng, len_lo, len_hi, top=index == 0)
    length = max(length, 3 * n_vars, 16)
    seq_name = f"{profile.name}.seq{index}"
    maker = {
        "control": _control_sequence,
        "dsp": _dsp_sequence,
        "media": _media_sequence,
        "compression": _compression_sequence,
        "scientific": _scientific_sequence,
    }[profile.domain]
    seq = maker(n_vars, length, rng, seq_name)
    # The longest sequence of the suite is pinned on the designated program
    # at full scale, matching the published maximum of 3640 accesses.
    if profile.name == _LARGEST and index == 0 and scale >= 1.0:
        seq = _stretch(seq, profile.length_range[1], rng)
    return seq


def _control_sequence(
    n_vars: int, length: int, rng: np.random.Generator, name: str
) -> AccessSequence:
    """Branchy sequential code: short staggered live ranges + globals.

    Control-dominated procedures (parsers, code generators) touch most
    locals in a short burst of neighbouring statements — exactly the
    staggered-lifetime structure the DMA heuristic keys on — while a
    handful of state variables stay live throughout.
    """
    shared = max(1, min(10, n_vars // 8))
    return sliding_window_sequence(
        max(2, n_vars - shared),
        length,
        window=int(rng.integers(3, 6)),
        locality=float(rng.uniform(0.35, 0.55)),
        shared_vars=shared,
        shared_ratio=float(rng.uniform(0.04, 0.12)),
        revisit=float(rng.uniform(0.06, 0.14)),
        rng=rng,
        name=name,
    )


def _dsp_sequence(
    n_vars: int, length: int, rng: np.random.Generator, name: str
) -> AccessSequence:
    """Loop-dominated code: repeated kernel bodies over register groups."""
    if rng.random() < 0.4:
        seq = _kernel_sequence(length, rng, name)
        if seq is not None and seq.num_variables <= MAX_VARS:
            return seq
    # A DSP procedure is a pipeline of loop nests: each nest has straight-
    # line setup code (short staggered live ranges) followed by a loop body
    # repeated over its own temporaries (non-disjoint within the nest,
    # disjoint across nests).
    vars_per_pattern = max(2, min(n_vars, int(rng.integers(3, 9))))
    num_patterns = max(1, n_vars // (vars_per_pattern + vars_per_pattern // 2 + 1))
    pattern_length = int(rng.integers(3, 2 * vars_per_pattern + 3))
    per_nest = max(1, length // max(1, num_patterns))
    repeats = max(1, (per_nest * 2 // 3) // pattern_length)
    sections: list[AccessSequence] = []
    loops = looped_sequence(
        num_patterns, pattern_length, repeats, vars_per_pattern,
        rng=rng, name=name,
    )
    loop_bodies = _split_rounds(loops, num_patterns)
    for nest, body in enumerate(loop_bodies):
        setup_vars = max(2, vars_per_pattern // 2)
        setup = sliding_window_sequence(
            setup_vars,
            max(4, per_nest // 3),
            window=min(3, setup_vars),
            locality=0.4,
            rng=rng,
            name=f"{name}.setup{nest}",
        )
        renamed = AccessSequence(
            [f"n{nest}_{a}" for a in setup.accesses],
            [f"n{nest}_{v}" for v in setup.variables],
            name=setup.name,
        )
        sections.append(renamed)
        sections.append(body)
    return concat_sequences(sections, name=name)


def _split_rounds(loops: AccessSequence, num_patterns: int) -> list[AccessSequence]:
    """Split a looped sequence into its per-pattern sections."""
    groups: dict[str, list[str]] = {}
    for v in loops.variables:
        groups.setdefault(v.split("_")[0], []).append(v)
    sections = []
    for p in range(num_patterns):
        prefix = f"l{p}"
        if prefix in groups:
            sections.append(loops.restricted_to(groups[prefix], name=f"{loops.name}.{prefix}"))
    return sections


def _media_sequence(
    n_vars: int, length: int, rng: np.random.Generator, name: str
) -> AccessSequence:
    """Block processing: per-block bursts sliding over a larger state.

    Media code walks pixel/coefficient blocks: wider active windows than
    control code (a whole block's temporaries are live together) but the
    same staggered progression from block to block, plus global quant
    tables and counters.
    """
    shared = max(1, min(8, n_vars // 10))
    return sliding_window_sequence(
        max(2, n_vars - shared),
        length,
        window=int(rng.integers(5, 11)),
        locality=float(rng.uniform(0.3, 0.5)),
        shared_vars=shared,
        shared_ratio=float(rng.uniform(0.05, 0.15)),
        revisit=float(rng.uniform(0.08, 0.16)),
        rng=rng,
        name=name,
    )


def _compression_sequence(
    n_vars: int, length: int, rng: np.random.Generator, name: str
) -> AccessSequence:
    """Table-driven coders: hot global tables over streaming block state.

    Compressors stream through per-block temporaries while a few code
    tables stay hot for the whole run — a markedly larger globally-live
    fraction than in control code, so disjoint and non-disjoint traffic
    mix (the hard case for inter-DBC distribution).
    """
    shared = max(2, min(12, n_vars // 5))
    return sliding_window_sequence(
        max(2, n_vars - shared),
        length,
        window=int(rng.integers(4, 9)),
        locality=float(rng.uniform(0.25, 0.4)),
        shared_vars=shared,
        shared_ratio=float(rng.uniform(0.18, 0.32)),
        revisit=float(rng.uniform(0.1, 0.2)),
        rng=rng,
        name=name,
    )


def _scientific_sequence(
    n_vars: int, length: int, rng: np.random.Generator, name: str
) -> AccessSequence:
    """Numeric code: loop-nest kernels in sequence, some global accumulators.

    A solver executes several loop nests one after another; each nest has
    its own temporaries (disjoint across nests) around shared state. We
    mix a real kernel body with looped groups to model that pipeline.
    """
    if rng.random() < 0.35:
        seq = _kernel_sequence(length, rng, name)
        if seq is not None and seq.num_variables <= MAX_VARS:
            return seq
    vars_per_pattern = max(2, min(n_vars, 10))
    num_patterns = max(1, n_vars // vars_per_pattern)
    pattern_length = int(rng.integers(4, 2 * vars_per_pattern + 4))
    repeats = max(1, length // max(1, num_patterns * pattern_length))
    return looped_sequence(
        num_patterns, pattern_length, repeats, vars_per_pattern,
        rng=rng, name=name,
    ).with_name(name)


def _kernel_sequence(
    length: int, rng: np.random.Generator, name: str
) -> AccessSequence | None:
    """Instantiate a real loop kernel roughly matching the target length."""
    choice = rng.choice(
        ["fir", "iir", "dct", "matmul", "stencil", "viterbi", "gsm",
         "motion", "sobel", "conv"]
    )
    try:
        if choice == "fir":
            seq = k.fir_filter(taps=int(rng.integers(4, 16)),
                               samples=max(2, length // 40), name=name)
        elif choice == "iir":
            seq = k.iir_biquad(sections=int(rng.integers(1, 4)),
                               samples=max(2, length // 30), name=name)
        elif choice == "dct":
            seq = k.dct8(blocks=max(1, length // 60), name=name)
        elif choice == "matmul":
            seq = k.matmul(n=max(2, min(8, round(length ** (1 / 3)))), name=name)
        elif choice == "stencil":
            side = max(3, min(10, round((length / 18) ** 0.5) + 2))
            seq = k.stencil5(width=side, height=side, name=name)
        elif choice == "viterbi":
            seq = k.viterbi_trellis(states=int(rng.integers(2, 8)),
                                    steps=max(1, length // 40), name=name)
        elif choice == "gsm":
            seq = k.gsm_lpc(order=int(rng.integers(4, 10)),
                            frames=max(1, length // 90), name=name)
        elif choice == "sobel":
            side = max(3, min(9, round((length / 40) ** 0.5) + 2))
            seq = k.sobel3x3(width=side, height=side, name=name)
        elif choice == "conv":
            taps = int(rng.integers(3, 9))
            seq = k.conv1d(taps=taps,
                           samples=max(taps, length // (taps + 2)), name=name)
        else:
            seq = k.motion_estimation(block=int(rng.integers(2, 5)),
                                      search=int(rng.integers(1, 3)), name=name)
    except Exception:  # parameter combination out of a kernel's range
        return None
    return seq


def _stretch(
    seq: AccessSequence, target_length: int, rng: np.random.Generator
) -> AccessSequence:
    """Extend a sequence to ``target_length`` by appending phased traffic."""
    if len(seq) >= target_length:
        return seq
    extra = target_length - len(seq)
    tail = phased_sequence(
        num_phases=max(1, extra // 160),
        vars_per_phase=12,
        accesses_per_phase=min(extra, 160),
        shared_vars=4,
        rng=rng,
        name=seq.name + ".tail",
    )
    return concat_sequences([seq, tail], name=seq.name)
