"""Program-structured trace generation: a tiny compiler-shaped model.

The statistical generators (:mod:`repro.trace.generators.synthetic`)
control trace structure with knobs; this module derives it from *program
structure* instead, the way OffsetStone's traces derive from real C
procedures. A :class:`ProcedureModel` is a tree of regions — straight-
line statement blocks, loops, and branches — over scoped variables:

* each statement reads a few in-scope variables and writes one
  (def-use bursts, the statement-level locality of sequential code);
* each region declares locals that die with it (block-scoped lifetimes —
  the disjointness Algorithm 1 harvests);
* loops re-execute their body (the revisits that separate first-use
  order from affinity order);
* a procedure-wide set of variables (parameters, accumulators) stays
  live throughout.

Walking the tree emits the access sequence a single-pass code generator
would see. Everything is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng


@dataclass
class _Region:
    """One region of the procedure tree."""

    kind: str                       # 'block' | 'loop' | 'branch'
    locals_: list[str] = field(default_factory=list)
    statements: int = 0             # for blocks
    iterations: int = 1             # for loops
    children: list["_Region"] = field(default_factory=list)


@dataclass(frozen=True)
class ProcedureSpec:
    """Size/shape knobs for one generated procedure."""

    target_statements: int = 60
    max_depth: int = 3
    locals_per_region: tuple[int, int] = (2, 6)
    procedure_vars: int = 4
    loop_probability: float = 0.35
    branch_probability: float = 0.25
    max_loop_iterations: int = 4
    reads_per_statement: tuple[int, int] = (1, 3)

    def validate(self) -> None:
        if self.target_statements < 1:
            raise TraceError("target_statements must be >= 1")
        if self.max_depth < 0:
            raise TraceError("max_depth must be >= 0")
        if self.procedure_vars < 0:
            raise TraceError("procedure_vars must be >= 0")
        if not 0 <= self.loop_probability < 1:
            raise TraceError("loop_probability must be in [0, 1)")
        if not 0 <= self.branch_probability < 1:
            raise TraceError("branch_probability must be in [0, 1)")
        if self.max_loop_iterations < 1:
            raise TraceError("max_loop_iterations must be >= 1")
        lo, hi = self.reads_per_statement
        if not 1 <= lo <= hi:
            raise TraceError("reads_per_statement must satisfy 1 <= lo <= hi")
        lo, hi = self.locals_per_region
        if not 1 <= lo <= hi:
            raise TraceError("locals_per_region must satisfy 1 <= lo <= hi")


class ProcedureModel:
    """A generated procedure: region tree + deterministic trace emission."""

    def __init__(
        self,
        spec: ProcedureSpec | None = None,
        rng: int | np.random.Generator | None = None,
        name: str = "proc",
    ) -> None:
        self.spec = spec or ProcedureSpec()
        self.spec.validate()
        self.name = name
        self._rng = ensure_rng(rng)
        self._counter = 0
        self.procedure_vars = [f"{name}_g{i}"
                               for i in range(self.spec.procedure_vars)]
        budget = [self.spec.target_statements]
        self.root = self._build_region(depth=0, budget=budget)
        # emit() must be idempotent: freeze a dedicated emission seed so
        # repeated emissions replay identically.
        self._emit_seed = int(self._rng.integers(0, 2**63 - 1))

    # -- construction --------------------------------------------------------

    def _fresh_locals(self) -> list[str]:
        lo, hi = self.spec.locals_per_region
        count = int(self._rng.integers(lo, hi + 1))
        out = []
        for _ in range(count):
            out.append(f"{self.name}_t{self._counter}")
            self._counter += 1
        return out

    def _build_region(self, depth: int, budget: list[int]) -> _Region:
        region = _Region(kind="block", locals_=self._fresh_locals())
        while budget[0] > 0:
            roll = self._rng.random()
            if depth < self.spec.max_depth and roll < self.spec.loop_probability:
                iters = int(self._rng.integers(2, self.spec.max_loop_iterations + 1))
                child = self._build_subregion(depth, budget, "loop")
                child.iterations = iters
                region.children.append(child)
            elif (depth < self.spec.max_depth
                  and roll < self.spec.loop_probability
                  + self.spec.branch_probability):
                region.children.append(
                    self._build_subregion(depth, budget, "branch")
                )
            else:
                run = int(self._rng.integers(2, 7))
                run = min(run, budget[0])
                stmt_block = _Region(kind="block", statements=run)
                region.children.append(stmt_block)
                budget[0] -= run
            # chance to close this region and pop back up
            if depth > 0 and self._rng.random() < 0.35:
                break
        return region

    def _build_subregion(self, depth: int, budget: list[int], kind: str) -> _Region:
        child = self._build_region(depth=depth + 1, budget=budget)
        child.kind = kind
        return child

    # -- emission --------------------------------------------------------------

    def emit(self) -> AccessSequence:
        """Walk the tree and record the variable touches of every statement.

        Idempotent: repeated calls replay the same trace (data-dependent
        draws come from a frozen emission seed, not the build generator).
        """
        emit_rng = ensure_rng(self._emit_seed)
        accesses: list[str] = []
        declared: list[str] = list(self.procedure_vars)
        seen = set(declared)

        def declare(names: list[str]) -> None:
            for n in names:
                if n not in seen:
                    seen.add(n)
                    declared.append(n)

        def emit_statements(count: int, local_scope: list[str]) -> None:
            # Statements mostly touch in-scope locals; procedure-wide
            # variables (parameters, accumulators) are hit occasionally.
            pool = local_scope if local_scope else list(self.procedure_vars)
            if not pool:
                return
            lo, hi = self.spec.reads_per_statement
            globals_ = self.procedure_vars
            for _ in range(count):
                reads = int(emit_rng.integers(lo, hi + 1))
                for _ in range(reads + 1):  # reads + one written variable
                    if globals_ and emit_rng.random() < 0.15:
                        accesses.append(
                            globals_[int(emit_rng.integers(0, len(globals_)))]
                        )
                    else:
                        accesses.append(
                            pool[int(emit_rng.integers(0, len(pool)))]
                        )

        def walk(region: _Region, outer_locals: list[str]) -> None:
            declare(region.locals_)
            if not region.locals_ and region.statements and not region.children:
                # a bare statement run: executes in the enclosing scope
                emit_statements(region.statements, outer_locals)
                return
            # the region's statements see a small window of the enclosing
            # locals plus (dominantly) its own block-scoped locals
            local_scope = outer_locals[-2:] + region.locals_
            repeats = region.iterations if region.kind == "loop" else 1
            for _ in range(repeats):
                if region.statements:
                    emit_statements(region.statements, local_scope)
                for child in region.children:
                    walk(child, local_scope)

        walk(self.root, [])
        if not accesses:  # degenerate tree: emit one touch so S is non-empty
            if not declared:
                declare(["fallback"])
            accesses.append(declared[0])
        return AccessSequence(accesses, variables=declared, name=self.name)


def procedure_sequence(
    spec: ProcedureSpec | None = None,
    rng: int | np.random.Generator | None = None,
    name: str = "proc",
) -> AccessSequence:
    """Convenience: build a :class:`ProcedureModel` and emit its trace."""
    return ProcedureModel(spec=spec, rng=rng, name=name).emit()


def program_sequences(
    num_procedures: int,
    spec: ProcedureSpec | None = None,
    rng: int | np.random.Generator | None = None,
    name: str = "prog",
) -> list[AccessSequence]:
    """A bag of procedure traces, one per generated procedure."""
    if num_procedures < 1:
        raise TraceError("num_procedures must be >= 1")
    gen = ensure_rng(rng)
    seeds = gen.integers(0, 2**63 - 1, size=num_procedures)
    return [
        procedure_sequence(spec=spec, rng=int(seeds[i]), name=f"{name}_p{i}")
        for i in range(num_procedures)
    ]
