"""Loop-nest kernels that emit realistic variable access streams.

The OffsetStone programs the paper evaluates come from image, signal and
video processing plus control-dominated tools (Sec. IV-A). These builders
walk the actual loop nests of representative kernels (FIR, IIR, FFT, DCT,
GEMM, stencil, Viterbi, GSM LPC, ADPCM, motion estimation, Huffman) and
record every scalar/array-cell touch in compiler order, yielding access
sequences with genuine reuse, striding and phase structure.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TraceError
from repro.trace.sequence import AccessSequence
from repro.util.rng import ensure_rng


class _Recorder:
    """Collects variable touches and the variable universe in touch order."""

    def __init__(self) -> None:
        self.accesses: list[str] = []
        self.variables: list[str] = []
        self._seen: set[str] = set()

    def declare(self, *names: str) -> None:
        for n in names:
            if n not in self._seen:
                self._seen.add(n)
                self.variables.append(n)

    def touch(self, *names: str) -> None:
        self.declare(*names)
        self.accesses.extend(names)

    def sequence(self, name: str) -> AccessSequence:
        if not self.accesses:
            raise TraceError(f"kernel {name!r} recorded no accesses")
        return AccessSequence(self.accesses, self.variables, name=name)


def fir_filter(taps: int = 8, samples: int = 16, name: str = "fir") -> AccessSequence:
    """Direct-form FIR: per sample, a multiply-accumulate sweep over the
    coefficient and delay-line arrays followed by the delay-line shift."""
    if taps < 1 or samples < 1:
        raise TraceError("taps and samples must be >= 1")
    r = _Recorder()
    coeff = [f"c{i}" for i in range(taps)]
    delay = [f"x{i}" for i in range(taps)]
    r.declare(*coeff, *delay, "in", "acc", "out")
    for _ in range(samples):
        r.touch("in", "x0")              # push new sample
        r.touch("acc")                   # acc = 0
        for i in range(taps):
            r.touch(coeff[i], delay[i], "acc")
        for i in range(taps - 1, 0, -1):  # shift delay line
            r.touch(delay[i - 1], delay[i])
        r.touch("acc", "out")
    return r.sequence(name)


def iir_biquad(
    sections: int = 2, samples: int = 8, name: str = "iir"
) -> AccessSequence:
    """Cascaded transposed-direct-form-II biquads."""
    if sections < 1 or samples < 1:
        raise TraceError("sections and samples must be >= 1")
    r = _Recorder()
    for s in range(sections):
        r.declare(f"b0_{s}", f"b1_{s}", f"b2_{s}", f"a1_{s}", f"a2_{s}",
                  f"w1_{s}", f"w2_{s}")
    r.declare("x", "y")
    for _ in range(samples):
        r.touch("x")
        for s in range(sections):
            r.touch(f"b0_{s}", "x", f"w1_{s}", "y")      # y = b0*x + w1
            r.touch(f"b1_{s}", "x", f"a1_{s}", "y", f"w2_{s}", f"w1_{s}")
            r.touch(f"b2_{s}", "x", f"a2_{s}", "y", f"w2_{s}")
            r.touch("y", "x")                            # feed next section
        r.touch("y")
    return r.sequence(name)


def fft_butterfly(n: int = 16, name: str = "fft") -> AccessSequence:
    """Iterative radix-2 FFT over ``n`` complex points (n must be 2^k)."""
    if n < 2 or n & (n - 1):
        raise TraceError(f"n must be a power of two >= 2, got {n}")
    r = _Recorder()
    re = [f"re{i}" for i in range(n)]
    im = [f"im{i}" for i in range(n)]
    r.declare(*re, *im, "tw_re", "tw_im", "t_re", "t_im")
    stages = int(math.log2(n))
    half = 1
    for _ in range(stages):
        for group in range(0, n, half * 2):
            for k in range(half):
                i, j = group + k, group + k + half
                r.touch("tw_re", "tw_im")
                r.touch(re[j], im[j], "tw_re", "tw_im", "t_re", "t_im")
                r.touch(re[i], "t_re", re[j])
                r.touch(im[i], "t_im", im[j])
                r.touch(re[i], "t_re", re[i])
                r.touch(im[i], "t_im", im[i])
        half *= 2
    return r.sequence(name)


def dct8(blocks: int = 4, name: str = "dct") -> AccessSequence:
    """8-point Loeffler-style DCT applied to ``blocks`` sample blocks."""
    if blocks < 1:
        raise TraceError("blocks must be >= 1")
    r = _Recorder()
    s = [f"s{i}" for i in range(8)]
    d = [f"d{i}" for i in range(8)]
    c = [f"k{i}" for i in range(1, 8)]
    r.declare(*s, *d, *c, "t0", "t1")
    for _ in range(blocks):
        for i in range(8):
            r.touch(s[i])
        for i in range(4):                      # butterfly stage
            r.touch(s[i], s[7 - i], "t0")
            r.touch(s[i], s[7 - i], "t1")
            r.touch("t0", d[i])
            r.touch("t1", d[7 - i])
        for i, cc in enumerate(c):              # rotation stage
            r.touch(cc, d[i % 8], "t0", d[(i + 1) % 8])
        for i in range(8):
            r.touch(d[i])
    return r.sequence(name)


def matmul(n: int = 4, name: str = "matmul") -> AccessSequence:
    """Naive n*n GEMM over scalar-promoted array cells."""
    if n < 1:
        raise TraceError("n must be >= 1")
    r = _Recorder()
    a = [[f"a{i}{j}" for j in range(n)] for i in range(n)]
    b = [[f"b{i}{j}" for j in range(n)] for i in range(n)]
    cm = [[f"c{i}{j}" for j in range(n)] for i in range(n)]
    r.declare("acc")
    for i in range(n):
        for j in range(n):
            r.touch("acc")
            for k in range(n):
                r.touch(a[i][k], b[k][j], "acc")
            r.touch("acc", cm[i][j])
    return r.sequence(name)


def stencil5(width: int = 6, height: int = 4, iters: int = 1,
             name: str = "stencil") -> AccessSequence:
    """5-point Jacobi stencil sweeps over a width*height grid."""
    if width < 3 or height < 3 or iters < 1:
        raise TraceError("width/height must be >= 3 and iters >= 1")
    r = _Recorder()
    g = [[f"g{x}_{y}" for x in range(width)] for y in range(height)]
    r.declare("sum", "out")
    for _ in range(iters):
        for y in range(1, height - 1):
            for x in range(1, width - 1):
                r.touch(g[y][x], "sum")
                r.touch(g[y - 1][x], "sum")
                r.touch(g[y + 1][x], "sum")
                r.touch(g[y][x - 1], "sum")
                r.touch(g[y][x + 1], "sum")
                r.touch("sum", "out", g[y][x])
    return r.sequence(name)


def viterbi_trellis(states: int = 4, steps: int = 6,
                    name: str = "viterbi") -> AccessSequence:
    """Viterbi add-compare-select over a fully connected trellis."""
    if states < 2 or steps < 1:
        raise TraceError("states must be >= 2 and steps >= 1")
    r = _Recorder()
    pm_old = [f"pmo{i}" for i in range(states)]
    pm_new = [f"pmn{i}" for i in range(states)]
    bm = [f"bm{i}" for i in range(states)]
    r.declare(*pm_old, *pm_new, *bm, "best", "cand")
    for _ in range(steps):
        for j in range(states):
            r.touch("best")
            for i in range(states):
                r.touch(pm_old[i], bm[(i + j) % states], "cand", "best")
            r.touch("best", pm_new[j])
        for j in range(states):                 # metric swap
            r.touch(pm_new[j], pm_old[j])
    return r.sequence(name)


def gsm_lpc(order: int = 8, frames: int = 3, name: str = "gsm") -> AccessSequence:
    """GSM-style LPC analysis: autocorrelation then Levinson-Durbin."""
    if order < 2 or frames < 1:
        raise TraceError("order must be >= 2 and frames >= 1")
    r = _Recorder()
    ac = [f"ac{i}" for i in range(order + 1)]
    k = [f"rc{i}" for i in range(order)]
    a = [f"lp{i}" for i in range(order)]
    r.declare(*ac, *k, *a, "err", "tmp", "sample")
    for _ in range(frames):
        for lag in range(order + 1):            # autocorrelation phase
            r.touch("sample", "sample", ac[lag])
        r.touch(ac[0], "err")
        for i in range(order):                  # Levinson-Durbin recursion
            r.touch(ac[i + 1], "tmp")
            for j in range(i):
                r.touch(a[j], ac[i - j], "tmp")
            r.touch("tmp", "err", k[i])
            r.touch(k[i], a[i])
            for j in range(i // 2 + 1):
                r.touch(a[j], k[i], a[i - 1 - j] if i else a[0], "tmp")
            r.touch(k[i], "err", "err")
    return r.sequence(name)


def adpcm_step(samples: int = 24, name: str = "adpcm") -> AccessSequence:
    """IMA-ADPCM encoder inner loop: predictor + step-size adaptation."""
    if samples < 1:
        raise TraceError("samples must be >= 1")
    r = _Recorder()
    r.declare("sample", "pred", "diff", "step", "delta", "index", "vpdiff", "code")
    for _ in range(samples):
        r.touch("sample", "pred", "diff")
        r.touch("diff", "step", "delta")
        r.touch("delta", "vpdiff", "step")
        r.touch("vpdiff", "pred", "pred")
        r.touch("delta", "index", "index")
        r.touch("index", "step")
        r.touch("delta", "code")
    return r.sequence(name)


def motion_estimation(block: int = 4, search: int = 2,
                      name: str = "motion") -> AccessSequence:
    """Full-search block matching: SAD over a (2*search+1)^2 window."""
    if block < 2 or search < 1:
        raise TraceError("block must be >= 2 and search >= 1")
    r = _Recorder()
    cur = [f"cur{i}" for i in range(block * block)]
    ref = [f"ref{i}" for i in range(block * block)]
    r.declare(*cur, *ref, "sad", "best_sad", "best_mv")
    for _dy in range(-search, search + 1):
        for _dx in range(-search, search + 1):
            r.touch("sad")
            for i in range(block * block):
                r.touch(cur[i], ref[i], "sad")
            r.touch("sad", "best_sad", "best_mv")
    return r.sequence(name)


def huffman_encode(
    symbols: int = 12,
    stream_length: int = 64,
    rng: int | np.random.Generator | None = None,
    name: str = "huffman",
) -> AccessSequence:
    """Huffman encoding loop: geometric symbol stream through a code table."""
    if symbols < 2 or stream_length < 1:
        raise TraceError("symbols must be >= 2 and stream_length >= 1")
    gen = ensure_rng(rng)
    r = _Recorder()
    code = [f"code{i}" for i in range(symbols)]
    length = [f"len{i}" for i in range(symbols)]
    r.declare(*code, *length, "sym", "bits", "bitpos")
    weights = 0.5 ** np.arange(1, symbols + 1)
    weights /= weights.sum()
    for _ in range(stream_length):
        s = int(gen.choice(symbols, p=weights))
        r.touch("sym", code[s], "bits")
        r.touch(length[s], "bitpos", "bitpos")
    return r.sequence(name)


def sobel3x3(width: int = 6, height: int = 5, name: str = "sobel") -> AccessSequence:
    """Sobel edge detection: two 3x3 convolutions per interior pixel."""
    if width < 3 or height < 3:
        raise TraceError("width and height must be >= 3")
    r = _Recorder()
    img = [[f"p{x}_{y}" for x in range(width)] for y in range(height)]
    gx = [f"gx{i}" for i in range(6)]   # the six non-zero Gx taps
    gy = [f"gy{i}" for i in range(6)]
    r.declare(*gx, *gy, "sx", "sy", "mag", "out")
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            r.touch("sx")
            for i, (dx, dy) in enumerate(
                [(-1, -1), (-1, 0), (-1, 1), (1, -1), (1, 0), (1, 1)]
            ):
                r.touch(img[y + dy][x + dx], gx[i], "sx")
            r.touch("sy")
            for i, (dx, dy) in enumerate(
                [(-1, -1), (0, -1), (1, -1), (-1, 1), (0, 1), (1, 1)]
            ):
                r.touch(img[y + dy][x + dx], gy[i], "sy")
            r.touch("sx", "sy", "mag", "out")
    return r.sequence(name)


def conv1d(taps: int = 5, samples: int = 20, name: str = "conv") -> AccessSequence:
    """Sliding 1-D convolution over a signal buffer (valid region only)."""
    if taps < 2 or samples < taps:
        raise TraceError("need taps >= 2 and samples >= taps")
    r = _Recorder()
    sig = [f"s{i}" for i in range(samples)]
    w = [f"w{i}" for i in range(taps)]
    r.declare(*w, "acc", "out")
    for start in range(samples - taps + 1):
        r.touch("acc")
        for i in range(taps):
            r.touch(sig[start + i], w[i], "acc")
        r.touch("acc", "out")
    return r.sequence(name)


def histogram(bins: int = 8, samples: int = 48,
              rng: int | np.random.Generator | None = None,
              name: str = "histogram") -> AccessSequence:
    """Histogram build: data-dependent scattered bin increments."""
    if bins < 2 or samples < 1:
        raise TraceError("need bins >= 2 and samples >= 1")
    gen = ensure_rng(rng)
    r = _Recorder()
    bin_vars = [f"bin{i}" for i in range(bins)]
    r.declare(*bin_vars, "sample", "index")
    weights = np.abs(gen.normal(size=bins)) + 0.1
    weights /= weights.sum()
    for _ in range(samples):
        b = int(gen.choice(bins, p=weights))
        r.touch("sample", "index")
        r.touch(bin_vars[b], bin_vars[b])  # read-modify-write
    return r.sequence(name)


def crc32_loop(blocks: int = 16, name: str = "crc") -> AccessSequence:
    """Table-driven CRC: a hot state register against a lookup table."""
    if blocks < 1:
        raise TraceError("blocks must be >= 1")
    r = _Recorder()
    table = [f"tab{i}" for i in range(8)]
    r.declare(*table, "crc", "byte", "idx")
    for i in range(blocks):
        r.touch("byte", "crc", "idx")
        r.touch(table[i % len(table)], "crc")
        r.touch("crc")
    return r.sequence(name)


def quicksort_partition(elements: int = 12, rounds: int = 3,
                        rng: int | np.random.Generator | None = None,
                        name: str = "qsort") -> AccessSequence:
    """Hoare partition passes: two cursors sweeping toward each other."""
    if elements < 4 or rounds < 1:
        raise TraceError("need elements >= 4 and rounds >= 1")
    gen = ensure_rng(rng)
    r = _Recorder()
    arr = [f"e{i}" for i in range(elements)]
    r.declare(*arr, "pivot", "lo", "hi", "tmp")
    for _ in range(rounds):
        r.touch(arr[int(gen.integers(0, elements))], "pivot")
        i, j = 0, elements - 1
        while i < j:
            r.touch("lo", arr[i], "pivot")
            r.touch("hi", arr[j], "pivot")
            if gen.random() < 0.5:
                r.touch(arr[i], "tmp", arr[j], arr[i], "tmp", arr[j])
            i += 1
            j -= 1
    return r.sequence(name)


#: Registry of all kernels with their default arguments, for the CLI and suite.
KERNELS = {
    "fir": fir_filter,
    "iir": iir_biquad,
    "fft": fft_butterfly,
    "dct": dct8,
    "matmul": matmul,
    "stencil": stencil5,
    "viterbi": viterbi_trellis,
    "gsm": gsm_lpc,
    "adpcm": adpcm_step,
    "motion": motion_estimation,
    "huffman": huffman_encode,
    "sobel": sobel3x3,
    "conv": conv1d,
    "histogram": histogram,
    "crc": crc32_loop,
    "qsort": quicksort_partition,
}
