"""Liveness analysis over access sequences (Sec. III-B of the paper).

For every variable ``v`` this computes the access frequency ``A_v``, the
first occurrence ``F_v`` and last occurrence ``L_v`` (1-based positions,
as in the paper's Fig. 3-(e)), and derives lifespans and disjointness —
the signals the DMA heuristic (Algorithm 1) is built on.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.errors import TraceError
from repro.trace.sequence import AccessSequence

#: Sentinel for F/L of variables that never appear in the sequence.
NEVER = 0


class Liveness:
    """Per-variable liveness facts for one access sequence.

    Positions are 1-based to match the paper's notation; a variable that
    is never accessed has ``F_v = L_v = 0`` (:data:`NEVER`) and frequency
    zero, and is treated as having an empty lifespan disjoint from
    everything.
    """

    def __init__(self, sequence: AccessSequence) -> None:
        self._seq = sequence
        n = sequence.num_variables
        codes = sequence.codes
        first = np.zeros(n, dtype=np.int64)
        last = np.zeros(n, dtype=np.int64)
        if codes.size:
            positions = np.arange(1, codes.size + 1, dtype=np.int64)
            # later writes win -> last occurrence
            last[codes] = positions
            # reversed, later (i.e. earlier position) writes win -> first
            first[codes[::-1]] = positions[::-1]
        self._first = first
        self._last = last

    # -- raw arrays (indexed by variable code) ------------------------------

    @property
    def sequence(self) -> AccessSequence:
        return self._seq

    @cached_property
    def frequencies(self) -> np.ndarray:
        return self._seq.frequencies

    @property
    def first_occurrences(self) -> np.ndarray:
        """``F_v`` per variable code (1-based, 0 = never accessed)."""
        return self._first

    @property
    def last_occurrences(self) -> np.ndarray:
        """``L_v`` per variable code (1-based, 0 = never accessed)."""
        return self._last

    # -- per-variable views --------------------------------------------------

    def frequency(self, v: str) -> int:
        return int(self.frequencies[self._seq.index_of(v)])

    def first(self, v: str) -> int:
        return int(self._first[self._seq.index_of(v)])

    def last(self, v: str) -> int:
        return int(self._last[self._seq.index_of(v)])

    def lifespan(self, v: str) -> int:
        """``L_v - F_v`` (0 for unaccessed and single-access variables)."""
        i = self._seq.index_of(v)
        return int(self._last[i] - self._first[i])

    def is_accessed(self, v: str) -> bool:
        return self.first(v) != NEVER

    # -- relations -------------------------------------------------------------

    def disjoint(self, u: str, v: str) -> bool:
        """True when the lifespans of ``u`` and ``v`` do not overlap.

        Per Sec. III-B: the last occurrence of one is before the first
        occurrence of the other. Unaccessed variables are vacuously
        disjoint from everything.
        """
        iu, iv = self._seq.index_of(u), self._seq.index_of(v)
        if self._first[iu] == NEVER or self._first[iv] == NEVER:
            return True
        return self._last[iu] < self._first[iv] or self._last[iv] < self._first[iu]

    def pairwise_disjoint(self, variables: list[str] | tuple[str, ...]) -> bool:
        """True when every pair in ``variables`` has disjoint lifespans."""
        spans = sorted(
            (self.first(v), self.last(v)) for v in variables if self.is_accessed(v)
        )
        for (_, l_prev), (f_next, _) in zip(spans, spans[1:]):
            if f_next <= l_prev:
                return False
        return True

    def nested_within(self, outer: str) -> list[str]:
        """Variables whose lifespan lies strictly inside ``outer``'s.

        These are the competitors in Algorithm 1's line-10 test: ``u`` with
        ``F_u > F_outer`` and ``L_u < L_outer``.
        """
        io = self._seq.index_of(outer)
        fo, lo = self._first[io], self._last[io]
        if fo == NEVER:
            return []
        out = []
        for i, v in enumerate(self._seq.variables):
            if i == io or self._first[i] == NEVER:
                continue
            if self._first[i] > fo and self._last[i] < lo:
                out.append(v)
        return out

    def by_first_occurrence(self) -> list[str]:
        """Accessed variables in ascending ``F_v`` order, then unaccessed.

        Ties (impossible for accessed variables, since positions are
        unique) and unaccessed variables fall back to declaration order.
        """
        variables = self._seq.variables
        order = sorted(
            range(len(variables)),
            key=lambda i: (self._first[i] == NEVER, self._first[i], i),
        )
        return [variables[i] for i in order]

    def validate(self) -> None:
        """Internal consistency checks (used by property tests)."""
        freq = self.frequencies
        for i in range(self._seq.num_variables):
            if freq[i] == 0:
                if self._first[i] != NEVER or self._last[i] != NEVER:
                    raise TraceError("unaccessed variable with occurrence info")
            else:
                if not 1 <= self._first[i] <= self._last[i] <= len(self._seq):
                    raise TraceError("inconsistent first/last occurrence")
