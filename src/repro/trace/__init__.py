"""Memory-trace substrate: access sequences, graphs, liveness, generators.

This package models the inputs of the data-placement problem exactly as
the paper consumes them (Sec. II-B): a set of program variables ``V`` and
an access sequence ``S`` over ``V``, optionally annotated with read/write
direction for energy accounting.
"""

from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace
from repro.trace.graph import AccessGraph
from repro.trace.liveness import Liveness
from repro.trace.io import read_traces, write_traces, parse_traces, render_traces
from repro.trace.stats import TraceStats, analyze

__all__ = [
    "TraceStats",
    "analyze",
    "AccessSequence",
    "MemoryTrace",
    "AccessGraph",
    "Liveness",
    "read_traces",
    "write_traces",
    "parse_traces",
    "render_traces",
]
