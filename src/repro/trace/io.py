"""Plain-text trace format, in the spirit of OffsetStone sequence files.

Format (one or more blocks per file)::

    # comments and blank lines are ignored
    trace fir_kernel
    vars x0 x1 c0 c1 acc
    seq x0 c0 acc x1 c1 acc
    writes 2 5            # optional: 0-based indices of write accesses
    end

``vars`` is optional; when omitted the variable universe is the order of
first appearance in ``seq``. ``seq`` may be repeated to continue long
sequences. ``writes`` may be repeated as well; without it the default
first-access-is-a-write rule applies.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace


def parse_traces(text: str) -> list[MemoryTrace]:
    """Parse all trace blocks from ``text``."""
    traces: list[MemoryTrace] = []
    state: dict | None = None

    def finish(line_no: int) -> None:
        nonlocal state
        if state is None:
            return
        if not state["seq"]:
            raise TraceFormatError(
                f"line {line_no}: trace {state['name']!r} has an empty sequence"
            )
        seq = AccessSequence(
            state["seq"], variables=state["vars"] or None, name=state["name"]
        )
        writes = None
        if state["writes"] is not None:
            writes = np.zeros(len(seq), dtype=bool)
            for idx in state["writes"]:
                if not 0 <= idx < len(seq):
                    raise TraceFormatError(
                        f"line {line_no}: write index {idx} out of range "
                        f"for {len(seq)} accesses"
                    )
                writes[idx] = True
        traces.append(MemoryTrace(seq, writes))
        state = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword, args = fields[0].lower(), fields[1:]
        if keyword == "trace":
            if state is not None:
                raise TraceFormatError(
                    f"line {line_no}: 'trace' before previous block ended"
                )
            if len(args) != 1:
                raise TraceFormatError(f"line {line_no}: 'trace' takes one name")
            state = {"name": args[0], "vars": [], "seq": [], "writes": None}
        elif keyword in ("vars", "seq", "writes", "end"):
            if state is None:
                raise TraceFormatError(
                    f"line {line_no}: {keyword!r} outside a trace block"
                )
            if keyword == "vars":
                state["vars"].extend(args)
            elif keyword == "seq":
                state["seq"].extend(args)
            elif keyword == "writes":
                if state["writes"] is None:
                    state["writes"] = []
                try:
                    state["writes"].extend(int(a) for a in args)
                except ValueError as exc:
                    raise TraceFormatError(
                        f"line {line_no}: write indices must be integers"
                    ) from exc
            else:
                finish(line_no)
        else:
            raise TraceFormatError(f"line {line_no}: unknown keyword {keyword!r}")
    if state is not None:
        raise TraceFormatError(
            f"trace {state['name']!r} not terminated with 'end'"
        )
    return traces


def render_traces(traces: Iterable[MemoryTrace], wrap: int = 16) -> str:
    """Serialize traces to the text format parsed by :func:`parse_traces`."""
    out: list[str] = []
    for trace in traces:
        seq = trace.sequence
        out.append(f"trace {seq.name or 'unnamed'}")
        for chunk in _chunks(list(seq.variables), wrap):
            out.append("vars " + " ".join(chunk))
        for chunk in _chunks(list(seq.accesses), wrap):
            out.append("seq " + " ".join(chunk))
        write_idx = [str(i) for i in np.flatnonzero(trace.writes)]
        for chunk in _chunks(write_idx, wrap):
            out.append("writes " + " ".join(chunk))
        out.append("end")
        out.append("")
    return "\n".join(out)


def read_traces(path: str | os.PathLike) -> list[MemoryTrace]:
    """Read all traces from a file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_traces(f.read())


def write_traces(path: str | os.PathLike, traces: Iterable[MemoryTrace]) -> None:
    """Write traces to a file in the text format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(render_traces(traces))


def _chunks(items: list[str], size: int) -> Iterable[list[str]]:
    for i in range(0, len(items), size):
        yield items[i : i + size]
