"""Trace file formats: the native text format and raw address traces.

Native format (one or more blocks per file, in the spirit of
OffsetStone sequence files)::

    # comments and blank lines are ignored
    trace fir_kernel
    vars x0 x1 c0 c1 acc
    seq x0 c0 acc x1 c1 acc
    writes 2 5            # optional: 0-based indices of write accesses
    end

``vars`` is optional; when omitted the variable universe is the order of
first appearance in ``seq``. ``seq`` may be repeated to continue long
sequences. ``writes`` may be repeated as well; without it the default
first-access-is-a-write rule applies.

Address-trace format (gem5 / pintool style): one access per line,
fields separated by whitespace, commas or colons. The address is the
last *hex* field of the line (``0x``-prefixed, or bare hex ending in
``h``) or, when no field is hex, the last decimal field; any field
matching a read/write token (``R``/``W``/``read``/``write``/``ld``/
``st``/``load``/``store``) sets the access direction (default: read).
Other fields (ticks, PCs, sizes, core ids) are ignored, so ``0x1a2b``,
``r 0x1a2b``, ``12345: W 0x1a2b 4`` and CSV rows like ``12345,w,0x1a2b``
all parse. :func:`addresses_to_trace` then maps raw
addresses to placement variables through the RTM geometry: addresses are
grouped at the device's access granularity (``word_bytes``, one variable
location per word — see :class:`repro.rtm.geometry.RTMConfig`), capped
to the hottest ``max_vars`` words (working-set capping) and filtered of
words touched fewer than ``min_count`` times (cold filtering).

Both formats are read gzip-transparently: a file starting with the gzip
magic bytes is decompressed on the fly (gem5 traces ship compressed),
whatever its extension. Address traces additionally *stream*:
:func:`iter_address_trace` parses one line at a time and
:func:`iter_address_chunks` batches the stream into bounded numpy
arrays, so neither the text nor a Python list of every access is ever
resident at once — the entry point the chunked ingestion layer
(:mod:`repro.trace.streaming`) and :func:`load_traces` build on.

All parse failures raise :class:`~repro.errors.TraceFormatError` with
the offending line number.
"""

from __future__ import annotations

import gzip
import os
import zlib
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import TraceError, TraceFormatError
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace

#: Tokens recognized as access-direction markers in address traces.
_READ_TOKENS = frozenset({"r", "read", "ld", "load", "rd"})
_WRITE_TOKENS = frozenset({"w", "write", "st", "store", "wr"})


def parse_traces(text: str) -> list[MemoryTrace]:
    """Parse all trace blocks from ``text`` (native format).

    Malformed input — unknown keywords, out-of-range write indices,
    duplicate or undeclared variables, unterminated blocks — raises
    :class:`~repro.errors.TraceFormatError` naming the offending line
    (for block-level defects, the block's opening line).
    """
    traces: list[MemoryTrace] = []
    state: dict | None = None

    def finish(line_no: int) -> None:
        nonlocal state
        if state is None:
            return
        start = state["start_line"]
        if not state["seq"]:
            raise TraceFormatError(
                f"line {start}: trace {state['name']!r} has an empty sequence"
            )
        try:
            seq = AccessSequence(
                state["seq"], variables=state["vars"] or None, name=state["name"]
            )
        except TraceError as exc:
            # Surface sequence-level defects (duplicate vars, accesses to
            # undeclared variables) as format errors tied to the block,
            # instead of an opaque mid-parse TraceError.
            raise TraceFormatError(
                f"lines {start}-{line_no}: trace {state['name']!r}: {exc}"
            ) from exc
        writes = None
        if state["writes"] is not None:
            writes = np.zeros(len(seq), dtype=bool)
            for idx in state["writes"]:
                if not 0 <= idx < len(seq):
                    raise TraceFormatError(
                        f"line {line_no}: write index {idx} out of range "
                        f"for {len(seq)} accesses"
                    )
                writes[idx] = True
        traces.append(MemoryTrace(seq, writes))
        state = None

    line_no = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword, args = fields[0].lower(), fields[1:]
        if keyword == "trace":
            if state is not None:
                raise TraceFormatError(
                    f"line {line_no}: 'trace' before previous block "
                    f"(opened at line {state['start_line']}) ended"
                )
            if len(args) != 1:
                raise TraceFormatError(f"line {line_no}: 'trace' takes one name")
            state = {"name": args[0], "vars": [], "seq": [], "writes": None,
                     "start_line": line_no}
        elif keyword in ("vars", "seq", "writes", "end"):
            if state is None:
                raise TraceFormatError(
                    f"line {line_no}: {keyword!r} outside a trace block"
                )
            if keyword == "vars":
                state["vars"].extend(args)
            elif keyword == "seq":
                state["seq"].extend(args)
            elif keyword == "writes":
                if state["writes"] is None:
                    state["writes"] = []
                try:
                    state["writes"].extend(int(a) for a in args)
                except ValueError as exc:
                    raise TraceFormatError(
                        f"line {line_no}: write indices must be integers"
                    ) from exc
            else:
                finish(line_no)
        else:
            raise TraceFormatError(f"line {line_no}: unknown keyword {keyword!r}")
    if state is not None:
        raise TraceFormatError(
            f"line {state['start_line']}: trace {state['name']!r} "
            f"not terminated with 'end'"
        )
    return traces


def render_traces(traces: Iterable[MemoryTrace], wrap: int = 16) -> str:
    """Serialize traces to the text format parsed by :func:`parse_traces`."""
    out: list[str] = []
    for trace in traces:
        seq = trace.sequence
        out.append(f"trace {seq.name or 'unnamed'}")
        for chunk in _chunks(list(seq.variables), wrap):
            out.append("vars " + " ".join(chunk))
        for chunk in _chunks(list(seq.accesses), wrap):
            out.append("seq " + " ".join(chunk))
        write_idx = [str(i) for i in np.flatnonzero(trace.writes)]
        for chunk in _chunks(write_idx, wrap):
            out.append("writes " + " ".join(chunk))
        out.append("end")
        out.append("")
    return "\n".join(out)


#: Magic bytes opening every gzip stream (RFC 1952).
_GZIP_MAGIC = b"\x1f\x8b"


def _is_gzipped(path: str | os.PathLike) -> bool:
    """Whether ``path`` starts with the gzip magic (content, not name)."""
    with open(path, "rb") as f:
        return f.read(2) == _GZIP_MAGIC


def open_text(path: str | os.PathLike):
    """Open a trace file as UTF-8 text, decompressing gzip transparently.

    Sniffs the gzip magic bytes rather than trusting the extension, so
    ``trace.trc``, ``trace.trc.gz`` and a compressed file with a plain
    name all work the same.
    """
    if _is_gzipped(path):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _read_text(path: str | os.PathLike) -> str:
    """Read a (possibly gzipped) trace file as UTF-8 text.

    Binary files, directories and other unreadable paths become
    :class:`~repro.errors.TraceFormatError`s (the library's clean-exit
    contract); a missing file keeps raising :class:`FileNotFoundError`,
    which callers special-case for friendlier messages.
    """
    try:
        with open_text(path) as f:
            return f.read()
    except FileNotFoundError:
        raise
    except (UnicodeDecodeError, gzip.BadGzipFile, EOFError, zlib.error) as exc:
        raise TraceFormatError(
            f"{os.fspath(path)}: not a text trace file ({exc})"
        ) from exc
    except OSError as exc:
        raise TraceFormatError(f"{os.fspath(path)}: {exc}") from exc


def read_traces(path: str | os.PathLike) -> list[MemoryTrace]:
    """Read all traces from a native-format file."""
    return parse_traces(_read_text(path))


def write_traces(path: str | os.PathLike, traces: Iterable[MemoryTrace]) -> None:
    """Write traces to a file in the text format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(render_traces(traces))


# -- raw address traces ------------------------------------------------------


def _parse_address(token: str) -> tuple[int, bool] | None:
    """Parse one token as ``(address, is_hex)``; ``None`` if not numeric."""
    t = token.lower()
    try:
        if t.startswith("0x"):
            return int(t, 16), True
        if t.endswith("h") and len(t) > 1:
            return int(t[:-1], 16), True
        return int(t, 10), False
    except ValueError:
        return None


def _parse_address_line(raw: str, line_no: int) -> tuple[int, bool] | None:
    """Parse one trace line as ``(address, is_write)``.

    ``None`` for blank/comment-only lines; a line with no parseable
    address raises :class:`~repro.errors.TraceFormatError` with its
    line number.
    """
    line = raw.split("#", 1)[0].strip()
    if not line:
        return None
    fields = [f for f in line.replace(",", " ").replace(":", " ").split() if f]
    addr = None
    addr_is_hex = False
    is_write = False
    for token in fields:
        lowered = token.lower()
        if lowered in _WRITE_TOKENS:
            is_write = True
            continue
        if lowered in _READ_TOKENS:
            continue
        parsed = _parse_address(token)
        if parsed is not None:
            value, is_hex = parsed
            # Hex fields are addresses; decimals (ticks, sizes) only
            # count when the line has no hex field at all.
            if is_hex or not addr_is_hex:
                addr = value
                addr_is_hex = addr_is_hex or is_hex
    if addr is None:
        raise TraceFormatError(
            f"line {line_no}: no address field in {raw.strip()!r}"
        )
    if addr < 0:
        raise TraceFormatError(
            f"line {line_no}: address must be non-negative, got {addr}"
        )
    return addr, is_write


def iter_address_trace(
    source: str | os.PathLike | Iterable[str],
) -> Iterator[tuple[int, bool]]:
    """Stream ``(address, is_write)`` pairs from a raw address trace.

    ``source`` is a file path — read gzip-transparently via
    :func:`open_text` — or any iterable of lines (an open file, a
    ``text.splitlines()`` list). One line is parsed at a time, so a
    hundred-million-access trace never has its text (or a Python list
    of accesses) resident at once. Parse failures carry the offending
    line number, exactly like :func:`parse_address_trace`.
    """
    if isinstance(source, (str, os.PathLike)):
        try:
            with open_text(source) as f:
                for line_no, raw in enumerate(f, start=1):
                    parsed = _parse_address_line(raw, line_no)
                    if parsed is not None:
                        yield parsed
        except FileNotFoundError:
            raise
        except (UnicodeDecodeError, gzip.BadGzipFile, EOFError, zlib.error) as exc:
            raise TraceFormatError(
                f"{os.fspath(source)}: not a text trace file ({exc})"
            ) from exc
        except OSError as exc:
            raise TraceFormatError(f"{os.fspath(source)}: {exc}") from exc
    else:
        for line_no, raw in enumerate(source, start=1):
            parsed = _parse_address_line(raw, line_no)
            if parsed is not None:
                yield parsed


#: Batch size used when a full-trace collection streams through the
#: chunked parser anyway (bounds transient Python-object overhead).
_PARSE_CHUNK = 1 << 16


def iter_address_chunks(
    source: str | os.PathLike | Iterable[str], chunk: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Batch :func:`iter_address_trace` into bounded numpy array pairs.

    Yields ``(addresses, writes)`` — int64 and bool arrays of length
    ``chunk`` (the last one possibly shorter). Each yielded pair is
    freshly allocated, so consumers may keep references across steps.
    """
    if chunk < 1:
        raise TraceError(f"chunk must be >= 1, got {chunk}")
    addrs: list[int] = []
    mask: list[bool] = []
    for addr, is_write in iter_address_trace(source):
        addrs.append(addr)
        mask.append(is_write)
        if len(addrs) == chunk:
            yield np.asarray(addrs, dtype=np.int64), np.asarray(mask, dtype=bool)
            addrs, mask = [], []
    if addrs:
        yield np.asarray(addrs, dtype=np.int64), np.asarray(mask, dtype=bool)


def _collect_address_stream(
    source: str | os.PathLike | Iterable[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize a streamed address trace into full arrays."""
    chunks = list(iter_address_chunks(source, _PARSE_CHUNK))
    if not chunks:
        raise TraceFormatError("address trace contains no accesses")
    if len(chunks) == 1:
        return chunks[0]
    return (np.concatenate([a for a, _ in chunks]),
            np.concatenate([w for _, w in chunks]))


def parse_address_trace(text: str) -> tuple[np.ndarray, np.ndarray]:
    """Parse a raw address trace into ``(addresses, writes)`` arrays.

    See the module docstring for the accepted line shapes. Lines whose
    only content is comments (``#``) or blanks are skipped; a line with
    no parseable address raises :class:`~repro.errors.TraceFormatError`
    with its line number.
    """
    return _collect_address_stream(text.splitlines())


def _select_words(
    uniq: np.ndarray,
    counts: np.ndarray,
    *,
    min_count: int,
    max_vars: int | None,
) -> np.ndarray:
    """Hot-word selection shared by monolithic and streamed ingestion.

    ``uniq`` must be the ascending unique word ids with ``counts``
    aligned (exactly ``np.unique(..., return_counts=True)``'s shape —
    the streamed census reproduces the same pair from its hash-map
    tallies). Returns the kept word ids, ascending: words below
    ``min_count`` dropped, then — if over ``max_vars`` — only the
    hottest kept, ties broken by lower address. Keeping this in one
    place is what makes the chunked two-pass ingestion's variable
    selection bit-identical to the monolithic path.
    """
    keep = uniq[counts >= min_count]
    if max_vars is not None and keep.size > max_vars:
        kept_counts = counts[counts >= min_count]
        # Hottest first; np.argsort is stable, so equal counts keep
        # ascending-address order after the descending-count sort.
        order = np.argsort(-kept_counts, kind="stable")[:max_vars]
        keep = keep[np.sort(order)]
    return keep


def addresses_to_trace(
    addresses: Sequence[int] | np.ndarray,
    writes: Sequence[bool] | np.ndarray | None = None,
    *,
    word_bytes: int | None = None,
    config=None,
    max_vars: int | None = None,
    min_count: int = 1,
    limit: int | None = None,
    name: str = "addrtrace",
) -> MemoryTrace:
    """Map raw addresses to a placement trace through the RTM geometry.

    ``word_bytes`` is the access granularity: addresses in the same
    ``word_bytes``-sized word collapse to one variable (one DBC location
    holds one word). It defaults to the ``word_bytes`` of ``config`` (an
    :class:`~repro.rtm.geometry.RTMConfig`) or, with neither given, the
    Table-I device's 32-track / 4-byte word. ``limit`` truncates the raw
    access stream first; then words accessed fewer than ``min_count``
    times are dropped (cold filtering) and, if ``max_vars`` is given,
    only the hottest ``max_vars`` words are kept (working-set capping,
    ties broken by lower address). Variables are named ``m<hex word
    index>`` in first-touch order.
    """
    if word_bytes is None:
        if config is not None:
            word_bytes = config.word_bytes
        else:
            from repro.rtm.geometry import RTMConfig

            word_bytes = RTMConfig(dbcs=1).word_bytes
    if word_bytes < 1:
        raise TraceError(f"word_bytes must be >= 1, got {word_bytes}")
    if min_count < 1:
        raise TraceError(f"min_count must be >= 1, got {min_count}")
    if max_vars is not None and max_vars < 1:
        raise TraceError(f"max_vars must be >= 1, got {max_vars}")
    if limit is not None and limit < 1:
        raise TraceError(f"limit must be >= 1, got {limit}")
    addrs = np.asarray(addresses, dtype=np.int64)
    if addrs.size == 0:
        raise TraceError("cannot build a trace from zero addresses")
    mask: np.ndarray | None
    if writes is None:
        mask = None  # fall back to the first-access-is-a-write rule
    else:
        mask = np.asarray(writes, dtype=bool)
        if mask.shape != addrs.shape:
            raise TraceError(
                f"writes mask has shape {mask.shape}, expected {addrs.shape}"
            )
    if limit is not None:
        addrs = addrs[:limit]
        mask = mask[:limit] if mask is not None else None
    words = addrs // word_bytes
    uniq, counts = np.unique(words, return_counts=True)
    keep = _select_words(uniq, counts, min_count=min_count, max_vars=max_vars)
    if keep.size == 0:
        raise TraceError(
            f"no word survives min_count={min_count} over "
            f"{addrs.size} accesses"
        )
    selected = np.isin(words, keep)
    words = words[selected]
    mask = mask[selected] if mask is not None else None
    if words.size == 0:  # pragma: no cover - keep.size > 0 implies accesses
        raise TraceError("filtered trace is empty")
    names = {w: f"m{w:x}" for w in keep}
    accesses = [names[w] for w in words]
    return MemoryTrace.from_accesses(accesses, writes=mask, name=name)


def trace_name_for(path: str | os.PathLike) -> str:
    """Default trace name for a file: its stem, minus a ``.gz`` suffix."""
    base = os.path.basename(os.fspath(path))
    if base.lower().endswith(".gz"):
        base = base[:-3]
    return os.path.splitext(base)[0] or base


def read_address_trace(
    path: str | os.PathLike, name: str | None = None, **kwargs
) -> MemoryTrace:
    """Read a raw address-trace file and map it to a placement trace.

    The file is parsed line-by-line (gzip-transparently); keyword
    arguments are forwarded to :func:`addresses_to_trace` and the trace
    name defaults to the file's stem.
    """
    addrs, writes = _collect_address_stream(path)
    if name is None:
        name = trace_name_for(path)
    return addresses_to_trace(addrs, writes, name=name, **kwargs)


def detect_trace_format(text: str) -> str:
    """Classify ``text`` as ``'trace'`` (native) or ``'addr'`` (raw).

    The native format's first meaningful line must open a block with the
    ``trace`` keyword; anything else is treated as an address trace.
    """
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        return "trace" if line.split()[0].lower() == "trace" else "addr"
    return "trace"


def sniff_trace_format(path: str | os.PathLike) -> str:
    """:func:`detect_trace_format` for a file, reading only up to the
    first meaningful line — the whole file is never resident, so address
    traces of any length sniff in O(1) memory."""
    try:
        with open_text(path) as f:
            for raw in f:
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                return (
                    "trace" if line.split()[0].lower() == "trace" else "addr"
                )
    except FileNotFoundError:
        raise
    except (UnicodeDecodeError, gzip.BadGzipFile, EOFError, zlib.error) as exc:
        raise TraceFormatError(
            f"{os.fspath(path)}: not a text trace file ({exc})"
        ) from exc
    except OSError as exc:
        raise TraceFormatError(f"{os.fspath(path)}: {exc}") from exc
    return "trace"


def load_traces(
    path: str | os.PathLike, format: str = "auto", **kwargs
) -> list[MemoryTrace]:
    """Read traces from ``path`` in either supported format.

    ``format`` is ``'trace'`` (native), ``'addr'`` (raw addresses) or
    ``'auto'`` (sniffed via :func:`sniff_trace_format`, which reads at
    most one meaningful line). Native files are read whole; address
    files stream through :func:`iter_address_trace`. Keyword arguments
    apply to address ingestion only and are rejected for native files.
    """
    if format not in ("auto", "trace", "addr"):
        raise TraceFormatError(
            f"unknown trace format {format!r}; choose auto, trace or addr"
        )
    if format == "auto":
        format = sniff_trace_format(path)
    if format == "trace":
        if kwargs:
            raise TraceError(
                f"native trace files take no ingestion options, "
                f"got {sorted(kwargs)}"
            )
        return parse_traces(_read_text(path))
    return [read_address_trace(path, **kwargs)]


def _chunks(items: list[str], size: int) -> Iterable[list[str]]:
    for i in range(0, len(items), size):
        yield items[i : i + size]
