"""Trace file formats: the native text format and raw address traces.

Native format (one or more blocks per file, in the spirit of
OffsetStone sequence files)::

    # comments and blank lines are ignored
    trace fir_kernel
    vars x0 x1 c0 c1 acc
    seq x0 c0 acc x1 c1 acc
    writes 2 5            # optional: 0-based indices of write accesses
    end

``vars`` is optional; when omitted the variable universe is the order of
first appearance in ``seq``. ``seq`` may be repeated to continue long
sequences. ``writes`` may be repeated as well; without it the default
first-access-is-a-write rule applies.

Address-trace format (gem5 / pintool style): one access per line,
fields separated by whitespace, commas or colons. The address is the
last *hex* field of the line (``0x``-prefixed, or bare hex ending in
``h``) or, when no field is hex, the last decimal field; any field
matching a read/write token (``R``/``W``/``read``/``write``/``ld``/
``st``/``load``/``store``) sets the access direction (default: read).
Other fields (ticks, PCs, sizes, core ids) are ignored, so ``0x1a2b``,
``r 0x1a2b``, ``12345: W 0x1a2b 4`` and CSV rows like ``12345,w,0x1a2b``
all parse. :func:`addresses_to_trace` then maps raw
addresses to placement variables through the RTM geometry: addresses are
grouped at the device's access granularity (``word_bytes``, one variable
location per word — see :class:`repro.rtm.geometry.RTMConfig`), capped
to the hottest ``max_vars`` words (working-set capping) and filtered of
words touched fewer than ``min_count`` times (cold filtering).

All parse failures raise :class:`~repro.errors.TraceFormatError` with
the offending line number.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import TraceError, TraceFormatError
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace

#: Tokens recognized as access-direction markers in address traces.
_READ_TOKENS = frozenset({"r", "read", "ld", "load", "rd"})
_WRITE_TOKENS = frozenset({"w", "write", "st", "store", "wr"})


def parse_traces(text: str) -> list[MemoryTrace]:
    """Parse all trace blocks from ``text`` (native format).

    Malformed input — unknown keywords, out-of-range write indices,
    duplicate or undeclared variables, unterminated blocks — raises
    :class:`~repro.errors.TraceFormatError` naming the offending line
    (for block-level defects, the block's opening line).
    """
    traces: list[MemoryTrace] = []
    state: dict | None = None

    def finish(line_no: int) -> None:
        nonlocal state
        if state is None:
            return
        start = state["start_line"]
        if not state["seq"]:
            raise TraceFormatError(
                f"line {start}: trace {state['name']!r} has an empty sequence"
            )
        try:
            seq = AccessSequence(
                state["seq"], variables=state["vars"] or None, name=state["name"]
            )
        except TraceError as exc:
            # Surface sequence-level defects (duplicate vars, accesses to
            # undeclared variables) as format errors tied to the block,
            # instead of an opaque mid-parse TraceError.
            raise TraceFormatError(
                f"lines {start}-{line_no}: trace {state['name']!r}: {exc}"
            ) from exc
        writes = None
        if state["writes"] is not None:
            writes = np.zeros(len(seq), dtype=bool)
            for idx in state["writes"]:
                if not 0 <= idx < len(seq):
                    raise TraceFormatError(
                        f"line {line_no}: write index {idx} out of range "
                        f"for {len(seq)} accesses"
                    )
                writes[idx] = True
        traces.append(MemoryTrace(seq, writes))
        state = None

    line_no = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword, args = fields[0].lower(), fields[1:]
        if keyword == "trace":
            if state is not None:
                raise TraceFormatError(
                    f"line {line_no}: 'trace' before previous block "
                    f"(opened at line {state['start_line']}) ended"
                )
            if len(args) != 1:
                raise TraceFormatError(f"line {line_no}: 'trace' takes one name")
            state = {"name": args[0], "vars": [], "seq": [], "writes": None,
                     "start_line": line_no}
        elif keyword in ("vars", "seq", "writes", "end"):
            if state is None:
                raise TraceFormatError(
                    f"line {line_no}: {keyword!r} outside a trace block"
                )
            if keyword == "vars":
                state["vars"].extend(args)
            elif keyword == "seq":
                state["seq"].extend(args)
            elif keyword == "writes":
                if state["writes"] is None:
                    state["writes"] = []
                try:
                    state["writes"].extend(int(a) for a in args)
                except ValueError as exc:
                    raise TraceFormatError(
                        f"line {line_no}: write indices must be integers"
                    ) from exc
            else:
                finish(line_no)
        else:
            raise TraceFormatError(f"line {line_no}: unknown keyword {keyword!r}")
    if state is not None:
        raise TraceFormatError(
            f"line {state['start_line']}: trace {state['name']!r} "
            f"not terminated with 'end'"
        )
    return traces


def render_traces(traces: Iterable[MemoryTrace], wrap: int = 16) -> str:
    """Serialize traces to the text format parsed by :func:`parse_traces`."""
    out: list[str] = []
    for trace in traces:
        seq = trace.sequence
        out.append(f"trace {seq.name or 'unnamed'}")
        for chunk in _chunks(list(seq.variables), wrap):
            out.append("vars " + " ".join(chunk))
        for chunk in _chunks(list(seq.accesses), wrap):
            out.append("seq " + " ".join(chunk))
        write_idx = [str(i) for i in np.flatnonzero(trace.writes)]
        for chunk in _chunks(write_idx, wrap):
            out.append("writes " + " ".join(chunk))
        out.append("end")
        out.append("")
    return "\n".join(out)


def _read_text(path: str | os.PathLike) -> str:
    """Read a trace file as UTF-8 text.

    Binary files, directories and other unreadable paths become
    :class:`~repro.errors.TraceFormatError`s (the library's clean-exit
    contract); a missing file keeps raising :class:`FileNotFoundError`,
    which callers special-case for friendlier messages.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            return f.read()
    except FileNotFoundError:
        raise
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"{os.fspath(path)}: not a text trace file ({exc})"
        ) from exc
    except OSError as exc:
        raise TraceFormatError(f"{os.fspath(path)}: {exc}") from exc


def read_traces(path: str | os.PathLike) -> list[MemoryTrace]:
    """Read all traces from a native-format file."""
    return parse_traces(_read_text(path))


def write_traces(path: str | os.PathLike, traces: Iterable[MemoryTrace]) -> None:
    """Write traces to a file in the text format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(render_traces(traces))


# -- raw address traces ------------------------------------------------------


def _parse_address(token: str) -> tuple[int, bool] | None:
    """Parse one token as ``(address, is_hex)``; ``None`` if not numeric."""
    t = token.lower()
    try:
        if t.startswith("0x"):
            return int(t, 16), True
        if t.endswith("h") and len(t) > 1:
            return int(t[:-1], 16), True
        return int(t, 10), False
    except ValueError:
        return None


def parse_address_trace(text: str) -> tuple[np.ndarray, np.ndarray]:
    """Parse a raw address trace into ``(addresses, writes)`` arrays.

    See the module docstring for the accepted line shapes. Lines whose
    only content is comments (``#``) or blanks are skipped; a line with
    no parseable address raises :class:`~repro.errors.TraceFormatError`
    with its line number.
    """
    addresses: list[int] = []
    writes: list[bool] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = [f for f in line.replace(",", " ").replace(":", " ").split() if f]
        addr = None
        addr_is_hex = False
        is_write = False
        for token in fields:
            lowered = token.lower()
            if lowered in _WRITE_TOKENS:
                is_write = True
                continue
            if lowered in _READ_TOKENS:
                continue
            parsed = _parse_address(token)
            if parsed is not None:
                value, is_hex = parsed
                # Hex fields are addresses; decimals (ticks, sizes) only
                # count when the line has no hex field at all.
                if is_hex or not addr_is_hex:
                    addr = value
                    addr_is_hex = addr_is_hex or is_hex
        if addr is None:
            raise TraceFormatError(
                f"line {line_no}: no address field in {raw.strip()!r}"
            )
        if addr < 0:
            raise TraceFormatError(
                f"line {line_no}: address must be non-negative, got {addr}"
            )
        addresses.append(addr)
        writes.append(is_write)
    if not addresses:
        raise TraceFormatError("address trace contains no accesses")
    return (np.asarray(addresses, dtype=np.int64),
            np.asarray(writes, dtype=bool))


def addresses_to_trace(
    addresses: Sequence[int] | np.ndarray,
    writes: Sequence[bool] | np.ndarray | None = None,
    *,
    word_bytes: int | None = None,
    config=None,
    max_vars: int | None = None,
    min_count: int = 1,
    limit: int | None = None,
    name: str = "addrtrace",
) -> MemoryTrace:
    """Map raw addresses to a placement trace through the RTM geometry.

    ``word_bytes`` is the access granularity: addresses in the same
    ``word_bytes``-sized word collapse to one variable (one DBC location
    holds one word). It defaults to the ``word_bytes`` of ``config`` (an
    :class:`~repro.rtm.geometry.RTMConfig`) or, with neither given, the
    Table-I device's 32-track / 4-byte word. ``limit`` truncates the raw
    access stream first; then words accessed fewer than ``min_count``
    times are dropped (cold filtering) and, if ``max_vars`` is given,
    only the hottest ``max_vars`` words are kept (working-set capping,
    ties broken by lower address). Variables are named ``m<hex word
    index>`` in first-touch order.
    """
    if word_bytes is None:
        if config is not None:
            word_bytes = config.word_bytes
        else:
            from repro.rtm.geometry import RTMConfig

            word_bytes = RTMConfig(dbcs=1).word_bytes
    if word_bytes < 1:
        raise TraceError(f"word_bytes must be >= 1, got {word_bytes}")
    if min_count < 1:
        raise TraceError(f"min_count must be >= 1, got {min_count}")
    if max_vars is not None and max_vars < 1:
        raise TraceError(f"max_vars must be >= 1, got {max_vars}")
    if limit is not None and limit < 1:
        raise TraceError(f"limit must be >= 1, got {limit}")
    addrs = np.asarray(addresses, dtype=np.int64)
    if addrs.size == 0:
        raise TraceError("cannot build a trace from zero addresses")
    mask: np.ndarray | None
    if writes is None:
        mask = None  # fall back to the first-access-is-a-write rule
    else:
        mask = np.asarray(writes, dtype=bool)
        if mask.shape != addrs.shape:
            raise TraceError(
                f"writes mask has shape {mask.shape}, expected {addrs.shape}"
            )
    if limit is not None:
        addrs = addrs[:limit]
        mask = mask[:limit] if mask is not None else None
    words = addrs // word_bytes
    uniq, counts = np.unique(words, return_counts=True)
    keep = uniq[counts >= min_count]
    if max_vars is not None and keep.size > max_vars:
        kept_counts = counts[counts >= min_count]
        # Hottest first; np.argsort is stable, so equal counts keep
        # ascending-address order after the descending-count sort.
        order = np.argsort(-kept_counts, kind="stable")[:max_vars]
        keep = keep[np.sort(order)]
    if keep.size == 0:
        raise TraceError(
            f"no word survives min_count={min_count} over "
            f"{addrs.size} accesses"
        )
    selected = np.isin(words, keep)
    words = words[selected]
    mask = mask[selected] if mask is not None else None
    if words.size == 0:  # pragma: no cover - keep.size > 0 implies accesses
        raise TraceError("filtered trace is empty")
    names = {w: f"m{w:x}" for w in keep}
    accesses = [names[w] for w in words]
    return MemoryTrace.from_accesses(accesses, writes=mask, name=name)


def read_address_trace(
    path: str | os.PathLike, name: str | None = None, **kwargs
) -> MemoryTrace:
    """Read a raw address-trace file and map it to a placement trace.

    Keyword arguments are forwarded to :func:`addresses_to_trace`; the
    trace name defaults to the file's stem.
    """
    addrs, writes = parse_address_trace(_read_text(path))
    if name is None:
        name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return addresses_to_trace(addrs, writes, name=name, **kwargs)


def detect_trace_format(text: str) -> str:
    """Classify ``text`` as ``'trace'`` (native) or ``'addr'`` (raw).

    The native format's first meaningful line must open a block with the
    ``trace`` keyword; anything else is treated as an address trace.
    """
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        return "trace" if line.split()[0].lower() == "trace" else "addr"
    return "trace"


def load_traces(
    path: str | os.PathLike, format: str = "auto", **kwargs
) -> list[MemoryTrace]:
    """Read traces from ``path`` in either supported format.

    ``format`` is ``'trace'`` (native), ``'addr'`` (raw addresses) or
    ``'auto'`` (sniffed via :func:`detect_trace_format`). Keyword
    arguments apply to address ingestion only and are rejected for
    native files.
    """
    if format not in ("auto", "trace", "addr"):
        raise TraceFormatError(
            f"unknown trace format {format!r}; choose auto, trace or addr"
        )
    text = _read_text(path)
    if format == "auto":
        format = detect_trace_format(text)
    if format == "trace":
        if kwargs:
            raise TraceError(
                f"native trace files take no ingestion options, "
                f"got {sorted(kwargs)}"
            )
        return parse_traces(text)
    addrs, writes = parse_address_trace(text)
    name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return [addresses_to_trace(addrs, writes, name=name, **kwargs)]


def _chunks(items: list[str], size: int) -> Iterable[list[str]]:
    for i in range(0, len(items), size):
        yield items[i : i + size]
