"""``repro-trace`` — inspect, ingest and convert trace files.

Subcommands:

* ``stats``   — per-trace structural statistics (the signals that decide
  which placement policy wins) for any supported file format.
* ``ingest``  — map a raw address trace (gem5/pintool style lines or
  CSV) to a placement trace through the RTM geometry — access
  granularity, working-set capping, hot/cold filtering — and write it
  in the native format.
* ``convert`` — normalize any supported file into the native format
  (re-wrapped, canonical keyword layout).

Both output-producing commands write files that ``repro-place``,
``repro-sim`` and ``file:`` workload specs (see ``docs/workloads.md``)
consume directly.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.errors import ReproError
from repro.trace.io import (
    load_traces,
    read_address_trace,
    render_traces,
    write_traces,
)
from repro.trace.stats import analyze
from repro.util.tables import format_table

_FORMATS = ("auto", "trace", "addr")


def _ingest_kwargs(args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if args.word is not None:
        kwargs["word_bytes"] = args.word
    if args.max_vars is not None:
        kwargs["max_vars"] = args.max_vars
    if args.min_count is not None:
        kwargs["min_count"] = args.min_count
    if args.limit is not None:
        kwargs["limit"] = args.limit
    return kwargs


def _add_ingest_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--word", type=int, default=None, metavar="BYTES",
                        help="access granularity: addresses in the same "
                             "word map to one variable (default: the "
                             "32-track device's 4-byte word)")
    parser.add_argument("--max-vars", type=int, default=None, metavar="N",
                        help="working-set cap: keep only the N hottest words")
    parser.add_argument("--min-count", type=int, default=None, metavar="N",
                        help="cold filter: drop words accessed < N times")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="truncate the raw access stream to N accesses")


def _cmd_stats(args: argparse.Namespace) -> int:
    kwargs = _ingest_kwargs(args)
    if args.format == "trace" and kwargs:
        raise ReproError("ingestion options only apply to address traces")
    traces = load_traces(args.file, format=args.format, **kwargs)
    rows = []
    for trace in traces:
        s = analyze(trace.sequence)
        rows.append([
            trace.name or "unnamed", s.length, s.num_variables,
            trace.num_writes, f"{100 * s.self_transition_ratio:.1f}%",
            f"{s.mean_working_set:.1f}",
            f"{100 * s.working_set_turnover:.1f}%",
            f"{100 * s.disjoint_access_share:.1f}%",
        ])
    print(format_table(
        ["Trace", "Accesses", "Vars", "Writes", "SelfTrans", "WorkSet",
         "Turnover", "Disjoint"],
        rows, title=f"{args.file}: {len(traces)} trace(s)",
    ))
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    trace = read_address_trace(args.file, name=args.name,
                               **_ingest_kwargs(args))
    seq = trace.sequence
    if args.out:
        write_traces(args.out, [trace])
        print(f"ingested {args.file}: {len(seq)} accesses over "
              f"{seq.num_variables} variables -> {args.out}")
    else:
        print(render_traces([trace]))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    traces = load_traces(args.file, format=args.format,
                         **_ingest_kwargs(args))
    if args.out:
        write_traces(args.out, traces)
        print(f"converted {args.file}: {len(traces)} trace(s) -> {args.out}")
    else:
        print(render_traces(traces))
    return 0


def main_trace(argv: Sequence[str] | None = None) -> int:
    """Inspect, ingest and convert trace files."""
    parser = argparse.ArgumentParser(
        prog="repro-trace", description=main_trace.__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="per-trace structural statistics")
    p_stats.add_argument("file", help="trace file (native or address format)")
    p_stats.add_argument("--format", choices=_FORMATS, default="auto",
                         help="input format (default: sniffed)")
    _add_ingest_args(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_ingest = sub.add_parser(
        "ingest", help="map a raw address trace to the native format"
    )
    p_ingest.add_argument("file", help="address-trace file (lines or CSV)")
    p_ingest.add_argument("--out", default=None,
                          help="output file (default: print to stdout)")
    p_ingest.add_argument("--name", default=None,
                          help="trace name (default: the file's stem)")
    _add_ingest_args(p_ingest)
    p_ingest.set_defaults(func=_cmd_ingest)

    p_convert = sub.add_parser(
        "convert", help="normalize any supported file into the native format"
    )
    p_convert.add_argument("file", help="trace file (native or address format)")
    p_convert.add_argument("--out", default=None,
                           help="output file (default: print to stdout)")
    p_convert.add_argument("--format", choices=_FORMATS, default="auto",
                           help="input format (default: sniffed)")
    _add_ingest_args(p_convert)
    p_convert.set_defaults(func=_cmd_convert)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - manual dispatch helper
    sys.exit(main_trace())
