"""Access sequences: the fundamental input of the placement problem.

An :class:`AccessSequence` couples an ordered *variable universe* ``V``
with an access string ``S`` (Sec. II-B of the paper). The variable order
matters: the baseline AFD heuristic breaks frequency ties by variable
declaration order, which is how the paper's Fig. 3-(c) assignment
``{a,g,b,d,h} / {e,i,c,f}`` arises.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import cached_property

import numpy as np

from repro.errors import TraceError


class AccessSequence:
    """An immutable access sequence over a fixed, ordered variable set.

    Parameters
    ----------
    accesses:
        The sequence ``S`` of variable names, in program order.
    variables:
        The declared variable universe, in declaration order. Defaults to
        the order of first appearance in ``accesses``. May contain
        variables that are never accessed (they still need a location).
    name:
        Optional label used in reports.
    """

    __slots__ = ("_variables", "_index", "_codes", "_name", "__dict__")

    def __init__(
        self,
        accesses: Sequence[str],
        variables: Sequence[str] | None = None,
        name: str = "",
    ) -> None:
        accesses = list(accesses)
        if variables is None:
            seen: dict[str, None] = {}
            for a in accesses:
                if a not in seen:
                    seen[a] = None
            variables = list(seen)
        else:
            variables = list(variables)
        if not variables:
            raise TraceError("an access sequence needs at least one variable")
        index: dict[str, int] = {}
        for i, v in enumerate(variables):
            if not isinstance(v, str) or not v:
                raise TraceError(f"variable names must be non-empty strings, got {v!r}")
            if v in index:
                raise TraceError(f"duplicate variable {v!r}")
            index[v] = i
        codes = np.empty(len(accesses), dtype=np.int64)
        for i, a in enumerate(accesses):
            code = index.get(a)
            if code is None:
                raise TraceError(f"access {i} refers to undeclared variable {a!r}")
            codes[i] = code
        codes.setflags(write=False)
        self._variables = tuple(variables)
        self._index = index
        self._codes = codes
        self._name = name

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return int(self._codes.size)

    def __iter__(self):
        for c in self._codes:
            yield self._variables[c]

    def __getitem__(self, i: int) -> str:
        return self._variables[self._codes[i]]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessSequence):
            return NotImplemented
        return (
            self._variables == other._variables
            and np.array_equal(self._codes, other._codes)
        )

    def __hash__(self) -> int:
        return hash((self._variables, self._codes.tobytes()))

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<AccessSequence{label}: {len(self._variables)} vars, "
            f"{len(self)} accesses>"
        )

    # -- accessors ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def variables(self) -> tuple[str, ...]:
        """The declared variable universe, in declaration order."""
        return self._variables

    @property
    def codes(self) -> np.ndarray:
        """Integer codes of the accesses (indices into :attr:`variables`)."""
        return self._codes

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def accesses(self) -> tuple[str, ...]:
        return tuple(self._variables[c] for c in self._codes)

    def index_of(self, variable: str) -> int:
        """Declaration index of ``variable`` (raises for unknown names)."""
        try:
            return self._index[variable]
        except KeyError:
            raise TraceError(f"unknown variable {variable!r}") from None

    def __contains__(self, variable: str) -> bool:
        return variable in self._index

    # -- derived data ------------------------------------------------------

    @cached_property
    def frequencies(self) -> np.ndarray:
        """Access frequency ``A_v`` per variable code (zero for unused)."""
        counts = np.bincount(self._codes, minlength=len(self._variables))
        counts.setflags(write=False)
        return counts

    def frequency(self, variable: str) -> int:
        return int(self.frequencies[self.index_of(variable)])

    def restricted_to(self, subset: Iterable[str], name: str = "") -> "AccessSequence":
        """The subsequence of accesses touching ``subset`` variables only.

        This is the per-DBC local sequence (``S0``/``S1`` in Fig. 3): a
        placement splits ``S`` into one disjoint subsequence per DBC, and
        each DBC's shift cost is computed over its own subsequence.
        Variables in ``subset`` keep their relative declaration order.
        """
        wanted = set(subset)
        unknown = wanted.difference(self._index)
        if unknown:
            raise TraceError(f"unknown variables in subset: {sorted(unknown)}")
        keep_vars = [v for v in self._variables if v in wanted]
        if not keep_vars:
            raise TraceError("subset must contain at least one variable")
        mask = np.isin(self._codes, [self._index[v] for v in keep_vars])
        kept = [self._variables[c] for c in self._codes[mask]]
        return AccessSequence(kept, variables=keep_vars, name=name or self._name)

    @classmethod
    def from_codes(
        cls,
        variables: Sequence[str],
        codes: np.ndarray,
        name: str = "",
    ) -> "AccessSequence":
        """Build a sequence directly from integer codes, without copying.

        The zero-copy rehydration path: ``codes`` must be a read-only
        int64 array of valid indices into ``variables`` — typically a
        view into a shared-memory buffer (see
        :class:`~repro.engine.compile.SharedTraceArena`). Writable
        arrays are defensively frozen-by-copy so the sequence stays
        immutable; read-only inputs are adopted as-is.
        """
        variables = tuple(variables)
        if not variables:
            raise TraceError("an access sequence needs at least one variable")
        index: dict[str, int] = {}
        for i, v in enumerate(variables):
            if not isinstance(v, str) or not v:
                raise TraceError(
                    f"variable names must be non-empty strings, got {v!r}"
                )
            if v in index:
                raise TraceError(f"duplicate variable {v!r}")
            index[v] = i
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise TraceError(f"codes must be 1-D, got shape {codes.shape}")
        if codes.size and (
            int(codes.min()) < 0 or int(codes.max()) >= len(variables)
        ):
            raise TraceError("codes reference variables outside the universe")
        if codes.flags.writeable:
            codes = codes.copy()
            codes.setflags(write=False)
        seq = cls.__new__(cls)
        seq._variables = variables
        seq._index = index
        seq._codes = codes
        seq._name = name
        return seq

    def with_name(self, name: str) -> "AccessSequence":
        clone = AccessSequence.__new__(AccessSequence)
        clone._variables = self._variables
        clone._index = self._index
        clone._codes = self._codes
        clone._name = name
        return clone

    def consecutive_pairs(self) -> Iterable[tuple[str, str]]:
        """Yield the ``(s_i, s_{i+1})`` pairs used to build access graphs."""
        for i in range(len(self) - 1):
            yield self._variables[self._codes[i]], self._variables[self._codes[i + 1]]
