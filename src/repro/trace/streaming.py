"""Chunked streaming ingestion: bounded-memory traces for huge files.

:func:`stream_address_trace` is the two-pass chunked counterpart of
:func:`repro.trace.io.addresses_to_trace` for on-disk address traces.
Pass one (the *census*) streams the file through
:func:`~repro.trace.io.iter_address_chunks`, tallying per-word access
counts and first-touch positions in O(unique words) memory while
spilling the parsed ``(word, is_write)`` stream to a binary scratch
file, so the text is parsed exactly once. Hot-word selection then runs
the *same* :func:`~repro.trace.io._select_words` the monolithic path
uses — identical ``max_vars``/``min_count`` semantics, identical tie
breaking. Pass two re-reads the binary spill, drops filtered words,
maps the survivors to variable codes and writes the final
``codes``/``writes`` spill that :meth:`StreamingTrace.chunks` serves
fixed-size :class:`TraceChunk`\\ s from.

The resulting :class:`StreamingTrace` is *bit-identical in content* to
the monolithic :class:`~repro.trace.trace.MemoryTrace` the in-memory
path would build — same variable universe (first-appearance order of
the filtered stream, ``m<hex>`` names), same codes, same write mask —
which :attr:`StreamingTrace.content_fingerprint` certifies: it equals
``trace_fingerprint`` of the materialized trace, so the experiment
store's content-addressed cell keys do not depend on residency mode.

Peak memory is O(chunk + unique words), never O(accesses): codes and
write masks live in a temp file (9 bytes per access) that is deleted
with the trace. Pickling drops spill ownership — workers re-open the
creator's spill when it still exists and rebuild it from the source
file otherwise — so streaming programs survive the matrix runner's
process pool.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import weakref
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError, TraceFormatError
from repro.trace.io import (
    _select_words,
    iter_address_chunks,
    trace_name_for,
)
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace

#: Batch size (accesses) for the census text parse and binary passes.
#: A multiple of 8 so per-batch ``np.packbits`` stays byte-aligned with
#: packing the whole mask at once (no cross-batch bit carry needed).
_BATCH = 1 << 16


@dataclass(frozen=True)
class TraceChunk:
    """One fixed-size slice of a streamed trace.

    ``codes`` are int64 indices into the trace's variable universe,
    ``writes`` the aligned bool mask; both read-only. ``start`` is the
    chunk's offset into the filtered access stream.
    """

    start: int
    codes: np.ndarray
    writes: np.ndarray

    def __len__(self) -> int:
        return int(self.codes.size)


class _StreamInfo:
    """The sequence-shaped face of a :class:`StreamingTrace`.

    Carries everything cheap consumers read off ``trace.sequence`` —
    name, the variable universe, lengths — without the codes array.
    Accessing :attr:`codes` raises, loudly, instead of silently
    materializing a hundred-million-entry array.
    """

    __slots__ = ("_name", "_variables", "_length")

    def __init__(self, name: str, variables: tuple[str, ...], length: int):
        self._name = name
        self._variables = variables
        self._length = length

    @property
    def name(self) -> str:
        return self._name

    @property
    def variables(self) -> tuple[str, ...]:
        return self._variables

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    def __len__(self) -> int:
        return self._length

    @property
    def codes(self) -> np.ndarray:
        raise TraceError(
            "streaming trace does not materialize its access codes; "
            "iterate trace.chunks() or call trace.materialize()"
        )

    def __repr__(self) -> str:
        return (
            f"<streaming sequence {self._name!r}: "
            f"{len(self._variables)} vars, {self._length} accesses>"
        )


def _census(source, word_bytes: int, limit: int | None, spill_path: str):
    """Pass one: tally words, spill the parsed stream to binary.

    Returns ``(uniq, counts, first_seen, n_raw)`` — ascending unique
    word ids, aligned access counts and first-touch stream positions,
    and the (possibly ``limit``-truncated) raw access count. The spill
    file receives interleaved ``_BATCH``-sized blocks of int64 words
    followed by their bool writes, re-read by :func:`_raw_blocks`.
    """
    uniq = np.empty(0, dtype=np.int64)
    counts = np.empty(0, dtype=np.int64)
    first = np.empty(0, dtype=np.int64)
    n_raw = 0
    with open(spill_path, "wb") as spill:
        for addrs, mask in iter_address_chunks(source, _BATCH):
            if limit is not None:
                room = limit - n_raw
                if room <= 0:
                    break
                addrs, mask = addrs[:room], mask[:room]
            words = addrs // word_bytes
            spill.write(words.tobytes())
            spill.write(mask.tobytes())
            u, idx, c = np.unique(
                words, return_index=True, return_counts=True
            )
            f = idx + n_raw
            n_raw += words.size
            # Merge this batch's tallies into the running sorted census.
            cat = np.concatenate([uniq, u])
            order = np.argsort(cat, kind="stable")
            cat = cat[order]
            catc = np.concatenate([counts, c])[order]
            catf = np.concatenate([first, f])[order]
            uniq, starts = np.unique(cat, return_index=True)
            counts = np.add.reduceat(catc, starts)
            first = np.minimum.reduceat(catf, starts)
            if limit is not None and n_raw >= limit:
                break
    return uniq, counts, first, n_raw


def _raw_blocks(spill_path: str, n_raw: int):
    """Re-read the census spill: yields ``(words, writes)`` per block."""
    with open(spill_path, "rb") as f:
        done = 0
        while done < n_raw:
            n = min(_BATCH, n_raw - done)
            words = np.frombuffer(f.read(8 * n), dtype=np.int64)
            mask = np.frombuffer(f.read(n), dtype=bool)
            if words.size != n or mask.size != n:
                raise TraceError("census spill truncated mid-read")
            yield words, mask
            done += n


class StreamingTrace:
    """A disk-backed trace replayed in bounded-memory chunks.

    Built by :func:`stream_address_trace`; content-equal to the
    monolithic ingestion of the same file (see the module docstring).
    Iterate :meth:`chunks` to replay, :meth:`placement_sequence` to
    hand placement policies a (windowed) materialized sequence, and
    :meth:`materialize` to get the full in-memory twin.
    """

    def __init__(
        self,
        path: str,
        *,
        chunk: int,
        word_bytes: int,
        max_vars: int | None,
        min_count: int,
        limit: int | None,
        name: str,
        window: int | None = None,
    ):
        self.path = path
        self.chunk = chunk
        self.word_bytes = word_bytes
        self.max_vars = max_vars
        self.min_count = min_count
        self.limit = limit
        self.window = window
        self._name = name
        self._spill_path: str | None = None
        self._spill_owner = False
        self._finalizer = None
        self._build()

    # -- construction --------------------------------------------------------

    def _new_spill(self) -> str:
        fd, path = tempfile.mkstemp(prefix="repro-stream-", suffix=".spill")
        os.close(fd)
        return path

    def _build(self) -> None:
        """Run both passes; leaves the final codes/writes spill on disk."""
        raw_path = self._new_spill()
        try:
            uniq, counts, first, n_raw = _census(
                self.path, self.word_bytes, self.limit, raw_path
            )
            if n_raw == 0:
                raise TraceFormatError("address trace contains no accesses")
            keep = _select_words(
                uniq, counts, min_count=self.min_count, max_vars=self.max_vars
            )
            if keep.size == 0:
                raise TraceError(
                    f"no word survives min_count={self.min_count} over "
                    f"{n_raw} accesses"
                )
            # Variable universe: kept words in first-touch order, exactly
            # the first-appearance order of the filtered stream.
            pos = np.searchsorted(uniq, keep)
            first_kept = first[pos]
            counts_kept = counts[pos]
            order = np.argsort(first_kept, kind="stable")
            code_of_keep = np.empty(keep.size, dtype=np.int64)
            code_of_keep[order] = np.arange(keep.size, dtype=np.int64)
            variables = tuple(f"m{int(w):x}" for w in keep[order])
            length = int(counts_kept.sum())

            spill_path = self._new_spill()
            h = hashlib.sha256()
            h.update("\x00".join(variables).encode())
            h.update(b"|")
            writes_off = 8 * length
            with open(spill_path, "r+b") as out:
                out.truncate(writes_off + length)
                codes_at, writes_at = 0, writes_off
                for words, mask in _raw_blocks(raw_path, n_raw):
                    sel_pos = np.searchsorted(keep, words)
                    sel_pos[sel_pos == keep.size] = 0
                    selected = keep[sel_pos] == words
                    codes = code_of_keep[sel_pos[selected]]
                    w = mask[selected]
                    out.seek(codes_at)
                    out.write(codes.tobytes())
                    codes_at += 8 * codes.size
                    out.seek(writes_at)
                    out.write(w.tobytes())
                    writes_at += w.size
                    h.update(codes.tobytes())
                if codes_at != 8 * length:  # pragma: no cover - invariant
                    raise TraceError("streamed census/spill length mismatch")
                # Fingerprint tail: "|" + packbits(writes). _BATCH is a
                # multiple of 8, so per-block packbits concatenates to
                # exactly np.packbits(whole mask).
                h.update(b"|")
                done = 0
                while done < length:
                    n = min(_BATCH, length - done)
                    out.seek(writes_off + done)
                    mask = np.frombuffer(out.read(n), dtype=bool)
                    h.update(np.packbits(mask).tobytes())
                    done += n
            self._spill_path = spill_path
            self._spill_owner = True
            self._finalizer = weakref.finalize(
                self, _remove_quietly, spill_path
            )
        finally:
            _remove_quietly(raw_path)
        self._info = _StreamInfo(self._name, variables, length)
        self._fingerprint = h.hexdigest()

    def _ensure_spill(self) -> str:
        """The final spill's path, rebuilding it after a cross-process move.

        An unpickled copy points at its creator's spill; when that file
        is gone (different machine, creator exited) the trace rebuilds
        from the source file and verifies the content fingerprint, so a
        changed file can never silently stand in for the original.
        """
        if self._spill_path is not None and os.path.exists(self._spill_path):
            return self._spill_path
        expected = self._fingerprint
        self._build()
        if self._fingerprint != expected:
            raise TraceError(
                f"{self.path}: trace content changed since it was first "
                f"ingested (fingerprint mismatch)"
            )
        return self._spill_path

    # -- protocol ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._info)

    def __repr__(self) -> str:
        return (
            f"<StreamingTrace {self._name!r}: {len(self)} accesses in "
            f"{self.num_chunks} chunks of {self.chunk}>"
        )

    def __getstate__(self):
        state = self.__dict__.copy()
        # The receiver must never delete the creator's spill.
        state["_spill_owner"] = False
        state["_finalizer"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- accessors -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def sequence(self) -> _StreamInfo:
        return self._info

    @property
    def variables(self) -> tuple[str, ...]:
        return self._info.variables

    @property
    def num_chunks(self) -> int:
        return -(-len(self) // self.chunk)

    @property
    def content_fingerprint(self) -> str:
        """Hex SHA-256 equal to ``trace_fingerprint(self.materialize())``."""
        return self._fingerprint

    @property
    def writes(self) -> np.ndarray:
        raise TraceError(
            "streaming trace does not materialize its write mask; "
            "iterate trace.chunks() or call trace.materialize()"
        )

    # -- streaming -----------------------------------------------------------

    def chunks(self) -> Iterator[TraceChunk]:
        """Yield the trace as fixed-size read-only :class:`TraceChunk`\\ s."""
        spill = self._ensure_spill()
        length = len(self)
        writes_off = 8 * length
        with open(spill, "rb") as f:
            start = 0
            while start < length:
                n = min(self.chunk, length - start)
                f.seek(8 * start)
                codes = np.frombuffer(f.read(8 * n), dtype=np.int64)
                f.seek(writes_off + start)
                mask = np.frombuffer(f.read(n), dtype=bool)
                if codes.size != n or mask.size != n:
                    raise TraceError("trace spill truncated mid-read")
                codes.setflags(write=False)
                mask.setflags(write=False)
                yield TraceChunk(start=start, codes=codes, writes=mask)
                start += n

    def _read_codes(self, count: int) -> np.ndarray:
        spill = self._ensure_spill()
        with open(spill, "rb") as f:
            codes = np.frombuffer(f.read(8 * count), dtype=np.int64)
        if codes.size != count:
            raise TraceError("trace spill truncated mid-read")
        codes.setflags(write=False)
        return codes

    def placement_sequence(self, window: int | None = None) -> AccessSequence:
        """A materialized :class:`AccessSequence` for placement policies.

        Policies are whole-sequence functions, so this transiently
        materializes the codes — 8 bytes per access, far below what the
        text parse would cost. ``window`` caps it to the first ``window``
        accesses (the variable universe stays the full one, so every
        variable still receives a location); it defaults to the trace's
        own ``window`` attribute, and with no window at all the full
        sequence is used — which is what keeps streamed placements
        bit-identical to monolithic ones.
        """
        if window is None:
            window = self.window
        if window is not None and window < 1:
            raise TraceError(f"window must be >= 1, got {window}")
        count = len(self) if window is None else min(window, len(self))
        codes = self._read_codes(count)
        return AccessSequence.from_codes(
            self.variables, codes, name=self._name
        )

    def materialize(self) -> MemoryTrace:
        """The full in-memory :class:`MemoryTrace` twin (tests, small files)."""
        length = len(self)
        spill = self._ensure_spill()
        with open(spill, "rb") as f:
            codes = np.frombuffer(f.read(8 * length), dtype=np.int64)
            mask = np.frombuffer(f.read(length), dtype=bool)
        codes.setflags(write=False)
        mask.setflags(write=False)
        seq = AccessSequence.from_codes(self.variables, codes, name=self._name)
        return MemoryTrace(seq, mask)


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass


def stream_address_trace(
    path: str | os.PathLike,
    *,
    chunk: int,
    word_bytes: int | None = None,
    config=None,
    max_vars: int | None = None,
    min_count: int = 1,
    limit: int | None = None,
    name: str | None = None,
    window: int | None = None,
) -> StreamingTrace:
    """Two-pass chunked ingestion of an on-disk address trace.

    The streaming counterpart of
    :func:`~repro.trace.io.addresses_to_trace` — same geometry mapping,
    hot-word census and naming, identical resulting content (see the
    module docstring) — with O(chunk + unique words) peak memory.
    ``chunk`` fixes the :class:`TraceChunk` size served by
    :meth:`StreamingTrace.chunks`; ``window``, when given, becomes the
    trace's default placement window (see
    :meth:`StreamingTrace.placement_sequence`).
    """
    if chunk < 1:
        raise TraceError(f"chunk must be >= 1, got {chunk}")
    if window is not None and window < 1:
        raise TraceError(f"window must be >= 1, got {window}")
    if word_bytes is None:
        if config is not None:
            word_bytes = config.word_bytes
        else:
            from repro.rtm.geometry import RTMConfig

            word_bytes = RTMConfig(dbcs=1).word_bytes
    if word_bytes < 1:
        raise TraceError(f"word_bytes must be >= 1, got {word_bytes}")
    if min_count < 1:
        raise TraceError(f"min_count must be >= 1, got {min_count}")
    if max_vars is not None and max_vars < 1:
        raise TraceError(f"max_vars must be >= 1, got {max_vars}")
    if limit is not None and limit < 1:
        raise TraceError(f"limit must be >= 1, got {limit}")
    path = os.fspath(path)
    if name is None:
        name = trace_name_for(path)
    return StreamingTrace(
        path,
        chunk=int(chunk),
        word_bytes=int(word_bytes),
        max_vars=max_vars,
        min_count=int(min_count),
        limit=limit,
        name=name,
        window=window,
    )
