"""Weighted undirected access graphs (Sec. II-B of the paper).

Vertices are variables; an edge ``{u, v}`` with weight ``w_uv`` counts how
often ``u`` and ``v`` are accessed consecutively in ``S``. Intra-DBC
placement heuristics (Chen, ShiftsReduce, the TSP-style heuristic) operate
on this summary. Self-transitions (``u`` followed by ``u``) cost no shifts
and are therefore not edges, but they are tallied separately because the
DMA heuristic's benefit comes precisely from maximizing them.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import TraceError
from repro.trace.sequence import AccessSequence


class AccessGraph:
    """Adjacency-map representation of the access graph of a sequence."""

    def __init__(self, sequence: AccessSequence) -> None:
        self._seq = sequence
        adj: dict[str, dict[str, int]] = {v: {} for v in sequence.variables}
        self_transitions = 0
        for u, v in sequence.consecutive_pairs():
            if u == v:
                self_transitions += 1
                continue
            adj[u][v] = adj[u].get(v, 0) + 1
            adj[v][u] = adj[v].get(u, 0) + 1
        self._adj = adj
        self._self_transitions = self_transitions

    # -- queries -------------------------------------------------------------

    @property
    def sequence(self) -> AccessSequence:
        return self._seq

    @property
    def vertices(self) -> tuple[str, ...]:
        return self._seq.variables

    @property
    def self_transitions(self) -> int:
        """Number of consecutive same-variable accesses in the sequence."""
        return self._self_transitions

    def weight(self, u: str, v: str) -> int:
        """Edge weight ``w_uv`` (0 when no edge; self loops are not edges)."""
        if u not in self._adj or v not in self._adj:
            raise TraceError(f"unknown variable in edge ({u!r}, {v!r})")
        return self._adj[u].get(v, 0)

    def neighbors(self, v: str) -> dict[str, int]:
        """Mapping of neighbour -> edge weight for ``v``."""
        if v not in self._adj:
            raise TraceError(f"unknown variable {v!r}")
        return dict(self._adj[v])

    def weighted_degree(self, v: str) -> int:
        """Sum of edge weights incident to ``v``."""
        if v not in self._adj:
            raise TraceError(f"unknown variable {v!r}")
        return sum(self._adj[v].values())

    def edges(self) -> Iterable[tuple[str, str, int]]:
        """Yield each undirected edge once as ``(u, v, weight)``."""
        index = {v: i for i, v in enumerate(self._seq.variables)}
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if index[u] < index[v]:
                    yield u, v, w

    def num_edges(self) -> int:
        return sum(1 for _ in self.edges())

    def total_weight(self) -> int:
        """Sum of all edge weights; plus self transitions this is |S|-1."""
        return sum(w for _, _, w in self.edges())

    def to_networkx(self):
        """Export to :mod:`networkx` (optional dependency)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices)
        for u, v, w in self.edges():
            g.add_edge(u, v, weight=w)
        return g

    def to_dot(self, name: str = "access_graph") -> str:
        """Graphviz DOT rendering (edge labels = weights, for papers/docs)."""
        lines = [f"graph {name} {{"]
        freq = {v: self._seq.frequency(v) for v in self.vertices}
        for v in self.vertices:
            lines.append(f'  "{v}" [label="{v} ({freq[v]})"];')
        for u, v, w in self.edges():
            lines.append(f'  "{u}" -- "{v}" [label="{w}", weight={w}];')
        lines.append("}")
        return "\n".join(lines)
