"""Trace statistics: the signals that decide which placement policy wins.

Quantifies the structural properties the paper's analysis keys on —
self-transition density (free shifts), temporal reuse distance, working
set turnover (phase behaviour) and the disjointness profile — so users
can predict placement behaviour for their own traces, and so the test
suite can assert the generated benchmark suite actually has the
structure its domains claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.liveness import Liveness
from repro.trace.sequence import AccessSequence


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one access sequence."""

    length: int
    num_variables: int
    num_accessed: int
    self_transition_ratio: float
    mean_reuse_distance: float
    median_lifespan: float
    mean_working_set: float
    working_set_turnover: float
    disjoint_variables: int
    disjoint_access_share: float

    def describe(self) -> str:
        return (
            f"{self.length} accesses / {self.num_variables} vars "
            f"({self.num_accessed} live); self-trans "
            f"{100 * self.self_transition_ratio:.1f}%, reuse dist "
            f"{self.mean_reuse_distance:.1f}, median lifespan "
            f"{self.median_lifespan:.0f}, WS {self.mean_working_set:.1f} "
            f"(turnover {100 * self.working_set_turnover:.1f}%), disjoint "
            f"{self.disjoint_variables} vars / "
            f"{100 * self.disjoint_access_share:.1f}% of accesses"
        )


def reuse_distances(sequence: AccessSequence) -> np.ndarray:
    """Temporal reuse distance per re-access (number of accesses since
    the previous touch of the same variable); empty for first touches."""
    last_seen: dict[int, int] = {}
    out: list[int] = []
    for i, code in enumerate(sequence.codes):
        c = int(code)
        if c in last_seen:
            out.append(i - last_seen[c])
        last_seen[c] = i
    return np.asarray(out, dtype=np.int64)


def working_set_sizes(sequence: AccessSequence, window: int = 32) -> np.ndarray:
    """Distinct variables per non-overlapping window of ``window`` accesses."""
    if window < 1:
        raise TraceError(f"window must be >= 1, got {window}")
    codes = sequence.codes
    sizes = []
    for start in range(0, len(codes), window):
        chunk = codes[start : start + window]
        if chunk.size:
            sizes.append(len(np.unique(chunk)))
    return np.asarray(sizes, dtype=np.int64)


def working_set_turnover(sequence: AccessSequence, window: int = 32) -> float:
    """Mean fraction of each window's working set that is *new* relative
    to the previous window — 1.0 means fully rotating phases, 0.0 a
    single static working set. This is the phase-behaviour signal that
    predicts DMA's advantage."""
    if window < 1:
        raise TraceError(f"window must be >= 1, got {window}")
    codes = sequence.codes
    previous: set[int] | None = None
    ratios: list[float] = []
    for start in range(0, len(codes), window):
        current = set(int(c) for c in codes[start : start + window])
        if not current:
            continue
        if previous is not None:
            ratios.append(len(current - previous) / len(current))
        previous = current
    return float(np.mean(ratios)) if ratios else 0.0


def self_transition_ratio(sequence: AccessSequence) -> float:
    """Fraction of transitions that stay on the same variable (free)."""
    codes = sequence.codes
    if codes.size < 2:
        return 0.0
    return float(np.mean(codes[1:] == codes[:-1]))


def analyze(sequence: AccessSequence, window: int = 32) -> TraceStats:
    """Compute the full statistics bundle for one sequence."""
    # Imported lazily: the disjointness profile reuses Algorithm 1's scan,
    # and repro.core depends on repro.trace at import time.
    from repro.core.inter.dma import dma_split

    live = Liveness(sequence)
    accessed = [v for v in sequence.variables if live.is_accessed(v)]
    lifespans = [live.lifespan(v) for v in accessed]
    distances = reuse_distances(sequence)
    ws = working_set_sizes(sequence, window=window)
    split = dma_split(sequence)
    share = split.disjoint_frequency_sum / len(sequence) if len(sequence) else 0.0
    return TraceStats(
        length=len(sequence),
        num_variables=sequence.num_variables,
        num_accessed=len(accessed),
        self_transition_ratio=self_transition_ratio(sequence),
        mean_reuse_distance=float(distances.mean()) if distances.size else 0.0,
        median_lifespan=float(np.median(lifespans)) if lifespans else 0.0,
        mean_working_set=float(ws.mean()) if ws.size else 0.0,
        working_set_turnover=working_set_turnover(sequence, window=window),
        disjoint_variables=len(split.vdj),
        disjoint_access_share=share,
    )
