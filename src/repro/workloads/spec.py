"""The declarative workload-spec grammar.

A workload spec is one string naming a trace *source*, its parameters
and an ordered chain of scenario *transforms*::

    spec      := [source ":"] payload ("," key "=" value)* ("@" transform)*
    transform := name ["=" arg ("," arg)*]      # arg := value | key "=" value

Examples::

    h263                                  # bare name = offsetstone:h263
    offsetstone:h263
    synthetic:zipf,vars=64,length=2000
    kernels:matmul,n=6
    file:traces/foo.trc
    file:traces/gem5.csv,format=addr,word=8,max_vars=256
    offsetstone:jpeg@phases=4@interleave=2
    file:traces/foo.trc@tile=3@subsample=0.6

The parsed :class:`WorkloadSpec` is immutable and hashable; its
:attr:`~WorkloadSpec.canonical` form (source params sorted by key,
transform order preserved) is the identity used for naming resolved
programs, spawning deterministic per-spec RNG streams and recording
provenance. Commas and ``@`` inside file paths are not supported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError

#: Source assumed when a spec has no ``source:`` prefix.
DEFAULT_SOURCE = "offsetstone"


@dataclass(frozen=True)
class TransformSpec:
    """One transform application: name + positional and keyword args."""

    name: str
    args: tuple[str, ...] = ()
    kwargs: tuple[tuple[str, str], ...] = ()  # sorted by key

    def render(self) -> str:
        parts = list(self.args) + [f"{k}={v}" for k, v in self.kwargs]
        return self.name + (("=" + ",".join(parts)) if parts else "")


@dataclass(frozen=True)
class WorkloadSpec:
    """A parsed workload spec: source, payload, params, transform chain."""

    source: str
    payload: str
    params: tuple[tuple[str, str], ...] = ()  # sorted by key
    transforms: tuple[TransformSpec, ...] = field(default=())

    @property
    def canonical(self) -> str:
        """The normalized spec string (the spec's stable identity)."""
        head = f"{self.source}:{self.payload}"
        if self.params:
            head += "," + ",".join(f"{k}={v}" for k, v in self.params)
        for t in self.transforms:
            head += "@" + t.render()
        return head

    @property
    def is_plain(self) -> bool:
        """True when the spec is a bare source lookup with no transforms."""
        return not self.params and not self.transforms

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical


def _split_kv(token: str, context: str) -> tuple[str, str]:
    key, sep, value = token.partition("=")
    key, value = key.strip(), value.strip()
    if not sep or not key or not value:
        raise WorkloadError(
            f"{context}: expected key=value, got {token!r}"
        )
    return key, value


def parse_workload_spec(text: str | WorkloadSpec) -> WorkloadSpec:
    """Parse a spec string; :class:`WorkloadSpec` inputs pass through."""
    if isinstance(text, WorkloadSpec):
        return text
    spec = text.strip()
    if not spec:
        raise WorkloadError("workload spec is empty")
    head, *transform_tokens = spec.split("@")
    head = head.strip()
    if not head:
        raise WorkloadError(f"workload spec {text!r} has no source")
    source, sep, rest = head.partition(":")
    if not sep:
        source, rest = DEFAULT_SOURCE, head
    source, rest = source.strip(), rest.strip()
    if not source or not rest:
        raise WorkloadError(
            f"workload spec {text!r}: expected source:payload"
        )
    payload, *param_tokens = [t.strip() for t in rest.split(",")]
    if not payload:
        raise WorkloadError(f"workload spec {text!r} has an empty payload")
    params = tuple(sorted(
        _split_kv(t, f"workload spec {text!r}") for t in param_tokens if t
    ))
    seen = [k for k, _ in params]
    if len(set(seen)) != len(seen):
        raise WorkloadError(f"workload spec {text!r} repeats a parameter")
    transforms = []
    for token in transform_tokens:
        token = token.strip()
        if not token:
            raise WorkloadError(f"workload spec {text!r} has an empty transform")
        name, sep, argstr = token.partition("=")
        name = name.strip()
        if not name:
            raise WorkloadError(
                f"workload spec {text!r}: transform needs a name"
            )
        args: list[str] = []
        kwargs: list[tuple[str, str]] = []
        if sep:
            for arg in argstr.split(","):
                arg = arg.strip()
                if not arg:
                    raise WorkloadError(
                        f"workload spec {text!r}: empty argument in "
                        f"transform {name!r}"
                    )
                if "=" in arg:
                    kwargs.append(_split_kv(arg, f"transform {name!r}"))
                else:
                    args.append(arg)
        keys = [k for k, _ in kwargs]
        if len(set(keys)) != len(keys):
            raise WorkloadError(
                f"workload spec {text!r}: transform {name!r} repeats "
                f"a parameter"
            )
        transforms.append(TransformSpec(
            name=name, args=tuple(args), kwargs=tuple(sorted(kwargs))
        ))
    return WorkloadSpec(
        source=source, payload=payload, params=params,
        transforms=tuple(transforms),
    )


# -- typed parameter conversion ----------------------------------------------


def as_int(value: str, context: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise WorkloadError(
            f"{context}: expected an integer, got {value!r}"
        ) from None


def as_float(value: str, context: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise WorkloadError(
            f"{context}: expected a number, got {value!r}"
        ) from None


def as_str(value: str, context: str) -> str:
    return value
