"""The built-in workload sources.

A *source* turns a :class:`~repro.workloads.spec.WorkloadSpec`'s payload
and parameters into a :class:`~repro.trace.generators.offsetstone
.BenchmarkProgram` — a named bag of memory traces. Four synthetic
families and one ingestion source ship built in:

* ``offsetstone:<name>`` — the paper's generated benchmark suite,
  honouring the profile's scale/seed/write-ratio exactly as before
  (a bare spec with no params or transforms is bit-identical to
  :func:`~repro.trace.generators.offsetstone.load_benchmark`);
* ``kernels:<name>[,param=int...]`` — one real loop-nest kernel
  (``fir``, ``dct``, ``matmul``, ...);
* ``programs:<n>[,statements=..,depth=..,vars=..]`` — ``n`` procedures
  from the compiler-shaped :class:`~repro.trace.generators.programs
  .ProcedureModel`;
* ``synthetic:<kind>[,vars=..,length=..,...]`` — the statistical
  generators (``uniform``, ``zipf``, ``markov``, ``phased``, ``looped``,
  ``sliding``), with ``seqs=K`` independent sequences per program;
* ``file:<path>[,format=auto|trace|addr,word=..,max_vars=..,
  min_count=..,limit=..,stream=0|1,chunk=..,window=..]`` — external
  traces, native format or raw address traces ingested through
  :mod:`repro.trace.io`; ``stream=1`` replays address traces in
  bounded-memory chunks (:mod:`repro.trace.streaming`) without
  changing any result or store key.

Custom sources register through :func:`register_source`.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable

import numpy as np

from repro.errors import ReproError, WorkloadError
from repro.trace.generators import kernels as kernels_mod
from repro.trace.generators import synthetic
from repro.trace.generators.offsetstone import (
    BenchmarkProgram,
    OFFSETSTONE_NAMES,
    load_benchmark,
)
from repro.trace.generators.programs import ProcedureSpec, procedure_sequence
from repro.trace.io import load_traces
from repro.trace.trace import MemoryTrace
from repro.util.rng import spawn_rng
from repro.workloads.spec import WorkloadSpec, as_float, as_int

#: Source resolver signature: ``(spec, ctx, rng) -> BenchmarkProgram``.
SourceResolver = Callable


class _Source:
    __slots__ = ("name", "func", "description")

    def __init__(self, name: str, func: SourceResolver, description: str):
        self.name = name
        self.func = func
        self.description = description


_SOURCES: dict[str, _Source] = {}


def register_source(name: str, func: SourceResolver, description: str = "") -> None:
    """Register ``func(spec, ctx, rng) -> BenchmarkProgram`` under ``name``."""
    if name in _SOURCES:
        raise WorkloadError(f"source {name!r} is already registered")
    _SOURCES[name] = _Source(name, func, description)


def available_sources() -> dict[str, str]:
    """Mapping of registered source names to their descriptions."""
    return {s.name: s.description for s in _SOURCES.values()}


def get_source(name: str) -> SourceResolver:
    try:
        return _SOURCES[name].func
    except KeyError:
        raise WorkloadError(
            f"unknown workload source {name!r}; "
            f"known: {', '.join(sorted(_SOURCES))}"
        ) from None


def _params(spec: WorkloadSpec, context: str, **converters):
    """Convert a spec's params against a converter table, rejecting strays."""
    out = {}
    for key, raw in spec.params:
        if key not in converters:
            raise WorkloadError(
                f"{context} has no parameter {key!r}; "
                f"known: {', '.join(sorted(converters))}"
            )
        out[key] = converters[key](raw, f"{context} ({key})")
    return out


def _with_write_ratio(
    sequences, ctx, rng: np.random.Generator
) -> tuple[MemoryTrace, ...]:
    """Wrap bare sequences with the context's stochastic write ratio."""
    streams = spawn_rng(rng, len(sequences))
    return tuple(
        MemoryTrace.with_write_ratio(seq, ctx.write_ratio, stream)
        for seq, stream in zip(sequences, streams)
    )


# -- offsetstone --------------------------------------------------------------


def _resolve_offsetstone(spec, ctx, rng) -> BenchmarkProgram:
    _params(spec, f"source 'offsetstone' ({spec.payload})")  # no params
    if spec.payload not in OFFSETSTONE_NAMES:
        raise WorkloadError(
            f"unknown offsetstone benchmark {spec.payload!r}; "
            f"known: {', '.join(OFFSETSTONE_NAMES)}"
        )
    # Deliberately ignores `rng`: the suite seeds itself from the profile
    # seed, keeping bare specs bit-identical to the pre-registry suite.
    return load_benchmark(
        spec.payload, scale=ctx.scale, seed=ctx.seed,
        write_ratio=ctx.write_ratio,
    )


# -- kernels -------------------------------------------------------------------


def _resolve_kernels(spec, ctx, rng) -> BenchmarkProgram:
    context = f"source 'kernels' ({spec.payload})"
    try:
        func = kernels_mod.KERNELS[spec.payload]
    except KeyError:
        raise WorkloadError(
            f"unknown kernel {spec.payload!r}; "
            f"known: {', '.join(sorted(kernels_mod.KERNELS))}"
        ) from None
    accepted = {
        p for p in inspect.signature(func).parameters if p != "name"
    }
    kwargs = _params(
        spec, context, **{p: as_int for p in accepted}
    )
    try:
        seq = func(name=spec.payload, **kwargs)
    except ReproError as exc:
        raise WorkloadError(f"{context}: {exc}") from exc
    traces = _with_write_ratio([seq], ctx, rng)
    return BenchmarkProgram(name=spec.canonical, domain="kernel", traces=traces)


# -- programs ------------------------------------------------------------------


def _resolve_programs(spec, ctx, rng) -> BenchmarkProgram:
    context = f"source 'programs' ({spec.payload})"
    count = as_int(spec.payload, context)
    if count < 1:
        raise WorkloadError(f"{context}: procedure count must be >= 1")
    kwargs = _params(
        spec, context,
        statements=as_int, depth=as_int, vars=as_int,
        loop_p=as_float, branch_p=as_float,
    )
    fields = {
        "statements": "target_statements", "depth": "max_depth",
        "vars": "procedure_vars", "loop_p": "loop_probability",
        "branch_p": "branch_probability",
    }
    try:
        proc_spec = ProcedureSpec(
            **{fields[k]: v for k, v in kwargs.items()}
        )
        streams = spawn_rng(rng, count)
        sequences = [
            procedure_sequence(spec=proc_spec, rng=streams[i],
                               name=f"proc{i}")
            for i in range(count)
        ]
    except ReproError as exc:
        raise WorkloadError(f"{context}: {exc}") from exc
    traces = _with_write_ratio(sequences, ctx, rng)
    return BenchmarkProgram(name=spec.canonical, domain="program", traces=traces)


# -- synthetic -----------------------------------------------------------------

#: kind -> (generator, param-name -> (generator kwarg, converter))
_SYNTHETIC_KINDS = {
    "uniform": (synthetic.uniform_random_sequence, {
        "vars": ("num_vars", as_int), "length": ("length", as_int),
    }),
    "zipf": (synthetic.zipf_sequence, {
        "vars": ("num_vars", as_int), "length": ("length", as_int),
        "alpha": ("alpha", as_float), "locality": ("locality", as_float),
    }),
    "markov": (synthetic.markov_sequence, {
        "vars": ("num_vars", as_int), "length": ("length", as_int),
        "reuse": ("reuse", as_float), "window": ("window", as_int),
    }),
    "phased": (synthetic.phased_sequence, {
        "phases": ("num_phases", as_int),
        "vars": ("vars_per_phase", as_int),
        "length": ("accesses_per_phase", as_int),
        "shared": ("shared_vars", as_int),
        "shared_ratio": ("shared_ratio", as_float),
        "alpha": ("alpha", as_float),
    }),
    "looped": (synthetic.looped_sequence, {
        "patterns": ("num_patterns", as_int),
        "length": ("pattern_length", as_int),
        "repeats": ("repeats", as_int),
        "vars": ("vars_per_pattern", as_int),
    }),
    "sliding": (synthetic.sliding_window_sequence, {
        "vars": ("num_vars", as_int), "length": ("length", as_int),
        "window": ("window", as_int), "locality": ("locality", as_float),
        "shared": ("shared_vars", as_int),
        "shared_ratio": ("shared_ratio", as_float),
        "revisit": ("revisit", as_float),
    }),
}

#: Modest defaults so `synthetic:zipf` works bare.
_SYNTHETIC_DEFAULTS = {
    "uniform": {"num_vars": 32, "length": 512},
    "zipf": {"num_vars": 32, "length": 512},
    "markov": {"num_vars": 32, "length": 512},
    "phased": {"num_phases": 6, "vars_per_phase": 8,
               "accesses_per_phase": 96},
    "looped": {"num_patterns": 6, "pattern_length": 10, "repeats": 8,
               "vars_per_pattern": 6},
    "sliding": {"num_vars": 48, "length": 512},
}


def _resolve_synthetic(spec, ctx, rng) -> BenchmarkProgram:
    context = f"source 'synthetic' ({spec.payload})"
    try:
        func, table = _SYNTHETIC_KINDS[spec.payload]
    except KeyError:
        raise WorkloadError(
            f"unknown synthetic generator {spec.payload!r}; "
            f"known: {', '.join(sorted(_SYNTHETIC_KINDS))}"
        ) from None
    converters = {k: conv for k, (_, conv) in table.items()}
    converters["seqs"] = as_int
    raw = _params(spec, context, **converters)
    seqs = raw.pop("seqs", 1)
    if seqs < 1:
        raise WorkloadError(f"{context}: seqs must be >= 1")
    kwargs = dict(_SYNTHETIC_DEFAULTS[spec.payload])
    kwargs.update({table[k][0]: v for k, v in raw.items()})
    streams = spawn_rng(rng, seqs)
    try:
        sequences = [
            func(**kwargs, rng=streams[i], name=f"{spec.payload}{i}")
            for i in range(seqs)
        ]
    except ReproError as exc:
        raise WorkloadError(f"{context}: {exc}") from exc
    traces = _with_write_ratio(sequences, ctx, rng)
    return BenchmarkProgram(
        name=spec.canonical, domain="synthetic", traces=traces
    )


# -- file ----------------------------------------------------------------------


#: Default ``TraceChunk`` size for ``stream=1`` file workloads: ~9 MiB
#: resident per chunk, large enough that chunking overhead is noise.
DEFAULT_STREAM_CHUNK = 1 << 20

#: ``file:`` params that select *residency*, not workload identity.
#: Streaming is bit-identical to in-memory replay, so these are
#: stripped from the resolved program's name — and therefore from the
#: matrix runner's content-addressed cell keys — letting streamed and
#: materialized runs share store cells. ``window`` is *not* here: a
#: bounded placement window changes placements, hence results.
_RESIDENCY_PARAMS = frozenset({"stream", "chunk"})


def _file_identity(spec: WorkloadSpec) -> str:
    """The canonical spec minus residency params (the program name)."""
    stripped = WorkloadSpec(
        source=spec.source,
        payload=spec.payload,
        params=tuple(
            (k, v) for k, v in spec.params if k not in _RESIDENCY_PARAMS
        ),
        transforms=spec.transforms,
    )
    return stripped.canonical


def _resolve_file(spec, ctx, rng) -> BenchmarkProgram:
    context = f"source 'file' ({spec.payload})"
    params = _params(
        spec, context,
        format=lambda v, c: v, word=as_int, max_vars=as_int,
        min_count=as_int, limit=as_int,
        stream=as_int, chunk=as_int, window=as_int,
    )
    format = params.pop("format", "auto")
    stream = params.pop("stream", 0)
    chunk = params.pop("chunk", None)
    window = params.pop("window", None)
    if stream not in (0, 1):
        raise WorkloadError(f"{context}: stream must be 0 or 1, got {stream}")
    if not stream and (chunk is not None or window is not None):
        raise WorkloadError(
            f"{context}: chunk/window only apply with stream=1"
        )
    kwargs = {}
    if "word" in params:
        kwargs["word_bytes"] = params["word"]
    for key in ("max_vars", "min_count", "limit"):
        if key in params:
            kwargs[key] = params[key]
    if stream:
        return _resolve_file_streaming(
            spec, context, format=format, chunk=chunk, window=window,
            **kwargs,
        )
    try:
        traces = load_traces(spec.payload, format=format, **kwargs)
    except FileNotFoundError:
        raise WorkloadError(
            f"{context}: trace file {spec.payload!r} does not exist"
        ) from None
    except ReproError as exc:
        raise WorkloadError(f"{context}: {exc}") from exc
    if not traces:
        raise WorkloadError(
            f"{context}: {spec.payload!r} contains no trace blocks"
        )
    return BenchmarkProgram(
        name=spec.canonical, domain="file", traces=tuple(traces)
    )


def _resolve_file_streaming(
    spec, context, *, format, chunk, window, **kwargs
) -> BenchmarkProgram:
    """The ``stream=1`` path: one bounded-memory streaming trace.

    Only raw address traces stream (the native block format needs the
    whole file anyway), and scenario transforms are rejected — they are
    whole-sequence rewrites, incompatible with never materializing the
    sequence. The program is named by the spec minus ``stream``/
    ``chunk`` (see :data:`_RESIDENCY_PARAMS`), so store cells are
    shared with the in-memory resolution of the same file.
    """
    from repro.trace.io import sniff_trace_format
    from repro.trace.streaming import stream_address_trace

    if spec.transforms:
        names = "@".join(t.name for t in spec.transforms)
        raise WorkloadError(
            f"{context}: scenario transforms ({names}) cannot apply to a "
            f"streaming workload — they rewrite the whole sequence; drop "
            f"the transforms or use stream=0"
        )
    if format not in ("auto", "addr"):
        raise WorkloadError(
            f"{context}: only raw address traces can stream, "
            f"got format={format!r}"
        )
    try:
        if sniff_trace_format(spec.payload) != "addr":
            raise WorkloadError(
                f"{context}: {spec.payload!r} is a native trace file; "
                f"streaming (stream=1) supports raw address traces only"
            )
        trace = stream_address_trace(
            spec.payload,
            chunk=chunk if chunk is not None else DEFAULT_STREAM_CHUNK,
            window=window,
            **kwargs,
        )
    except FileNotFoundError:
        raise WorkloadError(
            f"{context}: trace file {spec.payload!r} does not exist"
        ) from None
    except WorkloadError:
        raise
    except ReproError as exc:
        raise WorkloadError(f"{context}: {exc}") from exc
    return BenchmarkProgram(
        name=_file_identity(spec), domain="file", traces=(trace,)
    )


register_source(
    "offsetstone", _resolve_offsetstone,
    "the generated OffsetStone-like suite (payload: benchmark name)",
)
register_source(
    "kernels", _resolve_kernels,
    "one real loop-nest kernel (payload: kernel name; int params forwarded)",
)
register_source(
    "programs", _resolve_programs,
    "compiler-shaped procedure traces (payload: procedure count; "
    "statements/depth/vars/loop_p/branch_p)",
)
register_source(
    "synthetic", _resolve_synthetic,
    "statistical generators (payload: uniform|zipf|markov|phased|looped|"
    "sliding; seqs=K per program)",
)
register_source(
    "file", _resolve_file,
    "external trace file, native or raw-address format (payload: path; "
    "format/word/max_vars/min_count/limit; stream=1 with chunk/window "
    "for bounded-memory chunked replay)",
)
